# Developer entry points.  Everything here is also runnable directly
# (`python -m repro.lint ...`, `python -m pytest ...`); the Makefile just
# fixes the argument lists CI uses.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-smoke sanitize-smoke hotpath-smoke check

test:
	$(PYTHON) -m pytest -x -q

# Static gate: repro.lint over everything we ship, plus ruff when the
# machine has it (the sandbox image does not bundle ruff; CI does).
lint:
	$(PYTHON) -m repro.lint examples benchmarks src tests
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipped (config in pyproject.toml)"; \
	fi

lint-smoke:
	$(PYTHON) -m repro.bench --lint-smoke

sanitize-smoke:
	$(PYTHON) -m repro.bench --sanitize-smoke

hotpath-smoke:
	$(PYTHON) -m repro.bench --hotpath-smoke

check: lint test lint-smoke sanitize-smoke
