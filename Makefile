# Developer entry points.  Everything here is also runnable directly
# (`python -m repro.lint ...`, `python -m pytest ...`); the Makefile just
# fixes the argument lists CI uses.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-faults test-docs lint lint-smoke sanitize-smoke recover-smoke hotpath-smoke mpi3-smoke procs-smoke proc-recover-smoke traffic-smoke check

test:
	$(PYTHON) -m pytest -x -q

# Re-run the fault/recovery suite with the ambient injector installed in
# every runtime (the benign plan exercises the whole injection plumbing).
test-faults:
	$(PYTHON) -m pytest -x -q --faults tests/test_faults.py

# Static gate: repro.lint over everything we ship, plus ruff when the
# machine has it (the sandbox image does not bundle ruff; CI does).
lint:
	$(PYTHON) -m repro.lint examples benchmarks src tests
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipped (config in pyproject.toml)"; \
	fi

lint-smoke:
	$(PYTHON) -m repro.bench --lint-smoke

sanitize-smoke:
	$(PYTHON) -m repro.bench --sanitize-smoke

# Rank-death recovery gate: every recovery scenario must complete
# value-correct on the shrunken world and replay bit-identically.
recover-smoke:
	$(PYTHON) -m repro.bench --recover-smoke

hotpath-smoke:
	$(PYTHON) -m repro.bench --hotpath-smoke

# MPI-3 flush-datapath gate: deferred issue + per-target flush must beat
# eager per-op epochs by >= 2x, and coalescing must add >= 1.5x on top.
mpi3-smoke:
	$(PYTHON) -m repro.bench --mpi3-smoke

# Proc-backend gate: shared-memory-window throughput must scale >= 2x
# from 1 to 4 ranks (enforced on hosts with >= 4 CPUs; recorded elsewhere).
procs-smoke:
	$(PYTHON) -m repro.bench --procs-smoke

# Cross-process fault-tolerance gate: SIGKILL a rank mid-collective,
# survivors must detect it inside the latency budget and finish a
# value-correct checkpoint restore on the shrunken grid.
proc-recover-smoke:
	$(PYTHON) -m repro.bench --proc-recover-smoke

# Service-traffic gate: every workload's oracle must verify (fault-free
# and with kills landing mid-traffic), faulted seeds must replay
# bit-identically, and the proc-backend SIGKILL run must keep goodput
# >= 0.5x fault-free (degradation gate enforced on hosts with >= 4 CPUs).
traffic-smoke:
	$(PYTHON) -m repro.bench --traffic-smoke

# Docs-consistency gate: every CLI flag, module path, and relative link
# in README.md, DESIGN.md, and docs/*.md must resolve.
test-docs:
	$(PYTHON) -m pytest -x -q tests/test_docs.py

check: lint test test-faults test-docs lint-smoke sanitize-smoke recover-smoke mpi3-smoke procs-smoke proc-recover-smoke traffic-smoke
