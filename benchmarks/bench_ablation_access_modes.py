"""Ablation §VIII-A: what access-mode hints buy.

Two measurements:

* **op level** (simulated execution): accumulate-only phases under
  ``ACC_ONLY`` take shared locks; with several origins targeting one
  hot slab, the strict window permits the concurrent same-op
  accumulates that ``DEFAULT`` must serialise through exclusive epochs.
  We verify the semantics run (no conflicts raised) and compare modeled
  per-op cost.
* **application level** (analytic): re-evaluate the IB CCSD scaling
  model with the exclusive-epoch contention factor removed — the §VIII-A
  claim that access modes "expose significant opportunities for
  performance optimization", quantified.
"""

from __future__ import annotations

import numpy as np

from repro.armci import AccessMode, Armci
from repro.bench import format_table, run_measurement
from repro.mpi.runtime import current_proc
from repro.nwchem.model import WorkloadModel, ccsd_time
from repro.simtime import PLATFORMS, MPITimingPolicy
from dataclasses import replace


def _measure_acc_phase(comm, mode, out):
    rt = Armci.init(comm)
    ptrs = rt.malloc(4096)
    if mode is not AccessMode.DEFAULT:
        rt.set_access_mode(ptrs[0], mode)
    rt.barrier()
    clock = current_proc().clock
    t0 = clock.now
    for _ in range(50):
        rt.acc(np.ones(64), ptrs[0])
    out[rt.my_id] = clock.now - t0
    rt.barrier()
    if mode is not AccessMode.DEFAULT:
        rt.set_access_mode(ptrs[0], AccessMode.DEFAULT)
    rt.free(ptrs[rt.my_id])


def test_acc_only_phase_runs_concurrently(emit, benchmark):
    timing = MPITimingPolicy(PLATFORMS["ib"].mpi)
    rows = []
    for mode in (AccessMode.DEFAULT, AccessMode.ACC_ONLY):
        out: dict = {}
        run_measurement(4, _measure_acc_phase, mode, out, timing=timing)
        rows.append([mode.value, float(np.mean(list(out.values()))) * 1e3])
    emit(
        "ablation_access_modes_ops",
        format_table(
            "§VIII-A ablation — 50 accumulates x 4 origins to one slab "
            "(modeled ms per origin)",
            ["access mode", "time (ms)"],
            rows,
        ),
    )
    benchmark.pedantic(
        lambda: run_measurement(4, _measure_acc_phase, AccessMode.ACC_ONLY, {}, timing=timing),
        rounds=2,
        iterations=1,
    )


def test_application_level_projection(emit, benchmark):
    """IB CCSD with and without the exclusive-epoch contention factor."""
    ib = PLATFORMS["ib"]
    relaxed = replace(ib, mpi_epoch_contention=1.0)
    rows = []
    for cores in (192, 256, 320, 384):
        t_nat = ccsd_time(ib, "native", cores) / 60
        t_mpi = ccsd_time(ib, "mpi", cores) / 60
        t_hint = ccsd_time(relaxed, "mpi", cores) / 60
        rows.append([cores, t_nat, t_mpi, t_hint, t_mpi / t_hint])
    emit(
        "ablation_access_modes_app",
        format_table(
            "§VIII-A ablation — IB CCSD time (min): exclusive epochs vs "
            "access-mode shared locks",
            ["cores", "native", "ARMCI-MPI (default)", "ARMCI-MPI (+hints)", "speedup"],
            rows,
        ),
    )
    # the projected win must be substantial (that is §VIII-A's argument)
    assert all(row[4] > 1.2 for row in rows)
    benchmark(lambda: ccsd_time(relaxed, "mpi", 256))
