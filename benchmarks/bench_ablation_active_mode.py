"""Ablation §III: active-target vs passive-target RMA for the GA workload.

§III: "Because of the synchronization involved in active-mode
communication, passive-mode RMA is more suitable for the asynchronous
communication model used by GA."  This bench makes the rejected design
concrete on two levels:

* **op level** (simulated execution): a ring of puts under the two
  modes.  Fence mode requires *every* rank to participate in every
  epoch boundary, so its modeled per-op cost carries a log(p) barrier
  even when only two ranks communicate.
* **application level** (analytic): the NXTVAL-driven CCSD task pool is
  dynamically scheduled — under active mode every task boundary would
  need a window-wide fence.  Composing the model's barrier cost per
  task shows the collapse the paper avoided by design.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.bench import format_table, run_measurement
from repro.mpi.runtime import current_proc
from repro.nwchem.model import WorkloadModel, ccsd_time, stack_for
from repro.simtime import PLATFORMS, MPITimingPolicy


def _measure_ring(comm, active, out):
    local = np.zeros(512, dtype=np.uint8)
    win = mpi.Win.create(comm, local)
    comm.barrier()
    clock = current_proc().clock
    right = (comm.rank + 1) % comm.size
    data = np.ones(512, dtype=np.uint8)
    reps = 25
    t0 = clock.now
    if active:
        win.fence_sync()
        for _ in range(reps):
            win.put(data, right, 0)
            win.fence_sync()  # every transfer phase synchronises everyone
        win.fence_sync(end=True)
    else:
        for _ in range(reps):
            win.lock(right, mpi.LOCK_EXCLUSIVE)
            win.put(data, right, 0)
            win.unlock(right)
    out[comm.rank] = (clock.now - t0) / reps
    comm.barrier()
    win.free()


def test_op_level_active_vs_passive(emit, benchmark):
    timing = MPITimingPolicy(PLATFORMS["ib"].mpi)
    rows = []
    for nproc in (2, 4, 8):
        passive: dict = {}
        run_measurement(nproc, _measure_ring, False, passive, timing=timing)
        active: dict = {}
        run_measurement(nproc, _measure_ring, True, active, timing=timing)
        t_p = float(np.mean(list(passive.values()))) * 1e6
        t_a = float(np.mean(list(active.values()))) * 1e6
        rows.append([nproc, t_p, t_a, t_a / t_p])
    emit(
        "ablation_active_mode_ops",
        format_table(
            "§III ablation — 512 B ring put, modeled µs/op: passive "
            "(lock/unlock) vs active (fence)",
            ["ranks", "passive", "active (fence)", "ratio"],
            rows,
        ),
    )
    # the fence tax grows with rank count; passive does not
    assert rows[-1][3] > rows[0][3] >= 1.0
    benchmark.pedantic(
        lambda: run_measurement(4, _measure_ring, True, {}, timing=timing),
        rounds=2,
        iterations=1,
    )


def test_application_level_projection(emit, benchmark):
    """CCSD with a window-wide fence per task instead of passive epochs."""
    w = WorkloadModel()
    rows = []
    for key in ("ib", "xe6"):
        p = PLATFORMS[key]
        stack = stack_for(p, "mpi")
        cores = {"ib": 256, "xe6": 2976}[key]
        t_passive = ccsd_time(p, "mpi", cores)
        # active mode: every task's transfers complete at a fence that
        # costs a log(p) barrier ON EVERY RANK; tasks per rank = n/p but
        # the fence count is the global task count (all ranks attend all)
        fences = w.ccsd_tasks
        t_fence = fences * p.mpi.collective_time("barrier", 8, cores) / 1.0
        rows.append(
            [p.name, cores, t_passive / 60, (t_passive + t_fence) / 60,
             (t_passive + t_fence) / t_passive]
        )
    emit(
        "ablation_active_mode_app",
        format_table(
            "§III ablation — modeled CCSD time (min) if every task "
            "synchronised via MPI_Win_fence",
            ["platform", "cores", "passive", "active", "slowdown"],
            rows,
        ),
    )
    # Even this LOWER BOUND (pure fence cost, ignoring that bulk-
    # synchronous phases would also destroy the NXTVAL dynamic load
    # balancing) is material, and it grows with scale — decisive at the
    # core counts the paper runs on the XE6.
    assert all(row[4] > 1.15 for row in rows)
    assert rows[1][4] > 3.0  # XE6 @ 2976 cores
    benchmark(lambda: ccsd_time(PLATFORMS["ib"], "mpi", 256))
