"""Ablation §VI-A: the batched method's B parameter.

The paper exposes B ("up to B operations per epoch, default 0 =
unlimited") without sweeping it; this ablation measures strided-get
bandwidth across B on the InfiniBand model, where the epoch
queue-management defect makes the trade-off interesting: large epochs
amortise lock/unlock but accumulate the per-queued-op penalty, so an
intermediate B wins at high segment counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci, ArmciConfig
from repro.bench import Series, format_series_table, gbps, run_measurement
from repro.mpi.runtime import current_proc
from repro.simtime import PLATFORMS, MPITimingPolicy


def _measure(comm, batch_size, nsegs, seg_size, out):
    cfg = ArmciConfig(
        strided_method="iov", iov_method="batched", iov_batch_size=batch_size
    )
    rt = Armci.init(comm, cfg)
    stride = seg_size * 2
    ptrs = rt.malloc(stride * nsegs + seg_size)
    local = np.zeros(stride * nsegs + seg_size, dtype=np.uint8)
    rt.barrier()
    if rt.my_id == 0:
        clock = current_proc().clock
        t0 = clock.now
        rt.get_s(ptrs[1], [stride], local, [stride], [seg_size, nsegs])
        out["t"] = clock.now - t0
    rt.barrier()
    rt.free(ptrs[rt.my_id])


BATCHES = [1, 4, 16, 64, 256, 0]  # 0 = unlimited (paper default)


@pytest.mark.parametrize("nsegs", [64, 1024])
def test_batch_size_sweep(nsegs, emit, benchmark):
    platform = PLATFORMS["ib"]
    seg_size = 1024
    s = Series(label=f"{nsegs} segs")
    for b in BATCHES:
        out: dict = {}
        run_measurement(
            2, _measure, b, nsegs, seg_size, out,
            timing=MPITimingPolicy(platform.mpi),
        )
        s.add("unlimited" if b == 0 else b, gbps(nsegs * seg_size, out["t"]))
    emit(
        f"ablation_batch_size_{nsegs}",
        format_series_table(
            f"§VI-A ablation — batched-method B sweep, IB, 1 KiB segments, "
            f"{nsegs} segments (GB/s)",
            "B",
            [s],
        ),
    )
    if nsegs == 1024:
        # with the MVAPICH queue penalty, some finite B must beat unlimited
        finite = max(s.y[:-1])
        assert finite > s.y[-1], (
            "an intermediate batch size should beat B=unlimited at high "
            "segment counts on the IB model"
        )
    benchmark.pedantic(
        lambda: run_measurement(
            2, _measure, 16, 64, seg_size, {},
            timing=MPITimingPolicy(platform.mpi),
        ),
        rounds=2,
        iterations=1,
    )
