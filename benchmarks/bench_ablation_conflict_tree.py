"""Ablation §VI-B: AVL conflict tree vs the naive O(N²) overlap scan.

This is the one place where the paper's metric *is* CPU time of the
checking algorithm itself (IOV descriptors reach "tens to hundreds of
thousands of segments" in NWChem), so pytest-benchmark measures real
wall time of both detectors on disjoint descriptors (the common case:
the scan must look at everything before declaring the transfer safe).
"""

from __future__ import annotations

import time

import pytest

from repro.armci.conflict_tree import ConflictTree, any_overlap_naive, any_overlap_tree
from repro.bench import format_table


def _disjoint_ranges(n: int, seg: int = 64) -> list[tuple[int, int]]:
    # shuffled but disjoint: the worst case for the naive scan and a
    # balanced-insert workload for the AVL tree
    idx = [(i * 2654435761) % n for i in range(n)]
    return [(k * 2 * seg, k * 2 * seg + seg - 1) for k in idx]


@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_tree_scaling(n, benchmark):
    ranges = _disjoint_ranges(n)
    assert not benchmark(lambda: any_overlap_tree(ranges))


@pytest.mark.parametrize("n", [256, 1024])
def test_naive_scaling(n, benchmark):
    ranges = _disjoint_ranges(n)
    assert not benchmark(lambda: any_overlap_naive(ranges))


def test_crossover_table(emit, benchmark):
    """Tree wins asymptotically; print the measured crossover."""
    rows = []
    for n in (64, 256, 1024, 4096, 16384):
        ranges = _disjoint_ranges(n)
        t0 = time.perf_counter()
        any_overlap_tree(ranges)
        t_tree = time.perf_counter() - t0
        if n <= 4096:
            t0 = time.perf_counter()
            any_overlap_naive(ranges)
            t_naive = time.perf_counter() - t0
        else:
            t_naive = float("nan")
        rows.append([n, t_tree * 1e3, t_naive * 1e3])
    emit(
        "ablation_conflict_tree",
        format_table(
            "§VI-B ablation: overlap detection time (ms)",
            ["segments", "AVL tree (O(N log N))", "naive (O(N^2))"],
            rows,
        ),
    )
    # at NWChem scale the tree must be decisively faster
    big = _disjoint_ranges(4096)
    t0 = time.perf_counter()
    any_overlap_tree(big)
    t_tree = time.perf_counter() - t0
    t0 = time.perf_counter()
    any_overlap_naive(big)
    t_naive = time.perf_counter() - t0
    assert t_tree < t_naive, "the §VI-B structure must beat the naive scan"
    benchmark.pedantic(lambda: any_overlap_tree(big), rounds=3, iterations=1)


def test_tree_stays_balanced(benchmark):
    """Adversarial ascending inserts: AVL keeps log-height (no O(N²))."""

    def build():
        t = ConflictTree()
        for i in range(8192):
            t.insert(i * 10, i * 10 + 5)
        return t.height

    height = benchmark.pedantic(build, rounds=2, iterations=1)
    assert height <= 1.45 * 13 + 2  # 1.44*log2(8192)=~18.7
