"""Ablation §IX: data-server ARMCI vs ARMCI-MPI vs native.

§IX contrasts this paper's RMA-based design with the older portable
ARMCI that ran a data server per node: "consumption of a core,
bottlenecking on the data server, and two-sided messaging overheads".
With all three stacks implemented, both costs are measurable:

* **per-op overhead**: contiguous get bandwidth of the three stacks on
  the InfiniBand model — the DS path pays request+response latency and
  a shared-memory staging copy on every transfer;
* **bottleneck**: with every client hammering one host, the DS design
  serialises in the server (service counts prove it), while RMA
  accumulates proceed as independent one-sided operations.
"""

from __future__ import annotations

import numpy as np

from repro.armci import Armci
from repro.armci_ds import DataServerArmci
from repro.armci_native import NativeArmci
from repro.bench import Series, format_series_table, gbps, pow2_sizes, run_measurement
from repro.mpi.runtime import current_proc
from repro.simtime import PLATFORMS, MPITimingPolicy


def _measure(comm, flavor, sizes, out):
    platform = PLATFORMS["ib"]
    if flavor == "mpi":
        rt = Armci.init(comm)
    elif flavor == "native":
        rt = NativeArmci.init(comm, path=platform.native)
    else:
        rt = DataServerArmci.init(comm, path=platform.native)
    ptrs = rt.malloc(max(sizes))
    results = {}
    rt.barrier()
    if rt.my_id == 0:
        clock = current_proc().clock
        for n in sizes:
            buf = np.zeros(max(n // 8, 1), dtype="f8")
            t0 = clock.now
            for _ in range(3):
                rt.get(ptrs[1], buf, nbytes=n)
            results[n] = (clock.now - t0) / 3
    rt.barrier()
    if rt.my_id == 0:
        out.update(results)
    rt.free(ptrs[rt.my_id])
    if flavor == "ds":
        rt.shutdown()


def test_three_stack_bandwidth(emit, benchmark):
    sizes = pow2_sizes(6, 24, step=2)
    series = []
    for flavor, label in (
        ("native", "Native ARMCI"),
        ("mpi", "ARMCI-MPI (this paper)"),
        ("ds", "Data-server ARMCI (§IX)"),
    ):
        out: dict = {}
        timing = MPITimingPolicy(PLATFORMS["ib"].mpi) if flavor == "mpi" else None
        run_measurement(2, _measure, flavor, sizes, out, timing=timing)
        s = Series(label=label)
        for n in sizes:
            s.add(n, gbps(n, out[n]))
        series.append(s)
    emit(
        "ablation_dataserver_bw",
        format_series_table(
            "§IX ablation — contiguous get bandwidth on InfiniBand (GB/s)",
            "bytes",
            series,
        ),
    )
    by = {s.label: s for s in series}
    # both real designs beat the data-server fallback at large messages
    # (the DS staging copy caps its asymptote)
    assert by["ARMCI-MPI (this paper)"].y[-1] > by["Data-server ARMCI (§IX)"].y[-1]
    assert by["Native ARMCI"].y[-1] > by["Data-server ARMCI (§IX)"].y[-1]
    benchmark.pedantic(
        lambda: run_measurement(2, _measure, "ds", [4096], {}),
        rounds=2,
        iterations=1,
    )


def _hot_host(comm, flavor, out):
    platform = PLATFORMS["ib"]
    if flavor == "mpi":
        rt = Armci.init(comm)
    else:
        rt = DataServerArmci.init(comm, path=platform.native)
    ptrs = rt.malloc(64)
    rt.barrier()
    for _ in range(20):
        rt.acc(np.ones(8), ptrs[0])
    rt.barrier()
    if flavor == "ds" and rt.my_id == 0:
        out["served"] = list(rt.requests_served)
    rt.free(ptrs[rt.my_id])
    if flavor == "ds":
        rt.shutdown()


def test_server_bottleneck_observable(emit, benchmark):
    out: dict = {}
    run_measurement(6, _hot_host, "ds", out)
    served = out["served"]
    emit(
        "ablation_dataserver_bottleneck",
        "§IX ablation — per-server requests serviced with 6 clients\n"
        f"hammering host 0: {served}\n"
        "(the hot host's server serialises every access — the bottleneck\n"
        "§IX names; RMA accumulates need no server at all)",
    )
    assert served[0] >= 20 * 6
    assert served[0] > 5 * max(served[1:])
    benchmark.pedantic(
        lambda: run_measurement(4, _hot_host, "ds", {}), rounds=2, iterations=1
    )
