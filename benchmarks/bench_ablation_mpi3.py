"""Ablation §VIII-B: what the MPI-3 RMA extensions buy.

The paper motivates four MPI-3 features; this bench quantifies the two
we implement end to end:

* **atomic RMW** — ARMCI_Rmw via the §V-D mutex (``datapath="mpi2"``:
  mutex lock + read epoch + write epoch + mutex unlock) vs the
  first-class MPI-3 datapath's native ``fetch_and_op`` inside the
  standing ``lock_all`` epoch.  Measured both as modeled latency per
  platform and as real wall time of the protocol (message/epoch count
  shrinks from ~6 round trips to 1).
* **epochless access** — raw-window ablation: per-operation cost with
  lock/unlock vs a lock_all + flush regime, below the ARMCI layer.

The nonblocking-aggregation half of the datapath (deferral +
coalescing) is benched separately in ``bench_mpi3_datapath.py`` and
gated by ``python -m repro.bench --mpi3-smoke``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.bench import format_table, run_measurement
from repro.mpi.runtime import Runtime, current_proc
from repro.simtime import PLATFORMS, MPITimingPolicy


def _measure_rmw(comm, datapath, out):
    rt = Armci.init(comm, datapath=datapath)
    ptrs = rt.malloc(8)
    rt.barrier()
    clock = current_proc().clock
    t0 = clock.now
    for _ in range(20):
        rt.rmw("fetch_and_add_long", ptrs[0], 1)
    out[rt.my_id] = (clock.now - t0) / 20
    rt.barrier()
    rt.free(ptrs[rt.my_id])


def test_rmw_latency_modeled(emit, benchmark):
    rows = []
    for key, platform in PLATFORMS.items():
        timing = MPITimingPolicy(platform.mpi)
        out2: dict = {}
        run_measurement(2, _measure_rmw, "mpi2", out2, timing=timing)
        out3: dict = {}
        run_measurement(2, _measure_rmw, "mpi3", out3, timing=timing)
        t2 = float(np.mean(list(out2.values()))) * 1e6
        t3 = float(np.mean(list(out3.values()))) * 1e6
        rows.append([platform.name, t2, t3, t2 / t3])
    emit(
        "ablation_mpi3_rmw",
        format_table(
            "§VIII-B ablation — NXTVAL fetch-and-add latency (modeled µs)",
            ["platform", "mpi2 datapath (mutex, §V-D)",
             "mpi3 datapath (fetch_and_op)", "speedup"],
            rows,
        ),
    )
    assert all(row[3] > 2.0 for row in rows), (
        "MPI-3 RMW must be several times faster than the mutex path"
    )
    timing = MPITimingPolicy(PLATFORMS["ib"].mpi)
    benchmark.pedantic(
        lambda: run_measurement(2, _measure_rmw, "mpi3", {}, timing=timing),
        rounds=2, iterations=1,
    )


def test_rmw_protocol_wall_time(benchmark):
    """Real wall time: the mutex protocol does ~6x the simulated-MPI work."""

    def run(mpi3: bool):
        def main(comm):
            rt = Armci.init(comm, datapath="mpi3" if mpi3 else "mpi2")
            ptrs = rt.malloc(8)
            for _ in range(25):
                rt.rmw("fetch_and_add_long", ptrs[0], 1)
            rt.barrier()
            rt.free(ptrs[rt.my_id])

        Runtime(3, watchdog_s=10.0).spmd(main)

    benchmark.pedantic(lambda: run(True), rounds=3, iterations=1)
    # correctness of both paths is covered in tests; here we only ensure
    # the MPI-3 path completes under benchmark without protocol stalls


def _measure_epochless(comm, use_flush, out):
    from repro import mpi as m

    local = np.zeros(4096, dtype=np.uint8)
    win = m.Win.create(comm, local, mpi3=True)
    comm.barrier()
    me = comm.rank
    clock = current_proc().clock
    if me == 0:
        data = np.ones(512, dtype=np.uint8)
        t0 = clock.now
        if use_flush:
            win.lock_all()
            for _ in range(100):
                win.put(data, 1, 0)
                win.flush(1)
            win.unlock_all()
        else:
            for _ in range(100):
                win.lock(1, m.LOCK_EXCLUSIVE)
                win.put(data, 1, 0)
                win.unlock(1)
        out["t"] = (clock.now - t0) / 100
    comm.barrier()
    win.free()


def test_epochless_put(emit, benchmark):
    rows = []
    for key, platform in PLATFORMS.items():
        timing = MPITimingPolicy(platform.mpi)
        locked: dict = {}
        run_measurement(2, _measure_epochless, False, locked, timing=timing)
        flushed: dict = {}
        run_measurement(2, _measure_epochless, True, flushed, timing=timing)
        rows.append(
            [platform.name, locked["t"] * 1e6, flushed["t"] * 1e6,
             locked["t"] / flushed["t"]]
        )
    emit(
        "ablation_mpi3_epochless",
        format_table(
            "§VIII-B ablation — 512 B put cost (modeled µs per op)",
            ["platform", "lock/unlock per op (MPI-2)", "lock_all+flush (MPI-3)",
             "speedup"],
            rows,
        ),
    )
    assert all(row[3] > 1.0 for row in rows)
    timing = MPITimingPolicy(PLATFORMS["ib"].mpi)
    benchmark.pedantic(
        lambda: run_measurement(2, _measure_epochless, True, {}, timing=timing),
        rounds=2, iterations=1,
    )
