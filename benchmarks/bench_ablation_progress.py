"""Ablation §IV-A / §V-F: asynchronous progress.

ARMCI guarantees asynchronous progress (its CHT); the MPI standard
requires it for RMA, but §V-F notes implementers sometimes gate it
behind a runtime option because of its cost.  This bench quantifies
both sides of that trade on the modeled application:

* **polling-only MPI** (progress off): remote operations stall until
  the busy target re-enters the library — communication latency
  inflates and CCSD time balloons;
* **CHT cost**: the native helper thread consumes a core share, a small
  constant tax on compute.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.mpi.progress import MPI_ASYNC, MPI_POLLING, NATIVE_CHT, ProgressConfig
from repro.nwchem.model import ccsd_time
from repro.simtime import PLATFORMS


def test_async_progress_matters(emit, benchmark):
    rows = []
    for key in ("bgp", "ib", "xt5", "xe6"):
        p = PLATFORMS[key]
        cores = {"bgp": 2048, "ib": 256, "xt5": 4096, "xe6": 2976}[key]
        t_async = ccsd_time(p, "mpi", cores, progress=MPI_ASYNC) / 60
        t_poll = ccsd_time(p, "mpi", cores, progress=MPI_POLLING) / 60
        rows.append([p.name, cores, t_async, t_poll, t_poll / t_async])
    emit(
        "ablation_progress",
        format_table(
            "§V-F ablation — CCSD time (min): MPI async progress on vs "
            "polling-only",
            ["platform", "cores", "async", "polling", "slowdown"],
            rows,
        ),
    )
    # asynchronous progress must matter measurably everywhere, and
    # heavily where communication is the bottleneck (InfiniBand CCSD)
    assert all(row[4] > 1.2 for row in rows)
    assert max(row[4] for row in rows) > 2.0
    benchmark(lambda: ccsd_time(PLATFORMS["ib"], "mpi", 256, progress=MPI_POLLING))


def test_cht_core_tax(emit, benchmark):
    """The native CHT's dedicated-core share is a visible but small tax."""
    p = PLATFORMS["ib"]
    free_cht = ProgressConfig(mode="cht", core_fraction_lost=0.0)
    rows = []
    for cores in (192, 384):
        t_with = ccsd_time(p, "native", cores, progress=NATIVE_CHT) / 60
        t_free = ccsd_time(p, "native", cores, progress=free_cht) / 60
        rows.append([cores, t_with, t_free, t_with / t_free])
    emit(
        "ablation_progress_cht",
        format_table(
            "§IV-A ablation — native CCSD time (min): CHT core share",
            ["cores", "with CHT tax", "free progress", "ratio"],
            rows,
        ),
    )
    for row in rows:
        assert 1.0 < row[3] < 1.15  # a tax, but a modest one
    benchmark(lambda: ccsd_time(p, "native", 256, progress=free_cht))
