"""Ablation: what the strict MPI-2 conflict checking costs the substrate.

Not a paper experiment, but a design-choice audit DESIGN.md calls for:
the simulated window verifies every RMA operation against all open
epochs (the MPI-2 "erroneous program" rules ARMCI-MPI is built to
satisfy).  This bench measures the real Python cost of that machinery —
strict vs permissive windows — for the two regimes that stress it:
many small ops in one epoch, and large indexed datatypes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import mpi
from repro.bench import format_table
from repro.mpi.runtime import Runtime


def _run_many_ops(strict: bool, nops: int) -> None:
    def main(comm):
        local = np.zeros(nops * 16, dtype=np.uint8)
        win = mpi.Win.create(comm, local, strict=strict)
        comm.barrier()
        if comm.rank == 0:
            data = np.ones(8, dtype=np.uint8)
            win.lock(1, mpi.LOCK_EXCLUSIVE)
            for i in range(nops):
                win.put(data, 1, i * 16)  # disjoint: passes the checker
            win.unlock(1)
        comm.barrier()
        win.free()

    Runtime(2, watchdog_s=10.0).spmd(main)


def _run_datatype_op(strict: bool, nsegs: int) -> None:
    def main(comm):
        local = np.zeros(nsegs * 16, dtype=np.uint8)
        win = mpi.Win.create(comm, local, strict=strict)
        comm.barrier()
        if comm.rank == 0:
            t = mpi.indexed_block(8, [i * 16 for i in range(nsegs)], mpi.BYTE).commit()
            data = np.ones(nsegs * 8, dtype=np.uint8)
            win.lock(1, mpi.LOCK_EXCLUSIVE)
            win.put(data, 1, 0, target_datatype=t)
            win.unlock(1)
        comm.barrier()
        win.free()

    Runtime(2, watchdog_s=10.0).spmd(main)


@pytest.mark.parametrize("strict", [True, False], ids=["strict", "permissive"])
def test_many_small_ops(strict, benchmark):
    benchmark.pedantic(lambda: _run_many_ops(strict, 256), rounds=3, iterations=1)


@pytest.mark.parametrize("strict", [True, False], ids=["strict", "permissive"])
def test_one_big_datatype(strict, benchmark):
    benchmark.pedantic(lambda: _run_datatype_op(strict, 4096), rounds=3, iterations=1)


def test_overhead_report(emit, benchmark):
    import time

    rows = []
    for label, fn, arg in (
        ("256 small ops/epoch", _run_many_ops, 256),
        ("1 op, 4096-segment datatype", _run_datatype_op, 4096),
    ):
        t0 = time.perf_counter()
        fn(True, arg)
        t_strict = time.perf_counter() - t0
        t0 = time.perf_counter()
        fn(False, arg)
        t_perm = time.perf_counter() - t0
        rows.append([label, t_strict * 1e3, t_perm * 1e3, t_strict / t_perm])
    emit(
        "ablation_strict_checking",
        format_table(
            "Design audit — strict MPI-2 conflict checking cost "
            "(Python wall ms)",
            ["workload", "strict", "permissive", "ratio"],
            rows,
        ),
    )
    # bounded overhead: the coverage-set checker keeps the worst case
    # (many small ops per epoch) around one order of magnitude, and large
    # datatype ops essentially free — vs ~100x for a naive per-op scan
    assert all(row[3] < 12.0 for row in rows)
    benchmark.pedantic(lambda: _run_many_ops(True, 64), rounds=2, iterations=1)
