"""Figure 3: contiguous get/put/accumulate bandwidth, native vs ARMCI-MPI.

Measured by executing the real ARMCI-MPI (and simulated-native) code on
simulated ranks with each platform's timing policy installed; bandwidth
is modeled bytes/simulated-second, exactly the series Fig. 3 plots for
transfer sizes 2^0 .. 2^25 bytes on all four platforms.
"""

from __future__ import annotations

import pytest

from repro.bench import fig3_series, format_series_table
from repro.simtime import PLATFORMS


@pytest.mark.parametrize("key", ["bgp", "ib", "xt5", "xe6"])
def test_fig3(key, emit, benchmark):
    platform = PLATFORMS[key]
    series = fig3_series(platform, exponents=(0, 25), step=1)
    emit(
        f"fig3_{key}",
        format_series_table(
            f"Figure 3 — {platform.name}: contiguous bandwidth (GB/s)",
            "bytes",
            series,
        ),
    )
    # sanity: six lines, none empty, all finite positive at the top end
    assert len(series) == 6
    for s in series:
        assert len(s.y) == 26
        assert s.y[-1] > 0

    # pytest-benchmark: cost of one measured sweep point (2-rank runtime
    # spin-up + a handful of simulated transfers)
    benchmark.pedantic(
        lambda: fig3_series(platform, exponents=(10, 12), step=2),
        rounds=2,
        iterations=1,
    )
