"""Figure 4: strided bandwidth by ARMCI-MPI method vs native.

For every platform, operation in {get, acc, put}, and contiguous
segment size in {16 B, 1024 B}, sweep the number of segments 1..1024
across the five lines of the paper's legend (Native, Direct,
IOV-Direct, IOV-Batched, IOV-Conservative).  Each line is measured by
running the corresponding ARMCI-MPI configuration end to end on
simulated ranks.
"""

from __future__ import annotations

import pytest

from repro.bench import FIG4_SEG_SIZES, fig4_series, format_series_table
from repro.simtime import PLATFORMS


@pytest.mark.parametrize("key", ["bgp", "ib", "xt5", "xe6"])
@pytest.mark.parametrize("kind", ["get", "acc", "put"])
@pytest.mark.parametrize("seg_size", FIG4_SEG_SIZES)
def test_fig4(key, kind, seg_size, emit, benchmark):
    platform = PLATFORMS[key]
    series = fig4_series(platform, kind, seg_size, exponents=(0, 10))
    emit(
        f"fig4_{key}_{kind}_{seg_size}B",
        format_series_table(
            f"Figure 4 — {platform.name}: strided {kind}, "
            f"SIZE={seg_size}B (GB/s)",
            "nsegs",
            series,
        ),
    )
    assert len(series) == 5
    for s in series:
        assert len(s.y) == 11 and all(y > 0 for y in s.y)

    benchmark.pedantic(
        lambda: fig4_series(platform, kind, seg_size, exponents=(3, 5)),
        rounds=1,
        iterations=1,
    )
