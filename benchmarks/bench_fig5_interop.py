"""Figure 5: registration interoperability on the InfiniBand cluster.

Bandwidth of contiguous gets through ARMCI and MPI when the local
buffer was allocated/registered by the *other* runtime — the cost of
two coexisting registration mechanisms (§VII-B).  Also exercises the
registration-cache dynamics (repeat transfers amortise the pinning
cost; cache eviction brings it back).
"""

from __future__ import annotations

from repro.bench import Series, fig5_series, format_series_table, gbps, pow2_sizes
from repro.simtime import PLATFORMS, RegistrationState


def test_fig5(emit, benchmark):
    platform = PLATFORMS["ib"]
    series = fig5_series(platform, exponents=(2, 22))
    emit(
        "fig5_interop",
        format_series_table(
            "Figure 5 — registration interop, contiguous get (GB/s)",
            "bytes",
            series,
        ),
    )
    by = {s.label: s for s in series}
    # the four curves keep the paper's ordering at large sizes
    assert by["ARMCI-IB, ARMCI Alloc"].y[-1] >= by["MPI, MPI Touch"].y[-1]
    assert by["MPI, MPI Touch"].y[-1] > by["ARMCI-IB, MPI Touch"].y[-1]
    assert by["MPI, ARMCI Alloc"].y[-1] < by["MPI, MPI Touch"].y[-1]

    benchmark(lambda: fig5_series(platform))


def test_fig5_registration_cache_dynamics(emit, benchmark):
    """Extension: repeated transfers vs cache-thrash (not in the paper's
    figure but implied by its on-demand-registration discussion)."""
    model = PLATFORMS["ib"].registration
    sizes = pow2_sizes(13, 22)

    steady = Series(label="registered (steady)")
    first = Series(label="first touch")
    thrash = Series(label="cache thrash")
    for n in sizes:
        st = RegistrationState(model)
        first.add(n, gbps(n, st.transfer_cost(1, n)))
        steady.add(n, gbps(n, st.transfer_cost(1, n)))
        tiny = RegistrationState(model, capacity_pages=max(n // 4096, 1))
        tiny.transfer_cost(1, n)
        tiny.transfer_cost(2, n)  # evicts 1
        thrash.add(n, gbps(n, tiny.transfer_cost(1, n)))
    emit(
        "fig5_cache_dynamics",
        format_series_table(
            "Fig. 5 extension — registration cache dynamics (GB/s)",
            "bytes",
            [steady, first, thrash],
        ),
    )
    assert all(s >= f for s, f in zip(steady.y, first.y))
    assert all(t <= s for t, s in zip(thrash.y, steady.y))
    st = RegistrationState(model)
    benchmark(lambda: st.transfer_cost(1, 1 << 20))
