"""Figure 6: NWChem CCSD and (T) execution time, native vs ARMCI-MPI.

Two parts, per DESIGN.md:

* the **scaling curves** at the paper's real core counts come from the
  analytic model (platform path costs x w5 workload op counts) — CCSD
  on all four platforms, (T) on InfiniBand and XE6, in minutes, exactly
  the series Fig. 6 plots;
* a **functional proxy run** executes the real distributed CCSD(T)
  workload (tiled contractions + NXTVAL over Global Arrays on
  ARMCI-MPI) on simulated ranks, wall-clock-benchmarked and validated
  against the dense reference — evidence the modeled workload is the
  workload we actually run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.armci import Armci
from repro.bench import FIG6_CORES, fig6_platform_series, format_series_table
from repro.mpi.runtime import Runtime
from repro.nwchem import CcsdDriver, CcsdProblem, ring_ccd_dense
from repro.simtime import PLATFORMS


@pytest.mark.parametrize("key", ["bgp", "ib", "xt5", "xe6"])
def test_fig6_ccsd(key, emit, benchmark):
    platform = PLATFORMS[key]
    series = fig6_platform_series(platform, kind="ccsd")
    emit(
        f"fig6_{key}_ccsd",
        format_series_table(
            f"Figure 6 — {platform.name}: CCSD time (min)",
            "cores",
            series,
        ),
    )
    for s in series:
        assert len(s.x) == len(FIG6_CORES[key])
        assert all(t > 0 for t in s.y)
    benchmark(lambda: fig6_platform_series(platform, kind="ccsd"))


@pytest.mark.parametrize("key", ["ib", "xe6"])
def test_fig6_triples(key, emit, benchmark):
    platform = PLATFORMS[key]
    series = fig6_platform_series(platform, kind="triples")
    emit(
        f"fig6_{key}_triples",
        format_series_table(
            f"Figure 6 — {platform.name}: (T) time (min)",
            "cores",
            series,
        ),
    )
    benchmark(lambda: fig6_platform_series(platform, kind="triples"))


def test_fig6_functional_proxy(emit, benchmark):
    """Run the real distributed CCSD proxy end to end (4 simulated ranks)."""
    problem = CcsdProblem(no=2, nv=4, tile=3, iterations=4)

    def run() -> float:
        result = {}

        def main(comm):
            rt = Armci.init(comm)
            driver = CcsdDriver(rt, problem)
            e, _ = driver.solve()
            result["e"] = e
            driver.destroy()

        Runtime(4, watchdog_s=10.0).spmd(main)
        return result["e"]

    energy = benchmark.pedantic(run, rounds=3, iterations=1)
    e_ref, _, _ = ring_ccd_dense(problem.no, problem.nv, problem.iterations)
    assert energy == pytest.approx(e_ref, rel=1e-10)
    emit(
        "fig6_functional_proxy",
        "Functional CCSD proxy (no=2, nv=4, 4 ranks, ARMCI-MPI)\n"
        f"correlation energy: {energy:.12f}\n"
        f"dense reference:    {e_ref:.12f}",
    )
