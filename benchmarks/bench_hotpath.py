"""Hot-path datapath benchmarks (pack/unpack, strided translation,
conflict check, GMR lookup).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py --benchmark-only -s

The speedup test measures every workload against its retained pre-PR
reference implementation in-process, asserts the acceptance floors
(≥5x on 1024-segment uniform pack/unpack, ≥2x on repeated strided
translation), and rewrites ``benchmarks/BENCH_hotpath.json`` so the perf
trajectory is tracked from this PR on.  The fast regression gate over
that file is ``python -m repro.bench --hotpath-smoke``.
"""

from __future__ import annotations

import pytest

from repro.bench import hotpath


@pytest.mark.parametrize("name", hotpath.workload_names())
def test_hotpath_optimized(benchmark, name):
    optimized, _baseline = hotpath.build(name)
    benchmark(optimized)


@pytest.mark.parametrize("name", hotpath.workload_names())
def test_hotpath_reference(benchmark, name):
    _optimized, baseline = hotpath.build(name)
    benchmark(baseline)


def test_hotpath_speedups_and_write_baseline(emit):
    results = hotpath.measure()
    emit("hotpath", hotpath.format_results(results))
    path = hotpath.write_baseline(results)
    assert path.exists()
    for name, floor in hotpath.MIN_SPEEDUP.items():
        assert results[name]["speedup"] >= floor, (
            f"{name}: {results[name]['speedup']:.1f}x below the {floor}x floor"
        )


@pytest.mark.hotpath_smoke
def test_hotpath_smoke():
    """The <60 s regression gate, exposed as a pytest marker too."""
    ok, report = hotpath.smoke()
    print(report)
    assert ok, report
