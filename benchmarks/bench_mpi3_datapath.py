"""MPI-3 flush-datapath benchmarks: deferral + coalescing vs eager epochs.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_mpi3_datapath.py --benchmark-only -s

Three arms per workload, all driving the same nonblocking ARMCI calls:

* ``datapath="mpi2"`` — every nb op completes eagerly inside its own
  lock/unlock epoch (the §V-C discipline: nothing to defer);
* ``datapath="mpi3"`` with ``nb_coalesce_threshold=0`` — ops queue into
  the standing ``lock_all`` epoch and complete at one per-target flush;
* ``datapath="mpi3"`` with adjacency coalescing — a batch of adjacent
  small puts/accs merges into a single transfer before issue.

The speedup test asserts the acceptance floors (mpi3 >= 2x mpi2,
coalesced >= 1.5x uncoalesced, in modeled ops/s) and rewrites
``benchmarks/BENCH_mpi3_datapath.json`` so the perf trajectory is
tracked from this PR on.  The fast gate over that file is
``python -m repro.bench --mpi3-smoke``.
"""

from __future__ import annotations

import pytest

from repro.bench import mpi3_smoke


@pytest.mark.parametrize("workload", mpi3_smoke.WORKLOADS)
@pytest.mark.parametrize("arm", [a[0] for a in mpi3_smoke.ARMS])
def test_mpi3_datapath_arm(benchmark, workload, arm):
    """Wall time of one (workload, arm) measurement on the sim runtime."""
    from repro.bench import run_measurement
    from repro.simtime import PLATFORMS, MPITimingPolicy

    (_, datapath, coalesce), = [a for a in mpi3_smoke.ARMS if a[0] == arm]
    timing = MPITimingPolicy(PLATFORMS[mpi3_smoke.PLATFORM_KEY].mpi)
    benchmark.pedantic(
        lambda: run_measurement(
            2, mpi3_smoke._measure_arm, workload, datapath, coalesce, 4, {},
            timing=timing,
        ),
        rounds=2, iterations=1,
    )


def test_mpi3_datapath_speedups_and_write_baseline(emit):
    results = mpi3_smoke.measure()
    emit("mpi3_datapath", mpi3_smoke.format_results(results))
    path = mpi3_smoke.write_baseline(results)
    assert path.exists()
    for name, r in results.items():
        assert r["mpi3_speedup"] >= mpi3_smoke.MIN_MPI3_SPEEDUP, (
            f"{name}: flush datapath only {r['mpi3_speedup']:.2f}x over "
            f"eager per-op epochs (floor {mpi3_smoke.MIN_MPI3_SPEEDUP}x)"
        )
        assert r["coalesce_speedup"] >= mpi3_smoke.MIN_COALESCE_SPEEDUP, (
            f"{name}: coalescing only {r['coalesce_speedup']:.2f}x over "
            f"uncoalesced (floor {mpi3_smoke.MIN_COALESCE_SPEEDUP}x)"
        )
