"""Proc-backend throughput benchmarks: put/get scaling with CPU cores.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_procs.py --benchmark-only -s

One arm per world size (1, 2, 4 ranks), each spawning real OS processes
(``Runtime(nproc, backend="proc")``) whose windows live in
``multiprocessing.shared_memory``; every rank ring-puts and ring-gets a
1 MiB slab through the ARMCI mpi3 datapath.  Unlike the modeled-clock
benches these are **wall-clock** numbers — the proc backend exists to
escape the GIL, and only a wall clock can see whether it did.

The scaling test asserts the acceptance floor (aggregate throughput
>= 2x from 1 to 4 ranks) on hosts with at least 4 CPUs, records the
measured ratio on smaller hosts, and rewrites
``benchmarks/BENCH_procs.json`` so the trajectory is tracked from this
PR on.  The fast gate over that file is
``python -m repro.bench --procs-smoke``.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import procs_smoke
from repro.mpi.runtime import Runtime


@pytest.mark.parametrize("nproc", procs_smoke.NPROCS)
def test_procs_throughput_arm(benchmark, nproc):
    """Wall time of one ring put/get measurement at a given world size."""
    benchmark.pedantic(
        lambda: Runtime(nproc, backend="proc").spmd(
            procs_smoke._rank_body, procs_smoke.SLAB_BYTES, 4,
            join_timeout=300.0,
        ),
        rounds=2, iterations=1,
    )


def test_procs_scaling_and_write_baseline(emit):
    results = procs_smoke.measure()
    emit("procs", procs_smoke.format_results(results))
    path = procs_smoke.write_baseline(results)
    assert path.exists()
    cores = os.cpu_count() or 1
    if cores >= procs_smoke.MIN_CORES_FOR_GATE:
        assert results["scaling_1_to_4"] >= procs_smoke.MIN_SCALING, (
            f"aggregate throughput scaled only {results['scaling_1_to_4']:.2f}x "
            f"from 1 to 4 ranks on a {cores}-CPU host "
            f"(floor {procs_smoke.MIN_SCALING}x)"
        )
