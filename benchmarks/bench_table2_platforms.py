"""Table II: experimental platforms and system characteristics.

Regenerates the paper's platform table from the encoded models and
benchmarks the platform model primitives (the cost functions every
other bench leans on).
"""

from __future__ import annotations

from repro.bench import format_table
from repro.simtime import PLATFORMS


def test_table2(emit, benchmark):
    headers = ["System", "Nodes", "Cores per Node", "Memory per Node",
               "Interconnect", "MPI Version"]
    rows = [p.table2_row() for p in PLATFORMS.values()]
    emit(
        "table2_platforms",
        format_table("Table II: Experimental platforms", headers, rows),
    )

    # benchmark the primitive everything else calls
    ib = PLATFORMS["ib"]
    result = benchmark(lambda: ib.mpi.xfer_time("acc", 1 << 20, nsegments=64))
    assert result > 0
