"""Shared benchmark fixtures: result printing and persistence.

Every bench regenerates one table or figure of the paper and prints the
series (run with ``pytest benchmarks/ --benchmark-only -s`` to see them
inline); the text is also written to ``benchmarks/output/`` so results
survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def emit():
    """Print a result block and persist it to benchmarks/output/<name>.txt."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
