#!/usr/bin/env python3
"""Dynamic load balancing with NXTVAL (the GA application idiom).

Six simulated ranks process a pool of tasks with wildly uneven costs.
Static round-robin assignment straggles; the NXTVAL shared counter
(atomic fetch-and-add, §V-D) lets fast ranks draw more tasks — the
load-balancing story of every GA application, including NWChem.

Run:  python examples/dynamic_load_balance.py
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.armci import Armci
from repro.ga import TaskPool

NTASKS = 60


def task_cost(t: int) -> int:
    """Synthetic skewed costs: a few tasks are 20x the median."""
    return 1 + (19 if t % 17 == 0 else 0) + (t % 3)


def main(comm):
    armci = Armci.init(comm)
    me = armci.my_id

    # --- dynamic: draw tasks from the shared counter ---------------------
    pool = TaskPool(armci, NTASKS)
    my_tasks, my_cost = [], 0
    for t in pool.tasks():
        # simulate the uneven work by "spending" synthetic cost units;
        # the counter hands the next task to whoever is free first
        my_tasks.append(t)
        my_cost += task_cost(t)
    counts = comm.allgather((me, len(my_tasks), my_cost))
    if me == 0:
        print("dynamic (NXTVAL) assignment:")
        for rank, n, cost in counts:
            print(f"  rank {rank}: {n:2d} tasks, cost {cost:3d}")
        covered = sum(n for _, n, _ in counts)
        assert covered == NTASKS, "every task exactly once"

    # --- static comparison ----------------------------------------------
    static_cost = sum(task_cost(t) for t in range(me, NTASKS, armci.nproc))
    static = comm.allgather(static_cost)
    if me == 0:
        print(f"static round-robin makespan:  {max(static)} cost units")
        # NOTE: in this *functional* demo the dynamic draw order depends
        # on thread scheduling; the balancing effect shows in the modeled
        # application study (Fig. 6), where NXTVAL cost is first-class.
    pool.destroy()
    armci.barrier()


if __name__ == "__main__":
    mpi.spmd_run(6, main)
    print("dynamic_load_balance OK")
