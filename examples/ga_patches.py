#!/usr/bin/env python3
"""Global Arrays on ARMCI-MPI: distributed arrays and patch access.

Demonstrates the Figure 2 scenario: a GA_Put on a patch of a 2-D array
distributed over four processes decomposes into one ARMCI strided
operation per owner — and the rest of GA's daily surface: locality
introspection, direct access, and parallel math (dgemm, dot, transpose).

Run:  python examples/ga_patches.py
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.armci import Armci
from repro.ga import GlobalArray, Patch, dgemm, dot, fill, transpose, zero


def main(comm):
    armci = Armci.init(comm)
    me = armci.my_id

    # an 8x8 double array over a 2x2 process grid
    ga = GlobalArray.create(armci, (8, 8), "f8", name="A")
    zero(ga)

    if me == 0:
        # --- Figure 2: this patch spans all four owners -----------------
        pieces = list(ga.dist.locate(Patch((2, 2), (6, 6))))
        print(f"patch [2:6, 2:6] decomposes into {len(pieces)} strided ops:")
        for piece in pieces:
            print(f"  owner rank {piece.rank}: global {piece.global_patch.lo}"
                  f"..{piece.global_patch.hi}")
        before = armci.stats.puts
        ga.put((2, 2), (6, 6), np.arange(16.0).reshape(4, 4))
        print(f"GA_Put issued {armci.stats.puts - before} ARMCI_PutS calls")
    ga.sync()

    # --- every rank reads the patch one-sidedly -------------------------
    got = ga.get((2, 2), (6, 6))
    assert np.array_equal(got, np.arange(16.0).reshape(4, 4))

    # --- locality: operate on the local block without communication -----
    block = ga.distribution()
    view = ga.access()
    local_sum = view.sum()
    ga.release()
    if me == 0:
        print(f"rank 0 owns block {block.lo}..{block.hi}, local sum {local_sum}")
    ga.sync()

    # --- parallel math: C = A @ B, b = a^T, <a, b> -----------------------
    a = GlobalArray.create(armci, (6, 4), name="a")
    b = GlobalArray.create(armci, (4, 6), name="b")
    c = GlobalArray.create(armci, (6, 6), name="c")
    fill(a, 2.0)
    fill(b, 0.5)
    dgemm(1.0, a, b, 0.0, c)
    total = dot(c, c)
    at = GlobalArray.create(armci, (4, 6), name="at")
    transpose(a, at)
    if me == 0:
        print(f"dgemm: every C element = {c.get((0, 0), (1, 1))[0, 0]} "
              f"(expect {2.0 * 0.5 * 4}), ||C||^2 = {total}")

    for g in (at, c, b, a, ga):
        g.destroy()


if __name__ == "__main__":
    mpi.spmd_run(4, main)
    print("ga_patches OK")
