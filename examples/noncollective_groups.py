#!/usr/bin/env python3
"""Noncollective group creation and group-scoped arrays (§V-A).

MPI-2 communicator creation is collective over the parent — but GA
applications form worker subgroups while other ranks are busy computing.
The paper backs ARMCI's noncollective group creation with the recursive
intercommunicator create-and-merge algorithm (Dinan et al., EuroMPI'11).

Here, ranks {0, 2, 3} build a group and a group-scoped allocation while
rank 1 never participates — it is off doing "DGEMM" the whole time and
synchronises only at the final world barrier.  ARMCI communication on
the group still addresses *absolute* ids, exercising the §V-A rank
translation.

Run:  python examples/noncollective_groups.py
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.armci import Armci

MEMBERS = [0, 2, 3]


def busy_compute() -> float:
    """Rank 1's day job: local math, no ARMCI calls at all."""
    rng = np.random.default_rng(4)
    a = rng.random((64, 64))
    return float(np.linalg.norm(a @ a.T))


def main(comm):
    armci = Armci.init(comm)
    me = armci.my_id

    if me in MEMBERS:
        # --- only the members call this (noncollective!) ----------------
        group = armci.world_group.create_noncollective(MEMBERS)
        print(f"[rank {me}] joined group as group-rank {group.rank} "
              f"of {group.size}")

        # group-scoped allocation: base pointers carry ABSOLUTE ids
        ptrs = armci.malloc(32, group=group)
        assert [p.rank for p in ptrs] == MEMBERS

        # ring put inside the group, addressed by absolute id
        right = ptrs[(group.rank + 1) % group.size]
        armci.put(np.full(4, float(me)), right)
        group.barrier()
        mine = np.zeros(4)
        armci.get(ptrs[group.rank], mine)
        left_abs = MEMBERS[(group.rank - 1) % group.size]
        assert np.all(mine == float(left_abs))
        print(f"[rank {me}] received data from absolute rank {left_abs}")

        group.barrier()
        armci.free(ptrs[group.rank], group=group)
    else:
        # rank 1 computes through the whole episode, no group calls
        result = busy_compute()
        print(f"[rank {me}] stayed out of the group, computed {result:.2f}")

    armci.barrier()  # world-level rendezvous at the end


if __name__ == "__main__":
    mpi.spmd_run(4, main)
    print("noncollective_groups OK")
