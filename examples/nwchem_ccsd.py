#!/usr/bin/env python3
"""The NWChem CCSD(T) proxy on both software stacks (Figure 1 & 6).

Runs the distributed tiled-contraction CCSD proxy — the same get /
DGEMM / accumulate / NXTVAL op mix as NWChem's TCE — twice: once over
ARMCI-MPI (the paper's contribution) and once over the simulated native
ARMCI, then validates both against the dense serial reference and
prints the modeled w5-scale timings of Figure 6.

Run:  python examples/nwchem_ccsd.py
"""

from __future__ import annotations

from repro import mpi
from repro.armci import Armci
from repro.armci_native import NativeArmci
from repro.nwchem import (
    CcsdDriver,
    CcsdProblem,
    ScfDriver,
    ScfProblem,
    ccsd_time,
    ring_ccd_dense,
    scf_dense,
    triples_energy,
    triples_energy_dense,
)
from repro.simtime import PLATFORMS

PROBLEM = CcsdProblem(no=2, nv=6, tile=4, iterations=8)
SCF = ScfProblem(nbasis=8, nocc=2, iterations=10)


def run_stack(flavor: str) -> tuple[float, float, float]:
    """Run the full proxy pipeline: SCF -> CCSD -> (T)."""
    result = {}

    def main(comm):
        rt = Armci.init(comm) if flavor == "mpi" else NativeArmci.init(comm)
        scf = ScfDriver(rt, SCF)
        e_scf, _ = scf.solve()
        scf.destroy()
        driver = CcsdDriver(rt, PROBLEM)
        e_ccsd, trace = driver.solve()
        e_t = triples_energy(rt, driver.t, driver.v, PROBLEM)
        if rt.my_id == 0:
            result["scf"] = e_scf
            result["ccsd"] = e_ccsd
            result["t"] = e_t
            result["trace"] = trace
        driver.destroy()

    mpi.spmd_run(4, main)
    return result["scf"], result["ccsd"], result["t"]


def main() -> None:
    print(f"proxy problem: no={PROBLEM.no}, nv={PROBLEM.nv}, "
          f"tile={PROBLEM.tile}, {PROBLEM.iterations} iterations\n")

    e_scf_ref, _, _ = scf_dense(SCF)
    e_ref, t_ref, trace = ring_ccd_dense(PROBLEM.no, PROBLEM.nv, PROBLEM.iterations)
    from repro.nwchem import coupling_matrix

    et_ref = triples_energy_dense(
        t_ref, coupling_matrix(PROBLEM.no, PROBLEM.nv),
        PROBLEM.no, PROBLEM.nv, PROBLEM.tile,
    )
    print(f"dense reference:   E(SCF) = {e_scf_ref:+.8f}   "
          f"E(CCSD) = {e_ref:+.12f}   E[(T)] = {et_ref:+.12f}")

    for flavor, label in (("mpi", "ARMCI-MPI  "), ("native", "ARMCI-Native")):
        e_scf, e, et = run_stack(flavor)
        print(f"{label}:      E(SCF) = {e_scf:+.8f}   "
              f"E(CCSD) = {e:+.12f}   E[(T)] = {et:+.12f}")
        assert abs(e_scf - e_scf_ref) < 1e-8
        assert abs(e - e_ref) < 1e-10 and abs(et - et_ref) < 1e-10

    # --- the Figure 6 projection at paper scale --------------------------
    print("\nmodeled w5 CCSD time at paper scale (minutes):")
    for key, cores in (("ib", 256), ("xe6", 2976)):
        p = PLATFORMS[key]
        tn = ccsd_time(p, "native", cores) / 60
        tm = ccsd_time(p, "mpi", cores) / 60
        print(f"  {p.name:28s} @{cores:5d} cores: "
              f"native {tn:6.2f}  ARMCI-MPI {tm:6.2f}  (ratio {tm / tn:.2f})")


if __name__ == "__main__":
    main()
    print("\nnwchem_ccsd OK")
