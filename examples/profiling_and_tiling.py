#!/usr/bin/env python3
"""Profiling GA traffic and aligning distributions with tiles.

Two production idioms on top of the reproduction:

1. **Tracing** (`TracingArmci`, the ARMCI_PROFILE equivalent): record
   every one-sided operation a GA workload issues, then read the
   per-op and per-target breakdown — how you find the hot array.
2. **Irregular distribution** (`create_irregular`, NGA_Create_irreg):
   align block boundaries with the application's tile boundaries so
   each tile fetch hits exactly one owner — compare the op counts.

Run:  python examples/profiling_and_tiling.py
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.armci import Armci, TracingArmci
from repro.ga import GlobalArray, create_irregular, zero
from repro.mpi.runtime import Runtime
from repro.simtime import INFINIBAND, MPITimingPolicy

TILES = [(0, 5), (5, 8)]  # row tiles of an 8x8 array


def fetch_all_tiles(ga) -> int:
    """Fetch every (row-tile x full-width) patch; return ops issued."""
    before = len([e for e in getattr(ga.runtime, "events", [])])
    for lo, hi in TILES:
        ga.get((lo, 0), (hi, 8))
    return len([e for e in getattr(ga.runtime, "events", [])]) - before


def main(comm):
    tr = TracingArmci(Armci.init(comm))
    me = tr.my_id

    # --- regular (even) distribution: tiles straddle block boundaries ---
    even = GlobalArray.create(tr, (8, 8), "f8", name="even")
    zero(even)
    if me == 0:
        tr.clear()
        fetch_all_tiles(even)
        even_ops = len(tr.events)
    even.sync()

    # --- tile-aligned irregular distribution -----------------------------
    aligned = create_irregular(tr, (8, 8), [[0, 5], [0]], name="aligned")
    zero(aligned)
    if me == 0:
        tr.clear()
        fetch_all_tiles(aligned)
        aligned_ops = len(tr.events)
        print(f"tile fetches: {even_ops} strided gets on the even "
              f"distribution vs {aligned_ops} on the tile-aligned one")
        assert aligned_ops <= even_ops
    aligned.sync()

    # --- profile a mixed workload ----------------------------------------
    tr.clear()
    ptrs = tr.malloc(256)
    right = (me + 1) % tr.nproc
    for _ in range(4):
        tr.put(np.ones(8), ptrs[right])
    tr.acc(np.ones(4), ptrs[0], scale=2.0)
    out = np.zeros(8)
    tr.get(ptrs[right], out)
    tr.barrier()
    if me == 0:
        print()
        print(tr.render(max_events=4))
    tr.barrier()
    tr.free(ptrs[me])
    aligned.destroy()
    even.destroy()


if __name__ == "__main__":
    rt = Runtime(4)
    rt.timing = MPITimingPolicy(INFINIBAND.mpi)  # modeled durations in the trace
    rt.spmd(main)
    print("\nprofiling_and_tiling OK")
