#!/usr/bin/env python3
"""Quickstart: the ARMCI-MPI runtime in five minutes.

Runs four simulated ranks (the equivalent of ``mpiexec -n 4``) and
walks through the core ARMCI surface the paper implements on MPI RMA:
allocation, one-sided put/get/accumulate, atomic read-modify-write,
mutexes, and direct local access.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.armci import Armci


def main(comm):
    # --- initialise ARMCI-MPI on this communicator (collective) --------
    armci = Armci.init(comm)
    me, nproc = armci.my_id, armci.nproc

    # --- ARMCI_Malloc: one globally accessible slab per process --------
    # returns the base-pointer vector <process id, address> (§IV)
    ptrs = armci.malloc(8 * 8)  # 8 doubles each

    # --- one-sided put: write my rank into my right neighbour ----------
    right = (me + 1) % nproc
    armci.put(np.full(8, float(me)), ptrs[right])
    armci.barrier()

    # --- one-sided get: read my own slab back ---------------------------
    mine = np.zeros(8)
    armci.get(ptrs[me], mine)
    assert np.all(mine == (me - 1) % nproc)
    armci.barrier()  # nobody may modify slabs until all reads are done

    # --- accumulate: everyone adds into rank 0 (atomic element-wise) ----
    armci.acc(np.ones(8), ptrs[0], scale=0.5)
    armci.barrier()
    if me == 0:
        v = np.zeros(8)
        armci.get(ptrs[0], v)
        print(f"[rank 0] after {nproc} accumulates of 0.5: {v[0]} per element")

    # --- atomic fetch-and-add: the NXTVAL pattern (§V-D) ----------------
    counter = armci.malloc(8)  # a dedicated integer slot on each rank
    task = armci.rmw("fetch_and_add_long", counter[0], 1)
    print(f"[rank {me}] drew task id {task}")
    armci.barrier()
    armci.free(counter[me])

    # --- mutexes: the Latham queueing algorithm on RMA (§V-D) -----------
    mutexes = armci.create_mutexes(1)
    mutexes.lock(0, 0)
    # ... critical section against all ranks ...
    mutexes.unlock(0, 0)
    armci.barrier()
    mutexes.destroy()

    # --- direct local access (§V-E): load/store my own slab -------------
    view = armci.access_begin(ptrs[me], 8 * 8, "f8")
    view[:] = -1.0  # plain NumPy stores, protected by an exclusive epoch
    armci.access_end(ptrs[me])

    # --- clean up (collective, with the §V-B leader-election free) ------
    armci.barrier()
    armci.free(ptrs[me])
    if me == 0:
        print(f"stats: {armci.stats.puts} puts, {armci.stats.gets} gets, "
              f"{armci.stats.accs} accs, {armci.stats.rmw_ops} rmws")


if __name__ == "__main__":
    mpi.spmd_run(4, main)
    print("quickstart OK")
