#!/usr/bin/env python3
"""Distributed Jacobi stencil with GA ghost cells (halo exchange).

A 2-D heat-diffusion solve on a Global Array: each process sweeps its
own block, refreshing a one-cell halo with ``update_ghosts`` — the
classic PGAS stencil pattern, and a workload made entirely of the
noncontiguous strided transfers §VI of the paper optimises.

Run:  python examples/stencil_ghosts.py
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.armci import Armci
from repro.ga.ghosts import GhostArray, jacobi_sweep

SHAPE = (16, 16)
STEPS = 30


def main(comm):
    armci = Armci.init(comm)
    me = armci.my_id

    grid = GhostArray.create(armci, SHAPE, width=1, periodic=False)
    # boundary condition: the top edge is held at 1.0
    init = np.zeros(SHAPE)
    init[0, :] = 1.0
    if me == 0:
        grid.ga.put((0, 0), SHAPE, init)
    grid.ga.sync()

    block = grid.ga.distribution()
    for step in range(STEPS):
        grid.update_ghosts()  # halo refresh: strided one-sided gets
        new = jacobi_sweep(grid.local_with_ghosts())
        if block.lo[0] == 0:
            new[0, :] = 1.0  # reassert the hot edge
        grid.store_local(new)

    result = grid.ga.get((0, 0), SHAPE)
    if me == 0:
        # heat must decay monotonically away from the hot edge
        col = result[:, SHAPE[1] // 2]
        assert all(a >= b for a, b in zip(col, col[1:])), col
        print("temperature profile down the centre column:")
        print("  " + "  ".join(f"{v:.3f}" for v in col))
        print(f"strided ops issued by rank 0: "
              f"{armci.stats.gets} gets, {armci.stats.puts} puts")
    grid.ga.sync()
    grid.destroy()


if __name__ == "__main__":
    mpi.spmd_run(4, main)
    print("stencil_ghosts OK")
