#!/usr/bin/env python3
"""The §VI noncontiguous machinery, method by method.

Transfers the same 2-D patch with every ARMCI-MPI strided/IOV method,
shows the auto method's conflict-tree fallback in action, and prints
the modeled bandwidth each method achieves on the InfiniBand platform —
a miniature of Figure 4.

Run:  python examples/strided_methods.py
"""

from __future__ import annotations

import numpy as np

from repro.armci import Armci, ArmciConfig
from repro.bench import gbps, run_measurement
from repro.mpi.runtime import current_proc
from repro.simtime import PLATFORMS, MPITimingPolicy

SEG, NSEGS, STRIDE = 1024, 256, 2048


def measure(comm, config, out):
    armci = Armci.init(comm, config)
    ptrs = armci.malloc(STRIDE * NSEGS + SEG)
    local = np.zeros(STRIDE * NSEGS + SEG, dtype=np.uint8)
    armci.barrier()
    if armci.my_id == 0:
        clock = current_proc().clock
        t0 = clock.now
        armci.put_s(local, [STRIDE], ptrs[1], [STRIDE], [SEG, NSEGS])
        out["time"] = clock.now - t0
        out["iov_stats"] = dict(armci.stats.iov_ops)
    armci.barrier()
    armci.free(ptrs[armci.my_id])


def demo_auto_fallback(comm, out):
    armci = Armci.init(comm, ArmciConfig(iov_method="auto"))
    ptrs = armci.malloc(4096)
    if armci.my_id == 0:
        buf = np.zeros(64, dtype=np.uint8)
        # disjoint destinations -> the conflict tree clears the direct path
        armci.putv(buf, [0, 32], [ptrs[1], ptrs[1] + 64], 32)
        # overlapping destinations -> automatic conservative fallback
        armci.putv(buf, [0, 32], [ptrs[1], ptrs[1] + 16], 32)
        out["stats"] = dict(armci.stats.iov_ops)
    armci.barrier()
    armci.free(ptrs[armci.my_id])


def main() -> None:
    timing = MPITimingPolicy(PLATFORMS["ib"].mpi)
    print(f"strided put: {NSEGS} segments x {SEG} B on the InfiniBand model\n")
    configs = [
        ("direct (subarray datatype)", ArmciConfig(strided_method="direct")),
        ("iov-direct (indexed datatype)",
         ArmciConfig(strided_method="iov", iov_method="direct")),
        ("iov-batched (B=unlimited)",
         ArmciConfig(strided_method="iov", iov_method="batched")),
        ("iov-batched (B=32)",
         ArmciConfig(strided_method="iov", iov_method="batched", iov_batch_size=32)),
        ("iov-conservative (1 epoch/seg)",
         ArmciConfig(strided_method="iov", iov_method="conservative")),
    ]
    for label, cfg in configs:
        out: dict = {}
        run_measurement(2, measure, cfg, out, timing=timing)
        bw = gbps(SEG * NSEGS, out["time"])
        print(f"  {label:34s} {bw:7.3f} GB/s")

    print("\nauto method (§VI-B conflict tree):")
    out: dict = {}
    run_measurement(2, demo_auto_fallback, out, timing=timing)
    for method, (ops, segs, nbytes) in sorted(out["stats"].items()):
        print(f"  routed {ops} op(s) ({segs} segments) via {method}")


if __name__ == "__main__":
    main()
    print("\nstrided_methods OK")
