#!/usr/bin/env python3
"""Three ARMCI implementations, one GA program (Figure 1 + §IX).

The same Global Arrays workload runs unchanged on:

* **ARMCI-MPI** — the paper's contribution (MPI RMA underneath);
* **native ARMCI** — the vendor-tuned baseline (direct RDMA model);
* **data-server ARMCI** — the pre-RMA portable design §IX contrasts
  (per-node server threads over two-sided messaging).

All three must produce bit-identical results; the modeled bandwidth
table shows why the paper's design displaced the data server.

Run:  python examples/three_stacks.py
"""

from __future__ import annotations

import numpy as np

from repro.armci import Armci
from repro.armci_ds import DataServerArmci
from repro.armci_native import NativeArmci
from repro.bench import gbps, run_measurement
from repro.ga import GlobalArray, dgemm, fill, sum_all
from repro.mpi.runtime import current_proc
from repro.simtime import PLATFORMS, MPITimingPolicy

STACKS = ("native", "mpi", "ds")
LABEL = {
    "native": "native ARMCI        ",
    "mpi": "ARMCI-MPI (paper)   ",
    "ds": "data-server ARMCI   ",
}


def workload(comm, flavor, out):
    platform = PLATFORMS["ib"]
    if flavor == "mpi":
        rt = Armci.init(comm)
    elif flavor == "native":
        rt = NativeArmci.init(comm, path=platform.native)
    else:
        rt = DataServerArmci.init(comm, path=platform.native)

    # --- identical GA math on every stack ------------------------------
    a = GlobalArray.create(rt, (12, 12), name="A")
    b = GlobalArray.create(rt, (12, 12), name="B")
    c = GlobalArray.create(rt, (12, 12), name="C")
    fill(a, 1.5)
    fill(b, 2.0)
    dgemm(1.0, a, b, 0.0, c)
    checksum = sum_all(c)

    # --- modeled bandwidth of a 1 MiB get -------------------------------
    ptrs = rt.malloc(1 << 20)
    rt.barrier()
    bw = None
    if rt.my_id == 0:
        clock = current_proc().clock
        t0 = clock.now
        rt.get(ptrs[1], np.zeros(1 << 17), nbytes=1 << 20)
        bw = gbps(1 << 20, clock.now - t0)
    rt.barrier()
    if rt.my_id == 0:
        out["checksum"] = checksum
        out["bw"] = bw
    for g in (c, b, a):
        g.destroy()
    rt.free(ptrs[rt.my_id])
    if flavor == "ds":
        rt.shutdown()


def main() -> None:
    print("stack                 GA dgemm checksum    1 MiB get (GB/s)")
    checksums = set()
    for flavor in STACKS:
        out: dict = {}
        timing = MPITimingPolicy(PLATFORMS["ib"].mpi) if flavor == "mpi" else None
        run_measurement(4, workload, flavor, out, timing=timing)
        print(f"{LABEL[flavor]}  {out['checksum']:18.6f}    {out['bw']:12.3f}")
        checksums.add(out["checksum"])
    assert len(checksums) == 1, "all three stacks must agree bit-for-bit"
    print("\nall three stacks produced identical results")


if __name__ == "__main__":
    main()
    print("three_stacks OK")
