"""Legacy setup shim so ``pip install -e .`` works without PEP-660 support
(this environment has no ``wheel`` package and no network access)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "ARMCI-MPI reproduction: the Global Arrays PGAS model on "
        "(simulated) MPI one-sided communication"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
