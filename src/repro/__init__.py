"""repro — reproduction of "Supporting the Global Arrays PGAS Model Using
MPI One-Sided Communication" (Dinan, Balaji, Hammond, Krishnamoorthy,
Tipparaju; IPDPS 2012).

Layers (bottom to top), mirroring Figure 1(b) of the paper:

``repro.mpi``
    Simulated MPI-2 runtime (+ gated MPI-3 RMA): threads as ranks,
    windows, passive-target locking, derived datatypes, collectives.
``repro.simtime``
    Analytic platform performance models (Table II systems).
``repro.armci``
    **ARMCI-MPI** — the paper's contribution: the ARMCI one-sided
    runtime implemented purely on MPI RMA.
``repro.armci_native``
    Simulated "native" ARMCI baseline (data-server/CHT model).
``repro.ga``
    Global Arrays on top of ARMCI.
``repro.nwchem``
    NWChem CCSD(T) proxy application and scaling model.
``repro.bench``
    Harness that regenerates every figure/table of §VII.
"""

__version__ = "1.0.0"

__all__ = ["mpi", "simtime", "armci", "armci_native", "ga", "nwchem", "bench"]
