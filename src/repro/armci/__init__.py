"""ARMCI-MPI: the ARMCI one-sided runtime implemented on MPI RMA (§V-§VI).

The paper's contribution.  Public surface:

* :class:`Armci` — runtime facade (`init`, `malloc`/`free`, `put`/`get`/
  `acc` (+ `_s` strided and `v` IOV forms), `rmw`, mutexes, DLA,
  access modes, fence/barrier);
* :class:`GlobalPtr` — the ``<process id, address>`` global address;
* :class:`ArmciConfig` — method/batch-size configuration (§VI-A);
* :class:`AccessMode` — §VIII-A access-mode hints;
* :class:`ConflictTree` — §VI-B overlap detection;
* :mod:`~repro.armci.strided` — Table I notation and Algorithm 1.
"""

from .access_modes import AccessMode
from .api import Armci, ArmciStats, NbHandle
from .config import DEFAULT_CONFIG, IOV_METHODS, STRIDED_METHODS, ArmciConfig
from .conflict_tree import ConflictTree, any_overlap_naive, any_overlap_tree
from .gmr import NULL_ADDR, GlobalPtr, Gmr, GmrTable
from .groups import ArmciGroup
from .msg import (
    msg_barrier,
    msg_brdcst,
    msg_dgop,
    msg_igop,
    msg_llgop,
    msg_rcv,
    msg_snd,
)
from .mutexes import MutexSet
from .rmw import FETCH_AND_ADD, FETCH_AND_ADD_LONG, SWAP, SWAP_LONG
from .trace import TraceEvent, TracingArmci
from .strided import (
    StridedSpec,
    algorithm1_iter,
    segment_displacements,
    strided_datatype,
    strided_to_iov,
)

__all__ = [
    "AccessMode",
    "Armci",
    "ArmciConfig",
    "ArmciGroup",
    "ArmciStats",
    "ConflictTree",
    "DEFAULT_CONFIG",
    "FETCH_AND_ADD",
    "FETCH_AND_ADD_LONG",
    "GlobalPtr",
    "Gmr",
    "GmrTable",
    "IOV_METHODS",
    "MutexSet",
    "NbHandle",
    "NULL_ADDR",
    "STRIDED_METHODS",
    "SWAP",
    "SWAP_LONG",
    "TraceEvent",
    "TracingArmci",
    "StridedSpec",
    "algorithm1_iter",
    "any_overlap_naive",
    "any_overlap_tree",
    "segment_displacements",
    "strided_datatype",
    "strided_to_iov",
    "msg_barrier",
    "msg_brdcst",
    "msg_dgop",
    "msg_igop",
    "msg_llgop",
    "msg_rcv",
    "msg_snd",
]
