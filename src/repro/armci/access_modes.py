"""GA/ARMCI access-mode hints (§VIII-A).

By default ARMCI-MPI must assume any two operations may conflict, so
every operation runs in its own *exclusive* epoch (§V-C).  Access modes
are application-level promises about how an allocation will be used in
the current program phase; they are not required for correctness but
unlock shared locks (concurrency) where the promise rules conflicts out:

=================  =============================================================
mode               promise / effect
=================  =============================================================
``DEFAULT``        anything goes → exclusive epochs for every operation
``READ_ONLY``      only get operations until the mode changes → shared epochs
``ACC_ONLY``       only same-op accumulates → shared epochs (MPI permits
                   overlapping same-op accumulates)
``CONFLICT_FREE``  the application guarantees operations never overlap →
                   shared epochs for all operations
=================  =============================================================

Mode changes are collective over the GMR's group and imply a barrier, so
no operation under the old mode can race one under the new mode.
Violations of a promise are *checked* in this implementation (the strict
window still sees a conflicting access and raises), which is stronger
than a real system where the result would be silent corruption.
"""

from __future__ import annotations

import enum

__all__ = ["AccessMode"]


class AccessMode(enum.Enum):
    """Per-GMR access-mode hint (§VIII-A)."""

    DEFAULT = "default"
    READ_ONLY = "read_only"
    ACC_ONLY = "acc_only"
    CONFLICT_FREE = "conflict_free"

    def allows(self, opkind: str) -> bool:
        """Is ``opkind`` (put/get/acc/rmw/dla) permitted under this mode?"""
        if self in (AccessMode.DEFAULT, AccessMode.CONFLICT_FREE):
            return True
        if self is AccessMode.READ_ONLY:
            return opkind == "get"
        if self is AccessMode.ACC_ONLY:
            return opkind == "acc"
        raise AssertionError(f"unhandled mode {self}")  # pragma: no cover

    def lock_mode(self, opkind: str) -> str:
        """MPI lock type an operation should take under this mode."""
        from ..mpi.window import LOCK_EXCLUSIVE, LOCK_SHARED

        if self is AccessMode.DEFAULT:
            return LOCK_EXCLUSIVE
        if opkind in ("rmw", "dla"):
            # read-modify-write and direct access always need exclusivity
            return LOCK_EXCLUSIVE
        return LOCK_SHARED
