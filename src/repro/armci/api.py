"""ARMCI-MPI public API (§V): the ARMCI runtime implemented on MPI RMA.

This is the paper's contribution, assembled:

* allocation / free with the GMR translation table and §V-B leader
  election;
* contiguous put / get / accumulate, each in its own exclusive epoch
  (§V-C) unless an access-mode hint (§VIII-A) relaxes it;
* strided and IOV noncontiguous operations with the conservative /
  batched / direct / auto methods (§VI);
* mutexes (Latham queueing algorithm, §V-D), mutex-based RMW, and the
  MPI-3 fast path when the windows allow it;
* direct local access (access_begin / access_end, §V-E);
* global-buffer staging (§V-E.1);
* location-consistent completion semantics with a no-op fence (§V-F).

Usage (SPMD function run under :func:`repro.mpi.spmd_run`)::

    from repro import mpi
    from repro.armci import Armci

    def main(comm):
        armci = Armci.init(comm)
        ptrs = armci.malloc(1024)
        armci.put(np.arange(4.0), ptrs[1])     # one-sided to process 1
        armci.barrier()
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..mpi import datatypes as dt
from ..mpi.comm import Comm
from ..mpi.errors import ArgumentError
from ..mpi.window import Win
from . import buffers, dla, iov, nbqueue, rmw, strided
from .access_modes import AccessMode
from .config import DEFAULT_CONFIG, ArmciConfig
from .gmr import GlobalPtr, Gmr, GmrTable
from .groups import ArmciGroup
from .mutexes import MutexSet


@dataclass
class ArmciStats:
    """Operation counters (thread-safe); used by tests and benches."""

    puts: int = 0
    gets: int = 0
    accs: int = 0
    bytes_put: int = 0
    bytes_got: int = 0
    bytes_acc: int = 0
    staged_copies: int = 0
    rmw_ops: int = 0
    fences: int = 0
    iov_ops: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def count(self, kind: str, nbytes: int) -> None:
        with self._lock:
            if kind == "put":
                self.puts += 1
                self.bytes_put += nbytes
            elif kind == "get":
                self.gets += 1
                self.bytes_got += nbytes
            else:
                self.accs += 1
                self.bytes_acc += nbytes

    def count_iov(self, method: str, nsegments: int, seg_bytes: int) -> None:
        with self._lock:
            ops, segs, nbytes = self.iov_ops.get(method, (0, 0, 0))
            self.iov_ops[method] = (
                ops + 1,
                segs + nsegments,
                nbytes + nsegments * seg_bytes,
            )


class NbHandle:
    """Handle for a nonblocking ARMCI operation.

    Two completion regimes share this class:

    * **eager (mpi2 datapath)** — the transfer happened at issue; only a
      staged-get write-back (``finish``) may remain.  ``test`` performs
      it (exactly once, however often it is polled) and reports True.
    * **deferred (mpi3 datapath)** — the operation sits in the
      :class:`~repro.armci.nbqueue.NbQueue` until a completion point;
      ``test`` reports the queue's real state without forcing it, and
      ``wait`` drains the target via ``waiter``.

    A failure recorded at drain time (``_fail``) is re-raised by every
    subsequent ``wait`` on this handle; ``kind``/``target`` identify the
    operation in aggregate errors (see :meth:`Armci.wait_all`).
    """

    __slots__ = ("kind", "target", "_finish", "_waiter", "_done", "_error")

    def __init__(self, finish=None, kind: str = "", target: int = -1, waiter=None):
        self._finish = finish
        self._waiter = waiter
        self._done = finish is None and waiter is None
        self._error: "BaseException | None" = None
        self.kind = kind
        self.target = target

    def _complete(self) -> None:
        """Run the completion callback exactly once and mark done."""
        if self._done:
            return
        self._done = True
        fin, self._finish = self._finish, None
        if fin is not None:
            fin()

    def _fail(self, exc: BaseException) -> None:
        self._done = True
        self._finish = None
        self._error = exc

    def test(self) -> bool:
        if self._done:
            return True
        if self._waiter is not None:
            return False  # still queued; only a drain completes it
        self._complete()
        return True

    def wait(self) -> None:
        if not self._done and self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            try:
                waiter()
            except Exception:
                # the drain surfaces its own first error; this handle's
                # failure (if it is the failing one) lands in _error
                if self._error is None:
                    raise
        if not self._done:
            self._complete()
        if self._error is not None:
            raise self._error


#: datapath modes selectable at :meth:`Armci.init`
DATAPATHS = ("mpi2", "mpi3")


class Armci:
    """One ARMCI-MPI runtime instance (shared object across rank threads)."""

    def __init__(
        self,
        world: Comm,
        config: ArmciConfig,
        strict: bool,
        mpi3: bool,
        datapath: str = "mpi2",
    ):
        if datapath not in DATAPATHS:
            raise ArgumentError(
                f"datapath must be one of {DATAPATHS}, got {datapath!r}"
            )
        self.world = world
        self.config = config
        self.strict = strict
        #: windows expose the MPI-3 surface (lock_all/flush/fetch_op)
        self.mpi3 = mpi3 or datapath == "mpi3"
        #: "mpi2" = one epoch per op (§V-C); "mpi3" = standing lock_all
        #: per GMR with per-target flush completion and the nb queue
        self.datapath = datapath
        self.table = GmrTable()
        self.world_group = ArmciGroup(world, world)
        self.stats = ArmciStats()
        self._dla = dla.DlaState()
        self._gmr_mutexes: dict[int, MutexSet] = {}
        self._nbq = nbqueue.NbQueue(self)
        self._finalized = False

    @property
    def _flush_mode(self) -> bool:
        return self.datapath == "mpi3"

    # -- lifecycle -----------------------------------------------------------------
    @classmethod
    def init(
        cls,
        comm: Comm,
        config: ArmciConfig = DEFAULT_CONFIG,
        strict: bool = True,
        mpi3: bool = False,
        datapath: str = "mpi2",
    ) -> "Armci":
        """Collective initialisation; returns one shared runtime object.

        ``strict`` follows the simulated window's checking mode: ARMCI-MPI
        is designed to be correct under the strictest MPI-2 semantics, so
        leave it on except when modeling coherent-system shortcuts.

        ``datapath`` selects the completion discipline: ``"mpi2"`` is the
        paper's one-exclusive-epoch-per-op design (§V-C); ``"mpi3"``
        opens one ``lock_all`` per GMR at allocation and completes every
        operation with a per-target ``flush``, uses native
        ``fetch_and_op`` for RMW, and defers ``nb_*`` operations through
        the coalescing queue (§VIII-B / the "Quo Vadis" idiom).  The
        legacy ``mpi3=True`` flag only enables the MPI-3 window surface
        (ablation use); ``datapath="mpi3"`` implies it.
        """
        if config.coherent_shortcut and strict:
            raise ArgumentError(
                "coherent_shortcut requires strict=False windows "
                "(it deliberately permits concurrent access, §V-E.1)"
            )
        actual_backend = comm.runtime.backend.name
        if config.backend is not None and config.backend != actual_backend:
            raise ArgumentError(
                f"ArmciConfig.backend={config.backend!r} but the runtime "
                f"uses the {actual_backend!r} backend (see docs/backends.md)"
            )
        world = comm.dup()
        with world.runtime.cond:
            return world._coll.run(
                world.rank,
                "armci_init",
                None,
                lambda _c: cls(world, config, strict, mpi3, datapath),
            )

    def finalize(self) -> None:
        """Collective shutdown; frees all remaining allocations."""
        self.barrier()
        for gmr in list(self.table.gmrs):
            my = gmr.group.rank
            ptr = gmr.base_ptrs()[my]
            self.free(None if ptr.is_null else ptr, group=gmr.group)
        if self._flush_mode:
            # drained-queue-at-finalize invariant: every queue must be
            # empty now; leftovers are reported through the sanitizer
            self._nbq.audit_finalize()
        self._finalized = True

    @property
    def my_id(self) -> int:
        """Absolute ARMCI id of the calling process."""
        return self.world.rank

    @property
    def nproc(self) -> int:
        return self.world.size

    # -- memory management (§V-B) ---------------------------------------------------
    def malloc(
        self, nbytes: int, group: "ArmciGroup | None" = None
    ) -> list[GlobalPtr]:
        """Collective allocation; returns base pointers for every member.

        Zero-size requests yield NULL pointers, as §V-B describes.
        """
        if nbytes < 0:
            raise ArgumentError(f"negative allocation {nbytes}")
        group = group or self.world_group
        local = np.zeros(nbytes, dtype=np.uint8) if nbytes else None
        win = Win.create(group.comm, local, strict=self.strict, mpi3=self.mpi3)
        mutex = MutexSet.create(group.comm, 1)  # the §V-D RMW mutex
        my_abs = group.absolute_id(group.rank)
        contribution = (group.rank, my_abs, nbytes)

        def build(contrib: dict) -> Gmr:
            sizes = [0] * group.size
            bases = [0] * group.size
            for _, (grank, absid, n) in contrib.items():
                sizes[grank] = n
                bases[grank] = self.table.allocate_va(
                    absid, n, self.config.alignment
                )
            gmr = Gmr(win, group, bases, sizes)
            self.table.register(gmr)
            self._gmr_mutexes[gmr.gmr_id] = mutex
            return gmr

        with self.world.runtime.cond:
            gmr = group.comm._coll.run(group.rank, "armci_malloc", contribution, build)
        if self._flush_mode:
            # the standing epoch of the MPI-3 datapath: opened once per
            # member here, closed only at free (shared mode, so every
            # member's epoch coexists)
            gmr.win.lock_all()
        return gmr.base_ptrs()

    def free(self, ptr: "GlobalPtr | None", group: "ArmciGroup | None" = None) -> None:
        """Collective free with §V-B leader election.

        Members whose slice was zero-size pass ``None`` (NULL); a leader
        holding a non-NULL pointer is elected by a max-reduction on
        ranks, broadcasts its ``(leader id, address)`` pair, and every
        member resolves the same GMR from the translation table.
        """
        group = group or self.world_group
        has_ptr = ptr is not None and not ptr.is_null
        vote = np.array([group.rank if has_ptr else -1], dtype=np.int64)
        leader = int(group.comm.allreduce(vote, op="MPI_MAX")[0])
        if leader < 0:
            raise ArgumentError(
                "ARMCI_Free: every member passed NULL; nothing identifies "
                "the allocation"
            )
        pair = (ptr.rank, ptr.addr) if group.rank == leader else None
        leader_abs, addr = group.comm.bcast_obj(pair, root=leader)
        gmr = self.table.lookup(leader_abs, addr)
        if gmr is None:
            raise ArgumentError(
                f"ARMCI_Free: address {addr:#x} on process {leader_abs} is "
                "not an active allocation"
            )
        if has_ptr and self.table.lookup_ptr(ptr) is not gmr:
            raise ArgumentError(
                f"ARMCI_Free: {ptr} does not belong to the allocation being "
                f"freed (GMR {gmr.gmr_id})"
            )
        # Abort consistency: the window free and the translation-table
        # unregister commit in ONE collective compute step (Win.free_with).
        # If a member dies before the rendezvous completes, the collective
        # fails typed on every survivor and *neither* happens — the GMR
        # stays registered, the window stays usable, and a later retry or
        # finalize sees consistent state.
        def drop():
            self.table.unregister(gmr)
            gmr.freed = True
            return self._gmr_mutexes.pop(gmr.gmr_id, None)

        if self._flush_mode:
            # complete anything still queued, then close the standing
            # epoch: Win.free refuses while access epochs are open, and
            # the free_with rendezvous guarantees every member has
            # reached this point (hence unlocked) before the window dies
            self._nbq.drain_gmr(gmr)
            gmr.win.unlock_all()
            try:
                mutex = gmr.win.free_with(drop)
            except BaseException:
                # abort consistency: the window survived (e.g. a typed
                # collective failure) — restore the standing epoch so
                # the GMR stays usable for retry / recovery
                try:
                    gmr.win.lock_all()
                except Exception:
                    pass  # window already invalidated; original error wins
                raise
        else:
            mutex = gmr.win.free_with(drop)
        if mutex is not None:
            mutex.destroy()

    def _gmr_mutex(self, gmr: Gmr) -> MutexSet:
        return self._gmr_mutexes[gmr.gmr_id]

    # -- contiguous one-sided operations (§V-C, §V-F) ---------------------------------
    def _check_mode(self, gmr: Gmr, kind: str) -> None:
        """§VIII-A access-mode gate, sanitizer-aware."""
        if gmr.access_mode.allows(kind):
            return
        san = self.world.runtime.sanitizer
        if san is not None:
            san.on_mode_violation(self.my_id, kind, gmr)
        raise ArgumentError(
            f"{kind} on GMR {gmr.gmr_id} violates access mode "
            f"{gmr.access_mode.value} (§VIII-A)"
        )

    def _target(self, ptr: GlobalPtr, kind: str) -> tuple[Gmr, int, int, str]:
        gmr = self.table.require(ptr)
        self._check_mode(gmr, kind)
        win_rank, disp = gmr.displacement(ptr)
        return gmr, win_rank, disp, gmr.access_mode.lock_mode(kind)

    @contextmanager
    def _op_epoch(self, gmr: Gmr, win_rank: int, lock_mode: str):
        """Completion discipline for one blocking operation.

        mpi2: the §V-C pattern — a lock/unlock epoch of its own.
        mpi3: drain queued nb ops to the target (per-location program
        order), issue into the GMR's standing ``lock_all`` epoch, and
        complete with a per-target ``flush``.
        """
        if self._flush_mode:
            self._nbq.drain(gmr, win_rank)
            try:
                yield
            finally:
                gmr.win.flush(win_rank)
        else:
            gmr.win.lock(win_rank, lock_mode)
            try:
                yield
            finally:
                gmr.win.unlock(win_rank)

    def put(
        self, src: "np.ndarray | GlobalPtr", dst: GlobalPtr, nbytes: "int | None" = None
    ) -> None:
        """Contiguous one-sided put; complete (locally and remotely) on return."""
        if nbytes is None:
            nbytes = _infer_nbytes(src)
        gmr, win_rank, disp, lock_mode = self._target(dst, "put")
        lb = buffers.resolve_local(self, src, nbytes, "out")
        with self._op_epoch(gmr, win_rank, lock_mode):
            gmr.win.put(lb.data, win_rank, disp)
        self.stats.count("put", nbytes)

    def get(
        self, src: GlobalPtr, dst: "np.ndarray | GlobalPtr", nbytes: "int | None" = None
    ) -> None:
        """Contiguous one-sided get; data is in ``dst`` on return."""
        if nbytes is None:
            nbytes = _infer_nbytes(dst)
        gmr, win_rank, disp, lock_mode = self._target(src, "get")
        lb = buffers.resolve_local(self, dst, nbytes, "in")
        with self._op_epoch(gmr, win_rank, lock_mode):
            gmr.win.get(lb.data, win_rank, disp)
        lb.finish()
        self.stats.count("get", nbytes)

    def acc(
        self,
        src: "np.ndarray | GlobalPtr",
        dst: GlobalPtr,
        scale: float = 1.0,
        nbytes: "int | None" = None,
        dtype: "np.dtype | str | None" = None,
    ) -> None:
        """Accumulate ``dst += scale * src`` element-wise (ARMCI ACC_DBL & co).

        The origin scales its contribution and ARMCI-MPI issues an
        ``MPI_SUM`` accumulate, the mapping §V-F relies on.  Atomic
        element-wise with respect to other accumulates of the same type.
        """
        if dtype is None:
            if isinstance(src, GlobalPtr):
                raise ArgumentError("acc from a global pointer requires dtype=")
            dtype = np.asarray(src).dtype
        dtype = np.dtype(dtype)
        if nbytes is None:
            nbytes = _infer_nbytes(src)
        if nbytes % dtype.itemsize:
            raise ArgumentError(
                f"acc of {nbytes} bytes is not a whole number of {dtype}"
            )
        gmr, win_rank, disp, lock_mode = self._target(dst, "acc")
        lb = buffers.resolve_local(self, src, nbytes, "out")
        contrib = lb.data.view(dtype)
        if scale != 1.0:
            contrib = contrib * dtype.type(scale)
        with self._op_epoch(gmr, win_rank, lock_mode):
            gmr.win.accumulate(contrib, win_rank, disp, op="MPI_SUM")
        self.stats.count("acc", nbytes)

    # -- nonblocking variants ------------------------------------------------------
    def nb_put(self, src, dst: GlobalPtr, nbytes: "int | None" = None) -> NbHandle:
        """Nonblocking put.

        mpi2: completes eagerly (§V-C leaves nothing to defer).
        mpi3: the contribution is snapshotted and queued; the target is
        untouched until a completion point drains the queue.
        """
        if nbytes is None:
            nbytes = _infer_nbytes(src)
        if not self._flush_mode:
            self.put(src, dst, nbytes)
            return NbHandle(kind="put", target=dst.rank)
        gmr, win_rank, disp, _ = self._target(dst, "put")
        lb = buffers.resolve_local(self, src, nbytes, "out")
        data = lb.data if lb.staged else lb.data.copy()
        self.stats.count("put", nbytes)
        return self._nbq.enqueue("put", gmr, win_rank, disp, nbytes, data=data)

    def nb_get(self, src: GlobalPtr, dst, nbytes: "int | None" = None) -> NbHandle:
        """Nonblocking get: the destination buffer is valid after wait().

        mpi2: the transfer is performed here (it completes eagerly in
        this substrate), but when the destination is global memory the
        §V-E.1 write-back is deferred to wait()/test(), so peeking early
        shows stale data — same contract as real ARMCI.
        mpi3: the whole operation is queued; the destination fills when
        the queue drains.
        """
        if nbytes is None:
            nbytes = _infer_nbytes(dst)
        gmr, win_rank, disp, lock_mode = self._target(src, "get")
        lb = buffers.resolve_local(self, dst, nbytes, "in")
        if self._flush_mode:
            self.stats.count("get", nbytes)
            return self._nbq.enqueue("get", gmr, win_rank, disp, nbytes, lb=lb)
        gmr.win.lock(win_rank, lock_mode)
        try:
            gmr.win.get(lb.data, win_rank, disp)
        finally:
            gmr.win.unlock(win_rank)
        self.stats.count("get", nbytes)
        if lb.writeback is None:
            return NbHandle(kind="get", target=src.rank)
        return NbHandle(finish=lb.finish, kind="get", target=src.rank)

    def nb_acc(
        self, src, dst: GlobalPtr, scale: float = 1.0,
        nbytes: "int | None" = None, dtype=None,
    ) -> NbHandle:
        """Nonblocking accumulate; deferred and coalescible under mpi3."""
        if not self._flush_mode:
            self.acc(src, dst, scale, nbytes, dtype)
            return NbHandle(kind="acc", target=dst.rank)
        if dtype is None:
            if isinstance(src, GlobalPtr):
                raise ArgumentError("acc from a global pointer requires dtype=")
            dtype = np.asarray(src).dtype
        dtype = np.dtype(dtype)
        if nbytes is None:
            nbytes = _infer_nbytes(src)
        if nbytes % dtype.itemsize:
            raise ArgumentError(
                f"acc of {nbytes} bytes is not a whole number of {dtype}"
            )
        gmr, win_rank, disp, _ = self._target(dst, "acc")
        lb = buffers.resolve_local(self, src, nbytes, "out")
        contrib = lb.data.view(dtype)
        # snapshot (and scale) the contribution at enqueue time
        if scale != 1.0:
            contrib = contrib * dtype.type(scale)
        else:
            contrib = contrib.copy()
        self.stats.count("acc", nbytes)
        return self._nbq.enqueue(
            "acc", gmr, win_rank, disp, nbytes, data=contrib, acc_dtype=dtype
        )

    @staticmethod
    def wait(handle: NbHandle) -> None:
        handle.wait()

    @staticmethod
    def wait_all(handles: Sequence[NbHandle]) -> None:
        """Complete every handle; no failure is silently dropped.

        All handles are waited even when an early one fails; the *first*
        failure is then re-raised, annotated with its op kind/target and
        the count of additional failed handles.
        """
        failures: list[tuple[NbHandle, BaseException]] = []
        for h in handles:
            try:
                h.wait()
            except Exception as exc:
                failures.append((h, exc))
        if failures:
            h0, exc0 = failures[0]
            more = (
                f" (+{len(failures) - 1} more failed handles)"
                if len(failures) > 1
                else ""
            )
            note = f"wait_all: nb_{h0.kind or 'op'} to target {h0.target} failed{more}"
            if hasattr(exc0, "add_note"):
                exc0.add_note(note)
            raise exc0

    # -- completion / consistency (§V-F) ----------------------------------------------
    def fence(self, proc: int) -> None:
        """Remote completion for one target.

        mpi2: a no-op — every operation is issued in its own epoch and
        has completed remotely when it returned (§V-F), so Fence has
        nothing to wait for; the paper's exact argument.
        mpi3: drains this origin's queued nb ops addressed to ``proc``
        (blocking ops still complete at their own per-op flush).
        """
        if not 0 <= proc < self.nproc:
            raise ArgumentError(f"fence target {proc} not in [0, {self.nproc})")
        if self._flush_mode:
            self._nbq.drain_target(proc)
        self.stats.fences += 1

    def fence_all(self) -> None:
        """Remote completion for all targets (mpi2: a no-op, §V-F)."""
        if self._flush_mode:
            self._nbq.drain_all()
        self.stats.fences += 1

    def barrier(self) -> None:
        """ARMCI_Barrier: fence to all targets + process barrier."""
        self.fence_all()
        self.world.barrier()

    # -- strided operations (§VI-C) ------------------------------------------------
    def put_s(
        self,
        src: np.ndarray,
        src_strides: Sequence[int],
        dst: GlobalPtr,
        dst_strides: Sequence[int],
        count: Sequence[int],
    ) -> None:
        """ARMCI_PutS: strided put (Table I notation; byte strides/counts)."""
        self._strided_op("put", src, src_strides, dst, dst_strides, count)

    def get_s(
        self,
        src: GlobalPtr,
        src_strides: Sequence[int],
        dst: np.ndarray,
        dst_strides: Sequence[int],
        count: Sequence[int],
    ) -> None:
        """ARMCI_GetS: strided get."""
        # note: for get, the REMOTE side is src; local strides are dst's
        self._strided_op("get", dst, dst_strides, src, src_strides, count)

    def acc_s(
        self,
        src: np.ndarray,
        src_strides: Sequence[int],
        dst: GlobalPtr,
        dst_strides: Sequence[int],
        count: Sequence[int],
        scale: float = 1.0,
        dtype: "np.dtype | str" = "f8",
    ) -> None:
        """ARMCI_AccS: strided accumulate (dst += scale * src per element)."""
        self._strided_op(
            "acc", src, src_strides, dst, dst_strides, count,
            scale=scale, acc_dtype=np.dtype(dtype),
        )

    def _strided_op(
        self,
        kind: str,
        local: np.ndarray,
        local_strides: Sequence[int],
        remote: GlobalPtr,
        remote_strides: Sequence[int],
        count: Sequence[int],
        scale: float = 1.0,
        acc_dtype: "np.dtype | None" = None,
    ) -> None:
        spec = strided.StridedSpec.make(
            list(count), list(local_strides), list(remote_strides)
        )
        if spec.total_bytes == 0:
            return
        local_view = _as_flat_bytes(local)
        span = _strided_span(local_strides, count)
        if local_view.nbytes < span:
            raise ArgumentError(
                f"local buffer of {local_view.nbytes}B cannot hold the "
                f"{span}B strided footprint"
            )
        if self.config.strided_method == "iov":
            loc_disps = strided.segment_displacements(list(local_strides), list(count))
            rem_disps = strided.segment_displacements(list(remote_strides), list(count))
            self._iov_op(
                kind, local_view, loc_disps,
                remote.rank, remote.addr + rem_disps,
                spec.seg_bytes, scale=scale, acc_dtype=acc_dtype,
            )
            return
        # direct method: one subarray/hindexed datatype per side (§VI-C)
        gmr = self.table.require(remote)
        self._check_mode(gmr, kind)
        win_rank, disp = gmr.displacement(remote)
        origin_t = strided.strided_datatype(list(local_strides), list(count))
        target_t = strided.strided_datatype(list(remote_strides), list(count))
        lock_mode = gmr.access_mode.lock_mode(kind)
        data, writeback = self._stage_strided_local(kind, local_view, origin_t, span)
        if kind == "acc":
            data, origin_used = self._scaled_origin(
                data, origin_t, scale, acc_dtype, spec
            )
        else:
            origin_used = origin_t
        with self._op_epoch(gmr, win_rank, lock_mode):
            if kind == "put":
                gmr.win.put(
                    data, win_rank, disp,
                    target_datatype=target_t, origin_datatype=origin_used,
                )
            elif kind == "get":
                gmr.win.get(
                    data, win_rank, disp,
                    target_datatype=target_t, origin_datatype=origin_used,
                )
            else:
                acc_t = dt.from_numpy_dtype(acc_dtype)
                target_acc = _with_base(target_t, acc_t)
                gmr.win.accumulate(
                    data, win_rank, disp, op="MPI_SUM",
                    target_datatype=target_acc, origin_datatype=origin_used,
                )
        if writeback is not None:
            writeback()
        self.stats.count(kind, spec.total_bytes)

    def _stage_strided_local(self, kind, local_view, origin_t, span):
        """§V-E.1 staging for strided local buffers that alias a window."""
        region = local_view[:span]
        gmr = self.table.find_local_buffer(self.my_id, region)
        if gmr is None or self.config.coherent_shortcut:
            return region, None
        my_rank = gmr.group.rank
        if kind in ("put", "acc"):
            with self._stage_epoch(gmr, my_rank):
                temp = region.copy()
            self.stats.staged_copies += 1
            return temp, None
        temp = np.zeros(span, dtype=np.uint8)

        def writeback() -> None:
            packed = origin_t.pack(temp)
            with self._stage_epoch(gmr, my_rank):
                origin_t.unpack(region, packed)
            self.stats.staged_copies += 1

        return temp, writeback

    @contextmanager
    def _stage_epoch(self, gmr: Gmr, my_rank: int):
        """Self-access discipline for a §V-E.1 staging copy.

        mpi2: the exclusive self-lock the paper prescribes.  mpi3: the
        standing lock_all epoch already grants unified-model local
        access; completing queued/outstanding ops to self with a flush
        before touching the slab is all the ordering needed.
        """
        if self._flush_mode:
            self._nbq.drain(gmr, my_rank)
            gmr.win.flush(my_rank)
            yield
        else:
            gmr.win.lock(my_rank, "exclusive")
            try:
                yield
            finally:
                gmr.win.unlock(my_rank)

    @staticmethod
    def _scaled_origin(data, origin_t, scale, acc_dtype, spec):
        """Scale the origin contribution without touching the user buffer.

        Packs the strided origin into a contiguous, typed, scaled copy;
        the origin datatype then becomes trivially contiguous.
        """
        packed = origin_t.pack(data).view(acc_dtype)
        if scale != 1.0:
            packed = packed * acc_dtype.type(scale)
        else:
            packed = packed.copy()
        return packed, None  # None origin datatype = contiguous

    # -- IOV operations (§VI-A) ------------------------------------------------------
    def putv(
        self,
        local: np.ndarray,
        loc_offsets: Sequence[int],
        dst: "Sequence[GlobalPtr] | tuple[int, np.ndarray]",
        seg_bytes: int,
        method: "str | None" = None,
    ) -> None:
        """ARMCI_PutV: scatter equal-size segments to one remote process."""
        rank, addrs = _iov_remote(dst)
        self._iov_op(
            "put", _as_flat_bytes(local), np.asarray(loc_offsets, dtype=np.int64),
            rank, addrs, seg_bytes, method=method,
        )

    def getv(
        self,
        src: "Sequence[GlobalPtr] | tuple[int, np.ndarray]",
        local: np.ndarray,
        loc_offsets: Sequence[int],
        seg_bytes: int,
        method: "str | None" = None,
    ) -> None:
        """ARMCI_GetV: gather equal-size segments from one remote process."""
        rank, addrs = _iov_remote(src)
        self._iov_op(
            "get", _as_flat_bytes(local), np.asarray(loc_offsets, dtype=np.int64),
            rank, addrs, seg_bytes, method=method,
        )

    def accv(
        self,
        local: np.ndarray,
        loc_offsets: Sequence[int],
        dst: "Sequence[GlobalPtr] | tuple[int, np.ndarray]",
        seg_bytes: int,
        scale: float = 1.0,
        dtype: "np.dtype | str" = "f8",
        method: "str | None" = None,
    ) -> None:
        """ARMCI_AccV: accumulate equal-size segments into one remote process."""
        rank, addrs = _iov_remote(dst)
        self._iov_op(
            "acc", _as_flat_bytes(local), np.asarray(loc_offsets, dtype=np.int64),
            rank, addrs, seg_bytes,
            scale=scale, acc_dtype=np.dtype(dtype), method=method,
        )

    def _iov_op(
        self,
        kind: str,
        local_view: np.ndarray,
        loc_offsets: np.ndarray,
        rank: int,
        rem_addrs: np.ndarray,
        seg_bytes: int,
        scale: float = 1.0,
        acc_dtype: "np.dtype | None" = None,
        method: "str | None" = None,
    ) -> None:
        loc_offsets = np.asarray(loc_offsets, dtype=np.int64)
        rem_addrs = np.asarray(rem_addrs, dtype=np.int64)
        data = local_view
        writeback = None
        alias_gmr = self.table.find_local_buffer(self.my_id, local_view)
        if alias_gmr is not None and not self.config.coherent_shortcut:
            my_rank = alias_gmr.group.rank
            if kind in ("put", "acc"):
                with self._stage_epoch(alias_gmr, my_rank):
                    data = local_view.copy()
                self.stats.staged_copies += 1
            else:
                data = np.zeros(local_view.nbytes, dtype=np.uint8)

                def writeback() -> None:
                    with self._stage_epoch(alias_gmr, my_rank):
                        for off in loc_offsets.tolist():
                            local_view[off : off + seg_bytes] = data[off : off + seg_bytes]
                    self.stats.staged_copies += 1

        if kind == "acc" and scale != 1.0:
            data = data.copy()
            for off in loc_offsets.tolist():
                seg = data[off : off + seg_bytes].view(acc_dtype)
                seg *= acc_dtype.type(scale)
        req = iov.IovRequest(
            kind=kind, local=data, loc_offsets=loc_offsets,
            rank=rank, rem_addrs=rem_addrs, seg_bytes=seg_bytes,
            acc_dtype=acc_dtype,
        )
        iov.execute(self, req, method=method)
        if writeback is not None:
            writeback()
        self.stats.count(kind, int(seg_bytes * len(loc_offsets)))

    # -- synchronisation objects (§V-D) -------------------------------------------
    def create_mutexes(self, count: int) -> MutexSet:
        """Collective: create ``count`` mutexes hosted on every process."""
        return MutexSet.create(self.world, count)

    def rmw(self, op: str, ptr: GlobalPtr, value: int) -> int:
        """ARMCI_Rmw: atomic fetch-and-add / swap; returns the old value.

        mpi3 datapath: a single native ``fetch_and_op`` inside the
        standing lock_all epoch, completed by one flush — no mutex, no
        epochs (§VIII-B).  Legacy ``mpi3=True`` keeps the per-call
        shared-lock variant; plain mpi2 uses the §V-D mutex protocol.
        """
        if self._flush_mode:
            return rmw.rmw_flush(self, op, ptr, value)
        if self.mpi3:
            return rmw.rmw_mpi3(self, op, ptr, value)
        return rmw.rmw_mutex_based(self, op, ptr, value)

    # -- direct local access (§V-E) ----------------------------------------------
    def access_begin(
        self, ptr: GlobalPtr, nbytes: int, dtype: "np.dtype | str" = np.uint8
    ) -> np.ndarray:
        """ARMCI_Access_begin: exclusive direct access to local global data."""
        return dla.access_begin(self, ptr, nbytes, dtype)

    def access_end(self, ptr: GlobalPtr) -> None:
        """ARMCI_Access_end: release direct access."""
        dla.access_end(self, ptr)

    # -- access-mode hints (§VIII-A) ------------------------------------------------
    def set_access_mode(self, ptr: GlobalPtr, mode: AccessMode) -> None:
        """Collective (over the GMR's group) access-mode change.

        Implies a barrier so no pre-change operation can race a
        post-change one.
        """
        gmr = self.table.require(ptr)

        def apply(_c) -> None:
            gmr.access_mode = mode

        with self.world.runtime.cond:
            gmr.group.comm._coll.run(gmr.group.rank, "armci_mode", None, apply)
        gmr.group.comm.barrier()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Armci nproc={self.nproc} gmrs={len(self.table)}>"


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _infer_nbytes(buf) -> int:
    if isinstance(buf, GlobalPtr):
        raise ArgumentError("nbytes is required when the local side is a GlobalPtr")
    return int(np.asarray(buf).nbytes)


def _as_flat_bytes(arr: np.ndarray) -> np.ndarray:
    arr = np.asarray(arr)
    if not arr.flags["C_CONTIGUOUS"]:
        raise ArgumentError("ARMCI local buffers must be C-contiguous")
    return arr.reshape(-1).view(np.uint8)


def _strided_span(strides: Sequence[int], count: Sequence[int]) -> int:
    """Bytes from the base pointer to one past the furthest strided byte."""
    far = 0
    for i, s in enumerate(strides):
        far += s * max(count[i + 1] - 1, 0)
    return far + count[0]


def _iov_remote(dst) -> tuple[int, np.ndarray]:
    """Normalise the remote side of an IOV call to (rank, address array)."""
    if isinstance(dst, tuple) and len(dst) == 2 and not isinstance(dst[0], GlobalPtr):
        rank, addrs = dst
        return int(rank), np.asarray(addrs, dtype=np.int64)
    ptrs = list(dst)
    if not ptrs:
        return 0, np.zeros(0, dtype=np.int64)
    rank = ptrs[0].rank
    for p in ptrs:
        if p.rank != rank:
            raise ArgumentError(
                "IOV operations target a single process; got pointers to "
                f"both {rank} and {p.rank}"
            )
    return rank, np.array([p.addr for p in ptrs], dtype=np.int64)


def _with_base(t: dt.Datatype, elem: dt.Datatype) -> dt.Datatype:
    """Rebuild a byte-based datatype's segment map as ``elem``-typed blocks."""
    sm = t.segment_map()
    if np.any(sm.offsets % elem.size) or np.any(sm.lengths % elem.size):
        raise ArgumentError(
            f"accumulate layout is not aligned to {elem.name} elements"
        )
    return dt.hindexed(
        (sm.lengths // elem.size).tolist(), sm.offsets.tolist(), elem
    ).commit()
