"""Global-buffer detection and staging (§V-E.1).

ARMCI allows the *local* buffer of a communication call to itself live
in globally accessible memory.  Under MPI-2 that creates three hazards
(§V-E.1): locking the same window twice (forbidden), a local access
conflicting with a concurrent remote access, and deadlock from locking
two windows in inconsistent order across processes.  The paper concludes
the only safe method is to **stage through a temporary buffer**:

* put/accumulate — take an exclusive self-lock on the *source* window,
  copy the data out, release, and only then lock the target and
  communicate;
* get — communicate into a temporary, then take the exclusive self-lock
  on the destination window and copy in.

On coherent systems where the MPI implementation tolerates concurrent
access, staging can be disabled (``config.coherent_shortcut``); the
windows must then be created non-strict, mirroring how real ARMCI-MPI
relaxes when the platform allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..mpi.errors import ArgumentError

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci
    from .gmr import GlobalPtr, Gmr


__all__ = ["LocalBuffer", "resolve_local"]


@dataclass
class LocalBuffer:
    """A resolved local-side buffer for one communication operation.

    ``data`` is the flat uint8 view the transfer should use.  When the
    user's buffer aliases window memory, ``data`` is a staging copy and
    ``writeback`` (gets only) copies staged results back under the
    exclusive self-lock.
    """

    data: np.ndarray
    staged: bool
    writeback: "Callable[[], None] | None" = None

    def finish(self) -> None:
        if self.writeback is not None:
            self.writeback()


def _as_byte_view(arr: np.ndarray) -> np.ndarray:
    arr = np.asarray(arr)
    if not arr.flags["C_CONTIGUOUS"]:
        raise ArgumentError("ARMCI local buffers must be C-contiguous")
    return arr.reshape(-1).view(np.uint8)


def _local_view_of_ptr(armci: "Armci", ptr: "GlobalPtr", nbytes: int) -> tuple["Gmr", np.ndarray]:
    gmr = armci.table.require(ptr)
    win_rank, disp = gmr.displacement(ptr)
    if win_rank != gmr.group.rank:
        raise ArgumentError(
            f"{ptr} is not local to the calling process (use put/get instead)"
        )
    slab = gmr.win.exposed_buffer(win_rank)
    if disp + nbytes > slab.nbytes:
        raise ArgumentError(f"{ptr}+{nbytes}B runs past the local allocation")
    return gmr, slab[disp : disp + nbytes]


def resolve_local(
    armci: "Armci",
    buf: "np.ndarray | GlobalPtr",
    nbytes: int,
    direction: str,
) -> LocalBuffer:
    """Produce the transfer-safe local buffer for a put/get/acc.

    ``direction`` is ``"out"`` (put/acc source) or ``"in"`` (get
    destination).  The §V-E.1 staging protocol is applied when the
    buffer aliases any GMR's exposed memory and the coherent shortcut is
    off.
    """
    from .gmr import GlobalPtr

    if direction not in ("in", "out"):
        raise ArgumentError(f"bad direction {direction!r}")

    if isinstance(buf, GlobalPtr):
        gmr, view = _local_view_of_ptr(armci, buf, nbytes)
    else:
        view = _as_byte_view(buf)
        if view.nbytes < nbytes:
            raise ArgumentError(
                f"local buffer of {view.nbytes}B is smaller than the "
                f"{nbytes}B transfer"
            )
        view = view[:nbytes]
        gmr = armci.table.find_local_buffer(armci.my_id, view)

    if gmr is None or armci.config.coherent_shortcut:
        return LocalBuffer(data=view, staged=False)

    # --- staging protocol (§V-E.1) ---
    my_rank = gmr.group.rank
    if direction == "out":
        # exclusive self-lock (mpi2) or standing-lock_all flush (mpi3),
        # copy OUT, and only then touch the target
        with armci._stage_epoch(gmr, my_rank):
            temp = view.copy()
        armci.stats.staged_copies += 1
        return LocalBuffer(data=temp, staged=True)

    temp = np.empty(nbytes, dtype=np.uint8)

    def writeback() -> None:
        with armci._stage_epoch(gmr, my_rank):
            view[...] = temp
        armci.stats.staged_copies += 1

    return LocalBuffer(data=temp, staged=True, writeback=writeback)
