"""ARMCI-MPI runtime configuration (the knobs §VI and §VIII expose).

Mirrors the environment variables of the real ARMCI-MPI release
(``ARMCI_IOV_METHOD``, ``ARMCI_IOV_BATCHED_LIMIT``,
``ARMCI_STRIDED_METHOD``, ``ARMCI_NO_MPI_LOCKS``-style coherence
shortcut) as a plain dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: IOV transfer methods of §VI-A.
IOV_METHODS = ("auto", "conservative", "batched", "direct")
#: Strided transfer methods of §VI-C ("iov" funnels through an IOV method).
STRIDED_METHODS = ("direct", "iov")


@dataclass(frozen=True)
class ArmciConfig:
    """Configuration of one ARMCI-MPI instance.

    Attributes
    ----------
    iov_method:
        How generalized I/O vector operations are transferred:
        ``conservative`` (one RMA op per segment, each in its own
        epoch), ``batched`` (up to :attr:`iov_batch_size` ops per
        epoch), ``direct`` (one op with indexed datatypes), or ``auto``
        (conflict-tree scan, §VI-B, falling back to conservative when
        segments overlap or span GMRs).
    iov_batch_size:
        B of the batched method; 0 means unlimited (the paper's
        default).
    iov_checking:
        Which overlap detector the auto method uses: ``"tree"``
        (O(N log N), the paper's contribution) or ``"naive"``
        (O(N²) baseline, kept for the ablation benchmark).
    strided_method:
        ``direct`` translates ARMCI strided notation into one MPI
        subarray datatype (§VI-C); ``iov`` converts to IOV form via
        Algorithm 1 and then applies :attr:`iov_method`.
    coherent_shortcut:
        On cache-coherent systems many MPI implementations tolerate
        concurrent access to shared data; setting this disables the
        global-buffer staging protocol of §V-E.1 (and requires a
        non-strict window).  Default off: the paper's portable mode.
    shared_lock_for_reads:
        Internal default for GMRs in the default access mode: every op
        uses an exclusive epoch (the conservative §V-C discipline).
        Access-mode hints (§VIII-A) override per-GMR.
    alignment:
        Byte alignment of ARMCI_Malloc'd slabs in the simulated
        per-process address space.
    nb_coalesce_threshold:
        MPI-3 datapath only: largest merged transfer (bytes) the
        nonblocking coalescing queue will grow by appending an adjacent
        op (DART-MPI style aggregation).  0 disables merging — every
        nb op stays its own queue entry.
    nb_max_pending:
        MPI-3 datapath only: per-target cap on queued nb entries; the
        queue auto-drains (issue + one flush) when an enqueue would
        exceed it.  Bounds both memory and the modeled epoch queue
        depth.  Must be >= 1.
    backend:
        Expected runtime execution backend (``"thread"`` or ``"proc"``,
        see :mod:`repro.mpi.backend`).  ``None`` (default) accepts
        whatever backend the communicator's runtime uses;
        :meth:`~repro.armci.api.Armci.init` rejects a mismatch so a
        config tuned for one backend is not silently run on the other.
    """

    iov_method: str = "auto"
    iov_batch_size: int = 0
    iov_checking: str = "tree"
    strided_method: str = "direct"
    coherent_shortcut: bool = False
    alignment: int = 64
    nb_coalesce_threshold: int = 512
    nb_max_pending: int = 64
    backend: "str | None" = None

    def __post_init__(self) -> None:
        if self.iov_method not in IOV_METHODS:
            raise ValueError(
                f"iov_method must be one of {IOV_METHODS}, got {self.iov_method!r}"
            )
        if self.strided_method not in STRIDED_METHODS:
            raise ValueError(
                f"strided_method must be one of {STRIDED_METHODS}, "
                f"got {self.strided_method!r}"
            )
        if self.iov_checking not in ("tree", "naive"):
            raise ValueError(f"iov_checking must be 'tree' or 'naive'")
        if self.iov_batch_size < 0:
            raise ValueError("iov_batch_size must be >= 0 (0 = unlimited)")
        if self.alignment < 1 or self.alignment & (self.alignment - 1):
            raise ValueError("alignment must be a positive power of two")
        if self.nb_coalesce_threshold < 0:
            raise ValueError("nb_coalesce_threshold must be >= 0 (0 = no merging)")
        if self.nb_max_pending < 1:
            raise ValueError("nb_max_pending must be >= 1")
        if self.backend is not None and self.backend not in ("thread", "proc"):
            raise ValueError(
                f"backend must be None, 'thread', or 'proc', got {self.backend!r}"
            )

    def with_(self, **kw) -> "ArmciConfig":
        """Copy with overrides (benches sweep methods this way)."""
        return replace(self, **kw)


DEFAULT_CONFIG = ArmciConfig()
