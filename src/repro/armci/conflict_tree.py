"""AVL-based conflict (interval-overlap) detection — §VI-B of the paper.

The *auto* IOV method must decide whether the segments of a generalized
I/O vector overlap (or span multiple GMRs), in which case the transfer
falls back to the conservative method.  A naive pairwise scan is O(N²);
for NWChem, N reaches tens to hundreds of thousands of segments per GA
operation, so the paper contributes an O(N·log N) approach: insert each
range ``[lo..hi]`` into a self-balancing binary tree ordered so that, for
any node, all left-subtree ranges lie entirely below ``lo`` and all
right-subtree ranges entirely above ``hi``; an insertion that cannot
maintain that invariant has found a conflict.

As in the paper, checking and insertion are merged: :meth:`insert`
returns ``False`` (and leaves the tree unchanged) when the new range
conflicts.  The structure differs from an interval tree (CLRS) exactly
as §VI-B notes: it stores only *disjoint* ranges and answers only "does
anything overlap", which is all the auto method needs.

The naive O(N²) checker is also provided for the ablation benchmark.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class _Node:
    __slots__ = ("lo", "hi", "left", "right", "height")

    def __init__(self, lo: int, hi: int):
        self.lo = lo
        self.hi = hi
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.height = 1


def _h(node: "_Node | None") -> int:
    return node.height if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_h(node.left), _h(node.right))


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _balance(node: _Node) -> _Node:
    _update(node)
    bf = _h(node.left) - _h(node.right)
    if bf > 1:
        assert node.left is not None
        if _h(node.left.left) < _h(node.left.right):
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if bf < -1:
        assert node.right is not None
        if _h(node.right.right) < _h(node.right.left):
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class ConflictTree:
    """Set of disjoint closed byte ranges with merged check-and-insert.

    Ranges are closed intervals ``[lo, hi]`` with ``lo <= hi`` (matching
    the paper's ``[lo..hi]`` notation; a segment of ``n`` bytes at
    address ``a`` is ``[a, a + n - 1]``).
    """

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: _Node | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return _h(self._root)

    def conflicts(self, lo: int, hi: int) -> bool:
        """True if ``[lo, hi]`` overlaps any stored range (read-only)."""
        self._check_range(lo, hi)
        node = self._root
        while node is not None:
            if hi < node.lo:
                node = node.left
            elif lo > node.hi:
                node = node.right
            else:
                return True
        return False

    def insert(self, lo: int, hi: int) -> bool:
        """Insert ``[lo, hi]`` if disjoint from all stored ranges.

        Returns ``True`` on success; ``False`` (tree unchanged) on
        conflict.  One descent does both — the merged check-and-insert
        of §VI-B.
        """
        self._check_range(lo, hi)
        # Recursive descent merging check and insert; AVL depth is
        # <= 1.44*log2(N), so Python's recursion limit is never a concern.
        conflict = False

        def descend(node: "_Node | None") -> _Node:
            nonlocal conflict
            if node is None:
                return _Node(lo, hi)
            if hi < node.lo:
                node.left = descend(node.left)
            elif lo > node.hi:
                node.right = descend(node.right)
            else:
                conflict = True
                return node
            return _balance(node)

        new_root = descend(self._root)
        if conflict:
            return False
        self._root = new_root
        self._size += 1
        return True

    def ranges(self) -> Iterator[tuple[int, int]]:
        """Yield stored ranges in ascending order."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.lo, node.hi
            node = node.right

    @staticmethod
    def _check_range(lo: int, hi: int) -> None:
        if hi < lo:
            raise ValueError(f"empty/inverted range [{lo}, {hi}]")

    def check_invariants(self) -> None:
        """Validate ordering, disjointness, and AVL balance (tests only)."""

        def walk(node: "_Node | None") -> tuple[int, int, int] | None:
            if node is None:
                return None
            left = walk(node.left)
            right = walk(node.right)
            if left is not None and left[1] >= node.lo:
                raise AssertionError("left subtree reaches into node range")
            if right is not None and right[0] <= node.hi:
                raise AssertionError("right subtree reaches into node range")
            lh = node.left.height if node.left else 0
            rh = node.right.height if node.right else 0
            if abs(lh - rh) > 1:
                raise AssertionError(f"AVL imbalance at [{node.lo},{node.hi}]")
            if node.height != 1 + max(lh, rh):
                raise AssertionError("stale height")
            lo = left[0] if left else node.lo
            hi = right[1] if right else node.hi
            return lo, hi, node.height

        walk(self._root)


def any_overlap_tree(ranges: Iterable[tuple[int, int]]) -> bool:
    """O(N log N): True if any two ``[lo, hi]`` ranges overlap."""
    tree = ConflictTree()
    for lo, hi in ranges:
        if not tree.insert(lo, hi):
            return True
    return False


def any_overlap_naive(ranges: "list[tuple[int, int]]") -> bool:
    """O(N²) pairwise scan — the baseline the paper improves on (§VI-B)."""
    for i in range(len(ranges)):
        lo_i, hi_i = ranges[i]
        for j in range(i):
            lo_j, hi_j = ranges[j]
            if lo_i <= hi_j and lo_j <= hi_i:
                return True
    return False
