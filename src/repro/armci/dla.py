"""Direct local access (DLA): ARMCI_Access_begin / ARMCI_Access_end (§V-E).

Direct load/store to memory exposed in an MPI window conflicts with all
other accesses to that window region, so it is only safe inside an
exclusive self-lock epoch.  GA has always had ``GA_Access``/
``GA_Release``; ARMCI historically had nothing, and the paper extends
the ARMCI API with ``ARMCI_Access_begin``/``ARMCI_Access_end`` — the
extension that also prepares GA/ARMCI for weakly consistent and
noncoherent platforms (§VIII-A).

Semantics enforced here:

* ``access_begin`` takes the exclusive self-lock on the GMR's window
  and returns a NumPy view of the caller's slab from the given pointer;
* nested ``access_begin`` on the *same* GMR is erroneous (it would be a
  double lock);
* while a DLA epoch is open, every communication call by this process
  through the same GMR is erroneous (one lock per window per process) —
  the underlying window raises;
* ``access_end`` releases the lock; using the view afterwards is a
  semantic error the simulation cannot trap, but tests document it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..mpi.errors import RMASyncError
from ..mpi.window import LOCK_EXCLUSIVE

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci
    from .gmr import GlobalPtr

__all__ = ["DlaState", "access_begin", "access_end"]


class DlaState:
    """Per-process bookkeeping of open DLA epochs (keyed by GMR id)."""

    def __init__(self) -> None:
        self._open: dict[tuple[int, int], int] = {}  # (world rank, gmr id) -> count

    def begin(self, world_rank: int, gmr_id: int) -> None:
        key = (world_rank, gmr_id)
        if key in self._open:
            raise RMASyncError(
                f"nested ARMCI access_begin on GMR {gmr_id}: direct-access "
                "epochs do not nest (one lock per window per process)"
            )
        self._open[key] = 1

    def end(self, world_rank: int, gmr_id: int) -> None:
        key = (world_rank, gmr_id)
        if key not in self._open:
            raise RMASyncError(
                f"ARMCI access_end on GMR {gmr_id} without access_begin"
            )
        del self._open[key]

    def is_open(self, world_rank: int, gmr_id: int) -> bool:
        return (world_rank, gmr_id) in self._open


def access_begin(
    armci: "Armci", ptr: "GlobalPtr", nbytes: int, dtype: "np.dtype | str" = np.uint8
) -> np.ndarray:
    """Begin direct local access; returns a writable view of local data.

    ``ptr`` must point into the calling process's own slice of a GMR.
    """
    from ..mpi.errors import ArgumentError

    me = armci.my_id
    if ptr.rank != me:
        raise ArgumentError(
            f"access_begin: pointer targets process {ptr.rank}, not the "
            f"calling process {me} (DLA is local by definition)"
        )
    gmr = armci.table.require(ptr)
    win_rank, disp = gmr.displacement(ptr)
    dtype = np.dtype(dtype)
    if nbytes % dtype.itemsize:
        raise ArgumentError(
            f"access_begin: {nbytes} bytes is not a whole number of {dtype}"
        )
    san = gmr.win.runtime.sanitizer
    if san is not None:
        with gmr.win.runtime.cond:
            san.on_dla_begin_attempt(me, gmr)
    armci._dla.begin(me, gmr.gmr_id)
    try:
        if armci._flush_mode:
            # the standing lock_all epoch already permits local access
            # under the unified model; completing queued + outstanding
            # ops to self orders earlier RMA before the direct accesses
            armci._nbq.drain(gmr, win_rank)
            gmr.win.flush(win_rank)
        else:
            gmr.win.lock(win_rank, LOCK_EXCLUSIVE)
    except BaseException:
        armci._dla.end(me, gmr.gmr_id)
        raise
    if san is not None:
        # registered only after the lock succeeds, so the DLA's own lock
        # is never mistaken for a lock-while-DLA violation
        with gmr.win.runtime.cond:
            san.on_dla_begin(me, gmr)
    slab = gmr.win.local_view()  # checked: self-lock or standing lock_all
    return slab[disp : disp + nbytes].view(dtype)


def access_end(armci: "Armci", ptr: "GlobalPtr") -> None:
    """End the direct-access epoch opened by :func:`access_begin`."""
    me = armci.my_id
    gmr = armci.table.require(ptr)
    san = gmr.win.runtime.sanitizer
    if san is not None:
        with gmr.win.runtime.cond:
            san.on_dla_end_attempt(me, gmr)
    armci._dla.end(me, gmr.gmr_id)
    if san is not None:
        with gmr.win.runtime.cond:
            san.on_dla_end(me, gmr)
    if armci._flush_mode:
        # publish the direct stores: under the standing lock_all a flush
        # is the completion point (there is no lock to release)
        gmr.win.flush(gmr.group.rank)
    else:
        gmr.win.unlock(gmr.group.rank)
