"""Global Memory Regions: ARMCI ↔ MPI address/rank translation (§V-A, §V-B).

ARMCI exposes a PGAS address space of ``<process id, address>`` pairs;
MPI RMA exposes windows addressed by ``(window, group rank,
displacement)``.  GMR is the intermediate layer the paper introduces to
bridge them:

* every ``ARMCI_Malloc`` creates one :class:`Gmr` — an MPI window plus
  the base-address vector gathered from all group members;
* a **translation table** (:class:`GmrTable`) maps an ARMCI global
  address back to the owning GMR and window displacement;
* ranks translate through the GMR's group: ARMCI ops use absolute ids,
  MPI ops use ranks in the window's group (§V-A);
* freeing follows the leader-election protocol of §V-B, because ranks
  holding a zero-byte (NULL) slice cannot name the allocation they are
  freeing.

Since this is a simulation, "addresses" are virtual: each process owns a
monotonically increasing virtual address space and every allocation gets
an aligned base.  Address 0 is NULL, exactly as in the paper's
description of zero-size slices.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..mpi import window as mpi_window
from ..mpi.errors import ArgumentError
from ..mpi.group import UNDEFINED
from .access_modes import AccessMode
from .groups import ArmciGroup

__all__ = ["GlobalPtr", "Gmr", "GmrTable", "NULL_ADDR"]

#: the NULL global address (returned for zero-size allocation slices)
NULL_ADDR = 0
#: base of the simulated per-process virtual address space (nonzero so
#: that no valid allocation ever collides with NULL)
_VA_BASE = 0x1000


@dataclass(frozen=True, order=True)
class GlobalPtr:
    """An ARMCI global address: ``<process id, address>`` (§IV).

    ``rank`` is an *absolute* ARMCI id.  Pointer arithmetic (`+`/`-`)
    adjusts the address, mirroring how GA computes patch addresses from
    the ARMCI_Malloc base-pointer vector.
    """

    rank: int
    addr: int

    def __add__(self, nbytes: int) -> "GlobalPtr":
        return GlobalPtr(self.rank, self.addr + int(nbytes))

    def __sub__(self, nbytes: int) -> "GlobalPtr":
        return GlobalPtr(self.rank, self.addr - int(nbytes))

    @property
    def is_null(self) -> bool:
        return self.addr == NULL_ADDR

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GlobalPtr(rank={self.rank}, addr={self.addr:#x})"


class Gmr:
    """One global allocation: an MPI window + translation metadata."""

    _next_id = 0

    def __init__(
        self,
        win: mpi_window.Win,
        group: ArmciGroup,
        bases: list[int],
        sizes: list[int],
    ):
        self.win = win
        self.group = group
        #: per-group-rank virtual base address (NULL_ADDR for size 0)
        self.bases = bases
        #: per-group-rank slab size in bytes
        self.sizes = sizes
        self.access_mode = AccessMode.DEFAULT
        self.gmr_id = Gmr._next_id
        Gmr._next_id += 1
        self.freed = False

    # -- translation -------------------------------------------------------------
    def win_rank_of_absolute(self, absolute_id: int) -> int:
        """Absolute ARMCI id -> rank in this GMR's window group (§V-A)."""
        r = self.group.group_rank_of(absolute_id)
        if r == UNDEFINED:
            raise ArgumentError(
                f"process {absolute_id} is not in the group of GMR {self.gmr_id}"
            )
        return r

    def displacement(self, ptr: GlobalPtr) -> tuple[int, int]:
        """Translate a global pointer to ``(window rank, byte displacement)``."""
        win_rank = self.win_rank_of_absolute(ptr.rank)
        base = self.bases[win_rank]
        if base == NULL_ADDR:
            raise ArgumentError(
                f"pointer into a zero-size slice of GMR {self.gmr_id} on "
                f"process {ptr.rank}"
            )
        disp = ptr.addr - base
        if not 0 <= disp <= self.sizes[win_rank]:
            raise ArgumentError(
                f"pointer {ptr} outside allocation "
                f"[{base:#x}, {base + self.sizes[win_rank]:#x}) of GMR {self.gmr_id}"
            )
        return win_rank, disp

    def contains(self, rank_absolute: int, addr: int) -> bool:
        r = self.group.group_rank_of(rank_absolute)
        if r == UNDEFINED:
            return False
        base = self.bases[r]
        return base != NULL_ADDR and base <= addr < base + self.sizes[r]

    def base_ptrs(self) -> list[GlobalPtr]:
        """The ARMCI_Malloc return value: base pointer per group rank."""
        return [
            GlobalPtr(self.group.absolute_id(r), self.bases[r])
            for r in range(self.group.size)
        ]

    def local_slab(self) -> np.ndarray:
        """This process's raw slab bytes (no access-rights implication)."""
        return self.win.exposed_buffer(self.group.rank)

    def snapshot_local(self, absolute_id: int) -> "np.ndarray | None":
        """Copy of ``absolute_id``'s slab bytes, or ``None`` for non-members
        and NULL (zero-size) slices.

        The recovery protocol snapshots every surviving slab through this
        before teardown can recycle the window memory — on the proc
        backend the bytes live in a shared-memory segment that rebuild
        will replace, so the copy (not a view) is load-bearing.
        """
        r = self.group.group_rank_of(absolute_id)
        if r == UNDEFINED or not self.sizes[r]:
            return None
        return np.array(self.win.exposed_buffer(r), dtype=np.uint8, copy=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gmr id={self.gmr_id} group={self.group.size} sizes={self.sizes}>"


class GmrTable:
    """The translation table: global address -> owning GMR (§V-A).

    Lookup is by (absolute process id, address): per process we keep the
    allocation bases sorted, so a lookup is one bisect plus a bounds
    check — O(log #allocations), mirroring the real implementation's
    balanced lookup structure.

    On top of the bisect, the table remembers the **last-hit GMR per
    process**: ARMCI traffic is bursty — long op runs against one
    allocation (every segment of an IOV or strided transfer resolves to
    the same GMR) — so the hot entry answers most lookups with a single
    bounds check.  Hot entries are dropped on :meth:`unregister`, so a
    freed allocation can never serve a lookup even if a later allocation
    reuses its virtual address range.
    """

    def __init__(self) -> None:
        # absolute id -> sorted list of (base, gmr)
        self._by_rank: dict[int, list[tuple[int, Gmr]]] = {}
        self._all: list[Gmr] = []
        self._next_va: dict[int, int] = {}
        # absolute id -> most recently hit GMR (invalidated on unregister)
        self._hot: dict[int, Gmr] = {}

    # -- virtual address space -----------------------------------------------------
    def allocate_va(self, absolute_id: int, nbytes: int, alignment: int) -> int:
        """Reserve an aligned virtual range on ``absolute_id``; 0 bytes -> NULL."""
        if nbytes == 0:
            return NULL_ADDR
        cursor = self._next_va.get(absolute_id, _VA_BASE)
        base = (cursor + alignment - 1) & ~(alignment - 1)
        self._next_va[absolute_id] = base + nbytes
        return base

    # -- registration ----------------------------------------------------------------
    def register(self, gmr: Gmr) -> None:
        for r in range(gmr.group.size):
            base = gmr.bases[r]
            if base == NULL_ADDR:
                continue  # NULL entries are not lookup targets (§V-B)
            absolute = gmr.group.absolute_id(r)
            entries = self._by_rank.setdefault(absolute, [])
            bisect.insort(entries, (base, gmr), key=lambda e: e[0])
        self._all.append(gmr)

    def unregister(self, gmr: Gmr) -> None:
        for r in range(gmr.group.size):
            base = gmr.bases[r]
            if base == NULL_ADDR:
                continue
            absolute = gmr.group.absolute_id(r)
            entries = self._by_rank.get(absolute, [])
            self._by_rank[absolute] = [e for e in entries if e[1] is not gmr]
        self._all.remove(gmr)
        # a stale hot entry must never resolve a reused address range
        for rank in [r for r, g in self._hot.items() if g is gmr]:
            del self._hot[rank]

    # -- lookup -----------------------------------------------------------------------
    def lookup(self, absolute_id: int, addr: int) -> "Gmr | None":
        """GMR owning ``addr`` on process ``absolute_id``, or None."""
        if addr == NULL_ADDR:
            return None
        hot = self._hot.get(absolute_id)
        if hot is not None and hot.contains(absolute_id, addr):
            return hot
        return self._lookup_bisect(absolute_id, addr)

    def _lookup_bisect(self, absolute_id: int, addr: int) -> "Gmr | None":
        """The uncached bisect lookup (hot-path benchmark baseline)."""
        entries = self._by_rank.get(absolute_id, [])
        i = bisect.bisect_right(entries, addr, key=lambda e: e[0]) - 1
        if i < 0:
            return None
        base, gmr = entries[i]
        if gmr.contains(absolute_id, addr):
            self._hot[absolute_id] = gmr
            return gmr
        return None

    def lookup_ptr(self, ptr: GlobalPtr) -> "Gmr | None":
        return self.lookup(ptr.rank, ptr.addr)

    def require(self, ptr: GlobalPtr) -> Gmr:
        gmr = self.lookup_ptr(ptr)
        if gmr is None:
            raise ArgumentError(f"{ptr} does not fall in any registered GMR")
        return gmr

    def find_local_buffer(
        self, absolute_id: int, arr: np.ndarray, gmrs: "Iterable[Gmr] | None" = None
    ) -> "Gmr | None":
        """Detect whether ``arr`` aliases window memory on this process.

        This is the §V-E.1 check: a *local* communication buffer that is
        itself exposed in an MPI window must be staged, or ARMCI-MPI
        would need two simultaneous locks on one window (erroneous) or
        two windows (deadlock-prone).
        """
        pool = self._all if gmrs is None else gmrs
        for gmr in pool:
            r = gmr.group.group_rank_of(absolute_id)
            if r == UNDEFINED or gmr.sizes[r] == 0:
                continue
            if np.shares_memory(arr, gmr.win.exposed_buffer(r)):
                return gmr
        return None

    def check_consistent(self) -> None:
        """Assert table invariants (used by fault-injection tests).

        After any sequence of registers/unregisters — including an abort
        path taken mid-free — the table must hold: every live GMR is
        indexed under each nonzero base exactly once, no per-rank entry
        refers to a freed GMR, and no hot entry points outside ``_all``.
        Raises :class:`AssertionError` on violation.
        """
        live = set(id(g) for g in self._all)
        for g in self._all:
            assert not g.freed, f"freed GMR {g.gmr_id} still registered"
        for absolute, entries in self._by_rank.items():
            bases = [b for b, _ in entries]
            assert bases == sorted(bases), f"unsorted bases for rank {absolute}"
            for base, gmr in entries:
                assert base != NULL_ADDR, "NULL base indexed"
                assert id(gmr) in live, (
                    f"rank {absolute} entry {base:#x} refers to "
                    f"unregistered GMR {gmr.gmr_id}"
                )
        for rank, gmr in self._hot.items():
            assert id(gmr) in live, (
                f"hot entry for rank {rank} refers to unregistered "
                f"GMR {gmr.gmr_id}"
            )

    @property
    def gmrs(self) -> list[Gmr]:
        return list(self._all)

    def __len__(self) -> int:
        return len(self._all)
