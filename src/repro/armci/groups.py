"""ARMCI process groups and absolute-id translation (§IV, §V-A).

ARMCI communication operations address *absolute* process ids (ranks in
the ARMCI world group), never group ranks; group ranks must be converted
with ``absolute_id`` (the paper's ``ARMCI_Absolute_id``).  Groups are
created two ways:

* **collectively** over a parent group — implemented directly with MPI
  communicator creation (``comm.create``/``comm.split``);
* **noncollectively** — only the members participate.  MPI-2 has no such
  primitive, so we use the recursive intercommunicator creation-and-merge
  algorithm of Dinan et al. (EuroMPI'11) that the paper adopts: the
  member list is split in half, each half recursively builds an
  intracommunicator, the two halves' leaders connect with
  ``create_intercomm`` over the world bridge, and ``merge`` yields the
  combined intracommunicator — O(log n) merge levels.
"""

from __future__ import annotations

from typing import Sequence

from ..mpi.comm import Comm
from ..mpi.errors import ArgumentError, RankError
from ..mpi.group import UNDEFINED

#: tag namespace reserved for noncollective group construction traffic
_NONCOLL_TAG_BASE = 700_000


class ArmciGroup:
    """A group of ARMCI processes, backed by an MPI communicator."""

    def __init__(self, comm: Comm, world: Comm):
        self.comm = comm
        self.world = world

    # -- identity ------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def rank(self) -> int:
        """Calling process's rank within this group."""
        return self.comm.rank

    def absolute_id(self, group_rank: int) -> int:
        """ARMCI_Absolute_id: group rank -> rank in the ARMCI world group."""
        world_rank = self.comm.group.world_rank(group_rank)
        absolute = self.world.group.rank_of_world(world_rank)
        if absolute == UNDEFINED:
            raise RankError(
                f"group member {group_rank} is not in the ARMCI world group"
            )
        return absolute

    def group_rank_of(self, absolute_id: int) -> int:
        """Inverse translation; :data:`~repro.mpi.group.UNDEFINED` if absent."""
        world_rank = self.world.group.world_rank(absolute_id)
        return self.comm.group.rank_of_world(world_rank)

    def members_absolute(self) -> list[int]:
        """Absolute ids of all members, in group-rank order."""
        return [self.absolute_id(r) for r in range(self.size)]

    def contains(self, absolute_id: int) -> bool:
        return self.group_rank_of(absolute_id) != UNDEFINED

    # -- collective creation ---------------------------------------------------
    def create_subgroup(self, absolute_members: Sequence[int]) -> "ArmciGroup | None":
        """Collective (over this group) creation of a subgroup.

        All members of this group must call; processes outside
        ``absolute_members`` receive ``None``.
        """
        world_ranks = [self.world.group.world_rank(a) for a in absolute_members]
        subgroup = self.comm.group  # validate membership below
        for w in world_ranks:
            if not self.comm.group.contains_world(w):
                raise ArgumentError(
                    f"absolute id for world rank {w} is not in the parent group"
                )
        from ..mpi.group import Group

        newcomm = self.comm.create(Group(world_ranks))
        if newcomm is None:
            return None
        return ArmciGroup(newcomm, self.world)

    def split(self, color: int, key: int = 0) -> "ArmciGroup | None":
        """Collective split (convenience; maps to MPI_Comm_split)."""
        sub = self.comm.split(color, key)
        return None if sub is None else ArmciGroup(sub, self.world)

    # -- noncollective creation ---------------------------------------------------
    def create_noncollective(
        self, absolute_members: Sequence[int], tag_seed: int = 0
    ) -> "ArmciGroup":
        """Noncollective group creation: only the members call this.

        ``absolute_members`` must be identical (same order) on every
        caller and must include the caller.  Non-members do *not*
        participate — the property that lets GA build groups without
        global synchronisation.
        """
        members = list(absolute_members)
        if len(set(members)) != len(members):
            raise ArgumentError(f"duplicate members: {members}")
        members_world = [self.world.group.world_rank(a) for a in members]
        comm = _recursive_create(self.world, members_world, tag_seed)
        return ArmciGroup(comm, self.world)

    def duplicate(self) -> "ArmciGroup":
        return ArmciGroup(self.comm.dup(), self.world)

    def barrier(self) -> None:
        self.comm.barrier()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArmciGroup size={self.size}>"


def _recursive_create(world: Comm, members: list[int], tag_seed: int) -> Comm:
    """EuroMPI'11 recursive intercomm create-and-merge (members only).

    ``members`` are world ranks in the agreed order.  Each recursion
    level pairs the two halves of the member list; tags are derived from
    the (seed, depth, position) triple so concurrent constructions with
    different seeds do not cross-match.
    """
    me = world.rank

    def build(sub: list[int], depth: int, pos: int) -> Comm:
        if len(sub) == 1:
            # singleton intracommunicator: trivially "collective" over one
            from ..mpi.group import Group

            with world.runtime.cond:
                cid = world.runtime.alloc_context_id() if me == sub[0] else None
            # context ids are only meaningful within one comm's members;
            # a singleton never exchanges messages, so a private id is fine
            return Comm(world.runtime, Group([sub[0]]), cid or 0)
        mid = len(sub) // 2
        left, right = sub[:mid], sub[mid:]
        if me in left:
            local = build(left, depth + 1, pos * 2)
            remote_leader = right[0]
            high = False
        else:
            local = build(right, depth + 1, pos * 2 + 1)
            remote_leader = left[0]
            high = True
        tag = _NONCOLL_TAG_BASE + tag_seed * 1024 + depth * 32 + pos
        inter = local.create_intercomm(
            0, world, world.group.rank_of_world(remote_leader), tag
        )
        return inter.merge(high=high)

    if me not in members:
        raise ArgumentError(f"rank {me} is not in {members}")
    return build(members, 0, 0)
