"""Generalized I/O vector (IOV) operations — §VI-A, §VI-B.

ARMCI's ``armci_giov_t`` describes N equal-length segments to move
between the local process and one remote process.  ARMCI-MPI provides
four transfer methods (selected by
:class:`~repro.armci.config.ArmciConfig`):

``conservative``
    one RMA operation per segment, **each in its own epoch** — correct
    even when segments overlap or belong to different GMRs (different
    ARMCI_Malloc calls).
``batched``
    up to B operations per epoch (B=0 → one epoch for everything).
    Requires all segments in one GMR with no overlap, since ops in one
    epoch are concurrent under MPI-2.
``direct``
    two MPI indexed datatypes (origin and target layouts) and a single
    RMA operation — MPI chooses pack/unpack vs scatter/gather.
    Same preconditions as batched.
``auto``
    scan the descriptor (conflict tree of §VI-B, O(N·log N)) and use
    ``direct`` when safe, falling back to ``conservative`` when
    segments overlap or span GMRs — because letting MPI detect the
    error is allowed to corrupt data first (§VI-B).

The scan checks the side being *written* (remote for put/acc, local for
get): MPI permits overlapping reads within an epoch, and overlapping
same-op accumulates, but overlapping writes are erroneous.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..mpi import datatypes as dt
from ..mpi.errors import ArgumentError
from .conflict_tree import ConflictTree, any_overlap_naive

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci
    from .gmr import Gmr


@dataclass(frozen=True)
class IovRequest:
    """A fully resolved IOV operation against one remote process."""

    kind: str  # "put" | "get" | "acc"
    local: np.ndarray  # flat uint8 view of the local buffer
    loc_offsets: np.ndarray  # int64 byte offsets into `local`
    rank: int  # absolute remote process id
    rem_addrs: np.ndarray  # int64 virtual addresses on `rank`
    seg_bytes: int
    acc_dtype: "np.dtype | None" = None  # element type for accumulate

    def __post_init__(self) -> None:
        if self.kind not in ("put", "get", "acc"):
            raise ArgumentError(f"bad IOV kind {self.kind!r}")
        if len(self.loc_offsets) != len(self.rem_addrs):
            raise ArgumentError(
                f"IOV: {len(self.loc_offsets)} local vs {len(self.rem_addrs)} "
                "remote segments"
            )
        if self.seg_bytes < 0:
            raise ArgumentError(f"negative segment size {self.seg_bytes}")
        if self.kind == "acc":
            if self.acc_dtype is None:
                raise ArgumentError("accumulate IOV requires acc_dtype")
            if self.seg_bytes % np.dtype(self.acc_dtype).itemsize:
                raise ArgumentError(
                    f"accumulate IOV: segment of {self.seg_bytes} bytes is "
                    f"not a whole number of {self.acc_dtype} elements"
                )

    @property
    def nsegments(self) -> int:
        return len(self.loc_offsets)


def execute(armci: "Armci", req: IovRequest, method: "str | None" = None) -> None:
    """Run one IOV operation with the configured (or given) method."""
    if req.nsegments == 0 or req.seg_bytes == 0:
        return
    method = method or armci.config.iov_method
    if method == "auto":
        method = _auto_select(armci, req)
    if method == "conservative":
        _conservative(armci, req)
    elif method == "batched":
        _batched(armci, req)
    elif method == "direct":
        _direct(armci, req)
    else:  # pragma: no cover - config validates
        raise ArgumentError(f"unknown IOV method {method!r}")
    armci.stats.count_iov(method, req.nsegments, req.seg_bytes)


# ---------------------------------------------------------------------------
# GMR resolution
# ---------------------------------------------------------------------------


def _resolve_single_gmr(armci: "Armci", req: IovRequest) -> "Gmr | None":
    """The one GMR containing every remote segment, or None if they span."""
    from .gmr import GlobalPtr

    first = armci.table.lookup(req.rank, int(req.rem_addrs[0]))
    if first is None:
        raise ArgumentError(
            f"IOV segment address {int(req.rem_addrs[0]):#x} on process "
            f"{req.rank} is not in any GMR"
        )
    win_rank = first.win_rank_of_absolute(req.rank)
    base = first.bases[win_rank]
    size = first.sizes[win_rank]
    lo = int(req.rem_addrs.min())
    hi = int(req.rem_addrs.max()) + req.seg_bytes
    if lo >= base and hi <= base + size:
        return first
    return None


def _resolve_per_segment(armci: "Armci", req: IovRequest):
    """(gmr, win_rank, displacement) per segment (conservative path)."""
    out = []
    for addr in req.rem_addrs.tolist():
        gmr = armci.table.lookup(req.rank, addr)
        if gmr is None:
            raise ArgumentError(
                f"IOV segment address {addr:#x} on process {req.rank} "
                "is not in any GMR"
            )
        win_rank = gmr.win_rank_of_absolute(req.rank)
        out.append((gmr, win_rank, addr - gmr.bases[win_rank]))
    return out


# ---------------------------------------------------------------------------
# auto method: §VI-B descriptor checking
# ---------------------------------------------------------------------------


def _written_side_offsets(req: IovRequest) -> np.ndarray:
    return req.loc_offsets if req.kind == "get" else req.rem_addrs


def descriptor_is_safe(armci: "Armci", req: IovRequest) -> bool:
    """True if the written-side segments are pairwise disjoint.

    Same-op accumulates may overlap under MPI, but a *single* datatype
    operation may not access one location twice, so the auto method is
    conservative for accumulate too — matching the real ARMCI-MPI.
    """
    offs = _written_side_offsets(req)
    n = req.seg_bytes
    if armci.config.iov_checking == "naive":
        ranges = [(int(o), int(o) + n - 1) for o in offs.tolist()]
        return not any_overlap_naive(ranges)
    tree = ConflictTree()
    for o in offs.tolist():
        if not tree.insert(int(o), int(o) + n - 1):
            return False
    return True


def _auto_select(armci: "Armci", req: IovRequest) -> str:
    if _resolve_single_gmr(armci, req) is None:
        return "conservative"
    if not descriptor_is_safe(armci, req):
        return "conservative"
    return "direct"


# ---------------------------------------------------------------------------
# transfer methods
# ---------------------------------------------------------------------------


def _one_segment(
    armci: "Armci",
    req: IovRequest,
    win,
    win_rank: int,
    disp: int,
    loc_off: int,
) -> None:
    """Issue one contiguous RMA op for segment ``i`` (epoch NOT managed)."""
    n = req.seg_bytes
    if req.kind == "put":
        win.put(req.local[loc_off : loc_off + n], win_rank, disp)
    elif req.kind == "get":
        win.get(req.local[loc_off : loc_off + n], win_rank, disp)
    else:
        seg = req.local[loc_off : loc_off + n].view(req.acc_dtype)
        win.accumulate(seg, win_rank, disp, op="MPI_SUM")


def _conservative(armci: "Armci", req: IovRequest) -> None:
    """One op per segment, one epoch (or flush cycle) per op.

    Handles multi-GMR and overlap: under the mpi3 datapath the per-op
    flush clears the standing epoch's access coverage, so overlapping
    segments are as legal as they are with one exclusive epoch each.
    """
    resolved = _resolve_per_segment(armci, req)
    for (gmr, win_rank, disp), loc_off in zip(resolved, req.loc_offsets.tolist()):
        lock_mode = gmr.access_mode.lock_mode(req.kind)
        with armci._op_epoch(gmr, win_rank, lock_mode):
            _one_segment(armci, req, gmr.win, win_rank, disp, loc_off)


def _batched(armci: "Armci", req: IovRequest) -> None:
    """Up to B ops per epoch (B = config.iov_batch_size; 0 = unlimited).

    Under the mpi3 datapath each batch is issued into the standing
    lock_all epoch and completed by one per-target flush.
    """
    gmr = _require_single_gmr(armci, req, "batched")
    win_rank = gmr.win_rank_of_absolute(req.rank)
    base = gmr.bases[win_rank]
    disps = req.rem_addrs - base
    B = armci.config.iov_batch_size or req.nsegments
    lock_mode = gmr.access_mode.lock_mode(req.kind)
    for start in range(0, req.nsegments, B):
        with armci._op_epoch(gmr, win_rank, lock_mode):
            for i in range(start, min(start + B, req.nsegments)):
                _one_segment(
                    armci, req, gmr.win, win_rank, int(disps[i]), int(req.loc_offsets[i])
                )


#: bound on the direct-method layout memo below (entries, LRU eviction)
IOV_DATATYPE_CACHE_MAX = 128

#: (elem name, block length, displacement bytes) -> committed hindexed type.
#: GA's gather/scatter phases replay the same IOV layouts (identical
#: displacement vectors) many times per iteration; the displacement array's
#: raw bytes key the memo so a hit costs one hash of an int64 buffer
#: instead of rebuilding + re-flattening a thousand-segment datatype.
_iov_dt_cache: "OrderedDict[tuple, dt.Datatype]" = OrderedDict()


def _hindexed_cached(blocks: int, disps: np.ndarray, elem: dt.Datatype) -> dt.Datatype:
    key = (elem.name, blocks, disps.tobytes())
    hit = _iov_dt_cache.get(key)
    if hit is not None:
        _iov_dt_cache.move_to_end(key)
        return hit.commit()  # re-commit in case a caller free()d it
    built = dt.hindexed([blocks] * len(disps), disps.tolist(), elem).commit()
    _iov_dt_cache[key] = built
    if len(_iov_dt_cache) > IOV_DATATYPE_CACHE_MAX:
        _iov_dt_cache.popitem(last=False)
    return built


def iov_datatype_cache_clear() -> None:
    """Drop all memoised IOV layouts (test/bench hook)."""
    _iov_dt_cache.clear()


def iov_datatype_cache_len() -> int:
    return len(_iov_dt_cache)


def _direct(armci: "Armci", req: IovRequest) -> None:
    """One RMA op with indexed datatypes describing both layouts (§VI-A)."""
    gmr = _require_single_gmr(armci, req, "direct")
    win_rank = gmr.win_rank_of_absolute(req.rank)
    base = gmr.bases[win_rank]
    n = req.seg_bytes
    elem = dt.BYTE if req.kind != "acc" else dt.from_numpy_dtype(req.acc_dtype)
    if req.kind == "acc" and n % elem.size:
        raise ArgumentError(
            f"accumulate IOV: segment of {n} bytes is not a whole number of "
            f"{elem.name} elements"
        )
    blocks = n // elem.size
    target_t = _hindexed_cached(
        blocks, np.asarray(req.rem_addrs - base, dtype=np.int64), elem
    )
    origin_t = _hindexed_cached(
        blocks, np.asarray(req.loc_offsets, dtype=np.int64), elem
    )
    lock_mode = gmr.access_mode.lock_mode(req.kind)
    with armci._op_epoch(gmr, win_rank, lock_mode):
        if req.kind == "put":
            gmr.win.put(
                req.local, win_rank, 0,
                target_datatype=target_t, origin_datatype=origin_t,
            )
        elif req.kind == "get":
            gmr.win.get(
                req.local, win_rank, 0,
                target_datatype=target_t, origin_datatype=origin_t,
            )
        else:
            gmr.win.accumulate(
                req.local, win_rank, 0, op="MPI_SUM",
                target_datatype=target_t, origin_datatype=origin_t,
            )


def _require_single_gmr(armci: "Armci", req: IovRequest, method: str) -> "Gmr":
    gmr = _resolve_single_gmr(armci, req)
    if gmr is None:
        raise ArgumentError(
            f"IOV {method} method requires all segments in one GMR; "
            "use method='conservative' or 'auto' (§VI-A)"
        )
    return gmr
