"""ARMCI's message layer: the ``armci_msg_*`` helpers GA builds on.

Besides one-sided operations, ARMCI exports a small two-sided/collective
message surface (§V-D mentions ``ARMCI_Send``/``ARMCI_Recv``/
``ARMCI_Barrier``) that GA's internals use for bootstrap, global sums
(``armci_msg_dgop``/``igop``), and broadcast (``armci_msg_brdcst``).
They are thin wrappers over the runtime's communicator — which is the
paper's interoperability point (§I impact 2): with ARMCI-MPI, these ride
the *same* MPI runtime as the one-sided traffic instead of a second
communication stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..mpi.errors import ArgumentError

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci

#: reduction names accepted by armci_msg_gop (ARMCI's strings)
_GOP_OPS = {
    "+": "MPI_SUM",
    "*": "MPI_PROD",
    "max": "MPI_MAX",
    "min": "MPI_MIN",
    "absmax": "MPI_MAX",
    "absmin": "MPI_MIN",
}


def msg_snd(armci: "Armci", tag: int, buf: np.ndarray, dest: int) -> None:
    """ARMCI_Send: blocking two-sided send of a typed buffer."""
    armci.world.send(np.ascontiguousarray(buf), dest=dest, tag=tag)


def msg_rcv(armci: "Armci", tag: int, buf: np.ndarray, source: int) -> int:
    """ARMCI_Recv: blocking receive into ``buf``; returns byte count."""
    status = armci.world.recv(buf, source=source, tag=tag)
    return status.count


def msg_brdcst(armci: "Armci", buf: np.ndarray, root: int) -> None:
    """armci_msg_brdcst: broadcast a typed buffer from ``root``."""
    armci.world.bcast(buf, root=root)


def msg_barrier(armci: "Armci") -> None:
    """armci_msg_barrier: process barrier WITHOUT fence semantics.

    (ARMCI_Barrier = fence_all + barrier lives on the main API; the msg
    layer's barrier is the bare process barrier GA uses internally.)
    """
    armci.world.barrier()


def _gop(armci: "Armci", values: np.ndarray, op: str) -> np.ndarray:
    try:
        mpi_op = _GOP_OPS[op]
    except KeyError:
        raise ArgumentError(
            f"unknown gop op {op!r}; choose from {sorted(_GOP_OPS)}"
        ) from None
    data = np.ascontiguousarray(values)
    if op in ("absmax", "absmin"):
        data = np.abs(data)
    return armci.world.allreduce(data, op=mpi_op)


def msg_dgop(armci: "Armci", values: Sequence[float], op: str = "+") -> np.ndarray:
    """armci_msg_dgop: double-precision global operation (allreduce)."""
    return _gop(armci, np.asarray(values, dtype="f8"), op)


def msg_igop(armci: "Armci", values: Sequence[int], op: str = "+") -> np.ndarray:
    """armci_msg_igop: integer global operation (allreduce)."""
    return _gop(armci, np.asarray(values, dtype="i8"), op)


def msg_llgop(armci: "Armci", values: Sequence[int], op: str = "+") -> np.ndarray:
    """armci_msg_lgop: 64-bit integer global operation."""
    return _gop(armci, np.asarray(values, dtype="i8"), op)
