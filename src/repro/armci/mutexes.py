"""ARMCI mutexes via the Latham et al. RMA queueing algorithm (§V-D).

Each process hosts ``count`` mutexes; mutex ``m`` on host ``h`` is backed
by a byte vector ``B[0..nproc-1]`` in ``h``'s slice of an MPI window.

* **lock**: within ONE exclusive epoch, set ``B[me] = 1`` and fetch all
  other entries (the put and the get do not overlap, so this is a legal
  epoch).  If every other entry is 0 the lock is acquired; otherwise the
  process is now *enqueued* and blocks in an ``MPI_Recv`` from a
  wildcard source — waiting locally, generating **no network traffic**.
* **unlock**: within one exclusive epoch, set ``B[me] = 0`` and fetch the
  rest; scan circularly starting at ``me + 1`` (fairness); if a waiter is
  found, forward the mutex with a zero-byte notification message.

The handoff message *is* the lock transfer: the dequeued process owns
the mutex without touching the byte vector again.
"""

from __future__ import annotations

import numpy as np

from ..mpi import datatypes as dt
from ..mpi.comm import Comm
from ..mpi.errors import ArgumentError
from ..mpi.p2p import ANY_SOURCE
from ..mpi.window import LOCK_EXCLUSIVE, Win

__all__ = ["MutexSet"]

#: tag space for mutex handoff notifications (one tag per mutex index)
_HANDOFF_TAG_BASE = 800_000


class MutexSet:
    """``count`` mutexes hosted on every process of a communicator."""

    def __init__(self, comm: Comm, count: int, win: Win):
        self.comm = comm
        self.count = count
        self._win = win
        self._destroyed = False

    @classmethod
    def create(cls, comm: Comm, count: int) -> "MutexSet":
        """Collective creation (ARMCI_Create_mutexes)."""
        if count < 0:
            raise ArgumentError(f"negative mutex count {count}")
        # isolate handoff traffic from application messages
        mcomm = comm.dup()
        local = np.zeros(count * comm.size, dtype=np.uint8)
        win = Win.create(mcomm, local)
        return cls(mcomm, count, win)

    def destroy(self) -> None:
        """Collective destruction (ARMCI_Destroy_mutexes)."""
        self.comm.barrier()
        self._win.free()
        self._destroyed = True

    # -- the algorithm -----------------------------------------------------------
    def _check(self, mutex: int, host: int) -> None:
        if self._destroyed:
            raise ArgumentError("mutex set already destroyed")
        if not 0 <= mutex < self.count:
            raise ArgumentError(f"mutex {mutex} not in [0, {self.count})")
        if not 0 <= host < self.comm.size:
            raise ArgumentError(f"mutex host {host} not in [0, {self.comm.size})")

    def _others_datatype(self, me: int) -> "dt.Datatype | None":
        """Indexed type covering B[0..nproc-1] except entry ``me``."""
        n = self.comm.size
        disps = [i for i in range(n) if i != me]
        if not disps:
            return None
        return dt.indexed_block(1, disps, dt.BYTE).commit()

    def lock(self, mutex: int, host: int) -> None:
        """Acquire mutex ``mutex`` hosted on process ``host`` (blocking)."""
        self._check(mutex, host)
        me = self.comm.rank
        n = self.comm.size
        base = mutex * n
        others_t = self._others_datatype(me)
        waiting = np.zeros(max(n - 1, 1), dtype=np.uint8)
        # one exclusive epoch: B[me] <- 1, fetch all other entries
        self._win.lock(host, LOCK_EXCLUSIVE)
        self._win.put(np.ones(1, dtype=np.uint8), host, base + me)
        if others_t is not None:
            self._win.get(
                waiting[: n - 1], host, base,
                target_datatype=others_t,
            )
        self._win.unlock(host)
        if others_t is not None and waiting[: n - 1].any():
            # enqueued: wait locally for the zero-byte handoff (§V-D)
            _, status = self.comm.recv(
                source=ANY_SOURCE, tag=_HANDOFF_TAG_BASE + host * self.count + mutex
            )
            assert status.count == 0

    def trylock(self, mutex: int, host: int) -> bool:
        """Nonblocking acquire; on failure the request is *withdrawn*.

        Not part of the paper's ARMCI surface but trivially expressible
        in the same algorithm: if others are waiting, clear our entry
        again (one more exclusive epoch) instead of blocking.  Note the
        withdrawal can race a handoff; the algorithm stays correct
        because the unlocker scans the vector under the exclusive lock
        after we cleared our bit — but a handoff already sent must be
        consumed, so trylock drains a pending notification if the clear
        lost the race.
        """
        self._check(mutex, host)
        me = self.comm.rank
        n = self.comm.size
        base = mutex * n
        others_t = self._others_datatype(me)
        waiting = np.zeros(max(n - 1, 1), dtype=np.uint8)
        self._win.lock(host, LOCK_EXCLUSIVE)
        self._win.put(np.ones(1, dtype=np.uint8), host, base + me)
        if others_t is not None:
            self._win.get(waiting[: n - 1], host, base, target_datatype=others_t)
        self._win.unlock(host)
        if others_t is None or not waiting[: n - 1].any():
            return True
        # Withdraw: clear our bit under an exclusive epoch, THEN check for
        # a handoff.  A handoff can only have been sent by an unlocker
        # whose exclusive epoch observed our bit set — i.e. an epoch that
        # serialised *before* our clear — so after the clear the message,
        # if any, is already visible and the check is race-free.
        tag = _HANDOFF_TAG_BASE + host * self.count + mutex
        self._win.lock(host, LOCK_EXCLUSIVE)
        self._win.put(np.zeros(1, dtype=np.uint8), host, base + me)
        self._win.unlock(host)
        if self.comm.iprobe(tag=tag) is not None:
            self.comm.recv(source=ANY_SOURCE, tag=tag)
            return True  # the handoff won the race: we own the mutex
        return False

    def unlock(self, mutex: int, host: int) -> None:
        """Release the mutex, forwarding it to the next waiter if any."""
        self._check(mutex, host)
        me = self.comm.rank
        n = self.comm.size
        base = mutex * n
        others_t = self._others_datatype(me)
        waiting = np.zeros(max(n - 1, 1), dtype=np.uint8)
        self._win.lock(host, LOCK_EXCLUSIVE)
        self._win.put(np.zeros(1, dtype=np.uint8), host, base + me)
        if others_t is not None:
            self._win.get(waiting[: n - 1], host, base, target_datatype=others_t)
        self._win.unlock(host)
        if others_t is None:
            return
        # reconstruct the full vector (entry `me` removed by the datatype)
        full = np.zeros(n, dtype=np.uint8)
        idx = [i for i in range(n) if i != me]
        full[idx] = waiting[: n - 1]
        # fairness: scan circularly starting at me+1 (§V-D)
        for step in range(1, n):
            j = (me + step) % n
            if full[j]:
                self.comm.send(
                    b"",
                    dest=j,
                    tag=_HANDOFF_TAG_BASE + host * self.count + mutex,
                )
                return
