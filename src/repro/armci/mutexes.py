"""ARMCI mutexes via the Latham et al. RMA queueing algorithm (§V-D).

Each process hosts ``count`` mutexes; mutex ``m`` on host ``h`` is backed
by a byte vector ``B[0..nproc-1]`` in ``h``'s slice of an MPI window.

* **lock**: within ONE exclusive epoch, set ``B[me] = 1`` and fetch all
  other entries (the put and the get do not overlap, so this is a legal
  epoch).  If every other entry is 0 the lock is acquired; otherwise the
  process is now *enqueued* and blocks in an ``MPI_Recv`` from a
  wildcard source — waiting locally, generating **no network traffic**.
* **unlock**: within one exclusive epoch, set ``B[me] = 0`` and fetch the
  rest; scan circularly starting at ``me + 1`` (fairness); if a waiter is
  found, forward the mutex with a zero-byte notification message.

The handoff message *is* the lock transfer: the dequeued process owns
the mutex without touching the byte vector again.
"""

from __future__ import annotations

import numpy as np

from ..mpi import datatypes as dt
from ..mpi.comm import Comm
from ..mpi.errors import ArgumentError, OpTimeoutError, TargetFailedError
from ..mpi.p2p import ANY_SOURCE
from ..mpi.runtime import RankFailedError
from ..mpi.window import LOCK_EXCLUSIVE, Win

__all__ = ["MutexHolderFailed", "MutexSet"]

#: tag space for mutex handoff notifications (one tag per mutex index)
_HANDOFF_TAG_BASE = 800_000

#: handoff payload marker: the previous holder died mid-critical-section
_HOLDER_DIED = "MUTEX_HOLDER_DIED"


class MutexHolderFailed(TargetFailedError):
    """The previous holder of a mutex died inside its critical section.

    Raised by :meth:`MutexSet.lock` in the *next waiter* after the
    runtime's recovery hook repaired the Latham byte vector and forwarded
    the handoff on the dead holder's behalf.  The catching rank **owns
    the mutex** when this is raised: the protected state may be
    inconsistent (the holder died mid-update), so the waiter must decide
    — re-validate and continue, or unlock and give up — but either way
    it must eventually call :meth:`MutexSet.unlock`.

    Attributes: ``mutex``/``host`` identify the mutex, ``dead_rank`` is
    the failed holder's rank in the mutex communicator.
    """

    def __init__(self, mutex: int, host: int, dead_rank: int):
        super().__init__(
            f"holder (rank {dead_rank}) of mutex {mutex} hosted on {host} "
            "died in its critical section; you now hold the repaired mutex"
        )
        self.mutex = mutex
        self.host = host
        self.dead_rank = dead_rank


class MutexSet:
    """``count`` mutexes hosted on every process of a communicator."""

    def __init__(self, comm: Comm, count: int, win: Win):
        self.comm = comm
        self.count = count
        self._win = win
        self._destroyed = False
        # Holder tracking for death recovery: (host, mutex) -> holder's
        # comm rank.  Lives in runtime.shared keyed by the window id
        # because each rank constructs its own MutexSet around the ONE
        # shared window — state and the death hook must be per-window,
        # not per-instance.
        rt = comm.runtime
        key = ("mutex_holders", win.win_id)
        # the holders dict may predate this MutexSet (on the proc
        # backend a peer's holder-note broadcast can create it first),
        # so hook registration is tracked by a separate marker
        hooked = ("mutex_hooked", win.win_id)
        with rt.cond:
            self._holders: dict[tuple[int, int], int] = rt.shared.setdefault(key, {})
            if hooked not in rt.shared:
                rt.shared[hooked] = True
                rt.add_death_hook(self._on_rank_death)

    def _on_rank_death(self, world_rank: int) -> None:
        """Latham byte-vector repair for a failed rank (under runtime cond).

        Models a surviving recovery agent: clears every bit the dead
        rank set (its queue entries and, if it held a mutex, its holder
        bit), then — for each mutex it held — rescans the vector from
        the dead rank's successor and forwards the handoff with a
        :data:`_HOLDER_DIED` payload so the next waiter wakes with a
        structured :class:`MutexHolderFailed` diagnosis.
        """
        if self._destroyed:
            return
        group = self.comm.group
        if not group.contains_world(world_rank):
            return
        dead = group.rank_of_world(world_rank)
        n = self.comm.size
        # 1. clear every bit the dead rank set, on every host's vector
        for host in range(n):
            vec = self._win.exposed_buffer(host)
            for mutex in range(self.count):
                vec[mutex * n + dead] = 0
        # 2. forward each mutex the dead rank held to its next waiter
        for (host, mutex), holder in list(self._holders.items()):
            if holder != dead:
                continue
            vec = self._win.exposed_buffer(host)
            base = mutex * n
            for step in range(1, n):
                j = (dead + step) % n
                if vec[base + j]:
                    self._holders[(host, mutex)] = j
                    # on the proc backend this hook runs in EVERY
                    # surviving process (each pump marks the death);
                    # only the process hosting waiter j may inject the
                    # handoff into its local p2p replica
                    rt = self.comm.runtime
                    dst_world = group.world_rank(j)
                    if rt.local_ranks is None or dst_world in rt.local_ranks:
                        self.comm._p2p.post_send(
                            world_rank,
                            dst_world,
                            _HANDOFF_TAG_BASE + host * self.count + mutex,
                            (_HOLDER_DIED, dead),
                        )
                    break
            else:
                del self._holders[(host, mutex)]

    def reclaim(self) -> "list[tuple[int, int, int]]":
        """Reclaim ownership of every mutex whose holder has died.

        Belt-and-braces sweep for the recovery protocol: the death hook
        repairs vectors and forwards handoffs *at death time*, but a
        holder entry can outlive the hook when the death hook chain was
        cut short (e.g. a second failure during repair) or when the dead
        holder had no waiter to forward to yet the entry was re-created
        by an in-flight lock.  After this sweep no dead rank owns a
        mutex.  Returns ``(host, mutex, dead_holder_rank)`` triples for
        every reclaimed entry (ranks in the mutex communicator).
        """
        rt = self.comm.runtime
        reclaimed: list[tuple[int, int, int]] = []
        with rt.cond:
            group = self.comm.group
            dead = {
                group.rank_of_world(w)
                for w in rt.dead_ranks
                if group.contains_world(w)
            }
            if not dead:
                return reclaimed
            for (host, mutex), holder in sorted(self._holders.items()):
                if holder in dead:
                    del self._holders[(host, mutex)]
                    reclaimed.append((host, mutex, holder))
        return reclaimed

    @classmethod
    def create(cls, comm: Comm, count: int) -> "MutexSet":
        """Collective creation (ARMCI_Create_mutexes)."""
        if count < 0:
            raise ArgumentError(f"negative mutex count {count}")
        # isolate handoff traffic from application messages
        mcomm = comm.dup()
        local = np.zeros(count * comm.size, dtype=np.uint8)
        win = Win.create(mcomm, local)
        return cls(mcomm, count, win)

    def destroy(self) -> None:
        """Collective destruction (ARMCI_Destroy_mutexes)."""
        self.comm.barrier()
        self._win.free()
        self._destroyed = True

    # -- the algorithm -----------------------------------------------------------
    def _check(self, mutex: int, host: int) -> None:
        if self._destroyed:
            raise ArgumentError("mutex set already destroyed")
        if not 0 <= mutex < self.count:
            raise ArgumentError(f"mutex {mutex} not in [0, {self.count})")
        if not 0 <= host < self.comm.size:
            raise ArgumentError(f"mutex host {host} not in [0, {self.comm.size})")

    def _others_datatype(self, me: int) -> "dt.Datatype | None":
        """Indexed type covering B[0..nproc-1] except entry ``me``."""
        n = self.comm.size
        disps = [i for i in range(n) if i != me]
        if not disps:
            return None
        return dt.indexed_block(1, disps, dt.BYTE).commit()

    def _note_holder(self, host: int, mutex: int, holder: "int | None") -> None:
        """Record a holder change; must hold ``runtime.cond``.

        Also publishes the change through the communicator's backend
        hook (:meth:`~repro.mpi.comm.Comm._holder_note`): a no-op on the
        thread backend, a peer broadcast on the proc backend so every
        process's death hooks see remotely-made acquisitions.
        """
        if holder is None:
            self._holders.pop((host, mutex), None)
        else:
            self._holders[(host, mutex)] = holder
        self.comm._holder_note(self._win.win_id, host, mutex, holder)

    def _await_handoff(self, req, mutex: int, host: int) -> None:
        """Wait for the handoff message with per-op timeout + bounded retry.

        Each attempt waits up to the runtime's ``op_timeout_s`` (when
        configured), then sleeps a seeded exponential backoff before
        re-waiting; after ``op_retries`` attempts the final
        :class:`OpTimeoutError` propagates to the caller, which
        withdraws the queued request.
        """
        rt = self.comm.runtime
        attempt = 0
        with rt.cond:
            while True:
                try:
                    rt.wait_for(
                        lambda: req._done,
                        timeout_s=rt.op_timeout_s,
                        what=f"mutex {mutex}@{host} handoff",
                    )
                    return
                except OpTimeoutError:
                    if attempt >= rt.op_retries:
                        raise
                    rt.backoff(attempt)
                    attempt += 1
                except RankFailedError:
                    # proc backend: a peer death poisons every wait in
                    # this process, but the death hook may already have
                    # forwarded the handoff to us — an owned mutex must
                    # not be dropped on the floor
                    if req._done:
                        return
                    raise

    def lock(self, mutex: int, host: int) -> None:
        """Acquire mutex ``mutex`` hosted on process ``host`` (blocking).

        May raise :class:`MutexHolderFailed` — the calling rank then
        *owns* the repaired mutex and must still unlock it — or
        :class:`~repro.mpi.errors.OpTimeoutError` after the bounded
        retry budget, in which case the request has been withdrawn and
        nothing is owned.
        """
        self._check(mutex, host)
        me = self.comm.rank
        n = self.comm.size
        base = mutex * n
        rt = self.comm.runtime
        others_t = self._others_datatype(me)
        waiting = np.zeros(max(n - 1, 1), dtype=np.uint8)
        # one exclusive epoch: B[me] <- 1, fetch all other entries
        self._win.lock(host, LOCK_EXCLUSIVE)
        self._win.put(np.ones(1, dtype=np.uint8), host, base + me)
        if others_t is not None:
            self._win.get(
                waiting[: n - 1], host, base,
                target_datatype=others_t,
            )
        self._win.unlock(host)
        if others_t is not None and waiting[: n - 1].any():
            # enqueued: wait locally for the handoff (§V-D), bounded by
            # the per-op timeout and seeded-backoff retry budget
            tag = _HANDOFF_TAG_BASE + host * self.count + mutex
            req = self.comm.irecv(tag=tag)
            try:
                self._await_handoff(req, mutex, host)
            except OpTimeoutError:
                # withdraw (trylock-style): clear our bit, then check
                # whether a handoff won the race — the posted receive
                # would already have matched it
                self._win.lock(host, LOCK_EXCLUSIVE)
                self._win.put(np.zeros(1, dtype=np.uint8), host, base + me)
                self._win.unlock(host)
                done, _ = req.test()
                if not done:
                    raise
            status = req.wait()
            with rt.cond:
                self._note_holder(host, mutex, me)
            payload = status.payload
            if isinstance(payload, tuple) and payload and payload[0] == _HOLDER_DIED:
                raise MutexHolderFailed(mutex, host, payload[1])
            return
        with rt.cond:
            self._note_holder(host, mutex, me)

    def trylock(self, mutex: int, host: int) -> bool:
        """Nonblocking acquire; on failure the request is *withdrawn*.

        Not part of the paper's ARMCI surface but trivially expressible
        in the same algorithm: if others are waiting, clear our entry
        again (one more exclusive epoch) instead of blocking.  Note the
        withdrawal can race a handoff; the algorithm stays correct
        because the unlocker scans the vector under the exclusive lock
        after we cleared our bit — but a handoff already sent must be
        consumed, so trylock drains a pending notification if the clear
        lost the race.
        """
        self._check(mutex, host)
        me = self.comm.rank
        n = self.comm.size
        base = mutex * n
        others_t = self._others_datatype(me)
        waiting = np.zeros(max(n - 1, 1), dtype=np.uint8)
        self._win.lock(host, LOCK_EXCLUSIVE)
        self._win.put(np.ones(1, dtype=np.uint8), host, base + me)
        if others_t is not None:
            self._win.get(waiting[: n - 1], host, base, target_datatype=others_t)
        self._win.unlock(host)
        if others_t is None or not waiting[: n - 1].any():
            with self.comm.runtime.cond:
                self._note_holder(host, mutex, me)
            return True
        # Withdraw: clear our bit under an exclusive epoch, THEN check for
        # a handoff.  A handoff can only have been sent by an unlocker
        # whose exclusive epoch observed our bit set — i.e. an epoch that
        # serialised *before* our clear — so after the clear the message,
        # if any, is already visible and the check is race-free.
        tag = _HANDOFF_TAG_BASE + host * self.count + mutex
        self._win.lock(host, LOCK_EXCLUSIVE)
        self._win.put(np.zeros(1, dtype=np.uint8), host, base + me)
        self._win.unlock(host)
        if self.comm.iprobe(tag=tag) is not None:
            self.comm.recv(source=ANY_SOURCE, tag=tag)
            with self.comm.runtime.cond:
                self._note_holder(host, mutex, me)
            return True  # the handoff won the race: we own the mutex
        return False

    def unlock(self, mutex: int, host: int) -> None:
        """Release the mutex, forwarding it to the next waiter if any."""
        self._check(mutex, host)
        me = self.comm.rank
        n = self.comm.size
        base = mutex * n
        rt = self.comm.runtime
        others_t = self._others_datatype(me)
        waiting = np.zeros(max(n - 1, 1), dtype=np.uint8)
        self._win.lock(host, LOCK_EXCLUSIVE)
        self._win.put(np.zeros(1, dtype=np.uint8), host, base + me)
        if others_t is not None:
            self._win.get(waiting[: n - 1], host, base, target_datatype=others_t)
        self._win.unlock(host)
        if others_t is None:
            with rt.cond:
                self._note_holder(host, mutex, None)
            return
        # reconstruct the full vector (entry `me` removed by the datatype)
        full = np.zeros(n, dtype=np.uint8)
        idx = [i for i in range(n) if i != me]
        full[idx] = waiting[: n - 1]
        # fairness: scan circularly starting at me+1 (§V-D)
        for step in range(1, n):
            j = (me + step) % n
            if full[j]:
                # the handoff message IS the lock transfer: ownership
                # moves to j at send time (recovery relies on this)
                with rt.cond:
                    self._note_holder(host, mutex, j)
                self.comm.send(
                    b"",
                    dest=j,
                    tag=_HANDOFF_TAG_BASE + host * self.count + mutex,
                )
                return
        with rt.cond:
            self._note_holder(host, mutex, None)
