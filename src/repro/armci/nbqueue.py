"""Nonblocking-operation coalescing queue for the MPI-3 flush datapath.

Under ``datapath="mpi3"`` every GMR keeps a ``lock_all`` epoch open for
its whole lifetime, so a nonblocking operation does not need an epoch of
its own: it can simply be *queued* at the origin and issued later, with
one ``flush(target)`` completing an arbitrary batch.  This is the
DART-MPI handle model (PAPERS.md): deferral buys both communication/
computation overlap and the chance to merge many small operations into
few larger ones before they touch the network.

Queue discipline (per ``(origin, gmr, target)``, FIFO):

* **snapshot at enqueue** — put/acc contributions are copied when the
  operation is queued, so the user may reuse the local buffer
  immediately (a stronger guarantee than ARMCI requires);
* **pairwise non-conflicting invariant** — queued entries for one
  target never overlap in a way MPI forbids within an epoch (put/put,
  put/get, put-or-get/acc).  An enqueue that would violate this first
  drains the target, which also preserves ARMCI location consistency:
  per-location program order per target is maintained;
* **adjacency coalescing** — a put/acc exactly adjacent to the queue
  tail of the same kind (and element type, for acc) is merged into it,
  up to ``config.nb_coalesce_threshold`` bytes;
* **bounded depth** — the queue auto-drains beyond
  ``config.nb_max_pending`` entries per target;
* **drain = issue + one flush** — entries are issued into the standing
  ``lock_all`` epoch and completed by a single per-target flush;
  staged-get write-back runs after the flush delivers.

Failures (a dead target, a revoked communicator, a range error) are
recorded on every handle of the failing entry; ``NbHandle.wait`` raises
them, and completion points that have no handle to blame (fence,
barrier, free, a blocking op's pre-drain) re-raise the first one
directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci, NbHandle
    from .buffers import LocalBuffer
    from .gmr import Gmr


__all__ = ["NbQueue"]


class _NbEntry:
    """One queued (possibly merged) nonblocking operation."""

    __slots__ = ("kind", "gmr", "win_rank", "disp", "nbytes", "data",
                 "acc_dtype", "lb", "handles")

    def __init__(self, kind: str, gmr: "Gmr", win_rank: int, disp: int,
                 nbytes: int, data: "np.ndarray | None",
                 acc_dtype: "np.dtype | None", lb: "LocalBuffer | None"):
        self.kind = kind
        self.gmr = gmr
        self.win_rank = win_rank
        self.disp = disp
        self.nbytes = nbytes
        self.data = data
        self.acc_dtype = acc_dtype
        self.lb = lb
        self.handles: list["NbHandle"] = []

    def overlaps(self, disp: int, nbytes: int) -> bool:
        return disp < self.disp + self.nbytes and self.disp < disp + nbytes

    def conflicts(self, kind: str, disp: int, nbytes: int) -> bool:
        """Would issuing ``kind`` over [disp, disp+nbytes) alongside this
        entry in one epoch be erroneous under MPI's conflict rules?"""
        if not self.overlaps(disp, nbytes):
            return False
        if self.kind == "get" and kind == "get":
            return False  # overlapping reads are permitted
        if self.kind == "acc" and kind == "acc":
            return False  # same-op (MPI_SUM) accumulates may overlap
        return True


class NbQueue:
    """Per-origin deferred-operation queues of one MPI-3-datapath Armci."""

    def __init__(self, armci: "Armci"):
        self._armci = armci
        #: (origin, gmr_id, win_rank) -> FIFO of entries
        self._queues: dict[tuple[int, int, int], list[_NbEntry]] = {}
        #: enqueued - drained, for stats/tests
        self.coalesced = 0
        self.drains = 0

    # -- sanitizer plumbing ---------------------------------------------------------
    def _san_event(self, event: str, gmr: "Gmr", target: int, *args) -> None:
        rt = self._armci.world.runtime
        san = rt.sanitizer
        if san is not None:
            with rt.cond:
                getattr(san, event)(gmr.win, self._armci.my_id, target, *args)

    # -- enqueue -------------------------------------------------------------------
    def enqueue(
        self,
        kind: str,
        gmr: "Gmr",
        win_rank: int,
        disp: int,
        nbytes: int,
        data: "np.ndarray | None" = None,
        acc_dtype: "np.dtype | None" = None,
        lb: "LocalBuffer | None" = None,
    ) -> "NbHandle":
        from .api import NbHandle

        armci = self._armci
        origin = armci.my_id
        target_abs = gmr.group.absolute_id(win_rank)
        if nbytes == 0:
            return NbHandle(kind=kind, target=target_abs)
        key = (origin, gmr.gmr_id, win_rank)
        queue = self._queues.setdefault(key, [])
        if any(e.conflicts(kind, disp, nbytes) for e in queue):
            # conflicting with a queued op: complete the queue first so
            # per-location program order (location consistency) holds
            self.drain(gmr, win_rank, raise_errors=True)
            queue = self._queues.setdefault(key, [])
        handle = NbHandle(
            kind=kind,
            target=target_abs,
            waiter=lambda: self.drain(gmr, win_rank, raise_errors=False),
        )
        merged = self._try_merge(queue, kind, disp, nbytes, data, acc_dtype)
        if merged is not None:
            merged.handles.append(handle)
            self.coalesced += 1
        else:
            entry = _NbEntry(kind, gmr, win_rank, disp, nbytes, data, acc_dtype, lb)
            entry.handles.append(handle)
            queue.append(entry)
        self._san_event("on_nb_enqueue", gmr, win_rank, kind)
        if len(queue) > armci.config.nb_max_pending:
            self.drain(gmr, win_rank, raise_errors=True)
        return handle

    def _try_merge(self, queue, kind, disp, nbytes, data, acc_dtype) -> "_NbEntry | None":
        """Merge into the queue tail when exactly adjacent; else None."""
        limit = self._armci.config.nb_coalesce_threshold
        if not queue or limit <= 0 or kind == "get":
            return None
        tail = queue[-1]
        if (
            tail.kind != kind
            or tail.acc_dtype != acc_dtype
            or tail.disp + tail.nbytes != disp
            or tail.nbytes + nbytes > limit
        ):
            return None
        tail.data = np.concatenate([tail.data, data])
        tail.nbytes += nbytes
        return tail

    # -- drain ---------------------------------------------------------------------
    def pending(self, gmr: "Gmr | None" = None, win_rank: "int | None" = None) -> int:
        """Queued entry count for the calling rank (optionally filtered)."""
        origin = self._armci.my_id
        total = 0
        for (o, gid, wr), queue in self._queues.items():
            if o != origin:
                continue
            if gmr is not None and gid != gmr.gmr_id:
                continue
            if win_rank is not None and wr != win_rank:
                continue
            total += len(queue)
        return total

    def drain(self, gmr: "Gmr", win_rank: int, raise_errors: bool = True) -> None:
        """Issue and flush-complete every queued op for one target."""
        origin = self._armci.my_id
        key = (origin, gmr.gmr_id, win_rank)
        queue = self._queues.pop(key, None)
        if not queue:
            return
        self.drains += 1
        win = gmr.win
        first_error: "BaseException | None" = None
        issued: list[_NbEntry] = []
        for entry in queue:
            try:
                if entry.kind == "put":
                    win.put(entry.data, win_rank, entry.disp)
                elif entry.kind == "acc":
                    win.accumulate(entry.data, win_rank, entry.disp, op="MPI_SUM")
                else:
                    win.get(entry.lb.data, win_rank, entry.disp)
            except Exception as exc:
                for h in entry.handles:
                    h._fail(exc)
                if first_error is None:
                    first_error = exc
            else:
                issued.append(entry)
        if issued:
            try:
                win.flush(win_rank)
            except Exception as exc:
                for entry in issued:
                    for h in entry.handles:
                        h._fail(exc)
                issued = []
                if first_error is None:
                    first_error = exc
        for entry in issued:
            try:
                if entry.lb is not None:
                    entry.lb.finish()
            except Exception as exc:
                for h in entry.handles:
                    h._fail(exc)
                if first_error is None:
                    first_error = exc
            else:
                for h in entry.handles:
                    h._complete()
        self._san_event("on_nb_drain", gmr, win_rank)
        if first_error is not None and raise_errors:
            raise first_error

    def drain_target(self, target_abs: int, raise_errors: bool = True) -> None:
        """Complete all queued ops of the caller addressed to one process."""
        origin = self._armci.my_id
        for (o, _gid, wr), queue in list(self._queues.items()):
            if o != origin or not queue:
                continue
            gmr = queue[0].gmr
            if gmr.group.absolute_id(wr) == target_abs:
                self.drain(gmr, wr, raise_errors=raise_errors)

    def drain_gmr(self, gmr: "Gmr", raise_errors: bool = True) -> None:
        origin = self._armci.my_id
        for (o, gid, wr) in list(self._queues):
            if o == origin and gid == gmr.gmr_id:
                self.drain(gmr, wr, raise_errors=raise_errors)

    def drain_all(self, raise_errors: bool = True) -> None:
        origin = self._armci.my_id
        first_error: "BaseException | None" = None
        for (o, _gid, wr), queue in list(self._queues.items()):
            if o != origin or not queue:
                continue
            try:
                self.drain(queue[0].gmr, wr, raise_errors=raise_errors)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None and raise_errors:
            raise first_error

    # -- teardown ------------------------------------------------------------------
    def discard(self, exc: "BaseException | None" = None) -> None:
        """Drop every queue of the calling rank without issuing anything.

        Used on the recovery path: after a revoke the standing epochs
        are gone, so queued ops cannot be completed — their handles fail
        with ``exc`` (when given) so a later ``wait`` still reports the
        loss instead of silently succeeding.
        """
        origin = self._armci.my_id
        for key in [k for k in self._queues if k[0] == origin]:
            queue = self._queues.pop(key)
            for entry in queue:
                for h in entry.handles:
                    if exc is not None:
                        h._fail(exc)
                    else:
                        h._complete()
            if queue:
                self._san_event("on_nb_discard", queue[0].gmr, key[2])

    def audit_finalize(self) -> None:
        """Drained-queue-at-finalize invariant (sanitizer-reported).

        By the time finalize has freed every GMR, all queues must be
        empty — anything left means a completion point was skipped.
        """
        origin = self._armci.my_id
        for (o, _gid, wr), queue in list(self._queues.items()):
            if o != origin or not queue:
                continue
            self._san_event("on_nb_pending", queue[0].gmr, wr, len(queue))
