"""ARMCI atomic read-modify-write via mutexes (§V-D).

MPI-2 has no atomic RMW, and issuing a get and a put of the same
location within one epoch is erroneous (the read and write conflict).
The only portable route — the one the paper takes — is mutual exclusion:
each GMR owns a mutex, and an RMW is

    lock(GMR mutex) ; [epoch 1: get] ; compute ; [epoch 2: put] ; unlock

two full epochs plus two mutex messages, which is why the paper calls
this "a high-latency implementation" and why MPI-3's ``fetch_and_op``
(gated behind ``mpi3=True`` in our substrate) matters.  The MPI-3 fast
path is implemented in :meth:`~repro.armci.api.Armci.rmw` when the
windows were created in MPI-3 mode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..mpi.errors import ArgumentError
from ..mpi.window import LOCK_EXCLUSIVE
from .mutexes import MutexHolderFailed

if TYPE_CHECKING:  # pragma: no cover
    from .api import Armci
    from .gmr import GlobalPtr, Gmr


__all__ = [
    "FETCH_AND_ADD",
    "FETCH_AND_ADD_LONG",
    "SWAP",
    "SWAP_LONG",
    "rmw_dtype",
    "rmw_mutex_based",
    "rmw_mpi3",
    "rmw_flush",
]

#: ARMCI RMW operation names
FETCH_AND_ADD = "fetch_and_add"
FETCH_AND_ADD_LONG = "fetch_and_add_long"
SWAP = "swap"
SWAP_LONG = "swap_long"

_RMW_DTYPES = {
    FETCH_AND_ADD: np.dtype("i4"),
    FETCH_AND_ADD_LONG: np.dtype("i8"),
    SWAP: np.dtype("i4"),
    SWAP_LONG: np.dtype("i8"),
}


def rmw_dtype(op: str) -> np.dtype:
    try:
        return _RMW_DTYPES[op]
    except KeyError:
        raise ArgumentError(
            f"unknown RMW op {op!r}; choose from {sorted(_RMW_DTYPES)}"
        ) from None


def rmw_mutex_based(armci: "Armci", op: str, ptr: "GlobalPtr", value: int) -> int:
    """The §V-D two-epoch RMW under the GMR's mutex; returns the old value.

    Atomic only with respect to other ARMCI RMW operations — exactly the
    guarantee ARMCI documents (§V-D: "atomicity with respect to other
    operations is not guaranteed").
    """
    dtype = rmw_dtype(op)
    gmr = armci.table.require(ptr)
    win_rank, disp = gmr.displacement(ptr)
    if disp % dtype.itemsize:
        raise ArgumentError(
            f"RMW target {ptr} not aligned to {dtype} ({disp=} bytes)"
        )
    mutex = armci._gmr_mutex(gmr)
    # the GMR's single mutex is hosted on group rank 0 of its group
    host = 0
    try:
        mutex.lock(0, host)
    except MutexHolderFailed:
        # The previous holder died mid-RMW and recovery handed us the
        # repaired mutex.  The torn update (if any) is confined to the
        # dead rank's own operation, but this caller cannot know that a
        # priori — release the mutex and surface the typed diagnosis.
        mutex.unlock(0, host)
        raise
    try:
        old = np.zeros(1, dtype=dtype)
        # epoch 1: read
        gmr.win.lock(win_rank, LOCK_EXCLUSIVE)
        gmr.win.get(old, win_rank, disp)
        gmr.win.unlock(win_rank)
        # compute
        if op in (FETCH_AND_ADD, FETCH_AND_ADD_LONG):
            new = old + dtype.type(value)
        else:
            new = np.array([value], dtype=dtype)
        # epoch 2: write
        gmr.win.lock(win_rank, LOCK_EXCLUSIVE)
        gmr.win.put(new, win_rank, disp)
        gmr.win.unlock(win_rank)
    finally:
        mutex.unlock(0, host)
    armci.stats.rmw_ops += 1
    return int(old[0])


def rmw_mpi3(armci: "Armci", op: str, ptr: "GlobalPtr", value: int) -> int:
    """MPI-3 fast path: one fetch_and_op / compare-free swap (§VIII-B).

    Legacy per-call form (``mpi3=True`` without the mpi3 datapath): it
    opens a shared epoch of its own around the atomic.
    """
    from ..mpi import datatypes as dt

    dtype = rmw_dtype(op)
    gmr = armci.table.require(ptr)
    win_rank, disp = gmr.displacement(ptr)
    mpi_t = dt.from_numpy_dtype(dtype)
    gmr.win.lock(win_rank, "shared")
    try:
        if op in (FETCH_AND_ADD, FETCH_AND_ADD_LONG):
            old = gmr.win.fetch_and_op(value, win_rank, disp, mpi_t, op="MPI_SUM")
        else:
            old = gmr.win.fetch_and_op(value, win_rank, disp, mpi_t, op="MPI_REPLACE")
    finally:
        gmr.win.unlock(win_rank)
    armci.stats.rmw_ops += 1
    return int(old)


def rmw_flush(armci: "Armci", op: str, ptr: "GlobalPtr", value: int) -> int:
    """MPI-3 datapath RMW: fetch_and_op in the standing lock_all epoch.

    No mutex and no epoch of its own — the GMR's lock_all epoch (opened
    at allocation) hosts the atomic, and one per-target flush completes
    it.  This is the single-op protocol the paper's §V-D mutex design
    exists to approximate under MPI-2.
    """
    from ..mpi import datatypes as dt

    dtype = rmw_dtype(op)
    gmr = armci.table.require(ptr)
    win_rank, disp = gmr.displacement(ptr)
    mpi_t = dt.from_numpy_dtype(dtype)
    # per-location program order vs queued nb ops on this target
    armci._nbq.drain(gmr, win_rank)
    try:
        if op in (FETCH_AND_ADD, FETCH_AND_ADD_LONG):
            old = gmr.win.fetch_and_op(value, win_rank, disp, mpi_t, op="MPI_SUM")
        else:
            old = gmr.win.fetch_and_op(value, win_rank, disp, mpi_t, op="MPI_REPLACE")
    finally:
        gmr.win.flush(win_rank)
    armci.stats.rmw_ops += 1
    return int(old)
