"""ARMCI strided notation and its two translations (§VI-C, Table I).

ARMCI/GA strided notation describes an n-D patch transfer compactly:

=============  ==============================================
``src, dst``   base pointers
``sl``         stride levels (dimensionality - 1)
``count[]``    length ``sl+1``; ``count[0]`` is the contiguous
               byte length, ``count[i>0]`` are repetition counts
``src_strd[]`` source byte strides, length ``sl``
``dst_strd[]`` destination byte strides, length ``sl``
=============  ==============================================

Two translations are implemented, as in the paper:

1. **Algorithm 1** — the strided→IOV conversion: enumerate every
   contiguous segment's displacement.  :func:`algorithm1_iter` is a
   literal transcription of the paper's pseudocode (odometer index
   vector with carry propagation) used as the reference;
   :func:`segment_displacements` is the vectorised equivalent used in
   production (identical traversal order, verified by property tests).
2. **Direct subarray translation** — reconstruct the parent-array
   dimensions that are implicit in the stride vector and emit one MPI
   subarray datatype, handing the whole transfer to MPI as a single
   operation.  This "translation backwards" only works when strides
   nest evenly (``strides[i] % strides[i-1] == 0``), which is always
   true for GA-generated patches; otherwise we fall back to an
   hindexed datatype — still a single MPI operation, so it remains the
   *direct* method.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..mpi import datatypes as dt
from ..mpi.errors import ArgumentError


@dataclass(frozen=True)
class StridedSpec:
    """A validated (count, src_strides, dst_strides) strided descriptor."""

    count: tuple[int, ...]
    src_strides: tuple[int, ...]
    dst_strides: tuple[int, ...]

    def __post_init__(self) -> None:
        sl = self.stride_levels
        if len(self.src_strides) != sl or len(self.dst_strides) != sl:
            raise ArgumentError(
                f"stride arrays must have length {sl} (= len(count)-1); got "
                f"src={len(self.src_strides)} dst={len(self.dst_strides)}"
            )
        if not self.count:
            raise ArgumentError("count must have at least one entry")
        if any(c < 0 for c in self.count):
            raise ArgumentError(f"negative count: {self.count}")
        if any(s < 0 for s in self.src_strides + self.dst_strides):
            raise ArgumentError("negative strides are not supported")
        for name, strides in (("src", self.src_strides), ("dst", self.dst_strides)):
            if sl and self.count[0] > strides[0] and self.count[0] and strides[0]:
                raise ArgumentError(
                    f"{name}: contiguous length count[0]={self.count[0]} exceeds "
                    f"innermost stride {strides[0]} (segments would overlap)"
                )

    @property
    def stride_levels(self) -> int:
        return len(self.count) - 1

    @property
    def seg_bytes(self) -> int:
        return self.count[0]

    @property
    def num_segments(self) -> int:
        n = 1
        for c in self.count[1:]:
            n *= c
        return n

    @property
    def total_bytes(self) -> int:
        return self.seg_bytes * self.num_segments

    @classmethod
    def make(
        cls,
        count: Sequence[int],
        src_strides: Sequence[int],
        dst_strides: Sequence[int],
    ) -> "StridedSpec":
        return cls(tuple(count), tuple(src_strides), tuple(dst_strides))


def algorithm1_iter(
    strides: Sequence[int], count: Sequence[int]
) -> Iterator[int]:
    """Literal Algorithm 1 of the paper: yield segment displacements.

    ``count[0]`` (the contiguous byte length) is not consumed here; the
    iteration space is ``idx[i] in [0, count[i+1])`` with ``idx[0]``
    varying fastest, exactly as the pseudocode's odometer increments.
    """
    sl = len(strides)
    if sl == 0:
        yield 0
        return
    if any(count[i + 1] == 0 for i in range(sl)):
        return
    idx = [0] * sl
    while idx[sl - 1] < count[sl]:
        disp = 0
        for i in range(sl):
            disp += strides[i] * idx[i]
        yield disp
        # increment innermost index and propagate the carry
        idx[0] += 1
        for i in range(sl - 1):
            if idx[i] >= count[i + 1]:
                idx[i] = 0
                idx[i + 1] += 1
    return


def segment_displacements(
    strides: Sequence[int], count: Sequence[int]
) -> np.ndarray:
    """Vectorised Algorithm 1: all displacements, same traversal order."""
    sl = len(strides)
    if sl == 0:
        return np.zeros(1, dtype=np.int64)
    dims = [count[i + 1] for i in range(sl)]
    if any(d == 0 for d in dims):
        return np.zeros(0, dtype=np.int64)
    # build the displacement grid with idx[0] fastest: put axis i at
    # reversed position, then a C-order flatten walks idx[0] innermost
    disp = np.zeros(tuple(reversed(dims)), dtype=np.int64)
    for i in range(sl):
        contrib = np.int64(strides[i]) * np.arange(dims[i], dtype=np.int64)
        shape = [1] * sl
        shape[sl - 1 - i] = dims[i]
        disp = disp + contrib.reshape(shape)
    return disp.reshape(-1)


def strided_to_iov(spec: StridedSpec) -> tuple[np.ndarray, np.ndarray, int]:
    """Strided → IOV: (src displacements, dst displacements, segment bytes).

    This is the common ARMCI implementation strategy the paper mentions;
    ARMCI-MPI uses it when ``strided_method="iov"`` is configured.
    """
    src = segment_displacements(spec.src_strides, spec.count)
    dst = segment_displacements(spec.dst_strides, spec.count)
    return src, dst, spec.seg_bytes


# ---------------------------------------------------------------------------
# direct translation: strided notation -> MPI subarray datatype (§VI-C)
# ---------------------------------------------------------------------------


def _nests_evenly(strides: Sequence[int], count: Sequence[int]) -> bool:
    """Can (strides, count) be expressed as an n-D subarray of bytes?"""
    sl = len(strides)
    if sl == 0:
        return True
    if strides[0] <= 0 or count[0] > strides[0]:
        return False
    for i in range(1, sl):
        if strides[i] <= 0 or strides[i] % strides[i - 1]:
            return False
        if count[i] * strides[i - 1] > strides[i]:
            return False  # level i segments would wrap into each other
    return True


#: bound on the committed-datatype memo below (entries, LRU eviction)
STRIDED_DATATYPE_CACHE_MAX = 256

#: (strides, count) -> committed datatype.  GA issues long runs of
#: strided operations over identically-shaped patches (every tile of a
#: distributed array shares one stride/count signature), so the same
#: translation is requested over and over; rebuilding and re-flattening
#: the subarray/hindexed type per operation was a dominant hot spot.
_strided_dt_cache: "OrderedDict[tuple, dt.Datatype]" = OrderedDict()


def strided_datatype_uncached(
    strides: Sequence[int], count: Sequence[int]
) -> dt.Datatype:
    """Build (and commit) the translation datatype, bypassing the memo.

    This is the pre-memoization translation path, kept public as the
    hot-path benchmark baseline and for callers that intend to
    ``free()`` the type.
    """
    sl = len(strides)
    if sl == 0:
        return dt.contiguous(count[0], dt.BYTE).commit()
    if _nests_evenly(strides, count):
        sizes = [count[sl]]
        for i in range(sl - 1, 0, -1):
            sizes.append(strides[i] // strides[i - 1])
        sizes.append(strides[0])
        subsizes = [count[i] for i in range(sl, 0, -1)] + [count[0]]
        starts = [0] * (sl + 1)
        return dt.subarray(sizes, subsizes, starts, dt.BYTE).commit()
    disps = segment_displacements(strides, count)
    return dt.hindexed([count[0]] * len(disps), disps.tolist(), dt.BYTE).commit()


def strided_datatype(strides: Sequence[int], count: Sequence[int]) -> dt.Datatype:
    """One MPI datatype covering a whole strided transfer (memoised).

    Prefers the subarray form (the paper's backward translation): the
    parent byte array has C-order dimensions

    ``[count[sl], strides[sl-1]/strides[sl-2], ..., strides[1]/strides[0], strides[0]]``

    and the patch is ``[count[sl], count[sl-1], ..., count[1], count[0]]``
    starting at index 0 in every dimension.  When strides do not nest
    evenly, an hindexed type over Algorithm 1's displacements is built
    instead — still a single MPI operation.

    Results are memoised in a bounded LRU keyed on ``(strides, count)``;
    callers share the returned committed type and must not ``free()`` it
    (a freed cache entry is transparently re-committed on the next hit).
    """
    key = (tuple(strides), tuple(count))
    hit = _strided_dt_cache.get(key)
    if hit is not None:
        _strided_dt_cache.move_to_end(key)
        # a caller may have free()d the shared type; commit() restores the
        # segment map and is a no-op on a live entry
        return hit.commit()
    built = strided_datatype_uncached(strides, count)
    _strided_dt_cache[key] = built
    if len(_strided_dt_cache) > STRIDED_DATATYPE_CACHE_MAX:
        _strided_dt_cache.popitem(last=False)
    return built


def strided_datatype_cache_clear() -> None:
    """Drop all memoised strided translations (test/bench hook)."""
    _strided_dt_cache.clear()


def strided_datatype_cache_len() -> int:
    return len(_strided_dt_cache)


def local_patch_view(arr: np.ndarray) -> tuple[np.ndarray, StridedSpec]:
    """Describe an n-D NumPy array view as (base byte buffer, strided spec).

    Convenience used by GA: a (possibly non-contiguous) row-major slice
    of a larger array maps directly onto ARMCI strided notation with
    ``count[0] = row bytes`` and byte strides taken from the view.
    The returned spec uses the same strides for src and dst; callers
    overwrite whichever side differs.
    """
    if arr.ndim == 0:
        raise ArgumentError("0-d arrays cannot be described as patches")
    for earlier, later in zip(arr.strides, arr.strides[1:]):
        if later > earlier:
            raise ArgumentError("patch views must be row-major (C-order slices)")
    if arr.strides[-1] != arr.itemsize:
        raise ArgumentError("innermost dimension must be contiguous")
    base = arr.base if arr.base is not None else arr
    while base.base is not None:
        base = base.base
    count = [arr.shape[-1] * arr.itemsize] + list(reversed(arr.shape[:-1]))
    strides = list(reversed(arr.strides[:-1]))
    spec = StridedSpec.make(count, strides, strides)
    if not base.flags["C_CONTIGUOUS"]:
        raise ArgumentError("underlying buffer must be C-contiguous")
    flat = base.reshape(-1).view(np.uint8)
    offset = (
        arr.__array_interface__["data"][0] - base.__array_interface__["data"][0]
    )
    if offset < 0:
        raise ArgumentError("view starts before its base buffer")
    return flat[offset:], spec
