"""Operation tracing for ARMCI-MPI (the ARMCI_PROFILE facility, rebuilt).

Real ARMCI ships a profiling interposer that records every one-sided
call with its target, size, and duration.  :class:`TracingArmci` is the
equivalent here: a transparent wrapper around an :class:`~repro.armci.api.Armci`
(or :class:`~repro.armci_native.NativeArmci`) instance that records a
per-process timeline of operations with modeled durations, then renders
summaries — per-op-kind histograms, per-target traffic matrices, and a
chronological event dump.

Useful both for users tuning GA applications ("which array is hot?")
and for this repo's own benches (attributing modeled time to epochs vs
wire transfer).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from ..mpi.runtime import current_proc

#: every public ARMCI data-movement call the tracer intercepts
_TRACED = (
    "put", "get", "acc",
    "put_s", "get_s", "acc_s",
    "putv", "getv", "accv",
    "nb_put", "nb_get", "nb_acc",
    "rmw",
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded operation."""

    rank: int  # issuing process
    op: str
    target: int  # remote process (-1 if unknown)
    nbytes: int
    start: float  # simulated time at issue
    duration: float  # modeled duration

    @property
    def end(self) -> float:
        return self.start + self.duration


def _target_of(op: str, args: tuple, kwargs: dict) -> int:
    """Best-effort remote-rank extraction from the call signature."""
    from .gmr import GlobalPtr

    candidates: list[Any] = list(args) + list(kwargs.values())
    for a in candidates:
        if isinstance(a, GlobalPtr):
            return a.rank
        if isinstance(a, (list, tuple)) and a and isinstance(a[0], GlobalPtr):
            return a[0].rank
    return -1


def _bytes_of(op: str, args: tuple, kwargs: dict) -> int:
    import numpy as np

    nbytes = kwargs.get("nbytes")
    if isinstance(nbytes, int):
        return nbytes
    for a in args:
        if isinstance(a, np.ndarray):
            return int(a.nbytes)
    return 0


class TracingArmci:
    """Transparent tracing proxy over an ARMCI runtime instance.

    All attributes delegate to the wrapped runtime; the traced calls
    additionally append :class:`TraceEvent` records.  Thread-safe (one
    timeline shared by all rank threads).
    """

    def __init__(self, inner):
        self._inner = inner
        self._events: list[TraceEvent] = []
        self._lock = threading.Lock()

    def __getattr__(self, name: str):
        attr = getattr(self._inner, name)
        if name not in _TRACED:
            return attr

        def traced(*args, **kwargs):
            proc = current_proc()
            t0 = proc.clock.now
            result = attr(*args, **kwargs)
            event = TraceEvent(
                rank=proc.rank,
                op=name,
                target=_target_of(name, args, kwargs),
                nbytes=_bytes_of(name, args, kwargs),
                start=t0,
                duration=proc.clock.now - t0,
            )
            with self._lock:
                self._events.append(event)
            return result

        return traced

    # -- inspection --------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def summary_by_op(self) -> dict[str, tuple[int, int, float]]:
        """op -> (count, total bytes, total modeled seconds)."""
        out: dict[str, tuple[int, int, float]] = {}
        for ev in self.events:
            c, b, t = out.get(ev.op, (0, 0, 0.0))
            out[ev.op] = (c + 1, b + ev.nbytes, t + ev.duration)
        return out

    def traffic_matrix(self) -> dict[tuple[int, int], int]:
        """(origin, target) -> bytes moved (targets resolved only)."""
        out: dict[tuple[int, int], int] = {}
        for ev in self.events:
            if ev.target >= 0:
                key = (ev.rank, ev.target)
                out[key] = out.get(key, 0) + ev.nbytes
        return out

    def render(self, max_events: int = 0) -> str:
        """Human-readable trace report."""
        lines = ["ARMCI trace summary", "-------------------"]
        for op, (count, nbytes, seconds) in sorted(self.summary_by_op().items()):
            lines.append(
                f"{op:8s} x{count:<6d} {nbytes:>12d} B  {seconds * 1e6:10.1f} µs"
            )
        matrix = self.traffic_matrix()
        if matrix:
            lines.append("traffic (origin -> target):")
            for (src, dst), nbytes in sorted(matrix.items()):
                lines.append(f"  {src} -> {dst}: {nbytes} B")
        if max_events:
            lines.append("timeline:")
            for ev in self.events[:max_events]:
                lines.append(
                    f"  [{ev.rank}] t={ev.start * 1e6:9.2f}µs {ev.op:7s} "
                    f"-> {ev.target} ({ev.nbytes} B, {ev.duration * 1e6:.2f}µs)"
                )
        return "\n".join(lines)
