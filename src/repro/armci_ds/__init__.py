"""ARMCI over two-sided messaging: the data-server predecessor (§IX).

A third, independent implementation of the ARMCI call surface, built the
way the pre-RMA portable ARMCI was: per-node data-server threads
servicing two-sided request/response traffic.  Exists to make §IX's
comparison concrete — see :class:`DataServerArmci`.
"""

from .api import DataServerArmci

__all__ = ["DataServerArmci"]
