"""ARMCI over two-sided messaging: the data-server design (§IX).

Before this paper, the portable fallback in the ARMCI distribution ran a
*data server* on each node: a dedicated thread/process that owns the
node's shared memory and services read/write/accumulate requests sent as
two-sided messages.  §IX lists its costs — "consumption of a core,
bottlenecking on the data server, and two-sided messaging overheads such
as tag matching" — and contrasts it with the RMA-based design this
paper contributes.

This backend rebuilds that architecture for comparison: every rank owns
a real server thread (not an SPMD rank) holding a request queue; one-
sided operations become request/response exchanges with the target's
server, which applies them to the slab memory.  The cost model charges
two message latencies plus a shared-memory staging copy per operation,
and the server serialises all requests against one slab — the §IX
bottleneck, observable.

The call surface matches what Global Arrays needs, so GA and the NWChem
proxy run unchanged on this third stack (differential-tested against
the other two).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..armci.gmr import NULL_ADDR, GlobalPtr
from ..armci.strided import StridedSpec, segment_displacements
from ..mpi.comm import Comm
from ..mpi.errors import ArgumentError
from ..mpi.runtime import current_proc
from ..simtime.netmodel import PathModel

_VA_BASE = 0x1000


@dataclass
class _Request:
    """One data-server request: segments against a single target rank."""

    op: str  # "put" | "get" | "acc" | "rmw_add" | "rmw_swap"
    offsets: list  # byte offsets within the target's slab space
    seg_bytes: int
    payload: "np.ndarray | None"  # put/acc data (concatenated segments)
    scale: float = 1.0
    dtype: "np.dtype | None" = None
    value: int = 0  # rmw operand
    reply: "queue.Queue" = field(default_factory=lambda: queue.Queue(maxsize=1))


class _DataServer(threading.Thread):
    """The per-rank server thread owning this rank's slabs."""

    def __init__(self, rank: int, ds: "DataServerArmci"):
        super().__init__(name=f"armci-ds-server-{rank}", daemon=True)
        self.rank = rank
        self.ds = ds
        self.requests: "queue.Queue[_Request | None]" = queue.Queue()
        self.served = 0

    def run(self) -> None:
        while True:
            req = self.requests.get()
            if req is None:
                return
            try:
                result = self._apply(req)
            except BaseException as exc:  # deliver errors to the client
                result = exc
            self.served += 1
            req.reply.put(result)

    def _apply(self, req: _Request):
        n = req.seg_bytes
        out = None
        if req.op == "get":
            out = np.empty(n * len(req.offsets), dtype=np.uint8)
        # slab access is still serialised by the runtime's giant lock so
        # server threads and SPMD threads never race
        with self.ds.world.runtime.cond:
            for i, addr in enumerate(req.offsets):
                slab, disp = self.ds._locate_addr(self.rank, addr)
                if req.op == "put":
                    slab[disp : disp + n] = req.payload[i * n : (i + 1) * n]
                elif req.op == "get":
                    out[i * n : (i + 1) * n] = slab[disp : disp + n]
                elif req.op == "acc":
                    tgt = slab[disp : disp + n].view(req.dtype)
                    contrib = req.payload[i * n : (i + 1) * n].view(req.dtype)
                    tgt += req.dtype.type(req.scale) * contrib
                elif req.op in ("rmw_add", "rmw_swap"):
                    cell = slab[disp : disp + 8].view(req.dtype)
                    out = int(cell[0])
                    cell[0] = out + req.value if req.op == "rmw_add" else req.value
                else:  # pragma: no cover - requests are internal
                    raise ArgumentError(f"unknown DS op {req.op!r}")
            self.ds.world.runtime.notify_progress()
        return out


class _Region:
    def __init__(self, slabs, bases):
        self.slabs = slabs
        self.bases = bases


class DataServerArmci:
    """ARMCI on the data-server/two-sided design — the §IX predecessor.

    ``staging_rate`` is the host memcpy rate through the node's shared
    segment (every transfer is staged — the server owns the memory) and
    ``match_overhead`` the two-sided per-message cost (tag matching,
    request marshalling) §IX names.
    """

    def __init__(
        self,
        world: Comm,
        path: "PathModel | None",
        staging_rate: float = 4.0e9,
        match_overhead: float = 1.5e-6,
    ):
        self.world = world
        self.path = path
        self.staging_rate = staging_rate
        self.match_overhead = match_overhead
        self.regions: list[_Region] = []
        self._va: dict[int, int] = {}
        self.servers = [_DataServer(r, self) for r in range(world.size)]
        for s in self.servers:
            s.start()

    @classmethod
    def init(
        cls,
        comm: Comm,
        path: "PathModel | None" = None,
        staging_rate: float = 4.0e9,
        match_overhead: float = 1.5e-6,
    ) -> "DataServerArmci":
        world = comm.dup()
        with world.runtime.cond:
            return world._coll.run(
                world.rank,
                "ds_armci_init",
                None,
                lambda _c: cls(world, path, staging_rate, match_overhead),
            )

    def shutdown(self) -> None:
        """Collective: stop the server threads."""
        self.world.barrier()
        if self.world.rank == 0:
            for s in self.servers:
                s.requests.put(None)
        self.world.barrier()

    @property
    def my_id(self) -> int:
        return self.world.rank

    @property
    def nproc(self) -> int:
        return self.world.size

    # -- cost model ---------------------------------------------------------------
    def _charge(self, kind: str, nbytes: int, nsegments: int = 1) -> None:
        """Request + response message latencies, staging copy, service time."""
        if self.path is None:
            return
        p = self.path
        t = 2 * p.latency + self.match_overhead  # request + response + matching
        t += nbytes / p.wire_bw(nbytes)
        t += nbytes / self.staging_rate  # host copy through the shared segment
        t += p.seg_overhead * max(nsegments, 1)  # per-request service cost
        if kind == "acc":
            t += nbytes / p.acc_rate
        current_proc().clock.advance(t, kind=f"ds:{kind}", nbytes=nbytes)

    # -- memory ---------------------------------------------------------------------
    def malloc(self, nbytes: int) -> list[GlobalPtr]:
        if nbytes < 0:
            raise ArgumentError(f"negative allocation {nbytes}")
        slab = np.zeros(nbytes, dtype=np.uint8)
        contrib = (self.world.rank, slab)

        def build(contribs: dict) -> _Region:
            slabs = [None] * self.world.size
            bases = [NULL_ADDR] * self.world.size
            for _, (rank, s) in contribs.items():
                slabs[rank] = s
                if s.nbytes:
                    cursor = self._va.get(rank, _VA_BASE)
                    bases[rank] = (cursor + 63) & ~63
                    self._va[rank] = bases[rank] + s.nbytes
            region = _Region(slabs, bases)
            self.regions.append(region)
            return region

        with self.world.runtime.cond:
            region = self.world._coll.run(self.world.rank, "ds_malloc", contrib, build)
        return [GlobalPtr(r, region.bases[r]) for r in range(self.world.size)]

    def free(self, ptr: "GlobalPtr | None") -> None:
        vote = np.array(
            [self.world.rank if ptr is not None and not ptr.is_null else -1],
            dtype=np.int64,
        )
        leader = int(self.world.allreduce(vote, op="MPI_MAX")[0])
        if leader < 0:
            raise ArgumentError("DS free: all members passed NULL")
        pair = (ptr.rank, ptr.addr) if self.world.rank == leader else None
        rank, addr = self.world.bcast_obj(pair, root=leader)
        region = self._find(rank, addr)

        def drop(_c) -> None:
            self.regions.remove(region)

        with self.world.runtime.cond:
            self.world._coll.run(self.world.rank, "ds_free", None, drop)

    def _find(self, rank: int, addr: int) -> _Region:
        for region in self.regions:
            base = region.bases[rank]
            slab = region.slabs[rank]
            if base != NULL_ADDR and base <= addr < base + slab.nbytes:
                return region
        raise ArgumentError(f"address {addr:#x} on rank {rank}: no DS allocation")

    def _locate_addr(self, rank: int, addr: int) -> tuple[np.ndarray, int]:
        region = self._find(rank, addr)
        return region.slabs[rank], addr - region.bases[rank]

    def _locate(self, ptr: GlobalPtr) -> tuple[np.ndarray, int]:
        """Local direct access used by GA_Access (coherent node memory)."""
        return self._locate_addr(ptr.rank, ptr.addr)

    # -- request plumbing ----------------------------------------------------------
    def _submit(self, target: int, req: _Request):
        self.servers[target].requests.put(req)
        # the reply queue blocks WITHOUT the runtime lock; server threads
        # are always live, so this cannot deadlock the SPMD watchdog
        result = req.reply.get()
        if isinstance(result, BaseException):
            raise result
        return result

    # -- contiguous ops ----------------------------------------------------------------
    def put(self, src: np.ndarray, dst: GlobalPtr, nbytes: "int | None" = None) -> None:
        data = _bytes(src)
        n = data.nbytes if nbytes is None else nbytes
        self._submit(dst.rank, _Request("put", [dst.addr], n, data[:n].copy()))
        self._charge("put", n)

    def get(self, src: GlobalPtr, dst: np.ndarray, nbytes: "int | None" = None) -> None:
        out = _bytes(dst)
        n = out.nbytes if nbytes is None else nbytes
        result = self._submit(src.rank, _Request("get", [src.addr], n, None))
        out[:n] = result
        self._charge("get", n)

    def acc(
        self, src: np.ndarray, dst: GlobalPtr, scale: float = 1.0,
        nbytes: "int | None" = None, dtype: "np.dtype | str | None" = None,
    ) -> None:
        arr = np.asarray(src)
        dtype = np.dtype(dtype) if dtype is not None else arr.dtype
        data = _bytes(arr)
        n = data.nbytes if nbytes is None else nbytes
        self._submit(
            dst.rank,
            _Request("acc", [dst.addr], n, data[:n].copy(), scale=scale, dtype=dtype),
        )
        self._charge("acc", n)

    # -- strided / IOV -----------------------------------------------------------------
    def put_s(self, src, src_strides, dst: GlobalPtr, dst_strides, count) -> None:
        self._strided("put", src, src_strides, dst, dst_strides, count)

    def get_s(self, src: GlobalPtr, src_strides, dst, dst_strides, count) -> None:
        self._strided("get", dst, dst_strides, src, src_strides, count)

    def acc_s(self, src, src_strides, dst: GlobalPtr, dst_strides, count,
              scale: float = 1.0, dtype="f8") -> None:
        self._strided("acc", src, src_strides, dst, dst_strides, count,
                      scale=scale, dtype=np.dtype(dtype))

    def _strided(self, kind, local, local_strides, remote: GlobalPtr,
                 remote_strides, count, scale: float = 1.0,
                 dtype: "np.dtype | None" = None) -> None:
        spec = StridedSpec.make(list(count), list(local_strides), list(remote_strides))
        if spec.total_bytes == 0:
            return
        lview = _bytes(local)
        ldisp = segment_displacements(list(local_strides), list(count)).tolist()
        rdisp = segment_displacements(list(remote_strides), list(count)).tolist()
        n = spec.seg_bytes
        addrs = [remote.addr + d for d in rdisp]
        if kind == "get":
            result = self._submit(remote.rank, _Request("get", addrs, n, None))
            for i, ld in enumerate(ldisp):
                lview[ld : ld + n] = result[i * n : (i + 1) * n]
        else:
            payload = np.concatenate([lview[d : d + n] for d in ldisp])
            self._submit(
                remote.rank,
                _Request(kind, addrs, n, payload, scale=scale, dtype=dtype),
            )
        self._charge(kind, spec.total_bytes, spec.num_segments)

    def putv(self, local, loc_offsets: Sequence[int], dst, seg_bytes: int) -> None:
        self._iov("put", local, loc_offsets, dst, seg_bytes)

    def getv(self, src, local, loc_offsets: Sequence[int], seg_bytes: int) -> None:
        self._iov("get", local, loc_offsets, src, seg_bytes)

    def accv(self, local, loc_offsets: Sequence[int], dst, seg_bytes: int,
             scale: float = 1.0, dtype="f8") -> None:
        self._iov("acc", local, loc_offsets, dst, seg_bytes,
                  scale=scale, dtype=np.dtype(dtype))

    def _iov(self, kind, local, loc_offsets, remote, seg_bytes,
             scale: float = 1.0, dtype: "np.dtype | None" = None) -> None:
        ptrs = list(remote)
        if not ptrs:
            return
        rank = ptrs[0].rank
        if any(p.rank != rank for p in ptrs):
            raise ArgumentError("DS IOV operations target a single process")
        lview = _bytes(local)
        n = seg_bytes
        addrs = [p.addr for p in ptrs]
        if kind == "get":
            result = self._submit(rank, _Request("get", addrs, n, None))
            for i, off in enumerate(loc_offsets):
                lview[off : off + n] = result[i * n : (i + 1) * n]
        else:
            payload = np.concatenate([lview[o : o + n] for o in loc_offsets])
            self._submit(
                rank, _Request(kind, addrs, n, payload, scale=scale, dtype=dtype)
            )
        self._charge(kind, n * len(ptrs), len(ptrs))

    # -- synchronisation ----------------------------------------------------------------
    def rmw(self, op: str, ptr: GlobalPtr, value: int) -> int:
        from ..armci.rmw import rmw_dtype

        dtype = rmw_dtype(op)
        kind = "rmw_add" if op.startswith("fetch_and_add") else "rmw_swap"
        old = self._submit(
            ptr.rank, _Request(kind, [ptr.addr], dtype.itemsize, None,
                               dtype=dtype, value=value)
        )
        self._charge("rmw", dtype.itemsize)
        return old

    def fence(self, proc: int) -> None:
        if not 0 <= proc < self.nproc:
            raise ArgumentError(f"fence target {proc} out of range")
        # requests are serviced in order and replies awaited: nothing in flight

    def fence_all(self) -> None:
        pass

    def barrier(self) -> None:
        self.world.barrier()

    @property
    def requests_served(self) -> list[int]:
        """Per-server service counts (the §IX bottleneck, observable)."""
        return [s.served for s in self.servers]


def _bytes(arr) -> np.ndarray:
    arr = np.asarray(arr)
    if not arr.flags["C_CONTIGUOUS"]:
        raise ArgumentError("DS ARMCI buffers must be C-contiguous")
    return arr.reshape(-1).view(np.uint8)
