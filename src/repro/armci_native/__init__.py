"""Simulated vendor-native ARMCI: the baseline of every paper comparison.

See :class:`NativeArmci`.  Charged through each platform's *native*
path model; also serves as a differential-testing oracle against
:class:`repro.armci.Armci`.
"""

from .api import NativeArmci, NativeRegion
from .server import HostLockTable

__all__ = ["HostLockTable", "NativeArmci", "NativeRegion"]
