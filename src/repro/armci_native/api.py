"""Simulated "native" ARMCI — the baseline the paper compares against.

A second, independent implementation of the ARMCI surface used by GA,
*not* built on MPI RMA: remote accesses go straight to the target's
memory under the runtime's giant lock (the shared-memory simulation of
RDMA), serialised only where the native runtime would serialise
(host lock words for mutex/RMW service).  Its performance is charged
through the platform's **native** :class:`~repro.simtime.netmodel.PathModel`
— no epoch lock/unlock costs, vendor-tuned strided engines — which is
what makes the Fig. 3/4/6 native-vs-MPI comparisons meaningful.

It doubles as a differential-testing oracle: tests run identical
workloads through :class:`repro.armci.Armci` and :class:`NativeArmci`
and require bit-identical results.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..armci.gmr import NULL_ADDR, GlobalPtr
from ..armci.strided import StridedSpec, segment_displacements
from ..mpi.comm import Comm
from ..mpi.errors import ArgumentError
from ..mpi.runtime import current_proc
from ..simtime.netmodel import PathModel
from .server import HostLockTable

_VA_BASE = 0x1000


class NativeRegion:
    """One native allocation: slabs + base-address vector."""

    _next_id = 0

    def __init__(self, comm: Comm, slabs: list[np.ndarray], bases: list[int]):
        self.comm = comm
        self.slabs = slabs
        self.bases = bases
        self.region_id = NativeRegion._next_id
        NativeRegion._next_id += 1

    def locate(self, ptr: GlobalPtr) -> tuple[np.ndarray, int]:
        base = self.bases[ptr.rank]
        slab = self.slabs[ptr.rank]
        if base == NULL_ADDR:
            raise ArgumentError(f"{ptr}: zero-size native slice")
        disp = ptr.addr - base
        if not 0 <= disp <= slab.nbytes:
            raise ArgumentError(f"{ptr} outside native region {self.region_id}")
        return slab, disp

    def contains(self, rank: int, addr: int) -> bool:
        base = self.bases[rank]
        return base != NULL_ADDR and base <= addr < base + self.slabs[rank].nbytes


class NativeArmci:
    """Native-ARMCI lookalike with the same call surface GA needs.

    ``path`` is the platform's native cost model; ``None`` disables
    modeled-time charging (functional tests).
    """

    def __init__(self, world: Comm, path: "PathModel | None"):
        self.world = world
        self.path = path
        self.regions: list[NativeRegion] = []
        self._va: dict[int, int] = {}
        self.locks = HostLockTable(world.runtime, nlocks=128, nhosts=world.size)

    @classmethod
    def init(cls, comm: Comm, path: "PathModel | None" = None) -> "NativeArmci":
        world = comm.dup()
        with world.runtime.cond:
            return world._coll.run(
                world.rank, "native_armci_init", None, lambda _c: cls(world, path)
            )

    @property
    def my_id(self) -> int:
        return self.world.rank

    @property
    def nproc(self) -> int:
        return self.world.size

    # -- time charging ------------------------------------------------------------
    def _charge(self, kind: str, nbytes: int, nsegments: int = 1) -> None:
        if self.path is not None:
            cost = self.path.xfer_time(kind, nbytes, nsegments)
            current_proc().clock.advance(cost, kind=f"native:{kind}", nbytes=nbytes)

    # -- memory -----------------------------------------------------------------------
    def malloc(self, nbytes: int) -> list[GlobalPtr]:
        """Collective allocation over the world group."""
        if nbytes < 0:
            raise ArgumentError(f"negative allocation {nbytes}")
        slab = np.zeros(nbytes, dtype=np.uint8)
        contrib = (self.world.rank, slab)

        def build(contribs: dict) -> NativeRegion:
            slabs = [None] * self.world.size
            bases = [NULL_ADDR] * self.world.size
            for _, (rank, s) in contribs.items():
                slabs[rank] = s
                if s.nbytes:
                    cursor = self._va.get(rank, _VA_BASE)
                    bases[rank] = (cursor + 63) & ~63
                    self._va[rank] = bases[rank] + s.nbytes
            region = NativeRegion(self.world, slabs, bases)
            self.regions.append(region)
            return region

        with self.world.runtime.cond:
            region = self.world._coll.run(
                self.world.rank, "native_malloc", contrib, build
            )
        return [GlobalPtr(r, region.bases[r]) for r in range(self.world.size)]

    def free(self, ptr: "GlobalPtr | None") -> None:
        """Collective free (native ARMCI has no NULL-slice protocol need:
        the region is identified via any member's pointer by reduction)."""
        vote = np.array(
            [self.world.rank if ptr is not None and not ptr.is_null else -1],
            dtype=np.int64,
        )
        leader = int(self.world.allreduce(vote, op="MPI_MAX")[0])
        if leader < 0:
            raise ArgumentError("native free: all members passed NULL")
        pair = (ptr.rank, ptr.addr) if self.world.rank == leader else None
        rank, addr = self.world.bcast_obj(pair, root=leader)
        region = self._find(rank, addr)

        def drop(_c) -> None:
            self.regions.remove(region)

        with self.world.runtime.cond:
            self.world._coll.run(self.world.rank, "native_free", None, drop)

    def _find(self, rank: int, addr: int) -> NativeRegion:
        for region in self.regions:
            if region.contains(rank, addr):
                return region
        raise ArgumentError(
            f"address {addr:#x} on process {rank} is not a native allocation"
        )

    def _locate(self, ptr: GlobalPtr) -> tuple[np.ndarray, int]:
        return self._find(ptr.rank, ptr.addr).locate(ptr)

    # -- contiguous ops ------------------------------------------------------------------
    def put(self, src: np.ndarray, dst: GlobalPtr, nbytes: "int | None" = None) -> None:
        data = _bytes(src)
        n = data.nbytes if nbytes is None else nbytes
        slab, disp = self._locate(dst)
        with self.world.runtime.cond:
            slab[disp : disp + n] = data[:n]
            self.world.runtime.notify_progress()
        self._charge("put", n)

    def get(self, src: GlobalPtr, dst: np.ndarray, nbytes: "int | None" = None) -> None:
        out = _bytes(dst)
        n = out.nbytes if nbytes is None else nbytes
        slab, disp = self._locate(src)
        with self.world.runtime.cond:
            out[:n] = slab[disp : disp + n]
        self._charge("get", n)

    def acc(
        self,
        src: np.ndarray,
        dst: GlobalPtr,
        scale: float = 1.0,
        nbytes: "int | None" = None,
        dtype: "np.dtype | str | None" = None,
    ) -> None:
        arr = np.asarray(src)
        dtype = np.dtype(dtype) if dtype is not None else arr.dtype
        data = _bytes(arr)
        n = data.nbytes if nbytes is None else nbytes
        slab, disp = self._locate(dst)
        with self.world.runtime.cond:
            target = slab[disp : disp + n].view(dtype)
            contrib = data[:n].view(dtype)
            target += dtype.type(scale) * contrib
            self.world.runtime.notify_progress()
        self._charge("acc", n)

    # -- strided ops (vendor-tuned engine: one charged operation) -------------------------
    def put_s(self, src, src_strides, dst: GlobalPtr, dst_strides, count) -> None:
        self._strided("put", src, src_strides, dst, dst_strides, count)

    def get_s(self, src: GlobalPtr, src_strides, dst, dst_strides, count) -> None:
        self._strided("get", dst, dst_strides, src, src_strides, count)

    def acc_s(
        self, src, src_strides, dst: GlobalPtr, dst_strides, count,
        scale: float = 1.0, dtype="f8",
    ) -> None:
        self._strided("acc", src, src_strides, dst, dst_strides, count,
                      scale=scale, dtype=np.dtype(dtype))

    def _strided(
        self, kind, local, local_strides, remote: GlobalPtr, remote_strides, count,
        scale: float = 1.0, dtype: "np.dtype | None" = None,
    ) -> None:
        spec = StridedSpec.make(list(count), list(local_strides), list(remote_strides))
        if spec.total_bytes == 0:
            return
        lview = _bytes(local)
        ldisp = segment_displacements(list(local_strides), list(count))
        rdisp = segment_displacements(list(remote_strides), list(count))
        slab, base = self._locate(remote)
        n = spec.seg_bytes
        with self.world.runtime.cond:
            for ld, rd in zip(ldisp.tolist(), rdisp.tolist()):
                if kind == "put":
                    slab[base + rd : base + rd + n] = lview[ld : ld + n]
                elif kind == "get":
                    lview[ld : ld + n] = slab[base + rd : base + rd + n]
                else:
                    tgt = slab[base + rd : base + rd + n].view(dtype)
                    tgt += dtype.type(scale) * lview[ld : ld + n].view(dtype)
            self.world.runtime.notify_progress()
        self._charge(kind, spec.total_bytes, spec.num_segments)

    # -- IOV ---------------------------------------------------------------------------
    def putv(self, local, loc_offsets: Sequence[int], dst, seg_bytes: int) -> None:
        self._iov("put", local, loc_offsets, dst, seg_bytes)

    def getv(self, src, local, loc_offsets: Sequence[int], seg_bytes: int) -> None:
        self._iov("get", local, loc_offsets, src, seg_bytes)

    def accv(
        self, local, loc_offsets: Sequence[int], dst, seg_bytes: int,
        scale: float = 1.0, dtype="f8",
    ) -> None:
        self._iov("acc", local, loc_offsets, dst, seg_bytes,
                  scale=scale, dtype=np.dtype(dtype))

    def _iov(self, kind, local, loc_offsets, remote, seg_bytes,
             scale: float = 1.0, dtype: "np.dtype | None" = None) -> None:
        lview = _bytes(local)
        ptrs = list(remote)
        if not ptrs:
            return
        n = seg_bytes
        with self.world.runtime.cond:
            for off, ptr in zip(loc_offsets, ptrs):
                slab, disp = self._locate(ptr)
                if kind == "put":
                    slab[disp : disp + n] = lview[off : off + n]
                elif kind == "get":
                    lview[off : off + n] = slab[disp : disp + n]
                else:
                    tgt = slab[disp : disp + n].view(dtype)
                    tgt += dtype.type(scale) * lview[off : off + n].view(dtype)
            self.world.runtime.notify_progress()
        self._charge(kind, n * len(ptrs), len(ptrs))

    # -- synchronisation -----------------------------------------------------------------
    def rmw(self, op: str, ptr: GlobalPtr, value: int) -> int:
        """Native RMW: serviced atomically by the target's CHT."""
        from ..armci.rmw import rmw_dtype

        dtype = rmw_dtype(op)
        slab, disp = self._locate(ptr)
        with self.world.runtime.cond:
            cell = slab[disp : disp + dtype.itemsize].view(dtype)
            old = int(cell[0])
            if op.startswith("fetch_and_add"):
                cell[0] = old + value
            else:
                cell[0] = value
            self.world.runtime.notify_progress()
        self._charge("rmw", dtype.itemsize)
        return old

    def lock(self, lock_id: int, host: int) -> None:
        self.locks.acquire(lock_id, host)
        self._charge("rmw", 1)

    def unlock(self, lock_id: int, host: int) -> None:
        self.locks.release(lock_id, host)
        self._charge("rmw", 1)

    def fence(self, proc: int) -> None:
        if not 0 <= proc < self.nproc:
            raise ArgumentError(f"fence target {proc} out of range")
        # native ARMCI may leave puts in flight; our simulation completes
        # them eagerly, so fence only charges its (small) protocol cost
        if self.path is not None:
            current_proc().clock.advance(self.path.latency, kind="native:fence")

    def fence_all(self) -> None:
        if self.path is not None:
            current_proc().clock.advance(self.path.latency, kind="native:fence")

    def barrier(self) -> None:
        self.fence_all()
        self.world.barrier()


def _bytes(arr) -> np.ndarray:
    arr = np.asarray(arr)
    if not arr.flags["C_CONTIGUOUS"]:
        raise ArgumentError("native ARMCI buffers must be C-contiguous")
    return arr.reshape(-1).view(np.uint8)
