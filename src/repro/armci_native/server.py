"""Data-server / CHT machinery of the simulated native ARMCI.

Native ARMCI implementations (§IV-A, §IX) achieve asynchronous progress
with a communication helper thread (CHT) per node; the two-sided-MPI
fallback ARMCI shipped for years ran a *data server* process per node
that serviced read/write requests against node-shared memory.

In this substrate, remote memory access is structurally asynchronous
(the origin thread performs the access under the runtime's giant lock),
so the server exists as (a) the host-side lock table that serialises
native exclusive operations, and (b) the accounting point where the
CHT's costs (a consumed core, per-request service overhead) are charged
by the performance model.
"""

from __future__ import annotations

from ..mpi.errors import RMASyncError
from ..mpi.runtime import Runtime, current_proc


class HostLockTable:
    """Per-host lock words used by native ARMCI_Lock/ARMCI_Rmw service.

    Semantics mirror the native runtime: a host's lock word is acquired
    by at most one process; waiters block (locally) until the holder
    releases.  Implemented on the runtime condition variable so blocked
    waiters participate in deadlock detection.
    """

    def __init__(self, runtime: Runtime, nlocks: int, nhosts: int):
        self.runtime = runtime
        self._holder: dict[tuple[int, int], int] = {}
        self.nlocks = nlocks
        self.nhosts = nhosts

    def acquire(self, lock_id: int, host: int) -> None:
        if not 0 <= lock_id < self.nlocks or not 0 <= host < self.nhosts:
            raise RMASyncError(f"bad native lock ({lock_id}, {host})")
        me = current_proc().rank
        key = (lock_id, host)
        with self.runtime.cond:
            if self._holder.get(key) == me:
                raise RMASyncError(f"native lock {key} is not reentrant")
            self.runtime.wait_for(lambda: key not in self._holder)
            self._holder[key] = me
            self.runtime.notify_progress()

    def release(self, lock_id: int, host: int) -> None:
        me = current_proc().rank
        key = (lock_id, host)
        with self.runtime.cond:
            if self._holder.get(key) != me:
                raise RMASyncError(
                    f"native unlock of ({lock_id}, {host}) by non-holder {me}"
                )
            del self._holder[key]
            self.runtime.notify_progress()
