"""One exponential-backoff-with-jitter policy for every retry path.

Retry-with-backoff used to be re-derived ad hoc wherever it was needed:
lock acquisition (:meth:`~repro.mpi.runtime.Runtime.backoff`), the
fault injector's transient-stall budget
(:meth:`~repro.faults.injector.FaultInjector`), the proc backend's
suspected-pid probing (:mod:`repro.mpi.backend_proc`), and the traffic
harness's request retries (:mod:`repro.traffic`).  All four now share
:class:`BackoffPolicy` — a frozen description of one geometric backoff
curve ``base * factor**attempt`` with an optional cap and optional
seeded jitter.

Jitter is multiplicative: when a ``random.Random`` is passed, the raw
delay is scaled by a uniform draw from ``[jitter, 1.0]`` — exactly one
RNG consultation per call, so seeded replays that thread a shared RNG
through here stay bit-identical.  Without an RNG (or with
``jitter=1.0``) the curve is fully deterministic, which is what the
step-counted consumers (scheduler stalls, heartbeat probe intervals)
want: no shared randomness is consumed at all.

The module deliberately imports nothing from the rest of ``repro`` so
every layer — runtime, backends, faults, traffic — can depend on it
without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["BackoffPolicy", "LOCK_RETRY", "STALL_STEPS", "STALL_WAIT"]


@dataclass(frozen=True)
class BackoffPolicy:
    """A geometric backoff curve: ``base * factor**attempt``, capped.

    Parameters
    ----------
    base:
        Delay for attempt 0, in whatever unit the caller measures
        (seconds for wall-clock sleeps, scheduler steps, ticks,
        nanoseconds — the policy is unit-agnostic).
    factor:
        Geometric growth per attempt (>= 1).
    cap:
        Upper bound on the returned delay, or ``None`` for unbounded.
    jitter:
        Lower bound of the uniform jitter multiplier.  ``1.0`` disables
        jitter; ``0.5`` (the classic "equal jitter" shape) scales each
        delay by a seeded draw from ``[0.5, 1.0]``.  Jitter only
        applies when :meth:`delay` / :meth:`steps` receive an RNG.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: "float | None" = 1.0
    jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.base <= 0.0:
            raise ValueError(f"backoff base must be > 0, got {self.base}")
        if self.factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {self.factor}")
        if not 0.0 < self.jitter <= 1.0:
            raise ValueError(f"jitter must be in (0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng=None) -> float:
        """Delay before retry ``attempt`` (counted from 0).

        With ``rng`` (a ``random.Random``) and ``jitter < 1.0``, draws
        exactly one ``uniform(jitter, 1.0)`` multiplier; otherwise the
        result is a pure function of ``attempt``.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        scale = 1.0
        if rng is not None and self.jitter < 1.0:
            scale = rng.uniform(self.jitter, 1.0)
        raw = self.base * (scale * self.factor**attempt)
        return raw if self.cap is None else min(raw, self.cap)

    def steps(self, attempt: int, rng=None) -> int:
        """Integer form of :meth:`delay` for step/tick-counted waits.

        Rounds up, never below 1 — a retry always waits at least one
        step, so step-counted loops provably make progress.
        """
        return max(1, math.ceil(self.delay(attempt, rng)))


#: lock-acquisition retry after a per-op timeout
#: (:meth:`~repro.mpi.runtime.Runtime.backoff`): 50 ms base, doubled,
#: capped at 1 s, with the runtime's seeded RNG providing jitter
LOCK_RETRY = BackoffPolicy(base=0.05, factor=2.0, cap=1.0, jitter=0.5)

#: transient-stall absorption in scheduler *steps*
#: (:class:`~repro.faults.injector.FaultInjector`): attempt ``i``
#: absorbs up to ``2**i`` steps, uncapped, no jitter (deterministic —
#: no shared RNG is consumed, so seeded replays are unaffected)
STALL_STEPS = BackoffPolicy(base=1.0, factor=2.0, cap=None, jitter=1.0)

#: the wall-clock twin of :data:`STALL_STEPS` for runs without a
#: deterministic schedule: 2 ms base, doubled, capped at 50 ms
STALL_WAIT = BackoffPolicy(base=0.002, factor=2.0, cap=0.05, jitter=1.0)
