"""Benchmark harness: regenerates every table and figure of §VII."""

from .figures import (
    FIG3_EXPONENTS,
    FIG4_EXPONENTS,
    FIG4_METHODS,
    FIG4_SEG_SIZES,
    FIG6_CORES,
    fig3_series,
    fig4_series,
    fig5_series,
    fig6_platform_series,
)
from .harness import (
    Series,
    format_series_table,
    format_table,
    gbps,
    pow2_sizes,
    run_measurement,
)

__all__ = [
    "FIG3_EXPONENTS",
    "FIG4_EXPONENTS",
    "FIG4_METHODS",
    "FIG4_SEG_SIZES",
    "FIG6_CORES",
    "Series",
    "fig3_series",
    "fig4_series",
    "fig5_series",
    "fig6_platform_series",
    "format_series_table",
    "format_table",
    "gbps",
    "pow2_sizes",
    "run_measurement",
]
