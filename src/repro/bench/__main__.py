"""Entry point: ``python -m repro.bench <figure> [options]``."""

import sys

from .cli import main

sys.exit(main())
