"""Command-line figure regeneration: ``python -m repro.bench <figure>``.

Examples::

    python -m repro.bench table2
    python -m repro.bench fig3 --platform ib
    python -m repro.bench fig4 --platform bgp --kind get --seg-size 1024
    python -m repro.bench fig5
    python -m repro.bench fig6 --platform xe6 --kind triples
    python -m repro.bench hotpath              # vectorized-datapath microbenches
    python -m repro.bench --hotpath-smoke      # fast regression gate (<60 s)
    python -m repro.bench mpi3                 # mpi2 vs mpi3 vs +coalescing
    python -m repro.bench --mpi3-smoke         # flush-datapath gate (seconds)
    python -m repro.bench procs                # proc-backend core scaling
    python -m repro.bench --procs-smoke        # proc-backend scaling gate
    python -m repro.bench --sanitize-smoke     # fuzzed-schedule RMA gate (<60 s)
    python -m repro.bench --recover-smoke      # rank-death recovery gate (<60 s)
    python -m repro.bench proc-recover         # SIGKILL detection + restart times
    python -m repro.bench --proc-recover-smoke # proc-backend recovery gate
    python -m repro.bench --lint-smoke         # whole-repo static sweep gate
    python -m repro.bench traffic              # service-traffic load sweeps
    python -m repro.bench --traffic-smoke      # graceful-degradation gate
    python -m repro.bench --sanitize-ablation  # dynamic-checking overhead table
    python -m repro.bench all            # everything (slow: full Fig. 4 grid)

The same series the pytest benches persist are printed to stdout.
"""

from __future__ import annotations

import argparse
import sys

from ..simtime import PLATFORMS
from . import hotpath
from .figures import (
    FIG4_SEG_SIZES,
    fig3_series,
    fig4_series,
    fig5_series,
    fig6_platform_series,
)
from .harness import format_series_table, format_table

_PLATFORM_CHOICES = sorted(PLATFORMS) + ["all"]


def _platforms(arg: str):
    return list(PLATFORMS.values()) if arg == "all" else [PLATFORMS[arg]]


def cmd_table2(_args) -> None:
    headers = ["System", "Nodes", "Cores per Node", "Memory per Node",
               "Interconnect", "MPI Version"]
    rows = [p.table2_row() for p in PLATFORMS.values()]
    print(format_table("Table II: Experimental platforms", headers, rows))


def cmd_fig3(args) -> None:
    for platform in _platforms(args.platform):
        series = fig3_series(platform, exponents=(0, 25), step=args.step)
        print(format_series_table(
            f"Figure 3 — {platform.name}: contiguous bandwidth (GB/s)",
            "bytes", series,
        ))
        print()


def cmd_fig4(args) -> None:
    kinds = ["get", "acc", "put"] if args.kind == "all" else [args.kind]
    sizes = list(FIG4_SEG_SIZES) if args.seg_size == 0 else [args.seg_size]
    for platform in _platforms(args.platform):
        for kind in kinds:
            for seg in sizes:
                series = fig4_series(platform, kind, seg)
                print(format_series_table(
                    f"Figure 4 — {platform.name}: strided {kind}, "
                    f"SIZE={seg}B (GB/s)",
                    "nsegs", series,
                ))
                print()


def cmd_fig5(_args) -> None:
    series = fig5_series(PLATFORMS["ib"])
    print(format_series_table(
        "Figure 5 — registration interop, contiguous get (GB/s)",
        "bytes", series,
    ))


def cmd_fig6(args) -> None:
    kinds = ["ccsd", "triples"] if args.kind == "all" else [args.kind]
    for platform in _platforms(args.platform):
        for kind in kinds:
            if kind == "triples" and platform.key not in ("ib", "xe6"):
                continue  # the paper only shows (T) on these two
            series = fig6_platform_series(platform, kind=kind)
            print(format_series_table(
                f"Figure 6 — {platform.name}: {kind.upper()} time (min)",
                "cores", series,
            ))
            print()


def cmd_hotpath(args) -> int:
    """Hot-path microbenches: measure, optionally gate or rewrite baseline."""
    if args.smoke:
        ok, report = hotpath.smoke(args.baseline)
        print(report)
        return 0 if ok else 1
    results = hotpath.measure(fast=args.fast)
    print(hotpath.format_results(results))
    if args.write:
        path = hotpath.write_baseline(results, args.baseline)
        print(f"\nwrote {path}")
    return 0


def cmd_mpi3(args) -> int:
    """MPI-3 datapath benches: measure, optionally gate or rewrite baseline."""
    from . import mpi3_smoke

    if args.smoke:
        ok, report = mpi3_smoke.smoke(args.baseline)
        print(report)
        return 0 if ok else 1
    results = mpi3_smoke.measure(fast=args.fast)
    print(mpi3_smoke.format_results(results))
    if args.write:
        path = mpi3_smoke.write_baseline(results, args.baseline)
        print(f"\nwrote {path}")
    return 0


def cmd_procs(args) -> int:
    """Proc-backend benches: wall-clock put/get throughput vs world size."""
    from . import procs_smoke

    if args.smoke:
        ok, report = procs_smoke.smoke(args.baseline)
        print(report)
        return 0 if ok else 1
    results = procs_smoke.measure(fast=args.fast)
    print(procs_smoke.format_results(results))
    if args.write:
        path = procs_smoke.write_baseline(results, args.baseline)
        print(f"\nwrote {path}")
    return 0


def cmd_proc_recover(args) -> int:
    """Proc-backend recovery benches: detection latency + restart time."""
    from . import proc_recover_smoke

    if args.smoke:
        ok, report = proc_recover_smoke.smoke(args.baseline)
        print(report)
        return 0 if ok else 1
    results = proc_recover_smoke.measure(fast=args.fast)
    print(proc_recover_smoke.format_results(results))
    if args.write:
        path = proc_recover_smoke.write_baseline(results, args.baseline)
        print(f"\nwrote {path}")
    return 0


def cmd_traffic(args) -> int:
    """Traffic-harness benches: offered load vs goodput/latency/shed rate."""
    from . import traffic_smoke

    if args.smoke:
        ok, report = traffic_smoke.smoke(args.baseline)
        print(report)
        return 0 if ok else 1
    results = traffic_smoke.measure(fast=args.fast)
    print(traffic_smoke.format_results(results))
    if args.write:
        path = traffic_smoke.write_baseline(results, args.baseline)
        print(f"\nwrote {path}")
    return 0


def cmd_sanitize(_args) -> int:
    """Sanitizer + schedule-fuzzer smoke gate (mutex and RMW protocols)."""
    from . import sanitize_smoke

    ok, report = sanitize_smoke.smoke()
    print(report)
    return 0 if ok else 1


def cmd_recover(_args) -> int:
    """Recovery smoke gate: kill + shrink + rebuild across the scenarios."""
    from . import recover_smoke

    ok, report = recover_smoke.smoke()
    print(report)
    return 0 if ok else 1


def cmd_lint(_args) -> int:
    """Whole-repo repro.lint sweep + corpus sensitivity check."""
    from . import lint_smoke

    ok, report = lint_smoke.smoke()
    print(report)
    return 0 if ok else 1


def cmd_sanitize_ablation(args) -> int:
    """Overhead ablation: schedule vs +sanitizer vs +faults vs both."""
    from . import sanitize_ablation

    results = sanitize_ablation.measure(fast=args.fast)
    print(sanitize_ablation.format_results(results))
    if args.write:
        path = sanitize_ablation.write_baseline(results, args.baseline)
        print(f"\nwrote {path}")
    return 0


def cmd_all(args) -> None:
    cmd_table2(args)
    print()
    ns = argparse.Namespace(platform="all", step=1, kind="all", seg_size=0)
    cmd_fig3(ns)
    cmd_fig4(ns)
    cmd_fig5(ns)
    cmd_fig6(ns)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables and figures of the paper's §VII.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="Table II platform characteristics")

    p3 = sub.add_parser("fig3", help="contiguous bandwidth")
    p3.add_argument("--platform", choices=_PLATFORM_CHOICES, default="all")
    p3.add_argument("--step", type=int, default=1,
                    help="sample every Nth power of two (default 1)")

    p4 = sub.add_parser("fig4", help="strided bandwidth by method")
    p4.add_argument("--platform", choices=_PLATFORM_CHOICES, default="all")
    p4.add_argument("--kind", choices=["get", "acc", "put", "all"], default="all")
    p4.add_argument("--seg-size", type=int, default=0,
                    help="segment size in bytes (0 = both paper sizes)")

    sub.add_parser("fig5", help="registration interoperability")

    p6 = sub.add_parser("fig6", help="NWChem CCSD/(T) scaling")
    p6.add_argument("--platform", choices=_PLATFORM_CHOICES, default="all")
    p6.add_argument("--kind", choices=["ccsd", "triples", "all"], default="all")

    ph = sub.add_parser(
        "hotpath", help="vectorized-datapath microbenches (pack/unpack, "
        "strided translation, conflict check, GMR lookup)"
    )
    ph.add_argument("--smoke", action="store_true",
                    help="fast regression gate against the committed "
                    "benchmarks/BENCH_hotpath.json (exit 1 on >2x regression)")
    ph.add_argument("--fast", action="store_true",
                    help="shorter measurement windows")
    ph.add_argument("--write", action="store_true",
                    help="rewrite the committed baseline JSON")
    ph.add_argument("--baseline", default=None,
                    help="override the baseline JSON path")

    pm = sub.add_parser(
        "mpi3", help="MPI-3 flush-datapath benches: eager per-op epochs "
        "(mpi2) vs deferred issue + flush (mpi3) vs adjacency coalescing"
    )
    pm.add_argument("--smoke", action="store_true",
                    help="fast gate against the committed "
                    "benchmarks/BENCH_mpi3_datapath.json (exit 1 when the "
                    "mpi3 or coalescing speedup falls below its floor)")
    pm.add_argument("--fast", action="store_true",
                    help="fewer batches per arm")
    pm.add_argument("--write", action="store_true",
                    help="rewrite the committed baseline JSON")
    pm.add_argument("--baseline", default=None,
                    help="override the baseline JSON path")

    pp = sub.add_parser(
        "procs", help="proc-backend (one OS process per rank) aggregate "
        "put/get throughput over shared-memory windows, for 1/2/4 ranks"
    )
    pp.add_argument("--smoke", action="store_true",
                    help="fast gate: baseline benchmarks/BENCH_procs.json "
                    "must parse, and on hosts with >= 4 CPUs the 1->4 rank "
                    "aggregate-throughput scaling must stay >= 2x")
    pp.add_argument("--fast", action="store_true",
                    help="fewer repetitions per world size")
    pp.add_argument("--write", action="store_true",
                    help="rewrite the committed baseline JSON")
    pp.add_argument("--baseline", default=None,
                    help="override the baseline JSON path")

    pr = sub.add_parser(
        "proc-recover", help="proc-backend survivor restart: SIGKILL a rank "
        "mid-collective, measure detection latency and recover+restore wall "
        "time per heartbeat interval"
    )
    pr.add_argument("--smoke", action="store_true",
                    help="fast gate: baseline benchmarks/BENCH_proc_recover"
                    ".json must parse, the recovery must be value-correct, "
                    "and on hosts with >= 4 CPUs detection must land inside "
                    "its budget")
    pr.add_argument("--fast", action="store_true",
                    help="sweep only the first heartbeat interval")
    pr.add_argument("--write", action="store_true",
                    help="rewrite the committed baseline JSON")
    pr.add_argument("--baseline", default=None,
                    help="override the baseline JSON path")

    pt = sub.add_parser(
        "traffic", help="service-style traffic harness over the GA layer: "
        "offered load vs goodput/p50/p99/shed rate per workload, seeded "
        "mid-traffic kills with bit-identical replay, and a proc-backend "
        "fault-free vs SIGKILL degradation pair"
    )
    pt.add_argument("--smoke", action="store_true",
                    help="fast gate: baseline benchmarks/BENCH_traffic.json "
                    "must parse, every run must verify its oracle, faulted "
                    "replays must be bit-identical, and on hosts with >= 4 "
                    "CPUs the proc SIGKILL run must recover with goodput "
                    ">= 0.5x fault-free")
    pt.add_argument("--fast", action="store_true",
                    help="single offered-load point per workload")
    pt.add_argument("--write", action="store_true",
                    help="rewrite the committed baseline JSON")
    pt.add_argument("--baseline", default=None,
                    help="override the baseline JSON path")

    sub.add_parser(
        "sanitize", help="fuzzed-schedule RMA sanitizer gate over the "
        "mutex and RMW protocols (<60 s)"
    )

    sub.add_parser(
        "recover", help="rank-death recovery gate: every recovery scenario "
        "must complete value-correct on the shrunken world and replay "
        "bit-identically (<60 s)"
    )

    sub.add_parser(
        "lint", help="whole-repo static RMA/ARMCI sweep plus corpus "
        "sensitivity check (seconds)"
    )

    pa = sub.add_parser(
        "sanitize-ablation", help="dynamic-checking overhead ablation: bare "
        "schedule vs +sanitizer vs +fault plumbing vs both"
    )
    pa.add_argument("--fast", action="store_true",
                    help="shorter measurement windows")
    pa.add_argument("--write", action="store_true",
                    help="rewrite benchmarks/BENCH_sanitize_ablation.json")
    pa.add_argument("--baseline", default=None,
                    help="override the baseline JSON path")

    sub.add_parser("all", help="everything (slow)")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # convenience aliases: `python -m repro.bench --hotpath-smoke` etc.
    if "--hotpath-smoke" in argv:
        argv = [a for a in argv if a != "--hotpath-smoke"]
        argv = ["hotpath", "--smoke"] + argv
    if "--mpi3-smoke" in argv:
        argv = [a for a in argv if a != "--mpi3-smoke"]
        argv = ["mpi3", "--smoke"] + argv
    if "--procs-smoke" in argv:
        argv = [a for a in argv if a != "--procs-smoke"]
        argv = ["procs", "--smoke"] + argv
    if "--proc-recover-smoke" in argv:
        argv = [a for a in argv if a != "--proc-recover-smoke"]
        argv = ["proc-recover", "--smoke"] + argv
    if "--sanitize-smoke" in argv:
        argv = [a for a in argv if a != "--sanitize-smoke"]
        argv = ["sanitize"] + argv
    if "--recover-smoke" in argv:
        argv = [a for a in argv if a != "--recover-smoke"]
        argv = ["recover"] + argv
    if "--lint-smoke" in argv:
        argv = [a for a in argv if a != "--lint-smoke"]
        argv = ["lint"] + argv
    if "--traffic-smoke" in argv:
        argv = [a for a in argv if a != "--traffic-smoke"]
        argv = ["traffic", "--smoke"] + argv
    if "--sanitize-ablation" in argv:
        argv = [a for a in argv if a != "--sanitize-ablation"]
        argv = ["sanitize-ablation"] + argv
    args = build_parser().parse_args(argv)
    rv = {
        "table2": cmd_table2,
        "fig3": cmd_fig3,
        "fig4": cmd_fig4,
        "fig5": cmd_fig5,
        "fig6": cmd_fig6,
        "hotpath": cmd_hotpath,
        "mpi3": cmd_mpi3,
        "procs": cmd_procs,
        "proc-recover": cmd_proc_recover,
        "traffic": cmd_traffic,
        "sanitize": cmd_sanitize,
        "recover": cmd_recover,
        "lint": cmd_lint,
        "sanitize-ablation": cmd_sanitize_ablation,
        "all": cmd_all,
    }[args.command](args)
    return int(rv or 0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
