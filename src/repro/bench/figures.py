"""Series generators for every figure of §VII (and the ablations).

Figures 3 and 4 are *measured*: the real ARMCI-MPI implementation (and
the simulated native ARMCI) execute the paper's microbenchmarks on
simulated ranks with the platform's timing policy installed; bandwidth
comes from the initiating rank's simulated clock.  Figures 5 and 6 are
composed analytically (registration model / NWChem scaling model).
"""

from __future__ import annotations

import numpy as np

from ..armci import Armci, ArmciConfig
from ..armci_native import NativeArmci
from ..mpi.runtime import current_proc
from ..nwchem.model import WorkloadModel, fig6_series
from ..simtime.netmodel import MPITimingPolicy
from ..simtime.platforms import Platform
from .harness import Series, gbps, pow2_sizes, run_measurement

#: figure-3 transfer sizes: 2^0 .. 2^25 bytes (sampled every 2 octaves
#: by default to keep runtime reasonable; the paper plots every size)
FIG3_EXPONENTS = (0, 25)
#: figure-4 segment counts: 2^0 .. 2^10
FIG4_EXPONENTS = (0, 10)
#: figure-4 segment sizes (bytes)
FIG4_SEG_SIZES = (16, 1024)
#: figure-4 ARMCI-MPI strided methods (paper legend order)
FIG4_METHODS = ("direct", "iov-direct", "iov-batched", "iov-consrv")
#: figure-6 core counts per platform (from the paper's x axes)
FIG6_CORES = {
    "bgp": [1024, 2048, 3072, 4096],
    "ib": [192, 224, 256, 288, 320, 352, 384],
    "xt5": [2048, 4096, 6144, 8192, 10240, 12288],
    "xe6": [744, 1488, 2232, 2976, 3720, 4464, 5208, 5952],
}


# ---------------------------------------------------------------------------
# Figure 3: contiguous bandwidth, native vs ARMCI-MPI
# ---------------------------------------------------------------------------


def _measure_contig(comm, platform: Platform, flavor: str, sizes, out):
    reps = 3
    if flavor == "mpi":
        rt = Armci.init(comm)
    else:
        rt = NativeArmci.init(comm, path=platform.native)
    ptrs = rt.malloc(max(sizes))
    me = rt.my_id
    results = {}
    for kind in ("get", "put", "acc"):
        for n in sizes:
            buf = np.zeros(n // 8 or 1, dtype="f8")[: max(n // 8, 1)]
            raw = np.zeros(max(n, 8), dtype=np.uint8)[:n] if n % 8 else None
            rt.barrier()
            if me == 0:
                clock = current_proc().clock
                t0 = clock.now
                for _ in range(reps):
                    if kind == "get":
                        if n % 8 == 0 and n:
                            rt.get(ptrs[1], buf, nbytes=n)
                        else:
                            rt.get(ptrs[1], raw, nbytes=n)
                    elif kind == "put":
                        if n % 8 == 0 and n:
                            rt.put(buf, ptrs[1], nbytes=n)
                        else:
                            rt.put(raw, ptrs[1], nbytes=n)
                    else:
                        m = max(n // 8, 1)
                        rt.acc(np.zeros(m), ptrs[1], nbytes=m * 8)
                results[(kind, n)] = (clock.now - t0) / reps
            rt.barrier()
    if me == 0:
        out.update(results)
    rt.barrier()
    rt.free(ptrs[me])


def fig3_series(
    platform: Platform, exponents: tuple[int, int] = FIG3_EXPONENTS, step: int = 1
) -> list[Series]:
    """Six lines per platform: {get,put,acc} x {native, MPI}."""
    sizes = pow2_sizes(*exponents, step=step)
    series: list[Series] = []
    for flavor, tag in (("native", "Nat."), ("mpi", "MPI")):
        out: dict = {}
        timing = MPITimingPolicy(platform.mpi) if flavor == "mpi" else None
        run_measurement(2, _measure_contig, platform, flavor, sizes, out, timing=timing)
        for kind in ("get", "put", "acc"):
            s = Series(label=f"{kind.capitalize()} ({tag})")
            for n in sizes:
                s.add(n, gbps(n, out[(kind, n)]))
            series.append(s)
    return series


# ---------------------------------------------------------------------------
# Figure 4: strided bandwidth by method
# ---------------------------------------------------------------------------


def _measure_strided(comm, platform, method, kind, seg_size, counts, out):
    """One (method, kind, segment size) line over segment counts."""
    reps = 2
    if method == "native":
        rt = NativeArmci.init(comm, path=platform.native)
    else:
        cfg = {
            "direct": ArmciConfig(strided_method="direct"),
            "iov-direct": ArmciConfig(strided_method="iov", iov_method="direct"),
            "iov-batched": ArmciConfig(strided_method="iov", iov_method="batched"),
            "iov-consrv": ArmciConfig(strided_method="iov", iov_method="conservative"),
        }[method]
        rt = Armci.init(comm, cfg)
    me = rt.my_id
    stride = seg_size * 2  # 50% density, as strided tests go
    maxn = max(counts)
    rt_ptrs = rt.malloc(stride * maxn + seg_size)
    local = np.zeros(stride * maxn + seg_size, dtype=np.uint8)
    results = {}
    for n in counts:
        rt.barrier()
        if me == 0:
            clock = current_proc().clock
            t0 = clock.now
            for _ in range(reps):
                if kind == "put":
                    rt.put_s(local, [stride], rt_ptrs[1], [stride], [seg_size, n])
                elif kind == "get":
                    rt.get_s(rt_ptrs[1], [stride], local, [stride], [seg_size, n])
                else:
                    rt.acc_s(
                        local, [stride], rt_ptrs[1], [stride], [seg_size, n],
                        scale=1.0, dtype="f8",
                    )
            results[n] = (clock.now - t0) / reps
        rt.barrier()
    if me == 0:
        out.update(results)
    rt.barrier()
    rt.free(rt_ptrs[me])


def fig4_series(
    platform: Platform,
    kind: str,
    seg_size: int,
    exponents: tuple[int, int] = FIG4_EXPONENTS,
) -> list[Series]:
    """Five lines: native + the four ARMCI-MPI strided methods."""
    counts = pow2_sizes(*exponents)
    series = []
    for method in ("native",) + FIG4_METHODS:
        out: dict = {}
        timing = None if method == "native" else MPITimingPolicy(platform.mpi)
        run_measurement(
            2, _measure_strided, platform, method, kind, seg_size, counts, out,
            timing=timing,
        )
        s = Series(label="Native" if method == "native" else method)
        for n in counts:
            s.add(n, gbps(n * seg_size, out[n]))
        series.append(s)
    return series


# ---------------------------------------------------------------------------
# Figure 5: registration interoperability (analytic; IB platform)
# ---------------------------------------------------------------------------


def fig5_series(platform: Platform, exponents: tuple[int, int] = (2, 22)) -> list[Series]:
    sizes = pow2_sizes(*exponents)
    reg = platform.registration
    lines = [
        ("ARMCI-IB, ARMCI Alloc", reg.armci_get_armci_buffer),
        ("MPI, MPI Touch", reg.mpi_get_touched),
        ("ARMCI-IB, MPI Touch", reg.armci_get_mpi_buffer),
        ("MPI, ARMCI Alloc", reg.mpi_get_untouched),
    ]
    out = []
    for label, fn in lines:
        s = Series(label=label)
        for n in sizes:
            s.add(n, gbps(n, fn(n)))
        out.append(s)
    return out


# ---------------------------------------------------------------------------
# Figure 6: NWChem CCSD / (T) scaling (analytic composition)
# ---------------------------------------------------------------------------


def fig6_platform_series(
    platform: Platform, kind: str = "ccsd", workload: "WorkloadModel | None" = None
) -> list[Series]:
    cores = FIG6_CORES[platform.key]
    data = fig6_series(platform, cores, kind=kind, workload=workload)
    native = Series(label=f"ARMCI-Native {kind.upper()}")
    mpi = Series(label=f"ARMCI-MPI {kind.upper()}")
    for c, tn, tm in zip(data["cores"], data["native_min"], data["mpi_min"]):
        native.add(c, tn)
        mpi.add(c, tm)
    return [mpi, native]
