"""Benchmark harness utilities: sweeps, series, table formatting.

Two measurement styles coexist, per DESIGN.md:

* **simulated-execution measurements** (Figs. 3, 4 and the ablations):
  the real ARMCI-MPI / native-ARMCI code paths run on simulated ranks
  with a platform timing policy installed; reported time is the
  initiating rank's simulated-clock delta.  This exercises every layer
  (GMR translation, datatype flattening, epochs) end to end.
* **analytic composition** (Figs. 5, 6): closed-form model evaluation
  where execution at true scale is infeasible.

Nothing here measures Python wall-clock; pytest-benchmark covers the
only place where real CPU time *is* the paper's metric (the §VI-B
conflict-tree comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..mpi.runtime import Runtime


def pow2_sizes(lo_exp: int, hi_exp: int, step: int = 1) -> list[int]:
    """[2^lo, ..., 2^hi] inclusive."""
    return [1 << e for e in range(lo_exp, hi_exp + 1, step)]


def gbps(nbytes: float, seconds: float) -> float:
    """Bandwidth in GB/s (returns 0 for zero-duration no-ops)."""
    return (nbytes / seconds) / 1e9 if seconds > 0 else 0.0


@dataclass
class Series:
    """One plotted line: (x, y) pairs plus identity."""

    label: str
    x: list = field(default_factory=list)
    y: list = field(default_factory=list)

    def add(self, x, y) -> None:
        self.x.append(x)
        self.y.append(y)

    def as_rows(self) -> Iterable[tuple]:
        return zip(self.x, self.y)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    floatfmt: str = "{:.4g}",
) -> str:
    """Fixed-width text table (the benches' printed output)."""
    srows = [
        [floatfmt.format(c) if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in srows)) if srows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "  "
    lines = [title, "-" * len(title)]
    lines.append(sep.join(h.rjust(w) for h, w in zip(headers, widths)))
    for r in srows:
        lines.append(sep.join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series_table(title: str, xlabel: str, series: Sequence[Series]) -> str:
    """Tabulate several series sharing the same x axis."""
    if not series:
        return title
    xs = series[0].x
    for s in series:
        if s.x != xs:
            raise ValueError(f"series {s.label!r} has a different x axis")
    rows = [
        [x] + [s.y[i] for s in series]
        for i, x in enumerate(xs)
    ]
    return format_table(title, [xlabel] + [s.label for s in series], rows)


def run_measurement(
    nproc: int,
    fn: Callable,
    *args,
    timing=None,
    watchdog_s: float = 10.0,
) -> list:
    """Run an SPMD measurement function on a fresh simulated runtime.

    ``timing`` (a policy object) is installed on the runtime before the
    ranks start, so every MPI-level operation charges modeled cost.
    Returns the per-rank results of ``fn(comm, *args)``.
    """
    rt = Runtime(nproc, watchdog_s=watchdog_s)
    rt.timing = timing
    return rt.spmd(fn, *args)
