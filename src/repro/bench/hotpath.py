"""Hot-path micro-benchmarks for the vectorized datapath.

The paper's §VI performance argument is that datatype processing and
per-operation bookkeeping dominate noncontiguous transfer cost.  In this
reproduction those same paths are the Python-level hot spots, and this
module tracks them:

``pack_uniform_1024`` / ``unpack_uniform_1024``
    vectorised gather/scatter of 1024 uniform 64-byte segments vs the
    retained per-segment reference loop
    (:func:`repro.mpi.datatypes.pack_reference`).
``strided_translation``
    memoised :func:`repro.armci.strided.strided_datatype` vs rebuilding
    and committing the subarray type per operation.
``conflict_check_contig``
    single-interval :class:`repro.mpi.window._IntervalSet` overlap query
    (bounding-box fast path) vs the pre-PR sorted-scan reference.
``gmr_lookup_hot``
    :class:`repro.armci.gmr.GmrTable` last-hit cache vs the bisect-only
    lookup.

Each workload exposes an *optimized* callable (the production code path)
and a *baseline* callable (the pre-PR algorithm, retained in-tree), so
speedups are measured by one suite on one machine in one process — the
committed ``benchmarks/BENCH_hotpath.json`` records them and the smoke
target (``python -m repro.bench --hotpath-smoke``) fails when a speedup
collapses by more than 2x against that baseline file.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from typing import Callable

import numpy as np

from ..armci import iov, strided
from ..armci.gmr import GmrTable
from ..mpi import datatypes as dt
from ..mpi.group import UNDEFINED
from ..mpi.window import _IntervalSet, _segments_overlap

#: default location of the committed baseline (repo benchmarks/ dir)
BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_hotpath.json"
)

#: smoke fails when a measured speedup drops below committed/REGRESSION_FACTOR
REGRESSION_FACTOR = 2.0

#: acceptance floors: the vectorized datapath must beat the retained
#: pre-PR reference by at least this much, independent of the machine
MIN_SPEEDUP = {
    "pack_uniform_1024": 5.0,
    "unpack_uniform_1024": 5.0,
    "strided_translation": 2.0,
    "conflict_check_contig": 1.0,
    "gmr_lookup_hot": 1.0,
}


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------


def _wl_pack() -> tuple[Callable, Callable]:
    nseg, seg, stride = 1024, 64, 128
    t = dt.hindexed([seg] * nseg, [i * stride for i in range(nseg)], dt.BYTE).commit()
    buf = (np.arange(nseg * stride, dtype=np.int64) % 251).astype(np.uint8)
    return (lambda: t.pack(buf)), (lambda: dt.pack_reference(t, buf))


def _wl_unpack() -> tuple[Callable, Callable]:
    nseg, seg, stride = 1024, 64, 128
    t = dt.hindexed([seg] * nseg, [i * stride for i in range(nseg)], dt.BYTE).commit()
    buf = np.zeros(nseg * stride, dtype=np.uint8)
    data = (np.arange(nseg * seg, dtype=np.int64) % 251).astype(np.uint8)
    return (
        lambda: t.unpack(buf, data),
        lambda: dt.unpack_reference(t, buf, data),
    )


def _wl_strided() -> tuple[Callable, Callable]:
    # a 3-level GA-style patch: 8 planes x 64 rows of 256 contiguous bytes
    count = (256, 64, 8)
    strides = (512, 512 * 64)
    strided.strided_datatype_cache_clear()
    strided.strided_datatype(strides, count)  # warm the memo
    return (
        lambda: strided.strided_datatype(strides, count),
        lambda: strided.strided_datatype_uncached(strides, count),
    )


def _wl_conflict() -> tuple[Callable, Callable]:
    iset = _IntervalSet()
    for i in range(512):
        iset.add(
            np.array([i * 256], dtype=np.int64), np.array([128], dtype=np.int64)
        )
    # a non-conflicting single-segment op past everything recorded
    q_off = np.array([1 << 30], dtype=np.int64)
    q_len = np.array([128], dtype=np.int64)
    cov_off, cov_len = iset._cov_off, iset._cov_len
    pending = list(iset._pending)

    def baseline() -> bool:
        # the pre-PR overlap query: sorted-scan against coverage, then an
        # argsort per pending batch — no bounding-box rejection
        if _segments_overlap(q_off, q_len, cov_off, cov_len):
            return True
        for p_off, p_len in pending:
            if len(p_off) > 1:
                order = np.argsort(p_off, kind="stable")
                p_off, p_len = p_off[order], p_len[order]
            if _segments_overlap(q_off, q_len, p_off, p_len):
                return True
        return False

    return (lambda: iset.overlaps(q_off, q_len)), baseline


class _BenchGroup:
    """Single-member group shim so GmrTable can be benched without a runtime."""

    size = 1

    @staticmethod
    def absolute_id(_r: int) -> int:
        return 0

    @staticmethod
    def group_rank_of(absolute: int) -> int:
        return 0 if absolute == 0 else UNDEFINED


class _BenchGmr:
    """Duck-typed GMR: bases/sizes/contains are all GmrTable needs."""

    def __init__(self, base: int, size: int):
        self.bases = [base]
        self.sizes = [size]
        self.group = _BenchGroup()
        self.freed = False

    def contains(self, _rank: int, addr: int) -> bool:
        return self.bases[0] <= addr < self.bases[0] + self.sizes[0]


def _wl_gmr_lookup() -> tuple[Callable, Callable]:
    table = GmrTable()
    gmrs = [_BenchGmr(0x1000 + i * 0x10000, 0x8000) for i in range(64)]
    for g in gmrs:
        table.register(g)  # type: ignore[arg-type]
    addr = gmrs[48].bases[0] + 1234
    table.lookup(0, addr)  # prime the hot entry
    return (lambda: table.lookup(0, addr)), (lambda: table._lookup_bisect(0, addr))


WORKLOADS: dict[str, Callable[[], tuple[Callable, Callable]]] = {
    "pack_uniform_1024": _wl_pack,
    "unpack_uniform_1024": _wl_unpack,
    "strided_translation": _wl_strided,
    "conflict_check_contig": _wl_conflict,
    "gmr_lookup_hot": _wl_gmr_lookup,
}


def workload_names() -> list[str]:
    return list(WORKLOADS)


def build(name: str) -> tuple[Callable, Callable]:
    """(optimized, baseline) callables for one workload, fresh state."""
    return WORKLOADS[name]()


# ---------------------------------------------------------------------------
# timing
# ---------------------------------------------------------------------------


def _time_per_op(fn: Callable, min_time: float, repeats: int) -> float:
    """Best-of-``repeats`` seconds per call, auto-calibrated batch size."""
    fn()  # warmup (also warms memo caches)
    number = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - t0
        if elapsed >= min_time / 4 or number >= 1 << 20:
            break
        number *= 4
    best = elapsed / number
    for _ in range(repeats - 1):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - t0) / number)
    return best


def measure(fast: bool = False) -> dict[str, dict[str, float]]:
    """Run every workload; returns per-workload optimized/baseline/speedup."""
    min_time, repeats = (0.02, 2) if fast else (0.1, 3)
    results: dict[str, dict[str, float]] = {}
    for name, setup in WORKLOADS.items():
        optimized, baseline = setup()
        opt_s = _time_per_op(optimized, min_time, repeats)
        base_s = _time_per_op(baseline, min_time, repeats)
        results[name] = {
            "optimized_s": opt_s,
            "baseline_s": base_s,
            "speedup": base_s / opt_s if opt_s > 0 else float("inf"),
        }
    return results


# ---------------------------------------------------------------------------
# baseline file + smoke check
# ---------------------------------------------------------------------------


def write_baseline(
    results: dict[str, dict[str, float]], path: "pathlib.Path | None" = None
) -> pathlib.Path:
    """Persist results as the machine-readable trajectory file."""
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    payload = {
        "schema": 1,
        "units": "seconds_per_op",
        "note": (
            "hot-path datapath benchmarks; 'baseline' is the retained "
            "pre-vectorization reference implementation measured by the "
            "same suite in the same process"
        ),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "min_speedup": MIN_SPEEDUP,
        "results": results,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: "pathlib.Path | None" = None) -> dict:
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    return json.loads(path.read_text())


def format_results(results: dict[str, dict[str, float]]) -> str:
    width = max(len(n) for n in results)
    lines = ["Hot-path datapath benchmarks (seconds per op)"]
    lines.append("-" * len(lines[0]))
    lines.append(
        f"{'workload':<{width}}  {'optimized':>12}  {'baseline':>12}  {'speedup':>8}"
    )
    for name, r in results.items():
        lines.append(
            f"{name:<{width}}  {r['optimized_s']:>12.3e}  "
            f"{r['baseline_s']:>12.3e}  {r['speedup']:>7.1f}x"
        )
    return "\n".join(lines)


def smoke(path: "pathlib.Path | None" = None) -> tuple[bool, str]:
    """Fast regression gate against the committed baseline file.

    Re-measures every workload (fast mode, <60 s total) and fails when a
    measured speedup fell below ``committed_speedup / REGRESSION_FACTOR``
    (i.e. the hot path regressed >2x relative to the in-process reference
    implementation) or below its absolute acceptance floor.  Speedups —
    not wall-clock times — are compared, so the gate is stable across
    machines of different absolute speed.
    """
    try:
        committed = load_baseline(path)
    except (OSError, json.JSONDecodeError) as exc:
        where = path if path is not None else BASELINE_PATH
        return False, f"HOTPATH SMOKE: unreadable baseline {where}: {exc}"
    measured = measure(fast=True)
    failures: list[str] = []
    lines = [format_results(measured), ""]
    for name, r in measured.items():
        ref = committed.get("results", {}).get(name)
        if ref is None:
            failures.append(f"{name}: missing from committed baseline")
            continue
        floor = max(
            MIN_SPEEDUP.get(name, 1.0), ref["speedup"] / REGRESSION_FACTOR
        )
        if r["speedup"] < floor:
            failures.append(
                f"{name}: speedup {r['speedup']:.1f}x fell below {floor:.1f}x "
                f"(committed {ref['speedup']:.1f}x / regression factor "
                f"{REGRESSION_FACTOR})"
            )
    if failures:
        lines.append("HOTPATH SMOKE: FAIL")
        lines.extend(f"  - {f}" for f in failures)
        return False, "\n".join(lines)
    lines.append("HOTPATH SMOKE: ok (no hot-path benchmark regressed >2x)")
    return True, "\n".join(lines)
