"""Fast static-analysis gate: ``python -m repro.bench --lint-smoke``.

Times a whole-repo ``repro.lint`` sweep and re-checks the conformance
corpus, mirroring what CI runs.  Passing means:

* ``examples benchmarks src tests`` lint clean (zero findings, zero
  parse errors) — the same gate ``tests/test_lint.py`` enforces;
* every ``tests/lint_corpus/bad_*.py`` still fires at least one
  diagnostic (the analyzer has not gone silently blind);
* the sweep finishes inside a generous wall-clock budget, so the
  linter stays cheap enough to run on every push.

Budget: a few seconds; suitable as a tier-1 gate.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from ..lint.cli import _iter_py_files, lint_file, lint_paths

#: wall-clock ceiling for the whole-repo sweep (seconds); the sweep
#: runs in ~1 s today, so tripping this means something pathological
BUDGET_S = 30.0

GATE_DIRS = ("examples", "benchmarks", "src", "tests")


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def smoke() -> tuple[bool, str]:
    """Run the gate; returns (passed, printable report)."""
    root = _repo_root()
    lines = ["lint-smoke: whole-repo static RMA/ARMCI sweep"]

    paths = [str(root / d) for d in GATE_DIRS if (root / d).is_dir()]
    nfiles = sum(1 for _ in _iter_py_files(paths, include_corpus=False))
    t0 = time.perf_counter()
    diags, errors = lint_paths(paths)
    elapsed = time.perf_counter() - t0
    clean = not diags and not errors
    within = elapsed < BUDGET_S
    lines.append(
        f"  repo sweep         {nfiles} files in {elapsed:.2f}s "
        f"(budget {BUDGET_S:.0f}s): {len(diags)} findings, "
        f"{len(errors)} parse errors  "
        f"[{'ok' if clean and within else 'FAIL'}]"
    )
    for d in diags[:10]:
        lines.append(f"    {d.format()}")
    for e in errors[:10]:
        lines.append(f"    {e}")

    corpus = root / "tests" / "lint_corpus"
    bad = sorted(corpus.glob("bad_*.py")) if corpus.is_dir() else []
    silent = [p.name for p in bad if not lint_file(str(p))]
    corpus_ok = bool(bad) and not silent
    lines.append(
        f"  corpus sensitivity {len(bad)} bad snippets, "
        f"{len(bad) - len(silent)} firing  "
        f"[{'ok' if corpus_ok else 'FAIL'}]"
    )
    for name in silent:
        lines.append(f"    silent: {os.path.join('tests/lint_corpus', name)}")

    ok = clean and within and corpus_ok
    lines.append("PASS" if ok else "FAIL")
    return ok, "\n".join(lines)
