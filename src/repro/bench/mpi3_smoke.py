"""MPI-3 datapath benchmarks: flush completion + nonblocking aggregation.

The PR's performance claim has two halves, and this module gates both
against the committed ``benchmarks/BENCH_mpi3_datapath.json``:

* **datapath** — the same stream of small nonblocking operations under
  ``datapath="mpi2"`` (each op eager, in its own lock/unlock epoch — the
  §V-C discipline) vs ``datapath="mpi3"`` (ops queued into the standing
  ``lock_all`` epoch, issued in batches, completed by one per-target
  flush).  The mpi3 arm must be at least :data:`MIN_MPI3_SPEEDUP` faster
  in modeled ops/s.
* **coalescing** — the mpi3 arm with adjacency merging disabled
  (``nb_coalesce_threshold=0``) vs enabled.  Merging adjacent small
  puts/accs into few large transfers must buy at least
  :data:`MIN_COALESCE_SPEEDUP` on top of deferral alone.

All times are *modeled* seconds read from the simulated clock under the
``xe6`` platform's MPI path model (per-op lock/unlock cost vs cheap
in-epoch issue + flush), so results are machine-independent: the smoke
gate compares speedups, and a regression means the datapath itself —
not the host — got slower.
"""

from __future__ import annotations

import json
import pathlib
import platform as host_platform

import numpy as np

from ..armci import Armci, ArmciConfig
from ..mpi.runtime import current_proc
from ..simtime import PLATFORMS, MPITimingPolicy
from .harness import run_measurement

#: default location of the committed baseline (repo benchmarks/ dir)
BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_mpi3_datapath.json"
)

#: smoke fails when a measured speedup drops below committed/REGRESSION_FACTOR
REGRESSION_FACTOR = 2.0

#: acceptance floors (the ISSUE's gates), machine-independent
MIN_MPI3_SPEEDUP = 2.0
MIN_COALESCE_SPEEDUP = 1.5

#: modeled platform: xe6 has per-op lock/unlock cost but no epoch-queue
#: pathology, so it isolates exactly what flush-completion removes
PLATFORM_KEY = "xe6"

#: ops per drained batch; == the default nb_max_pending so no arm
#: auto-drains mid-batch
BATCH = 64

#: bytes per operation (a GA-style element-wise update)
OP_BYTES = 8

#: adjacency-merge cap for the coalesced arm: one batch merges into one
#: BATCH * OP_BYTES transfer
COALESCE_LIMIT = BATCH * OP_BYTES

WORKLOADS = ("small_put", "small_acc")


# ---------------------------------------------------------------------------
# measurement (SPMD bodies on the simulated runtime)
# ---------------------------------------------------------------------------


def _measure_arm(comm, workload: str, datapath: str, coalesce: int, nbatches, out):
    """Per-rank modeled seconds per op for one (workload, arm) pair."""
    cfg = ArmciConfig(nb_coalesce_threshold=coalesce)
    rt = Armci.init(comm, config=cfg, datapath=datapath)
    ptrs = rt.malloc(BATCH * OP_BYTES)
    me = rt.my_id
    peer = (me + 1) % rt.nproc
    src = np.zeros(BATCH * OP_BYTES, dtype=np.uint8).reshape(BATCH, OP_BYTES)
    src[:] = np.arange(BATCH, dtype=np.uint8)[:, None]
    acc_src = np.ones(1, dtype=np.int64)
    op = rt.nb_put if workload == "small_put" else rt.nb_acc
    rt.barrier()
    clock = current_proc().clock
    t0 = clock.now
    for _ in range(nbatches):
        if workload == "small_put":
            handles = [
                op(src[i], ptrs[peer] + i * OP_BYTES, OP_BYTES)
                for i in range(BATCH)
            ]
        else:
            handles = [
                op(acc_src, ptrs[peer] + i * OP_BYTES, 1.0, OP_BYTES)
                for i in range(BATCH)
            ]
        rt.wait_all(handles)
    out[me] = (clock.now - t0) / (nbatches * BATCH)
    rt.barrier()
    rt.free(ptrs[me])
    rt.finalize()


ARMS = (
    # (result key, datapath, nb_coalesce_threshold)
    ("mpi2_s_per_op", "mpi2", 0),
    ("mpi3_s_per_op", "mpi3", 0),
    ("mpi3_coalesced_s_per_op", "mpi3", COALESCE_LIMIT),
)


def measure(fast: bool = False) -> dict[str, dict[str, float]]:
    """Run every workload x arm; returns per-workload times + speedups."""
    nbatches = 4 if fast else 16
    timing = MPITimingPolicy(PLATFORMS[PLATFORM_KEY].mpi)
    results: dict[str, dict[str, float]] = {}
    for workload in WORKLOADS:
        r: dict[str, float] = {}
        for key, datapath, coalesce in ARMS:
            out: dict = {}
            run_measurement(
                2, _measure_arm, workload, datapath, coalesce, nbatches, out,
                timing=timing,
            )
            r[key] = float(np.mean(list(out.values())))
        r["mpi3_speedup"] = r["mpi2_s_per_op"] / r["mpi3_s_per_op"]
        r["coalesce_speedup"] = r["mpi3_s_per_op"] / r["mpi3_coalesced_s_per_op"]
        results[workload] = r
    return results


# ---------------------------------------------------------------------------
# baseline file + smoke check
# ---------------------------------------------------------------------------


def write_baseline(
    results: dict[str, dict[str, float]], path: "pathlib.Path | None" = None
) -> pathlib.Path:
    """Persist results as the machine-readable trajectory file."""
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    payload = {
        "schema": 1,
        "units": "modeled_seconds_per_op",
        "note": (
            "MPI-3 flush-datapath benchmarks on the simulated clock "
            f"({PLATFORM_KEY} MPI path model): eager per-op epochs (mpi2) "
            "vs deferred issue + per-target flush (mpi3), with and "
            "without adjacency coalescing"
        ),
        "environment": {
            "python": host_platform.python_version(),
            "numpy": np.__version__,
            "platform_model": PLATFORM_KEY,
        },
        "min_speedup": {
            "mpi3_speedup": MIN_MPI3_SPEEDUP,
            "coalesce_speedup": MIN_COALESCE_SPEEDUP,
        },
        "results": results,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: "pathlib.Path | None" = None) -> dict:
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    return json.loads(path.read_text())


def format_results(results: dict[str, dict[str, float]]) -> str:
    width = max(len(n) for n in results)
    lines = [f"MPI-3 datapath benchmarks (modeled s/op, {PLATFORM_KEY} model)"]
    lines.append("-" * len(lines[0]))
    lines.append(
        f"{'workload':<{width}}  {'mpi2':>10}  {'mpi3':>10}  {'mpi3+coal':>10}"
        f"  {'mpi3 gain':>9}  {'coal gain':>9}"
    )
    for name, r in results.items():
        lines.append(
            f"{name:<{width}}  {r['mpi2_s_per_op']:>10.3e}  "
            f"{r['mpi3_s_per_op']:>10.3e}  {r['mpi3_coalesced_s_per_op']:>10.3e}"
            f"  {r['mpi3_speedup']:>8.1f}x  {r['coalesce_speedup']:>8.1f}x"
        )
    return "\n".join(lines)


def smoke(path: "pathlib.Path | None" = None) -> tuple[bool, str]:
    """Fast gate: re-measure and compare against the committed baseline.

    Fails when either speedup falls below its absolute acceptance floor
    (mpi3 >= 2x mpi2, coalesced >= 1.5x uncoalesced) or regresses by
    more than :data:`REGRESSION_FACTOR` against the committed value.
    Modeled speedups are deterministic for a given code state, so any
    drift here is a real datapath change, not measurement noise.
    """
    try:
        committed = load_baseline(path)
    except (OSError, json.JSONDecodeError) as exc:
        where = path if path is not None else BASELINE_PATH
        return False, f"MPI3 SMOKE: unreadable baseline {where}: {exc}"
    measured = measure(fast=True)
    failures: list[str] = []
    lines = [format_results(measured), ""]
    floors = {
        "mpi3_speedup": MIN_MPI3_SPEEDUP,
        "coalesce_speedup": MIN_COALESCE_SPEEDUP,
    }
    for name, r in measured.items():
        ref = committed.get("results", {}).get(name)
        if ref is None:
            failures.append(f"{name}: missing from committed baseline")
            continue
        for metric, abs_floor in floors.items():
            floor = max(abs_floor, ref[metric] / REGRESSION_FACTOR)
            if r[metric] < floor:
                failures.append(
                    f"{name}: {metric} {r[metric]:.2f}x fell below {floor:.2f}x "
                    f"(committed {ref[metric]:.2f}x / regression factor "
                    f"{REGRESSION_FACTOR}, absolute floor {abs_floor}x)"
                )
    if failures:
        lines.append("MPI3 SMOKE: FAIL")
        lines.extend(f"  - {f}" for f in failures)
        return False, "\n".join(lines)
    lines.append(
        "MPI3 SMOKE: ok (flush datapath >= "
        f"{MIN_MPI3_SPEEDUP}x eager epochs, coalescing >= "
        f"{MIN_COALESCE_SPEEDUP}x uncoalesced)"
    )
    return True, "\n".join(lines)
