"""Proc-backend recovery benchmark: SIGKILL detection latency + recovery time.

A real process death on ``backend="proc"`` is detected by two racing
paths — the parent monitor noticing the child's exit and broadcasting
``rank_dead``, and the peers' shared-memory heartbeat lease going stale
past ``suspect_after`` with the pid gone.  This bench measures what a
survivor actually experiences: the wall-clock gap between the victim's
``SIGKILL`` (stamped to a marker file, ``fsync``-ed, immediately before
the kill — ``CLOCK_MONOTONIC`` is system-wide, so the stamps compare
across processes) and the survivor catching its first typed failure
error, swept over two heartbeat intervals.  It then times the full
survivor restart — :func:`repro.recover.recover` + GA checkpoint
restore-with-redistribution — and verifies the restored values against
the seeded base, so the number is only recorded for a *correct*
recovery.

The workload replays from ``SEED``: array contents, shape, and the
victim are pure functions of it.  Absolute seconds are machine-dependent
trajectory data in ``benchmarks/BENCH_proc_recover.json``; the gate is
the detection-latency ceiling (detection must come well before the
``join_timeout`` deadlock backstop) and is enforced only on hosts with
at least :data:`MIN_CORES_FOR_GATE` CPUs, where the survivors actually
run in parallel and timing is meaningful.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform as host_platform
import signal
import tempfile
import time

import numpy as np

from ..mpi.runtime import Runtime

#: default location of the committed baseline (repo benchmarks/ dir)
BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_proc_recover.json"
)

#: world size and the rank the scenario kills
NPROC = 4
VICTIM = 2
#: seeds the GA contents (and therefore the post-restore verification)
SEED = 11
#: heartbeat intervals swept; suspect_after scales with each
HEARTBEATS = (0.05, 0.2)
#: the deadlock backstop the runs use …
JOIN_TIMEOUT_S = 60.0
#: … and the gated ceiling on survivor-observed detection latency:
#: detection must beat the backstop by an order of magnitude
DETECT_BUDGET_S = JOIN_TIMEOUT_S * 0.1
#: the latency gate applies only on hosts with at least this many CPUs
MIN_CORES_FOR_GATE = 4

_SHAPE = (12, 12)


def _base(seed: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 1000, size=_SHAPE, dtype=np.int64
    )


def _rank_body(comm, marker: str, seed: int):
    """Seeded kill-and-recover workload; survivors return their timings."""
    from ..armci import Armci
    from ..armci.mutexes import MutexHolderFailed
    from ..ga import GlobalArray
    from ..mpi.errors import (
        CommRevokedError,
        OpTimeoutError,
        TargetFailedError,
    )
    from ..mpi.runtime import RankFailedError
    from ..recover import recover

    recoverable = (
        TargetFailedError,
        RankFailedError,
        CommRevokedError,
        OpTimeoutError,
        MutexHolderFailed,
    )
    base = _base(seed)
    armci = Armci.init(comm)
    ga = GlobalArray.create(armci, _SHAPE, "i8")
    blk = ga.distribution()
    if blk.size:
        view = ga.access()
        view[...] = base[tuple(slice(l, h) for l, h in zip(blk.lo, blk.hi))]
        ga.release()
    ga.sync()
    ckpt = None
    t_detect = None
    recovery_s = None
    try:
        ckpt = ga.checkpoint()
        if armci.my_id == VICTIM:
            with open(marker, "w") as f:
                f.write(repr(time.monotonic()))
                f.flush()
                os.fsync(f.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        # survivors sit in collectives until failure detection poisons
        # them — this is exactly the latency being measured
        for _ in range(100_000):
            comm.allgather(comm.rank)
        flag = 1
    except recoverable:
        t_detect = time.monotonic()
        armci.world.revoke()
        flag = 0
    if not armci.world.agree(flag):
        t0 = time.monotonic()
        armci, report = recover(armci)
        assert VICTIM in report.failed, report
        have_ckpt = ckpt is not None and np.array_equal(ckpt.data, base)
        if armci.world.agree(1 if have_ckpt else 0):
            ga = GlobalArray.restore(armci, ckpt)
        else:  # pragma: no cover - kill raced the checkpoint barrier
            ga = GlobalArray.create(armci, _SHAPE, "i8")
            blk = ga.distribution()
            if blk.size:
                view = ga.access()
                view[...] = base[
                    tuple(slice(l, h) for l, h in zip(blk.lo, blk.hi))
                ]
                ga.release()
            ga.sync()
        recovery_s = time.monotonic() - t0
    full = ga.get([0, 0], list(_SHAPE))
    ga.sync()
    # the timing only counts if the recovery is value-correct
    assert np.array_equal(full, base), "restored GA diverged from the seed"
    return {
        "t_detect": t_detect,
        "recovery_s": recovery_s,
        "nproc_after": armci.nproc,
    }


def _run_once(heartbeat_s: float) -> dict:
    suspect_after = max(4.0 * heartbeat_s, 0.2)
    tmp = tempfile.mkdtemp(prefix="repro-proc-recover-")
    marker = os.path.join(tmp, "t_kill")
    try:
        rt = Runtime(
            NPROC,
            backend="proc",
            heartbeat_s=heartbeat_s,
            suspect_after=suspect_after,
        )
        out = rt.spmd(_rank_body, marker, SEED, join_timeout=JOIN_TIMEOUT_S)
        t_kill = float(pathlib.Path(marker).read_text())
    finally:
        try:
            os.unlink(marker)
        except OSError:
            pass
        try:
            os.rmdir(tmp)
        except OSError:
            pass
    survivors = [r for r in out if r is not None]
    if len(survivors) != NPROC - 1:
        raise RuntimeError(f"expected {NPROC - 1} survivor results, got {out!r}")
    detect = [s["t_detect"] - t_kill for s in survivors]
    recovery = [s["recovery_s"] for s in survivors]
    assert all(s["nproc_after"] == NPROC - 1 for s in survivors), survivors
    return {
        "heartbeat_s": heartbeat_s,
        "suspect_after_s": suspect_after,
        "detect_latency_s": {
            "min": min(detect),
            "max": max(detect),
            "mean": sum(detect) / len(detect),
        },
        "recovery_wall_s": {
            "min": min(recovery),
            "max": max(recovery),
            "mean": sum(recovery) / len(recovery),
        },
    }


def measure(fast: bool = False) -> dict:
    """Detection latency + recovery wall time for each heartbeat interval."""
    sweep = HEARTBEATS[:1] if fast else HEARTBEATS
    results: dict = {}
    for hb in sweep:
        results[f"hb{hb:g}"] = _run_once(hb)
    results["worst_detect_latency_s"] = max(
        r["detect_latency_s"]["max"] for r in results.values()
    )
    return results


# ---------------------------------------------------------------------------
# baseline file + smoke check
# ---------------------------------------------------------------------------


def write_baseline(results: dict, path: "pathlib.Path | None" = None) -> pathlib.Path:
    """Persist results as the machine-readable trajectory file."""
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    payload = {
        "schema": 1,
        "units": "wall_clock_seconds",
        "note": (
            "proc-backend survivor restart: SIGKILL rank "
            f"{VICTIM} of {NPROC} mid-collective (seed {SEED}), measure "
            "survivor-observed detection latency (marker-file monotonic "
            "stamp to first typed failure error) and recover+restore wall "
            "time, per heartbeat interval; absolute seconds are machine-"
            "dependent trajectory data — only the detection ceiling "
            f"(< {DETECT_BUDGET_S:g}s, an order of magnitude inside the "
            f"{JOIN_TIMEOUT_S:g}s join_timeout backstop) is gated, and "
            f"only on hosts with >= {MIN_CORES_FOR_GATE} CPUs"
        ),
        "environment": {
            "python": host_platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "seed": SEED,
        "nproc": NPROC,
        "victim": VICTIM,
        "join_timeout_s": JOIN_TIMEOUT_S,
        "detect_budget_s": DETECT_BUDGET_S,
        "min_cores_for_gate": MIN_CORES_FOR_GATE,
        "results": results,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: "pathlib.Path | None" = None) -> dict:
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    return json.loads(path.read_text())


def format_results(results: dict) -> str:
    lines = [
        f"proc-backend recovery (SIGKILL rank {VICTIM} of {NPROC}, seed {SEED})"
    ]
    lines.append("-" * len(lines[0]))
    lines.append(
        f"{'heartbeat s':>11}  {'suspect s':>9}  {'detect s (min/mean/max)':>24}"
        f"  {'recover s (mean)':>16}"
    )
    for key, r in results.items():
        if not key.startswith("hb"):
            continue
        d, w = r["detect_latency_s"], r["recovery_wall_s"]
        lines.append(
            f"{r['heartbeat_s']:>11.3f}  {r['suspect_after_s']:>9.2f}"
            f"  {d['min']:>7.3f}/{d['mean']:>7.3f}/{d['max']:>7.3f}"
            f"  {w['mean']:>16.3f}"
        )
    lines.append(
        f"worst detection latency: {results['worst_detect_latency_s']:.3f}s "
        f"(budget {DETECT_BUDGET_S:g}s)"
    )
    return "\n".join(lines)


def smoke(path: "pathlib.Path | None" = None) -> tuple[bool, str]:
    """Fast gate: one recovery run must be value-correct and fast to detect.

    The committed baseline must exist and parse (trajectory contract);
    the detection-latency ceiling is enforced only when the host has
    enough CPUs for the survivors to run concurrently.  Value
    correctness is asserted inside the workload either way — a wrong
    restore fails the gate on any host.
    """
    try:
        load_baseline(path)
    except (OSError, json.JSONDecodeError) as exc:
        where = path if path is not None else BASELINE_PATH
        return False, f"PROC-RECOVER SMOKE: unreadable baseline {where}: {exc}"
    try:
        measured = measure(fast=True)
    except Exception as exc:  # noqa: BLE001 - any failure fails the gate
        return False, f"PROC-RECOVER SMOKE: FAIL\n  - recovery run raised: {exc!r}"
    lines = [format_results(measured), ""]
    cores = os.cpu_count() or 1
    worst = measured["worst_detect_latency_s"]
    if cores < MIN_CORES_FOR_GATE:
        lines.append(
            f"PROC-RECOVER SMOKE: ok (host has {cores} CPU(s) < "
            f"{MIN_CORES_FOR_GATE}; the < {DETECT_BUDGET_S:g}s detection gate "
            f"applies on multi-core hosts only — measured {worst:.3f}s "
            "recorded, not gated; recovery was value-correct)"
        )
        return True, "\n".join(lines)
    if worst > DETECT_BUDGET_S:
        lines.append(
            f"PROC-RECOVER SMOKE: FAIL\n  - survivors took {worst:.3f}s to "
            f"observe the death (budget {DETECT_BUDGET_S:g}s, join_timeout "
            f"{JOIN_TIMEOUT_S:g}s)"
        )
        return False, "\n".join(lines)
    lines.append(
        f"PROC-RECOVER SMOKE: ok (detection {worst:.3f}s < "
        f"{DETECT_BUDGET_S:g}s budget; recovery value-correct on the "
        f"{NPROC - 1}-rank shrunken grid)"
    )
    return True, "\n".join(lines)
