"""Proc-backend throughput benchmarks: aggregate put/get scaling with cores.

Unlike every other bench in this package, these numbers are **wall
clock**, not modeled time: the whole point of ``backend="proc"``
(:mod:`repro.mpi.backend_proc`) is escaping the GIL, and only a wall
clock can see that.  Each rank ring-puts and ring-gets a slab through
the ARMCI mpi3 datapath (standing ``lock_all`` epoch + flush) over
shared-memory windows, for world sizes 1, 2, and 4; the headline metric
is *aggregate* throughput (total bytes moved by all ranks / slowest
rank's elapsed time), and the gate is the scaling ratio from 1 to 4
ranks.

Because the ratio compares the same machine against itself it is
host-relative — but it still needs cores to scale onto, so the
``>= MIN_SCALING`` floor is enforced only when the host has at least
:data:`MIN_CORES_FOR_GATE` CPUs.  On smaller hosts the smoke records
the measured ratio and passes with a note (matching the acceptance
criterion: scaling is required "on a multi-core host").  Absolute MB/s
are recorded in ``benchmarks/BENCH_procs.json`` for trajectory only and
are never gated: they are machine-dependent.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform as host_platform
import time

import numpy as np

from ..mpi.runtime import Runtime

#: default location of the committed baseline (repo benchmarks/ dir)
BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_procs.json"
)

#: required aggregate-throughput scaling from 1 rank to 4 ranks …
MIN_SCALING = 2.0
#: … enforced only on hosts with at least this many CPUs
MIN_CORES_FOR_GATE = 4

#: world sizes measured (the scaling ratio is last/first)
NPROCS = (1, 2, 4)

#: per-rank slab size; big enough that memcpy through the shared-memory
#: window dominates epoch/flush bookkeeping
SLAB_BYTES = 1 << 20


def _rank_body(comm, nbytes: int, nreps: int) -> float:
    """Ring put+get workload; returns this rank's elapsed wall seconds."""
    from ..armci import Armci

    armci = Armci.init(comm, datapath="mpi3")
    ptrs = armci.malloc(nbytes)
    me = armci.my_id
    right = (me + 1) % armci.nproc
    src = np.arange(nbytes, dtype=np.uint8)
    dst = np.empty(nbytes, dtype=np.uint8)
    armci.barrier()
    t0 = time.perf_counter()
    for _ in range(nreps):
        armci.put(src, ptrs[right], nbytes=nbytes)
        armci.fence(right)
        armci.get(ptrs[right], dst, nbytes=nbytes)
    elapsed = time.perf_counter() - t0
    armci.barrier()
    armci.free(ptrs[me])
    armci.finalize()
    return elapsed


def measure(fast: bool = False) -> dict:
    """Aggregate put/get throughput for each world size + scaling ratio."""
    nreps = 8 if fast else 32
    results: dict = {}
    for nproc in NPROCS:
        rt = Runtime(nproc, backend="proc")
        elapsed = rt.spmd(_rank_body, SLAB_BYTES, nreps, join_timeout=300.0)
        slowest = max(elapsed)
        moved = nproc * nreps * SLAB_BYTES * 2  # one put + one get per rep
        results[f"np{nproc}"] = {
            "aggregate_MB_per_s": moved / slowest / 1e6,
            "slowest_rank_s": slowest,
        }
    first, last = f"np{NPROCS[0]}", f"np{NPROCS[-1]}"
    results["scaling_1_to_4"] = (
        results[last]["aggregate_MB_per_s"] / results[first]["aggregate_MB_per_s"]
    )
    return results


# ---------------------------------------------------------------------------
# baseline file + smoke check
# ---------------------------------------------------------------------------


def write_baseline(results: dict, path: "pathlib.Path | None" = None) -> pathlib.Path:
    """Persist results as the machine-readable trajectory file."""
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    payload = {
        "schema": 1,
        "units": "wall_clock_MB_per_s",
        "note": (
            "proc-backend aggregate put/get throughput over shared-memory "
            "windows (ARMCI mpi3 datapath, ring workload, "
            f"{SLAB_BYTES // 1024} KiB slabs); absolute MB/s are "
            "machine-dependent trajectory data — only the 1->4 rank "
            f"scaling ratio is gated, and only on hosts with >= "
            f"{MIN_CORES_FOR_GATE} CPUs"
        ),
        "environment": {
            "python": host_platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "min_scaling": MIN_SCALING,
        "min_cores_for_gate": MIN_CORES_FOR_GATE,
        "results": results,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: "pathlib.Path | None" = None) -> dict:
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    return json.loads(path.read_text())


def format_results(results: dict) -> str:
    lines = ["proc-backend put/get throughput (wall clock, shared-memory windows)"]
    lines.append("-" * len(lines[0]))
    lines.append(f"{'ranks':>5}  {'aggregate MB/s':>14}  {'slowest rank s':>14}")
    for nproc in NPROCS:
        r = results[f"np{nproc}"]
        lines.append(
            f"{nproc:>5}  {r['aggregate_MB_per_s']:>14.1f}"
            f"  {r['slowest_rank_s']:>14.3f}"
        )
    lines.append(f"scaling 1 -> {NPROCS[-1]} ranks: {results['scaling_1_to_4']:.2f}x")
    return "\n".join(lines)


def smoke(path: "pathlib.Path | None" = None) -> tuple[bool, str]:
    """Fast gate: re-measure and check the core-scaling floor.

    The committed baseline must exist and parse (trajectory contract);
    the ``>= MIN_SCALING`` floor on the 1->4 rank aggregate-throughput
    ratio is enforced only when the host has enough CPUs for scaling to
    be physically possible.
    """
    try:
        load_baseline(path)
    except (OSError, json.JSONDecodeError) as exc:
        where = path if path is not None else BASELINE_PATH
        return False, f"PROCS SMOKE: unreadable baseline {where}: {exc}"
    measured = measure(fast=True)
    lines = [format_results(measured), ""]
    cores = os.cpu_count() or 1
    scaling = measured["scaling_1_to_4"]
    if cores < MIN_CORES_FOR_GATE:
        lines.append(
            f"PROCS SMOKE: ok (host has {cores} CPU(s) < {MIN_CORES_FOR_GATE}; "
            f"the >= {MIN_SCALING}x scaling gate applies on multi-core hosts "
            f"only — measured {scaling:.2f}x recorded, not gated)"
        )
        return True, "\n".join(lines)
    if scaling < MIN_SCALING:
        lines.append(
            f"PROCS SMOKE: FAIL\n  - aggregate throughput scaled only "
            f"{scaling:.2f}x from 1 to {NPROCS[-1]} ranks on a {cores}-CPU "
            f"host (floor {MIN_SCALING}x)"
        )
        return False, "\n".join(lines)
    lines.append(
        f"PROCS SMOKE: ok (aggregate put/get throughput scaled {scaling:.2f}x "
        f"from 1 to {NPROCS[-1]} ranks, floor {MIN_SCALING}x)"
    )
    return True, "\n".join(lines)
