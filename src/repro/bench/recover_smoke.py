"""Fast recovery gate: ``python -m repro.bench --recover-smoke``.

Kills one rank mid-protocol in each recovery-capable §V scenario
(:data:`repro.faults.scenarios.RECOVER_SCENARIOS`) under a fuzzed
deterministic schedule, and requires the survivors to *complete* the
computation — acknowledge the failure, revoke, agree, shrink, rebuild
the ARMCI allocations (or restore the GA checkpoint), and verify the
same values on the shrunken world.  Passing means:

* every scenario finished ``ok`` (no hang, no untyped error) with the
  victim in ``dead_ranks``;
* the surviving results report the shrunken world size and at least one
  completed recovery round;
* replaying the same ``(seed, plan)`` reproduced the identical trace
  digest — recovery itself is deterministic.

Budget: well under 60 s; suitable as a tier-1 gate.
"""

from __future__ import annotations

from ..faults.plan import FaultPlan
from ..faults.scenarios import RECOVER_SCENARIOS
from ..sanitizer.fuzz import run_schedule

NPROC = 4
SEED = 2012  # the paper's year; any seed works — the gate replays it
VICTIM = 2
POINT = 5  # mid-protocol: after setup, inside the risky phase


def _gate(name: str, fn, lines: list) -> bool:
    plan = FaultPlan(seed=SEED).kill(VICTIM, POINT)
    first = run_schedule(fn, NPROC, SEED, plan=plan)
    replay = run_schedule(fn, NPROC, SEED, plan=plan)
    ok = first.ok and not first.violations
    live = [r for r in first.results if r is not None]
    shrunken = NPROC - len(first.dead_ranks)
    # value checks live inside the scenarios; here we require that every
    # survivor finished, on the expected world, through >= 1 recovery
    completed = bool(live) and all(r[0] == shrunken for r in live)
    recovered = bool(first.dead_ranks) and all(r[1] >= 1 for r in live)
    reproduced = first.digest == replay.digest
    good = ok and completed and recovered and reproduced
    lines.append(
        f"  {name:<14} seed {SEED} kill {VICTIM}@{POINT}: "
        f"{'completed' if ok else first.error}, "
        f"world {NPROC}->{shrunken}, "
        f"recoveries {sorted({r[1] for r in live}) if live else '-'}, "
        f"replay {'identical' if reproduced else 'DIVERGED'}  "
        f"[{'ok' if good else 'FAIL'}]"
    )
    return good


def smoke() -> tuple[bool, str]:
    """Run the gate; returns (passed, printable report)."""
    lines = ["recover-smoke: survivor restart across the recovery scenarios"]
    ok = True
    for name, fn in RECOVER_SCENARIOS.items():
        ok = _gate(name, fn, lines) and ok
    lines.append("PASS" if ok else "FAIL")
    return ok, "\n".join(lines)
