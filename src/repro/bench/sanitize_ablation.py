"""Sanitizer / fault-injection overhead ablation.

``python -m repro.bench --sanitize-ablation`` answers: what does the
dynamic-checking machinery *cost*?  One fixed workload pair — the §V-D
mutex-handoff and mutex-based-RMW protocol bodies from
:mod:`repro.faults.scenarios` — is executed under a seeded deterministic
schedule in four instrumentation configurations:

``schedule``
    the bare deterministic schedule (the floor everything is relative to);
``schedule+sanitizer``
    plus the :class:`~repro.sanitizer.RmaSanitizer` interposing on every
    window sync and data-movement event;
``schedule+faults``
    plus an *empty* :class:`~repro.faults.plan.FaultPlan` — the injector
    is consulted at every fuzz point and RMA payload but never fires,
    isolating the pure plumbing overhead of fault-injection readiness;
``schedule+sanitizer+faults``
    both (the configuration CI's fuzz gates run).

Reported numbers are wall seconds per SPMD run (best of ``repeats``
medians over a small seed sweep) and the overhead factor relative to
``schedule``.  The committed ``benchmarks/BENCH_sanitize_ablation.json``
records the trajectory; a summary lives in ``docs/sanitizer.md``.
"""

from __future__ import annotations

import json
import pathlib
import platform
import statistics
import time

import numpy as np

#: default location of the committed baseline (repo benchmarks/ dir)
BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_sanitize_ablation.json"
)

NPROC = 4

#: instrumentation configurations: name -> (sanitize, with_faults)
CONFIGS: dict[str, tuple[bool, bool]] = {
    "schedule": (False, False),
    "schedule+sanitizer": (True, False),
    "schedule+faults": (False, True),
    "schedule+sanitizer+faults": (True, True),
}


def _run_once(fn, seed: int, sanitize: bool, with_faults: bool) -> float:
    from ..faults import FaultPlan
    from ..sanitizer.fuzz import run_schedule

    plan = FaultPlan(seed=seed) if with_faults else None
    t0 = time.perf_counter()
    report = run_schedule(fn, NPROC, seed, sanitize=sanitize, plan=plan)
    elapsed = time.perf_counter() - t0
    if not report.ok:
        raise RuntimeError(
            f"ablation workload failed under seed {seed}: {report.error}"
        )
    return elapsed


def measure(fast: bool = False) -> dict[str, dict[str, float]]:
    """Time every (workload, config) cell; returns nested results."""
    from ..faults.scenarios import SCENARIOS

    seeds = range(2) if fast else range(4)
    repeats = 2 if fast else 3
    workloads = {"mutex_handoff": SCENARIOS["mutex"],
                 "mutex_rmw": SCENARIOS["rmw"]}
    results: dict[str, dict[str, float]] = {}
    for wname, fn in workloads.items():
        cells: dict[str, float] = {}
        for cname, (sanitize, with_faults) in CONFIGS.items():
            best = min(
                statistics.median(
                    _run_once(fn, s, sanitize, with_faults) for s in seeds
                )
                for _ in range(repeats)
            )
            cells[cname] = best
        base = cells["schedule"]
        results[wname] = {
            **{f"{c}_s": v for c, v in cells.items()},
            **{
                f"{c}_overhead": (v / base if base > 0 else float("inf"))
                for c, v in cells.items()
                if c != "schedule"
            },
        }
    return results


def write_baseline(
    results: dict[str, dict[str, float]], path: "pathlib.Path | None" = None
) -> pathlib.Path:
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    payload = {
        "schema": 1,
        "units": "wall_seconds_per_spmd_run",
        "nproc": NPROC,
        "note": (
            "dynamic-checking overhead ablation over the deterministic "
            "schedule: RMA sanitizer and (empty-plan) fault-injection "
            "plumbing, separately and combined; overhead factors are "
            "relative to the bare schedule in the same process"
        ),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "results": results,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: "pathlib.Path | None" = None) -> dict:
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    return json.loads(path.read_text())


def format_results(results: dict[str, dict[str, float]]) -> str:
    lines = ["Sanitizer / fault-injection overhead ablation "
             f"(wall s per {NPROC}-rank run)"]
    lines.append("-" * len(lines[0]))
    header = f"{'workload':<16}"
    for cname in CONFIGS:
        header += f"  {cname:>26}"
    lines.append(header)
    for wname, r in results.items():
        row = f"{wname:<16}"
        for cname in CONFIGS:
            cell = f"{r[f'{cname}_s']:.4f}s"
            if cname != "schedule":
                cell += f" ({r[f'{cname}_overhead']:.2f}x)"
            row += f"  {cell:>26}"
        lines.append(row)
    return "\n".join(lines)
