"""Fast sanitizer/fuzzer gate: ``python -m repro.bench --sanitize-smoke``.

Runs one fuzzed deterministic schedule (plus a replay) over the two
protocols whose correctness depends most delicately on operation
ordering — the §V-D queueing mutexes and ARMCI_Rmw's two-epoch
mutex-based protocol — with the RMA sanitizer installed.  Passing
means:

* neither protocol raised an RMA violation under a perturbed schedule;
* the protocols' results are correct (mutual exclusion preserved, the
  shared counter reached the exact expected value);
* replaying the same seed reproduced the identical trace digest.

Budget: well under 60 s; suitable as a tier-1 gate.
"""

from __future__ import annotations

import numpy as np

from ..sanitizer.fuzz import ScheduleReport, run_schedule

NPROC = 4
SEED = 2012  # the paper's year; any seed works — the gate replays it
INCREMENTS = 8


def _mutex_workload(comm):
    """Increment a non-atomic shared slot under a §V-D mutex."""
    from ..armci import Armci

    armci = Armci.init(comm)
    ptrs = armci.malloc(8 if armci.my_id == 0 else 0)
    mutexes = armci.create_mutexes(1)
    armci.barrier()
    buf = np.zeros(1, dtype=np.int64)
    for _ in range(INCREMENTS):
        mutexes.lock(0, 0)
        armci.get(ptrs[0], buf, 8)
        buf[0] += 1
        armci.put(buf, ptrs[0], 8)
        mutexes.unlock(0, 0)
    armci.barrier()
    total = None
    if armci.my_id == 0:
        view = armci.access_begin(ptrs[0], 8, np.int64)
        total = int(view[0])
        armci.access_end(ptrs[0])
    armci.barrier()
    mutexes.destroy()
    armci.finalize()
    return total


def _rmw_workload(comm):
    """Hammer one counter through the two-epoch mutex-based RMW."""
    from ..armci import Armci

    armci = Armci.init(comm)
    ptrs = armci.malloc(8 if armci.my_id == 0 else 0)
    armci.barrier()
    for _ in range(INCREMENTS):
        armci.rmw("fetch_and_add_long", ptrs[0], 1)
    armci.barrier()
    total = None
    if armci.my_id == 0:
        view = armci.access_begin(ptrs[0], 8, np.int64)
        total = int(view[0])
        armci.access_end(ptrs[0])
    armci.barrier()
    armci.finalize()
    return total


def _gate(name: str, fn, lines: list) -> bool:
    first = run_schedule(fn, NPROC, SEED, jitter_frac=0.1)
    replay = run_schedule(fn, NPROC, SEED, jitter_frac=0.1)
    ok = first.ok and not first.violations
    expected = NPROC * INCREMENTS
    got = first.results[0] if first.results else None
    correct = got == expected
    reproduced = first.digest == replay.digest
    status = "ok" if (ok and correct and reproduced) else "FAIL"
    lines.append(
        f"  {name:<18} seed {SEED}: schedule {'clean' if ok else first.error}, "
        f"counter {got}/{expected}, replay "
        f"{'identical' if reproduced else 'DIVERGED'}  [{status}]"
    )
    return ok and correct and reproduced


def smoke() -> tuple[bool, str]:
    """Run the gate; returns (passed, printable report)."""
    lines = ["sanitize-smoke: fuzzed schedule over mutex + RMW protocols"]
    ok = _gate("mutex handoff", _mutex_workload, lines)
    ok = _gate("mutex-based rmw", _rmw_workload, lines) and ok
    lines.append("PASS" if ok else "FAIL")
    return ok, "\n".join(lines)
