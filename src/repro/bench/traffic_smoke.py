"""Traffic-harness benchmark: offered load vs goodput, latency, degradation.

Runs the :mod:`repro.traffic` service harness in the regimes the paper's
robustness story cares about and records the service-level trajectory in
``benchmarks/BENCH_traffic.json``:

* **thread sweep** — each workload (stencil / worksteal / bfs) across an
  offered-load sweep on the deterministic scheduler: goodput
  (completions per tick), p50/p99 queueing latency in ticks, and shed
  rate at each point.  These runs are bit-deterministic, so they are
  also correctness gates: every point must finish ``ok`` with its
  serial-numpy oracle verified.
* **thread faulted** — the same workloads with a seeded
  :class:`~repro.faults.plan.FaultPlan` kill landing mid-traffic.  The
  harness must degrade gracefully (recover, shed the backlog, drain)
  and still verify, and a second run from the same seed must reproduce
  both the scheduler digest and the traffic trace digest bit-for-bit —
  the failing-seed replay contract.
* **proc pair** — a wall-clock proc-backend run, fault-free and then
  with a real ``SIGKILL`` timed (as a fraction of the measured
  fault-free wall time) to land mid-traffic.  The gate is graceful
  degradation: the killed run must recover at least once, stay
  value-correct, and keep goodput at or above
  :data:`GOODPUT_FLOOR` of the fault-free run.

Absolute wall seconds are machine-dependent trajectory data; the
proc-backend degradation gate (recovery observed + goodput floor) is
enforced only on hosts with at least :data:`MIN_CORES_FOR_GATE` CPUs,
where the kill timing is meaningful.  Determinism, oracle verification,
and replay identity are gated on every host.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform as host_platform
import time

import numpy as np

from ..faults.plan import FaultPlan
from ..faults.proc import ProcFaultPlan
from ..traffic import TrafficConfig, run_traffic, run_traffic_proc

#: default location of the committed baseline (repo benchmarks/ dir)
BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_traffic.json"
)

#: world size and seed for every run (the trajectory replays from these)
NPROC = 4
SEED = 7
#: thread-backend offered-load sweep (arrivals per rank per tick)
OFFERED_SWEEP = (1, 3, 6)
#: thread-backend fault: kill VICTIM at fuzz point KILL_POINT
VICTIM = 1
KILL_POINT = 40
#: proc-backend scenario: big enough that the SIGKILL lands mid-traffic
PROC_SCENARIO = "stencil"
PROC_SIZE = 160
PROC_TICK_SLEEP_S = 0.1
PROC_VICTIM = 2
#: SIGKILL delay as a fraction of the measured fault-free wall time
PROC_KILL_FRACTION = 0.45
#: killed-run goodput must stay at or above this fraction of fault-free
GOODPUT_FLOOR = 0.5
#: the wall-clock degradation gate applies only on hosts this wide
MIN_CORES_FOR_GATE = 4

_SCENARIOS = ("stencil", "worksteal", "bfs")


def _point(result) -> dict:
    """Service-level metrics of one run, as recorded in the baseline."""
    return {
        "ok": result.ok,
        "verified": result.verified,
        "ticks": result.ticks,
        "offered": result.offered,
        "admitted": result.admitted,
        "completed": result.completed,
        "goodput_per_tick": result.goodput,
        "p50_ticks": result.p50_ticks,
        "p99_ticks": result.p99_ticks,
        "retries": result.retries,
        "shed": result.shed,
        "shed_rate": result.shed_rate,
        "recoveries": result.recoveries,
        "recovery_dip": result.recovery_dip,
        "drain_ticks": result.drain_ticks,
        "digest": result.digest,
    }


def _thread_cfg(scenario: str, offered: int) -> TrafficConfig:
    return TrafficConfig(scenario=scenario, seed=SEED, offered=offered)


def measure(fast: bool = False) -> dict:
    """Thread sweep + faulted replay pairs + the proc clean/SIGKILL pair."""
    results: dict = {"thread": {}, "proc": {}}
    sweep = OFFERED_SWEEP[1:2] if fast else OFFERED_SWEEP
    for scenario in _SCENARIOS:
        entry: dict = {"sweep": {}}
        for offered in sweep:
            r = run_traffic(_thread_cfg(scenario, offered), NPROC, SEED)
            entry["sweep"][f"offered{offered}"] = _point(r)
        plan = FaultPlan(seed=SEED).kill(VICTIM, KILL_POINT)
        cfg = _thread_cfg(scenario, OFFERED_SWEEP[1])
        faulted = run_traffic(cfg, NPROC, SEED, plan=plan)
        replay = run_traffic(cfg, NPROC, SEED, plan=plan)
        entry["faulted"] = _point(faulted)
        entry["faulted"]["replay_identical"] = bool(
            replay.digest == faulted.digest
            and replay.schedule_digest == faulted.schedule_digest
        )
        results["thread"][scenario] = entry
    # proc pair: measure the fault-free wall time, then aim the SIGKILL
    # at PROC_KILL_FRACTION of it so it lands mid-traffic
    cfg = TrafficConfig(
        scenario=PROC_SCENARIO, seed=SEED, size=PROC_SIZE,
        tick_sleep_s=PROC_TICK_SLEEP_S,
    )
    t0 = time.monotonic()
    clean = run_traffic_proc(cfg, NPROC)
    clean_wall_s = time.monotonic() - t0
    kill_after_s = max(0.3, PROC_KILL_FRACTION * clean_wall_s)
    plan = ProcFaultPlan(seed=SEED).kill(PROC_VICTIM, kill_after_s)
    t0 = time.monotonic()
    killed = run_traffic_proc(cfg, NPROC, plan=plan)
    killed_wall_s = time.monotonic() - t0
    ratio = (
        killed.goodput / clean.goodput if clean.goodput > 0 else 0.0
    )
    results["proc"] = {
        "scenario": PROC_SCENARIO,
        "size": PROC_SIZE,
        "tick_sleep_s": PROC_TICK_SLEEP_S,
        "kill_after_s": kill_after_s,
        "clean": {**_point(clean), "wall_s": clean_wall_s},
        "killed": {**_point(killed), "wall_s": killed_wall_s},
        "goodput_ratio": ratio,
    }
    return results


# ---------------------------------------------------------------------------
# baseline file + smoke check
# ---------------------------------------------------------------------------


def write_baseline(results: dict, path: "pathlib.Path | None" = None) -> pathlib.Path:
    """Persist results as the machine-readable trajectory file."""
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    payload = {
        "schema": 1,
        "units": "virtual_ticks (latency/goodput), wall_clock_seconds (proc)",
        "note": (
            "service-style traffic harness over the GA layer: offered "
            "load vs goodput, p50/p99 latency in ticks, and shed rate "
            "per workload on the deterministic thread backend; the same "
            "workloads with a seeded mid-traffic kill (must recover, "
            "verify, and replay bit-identically); and a proc-backend "
            f"fault-free vs SIGKILL pair — the killed run must keep "
            f"goodput >= {GOODPUT_FLOOR:g}x fault-free (gated on hosts "
            f"with >= {MIN_CORES_FOR_GATE} CPUs; determinism and oracle "
            "verification are gated everywhere)"
        ),
        "environment": {
            "python": host_platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "seed": SEED,
        "nproc": NPROC,
        "offered_sweep": list(OFFERED_SWEEP),
        "thread_kill": {"victim": VICTIM, "point": KILL_POINT},
        "proc_kill_fraction": PROC_KILL_FRACTION,
        "goodput_floor": GOODPUT_FLOOR,
        "min_cores_for_gate": MIN_CORES_FOR_GATE,
        "results": results,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: "pathlib.Path | None" = None) -> dict:
    path = pathlib.Path(path) if path is not None else BASELINE_PATH
    return json.loads(path.read_text())


def format_results(results: dict) -> str:
    lines = [
        f"traffic harness (nproc {NPROC}, seed {SEED})",
        "-" * 42,
        f"{'scenario':>9}  {'offered':>7}  {'goodput':>8}  {'p50':>4}"
        f"  {'p99':>4}  {'shed':>6}  {'recov':>5}",
    ]
    for scenario, entry in results.get("thread", {}).items():
        for key in sorted(entry["sweep"]):
            p = entry["sweep"][key]
            lines.append(
                f"{scenario:>9}  {key[7:]:>7}  {p['goodput_per_tick']:>8.3f}"
                f"  {p['p50_ticks']:>4.0f}  {p['p99_ticks']:>4.0f}"
                f"  {p['shed_rate']:>6.3f}  {p['recoveries']:>5d}"
            )
        f = entry["faulted"]
        lines.append(
            f"{scenario:>9}  {'+kill':>7}  {f['goodput_per_tick']:>8.3f}"
            f"  {f['p50_ticks']:>4.0f}  {f['p99_ticks']:>4.0f}"
            f"  {f['shed_rate']:>6.3f}  {f['recoveries']:>5d}"
            f"  dip={f['recovery_dip']:.2f} drain={f['drain_ticks']}"
            f" replay={'ok' if f['replay_identical'] else 'DIVERGED'}"
        )
    proc = results.get("proc")
    if proc:
        c, k = proc["clean"], proc["killed"]
        lines.append(
            f"proc[{proc['scenario']}] clean: goodput "
            f"{c['goodput_per_tick']:.3f}/tick in {c['wall_s']:.2f}s; "
            f"SIGKILL@{proc['kill_after_s']:.2f}s: "
            f"{k['goodput_per_tick']:.3f}/tick, recoveries={k['recoveries']}, "
            f"ratio {proc['goodput_ratio']:.2f} (floor {GOODPUT_FLOOR:g})"
        )
    return "\n".join(lines)


def smoke(path: "pathlib.Path | None" = None) -> tuple[bool, str]:
    """Fast gate for ``make check``: graceful degradation under live faults.

    Hard-gated on any host: the committed baseline parses, every thread
    run (sweep and faulted) completes with its oracle verified, faulted
    runs actually recover, and the faulted replay is bit-identical.
    Gated only on hosts with >= :data:`MIN_CORES_FOR_GATE` CPUs (where
    wall-clock kill timing is meaningful): the proc-backend SIGKILL run
    must recover at least once and keep goodput >= the floor.
    """
    try:
        load_baseline(path)
    except (OSError, json.JSONDecodeError) as exc:
        where = path if path is not None else BASELINE_PATH
        return False, f"TRAFFIC SMOKE: unreadable baseline {where}: {exc}"
    try:
        measured = measure(fast=True)
    except Exception as exc:  # noqa: BLE001 - any failure fails the gate
        return False, f"TRAFFIC SMOKE: FAIL\n  - traffic run raised: {exc!r}"
    problems = []
    for scenario, entry in measured["thread"].items():
        for key, p in entry["sweep"].items():
            if not (p["ok"] and p["verified"]):
                problems.append(
                    f"thread {scenario} {key}: ok={p['ok']} "
                    f"verified={p['verified']}"
                )
        f = entry["faulted"]
        if not (f["ok"] and f["verified"]):
            problems.append(
                f"thread {scenario} faulted: ok={f['ok']} "
                f"verified={f['verified']}"
            )
        if f["recoveries"] < 1:
            problems.append(f"thread {scenario} faulted: no recovery observed")
        if not f["replay_identical"]:
            problems.append(f"thread {scenario} faulted: replay DIVERGED")
    proc = measured["proc"]
    for which in ("clean", "killed"):
        p = proc[which]
        if not (p["ok"] and p["verified"]):
            problems.append(
                f"proc {which}: ok={p['ok']} verified={p['verified']}"
            )
    cores = os.cpu_count() or 1
    gate_timing = cores >= MIN_CORES_FOR_GATE
    if gate_timing and not problems:
        if proc["killed"]["recoveries"] < 1:
            problems.append(
                "proc killed: SIGKILL landed outside the traffic window "
                "(no recovery observed)"
            )
        if proc["goodput_ratio"] < GOODPUT_FLOOR:
            problems.append(
                f"proc killed: goodput ratio {proc['goodput_ratio']:.2f} "
                f"below the {GOODPUT_FLOOR:g} floor"
            )
    lines = [format_results(measured), ""]
    if problems:
        lines.append("TRAFFIC SMOKE: FAIL")
        lines.extend(f"  - {p}" for p in problems)
        return False, "\n".join(lines)
    if not gate_timing:
        lines.append(
            f"TRAFFIC SMOKE: ok (host has {cores} CPU(s) < "
            f"{MIN_CORES_FOR_GATE}; the proc degradation gate applies on "
            "multi-core hosts only — oracle verification, recovery, and "
            "replay identity were gated and passed)"
        )
        return True, "\n".join(lines)
    lines.append(
        f"TRAFFIC SMOKE: ok (all oracles verified; faulted replays "
        f"bit-identical; proc goodput ratio "
        f"{proc['goodput_ratio']:.2f} >= {GOODPUT_FLOOR:g} with "
        f"{proc['killed']['recoveries']} recovery)"
    )
    return True, "\n".join(lines)
