"""``repro.faults``: seeded, deterministic fault injection.

The robustness counterpart to :mod:`repro.sanitizer`: where the
sanitizer proves the §V protocols *correct* under legal reorderings,
this package proves them *survivable* under failure.  A
:class:`FaultPlan` describes a scenario — kill a rank at any operation
boundary, stall it for scheduler steps, delay or degrade delivery,
corrupt or drop one RMA op — and a :class:`FaultInjector` executes it
against a live runtime.  Composed with the deterministic schedule, a
fault scenario is a pure function of ``(schedule seed, plan)`` and
replays bit-identically.

The runtime degrades gracefully rather than hanging: failed ranks are
quarantined (ops targeting them raise a typed
:class:`~repro.mpi.errors.TargetFailedError`), the §V-D mutex queue is
repaired when a holder dies (the next waiter receives
:class:`~repro.armci.mutexes.MutexHolderFailed` and owns the repaired
mutex), lock acquisition retries with seeded exponential backoff under
per-op timeouts, and both the wall-clock watchdog and the deterministic
scheduler diagnose "survivors stuck because of a dead rank" as
``TargetFailedError`` instead of a deadlock.  See ``docs/faults.md``.

CLI: ``python -m repro.faults <script|scenario:NAME> --kill 1@5
--seed 0 --schedules 8`` (see :mod:`repro.faults.cli`).
"""

from __future__ import annotations

from ..armci.mutexes import MutexHolderFailed
from ..mpi.errors import (
    CommRevokedError,
    OpTimeoutError,
    RankKilledError,
    RetriesExhausted,
    TargetFailedError,
)
from .injector import FaultInjector
from .plan import Corrupt, Delay, FaultPlan, Kill, Stall
from .proc import (
    ProcDelay,
    ProcFaultInjector,
    ProcFaultPlan,
    ProcKill,
    ProcStall,
    sweep_stale_segments,
)
from .scenarios import RECOVER_SCENARIOS, SCENARIOS

__all__ = [
    "CommRevokedError",
    "Corrupt",
    "Delay",
    "FaultInjector",
    "FaultPlan",
    "Kill",
    "MutexHolderFailed",
    "OpTimeoutError",
    "ProcDelay",
    "ProcFaultInjector",
    "ProcFaultPlan",
    "ProcKill",
    "ProcStall",
    "RECOVER_SCENARIOS",
    "RankKilledError",
    "RetriesExhausted",
    "SCENARIOS",
    "Stall",
    "TargetFailedError",
    "install_ambient",
    "sweep_stale_segments",
    "uninstall_ambient",
]


def install_ambient(plan: "FaultPlan | None" = None):
    """Attach a fault injector to every runtime created from now on.

    With no ``plan``, an *empty* (benign) plan is used: every fuzz point
    and RMA payload is routed through the injector — exercising the
    whole injection plumbing — but no fault fires and no clock is
    perturbed, so outcomes are unchanged.  Returns a token for
    :func:`uninstall_ambient`.  This is what ``pytest --faults`` and the
    ``faults`` marker use.
    """
    from ..mpi import runtime as _runtime

    if plan is None:
        plan = FaultPlan(seed=0)

    def hook(rt) -> None:
        rt.faults = FaultInjector(plan)

    _runtime.RUNTIME_CREATION_HOOKS.append(hook)
    return hook


def uninstall_ambient(token) -> None:
    """Remove a hook installed by :func:`install_ambient`."""
    from ..mpi import runtime as _runtime

    try:
        _runtime.RUNTIME_CREATION_HOOKS.remove(token)
    except ValueError:
        pass
