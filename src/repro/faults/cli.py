"""CLI: run a script (or built-in scenario) under an injected fault plan.

::

    # kill rank 1 at its 5th op boundary while fuzzing 8 schedules
    python -m repro.faults examples/quickstart.py --kill 1@5 --schedules 8

    # replay a corpus entry bit-identically
    python -m repro.faults scenario:mutex --plan plan.json --seed 41 \\
        --schedules 1

    # drop the 3rd RMA op and degrade the path 4x
    python -m repro.faults scenario:gmr_free --drop 3 --degrade 4:0.5

The positional argument is either a script path defining ``main(comm)``
(the ``examples/*.py`` convention) or ``scenario:NAME`` naming a
built-in §V protocol body from :mod:`repro.faults.scenarios`.  Exit
status is 0 iff every schedule ended *gracefully*: clean, or with a
typed failure diagnosis (:class:`~repro.mpi.errors.TargetFailedError`,
including :class:`~repro.armci.mutexes.MutexHolderFailed`) when the
plan killed a rank.  An untyped error or deadlock is a robustness bug.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .plan import FaultPlan
from .scenarios import RECOVER_SCENARIOS, SCENARIOS

#: every body reachable as ``scenario:NAME`` — the §V protocols plus
#: their survivor-restart (``recover_*``) counterparts
_ALL_SCENARIOS = {
    **SCENARIOS,
    **{f"recover_{name}": fn for name, fn in RECOVER_SCENARIOS.items()},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run a script's main(comm) under seeded deterministic "
        "schedules with an injected fault plan.",
    )
    parser.add_argument(
        "script",
        help="path to a script defining main(comm), or scenario:NAME "
        f"(one of {sorted(_ALL_SCENARIOS)})",
    )
    parser.add_argument("--nproc", type=int, default=4,
                        help="number of simulated ranks (default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="first schedule seed; also the plan seed unless "
                        "a --plan file provides one (default 0)")
    parser.add_argument("--schedules", type=int, default=4, metavar="K",
                        help="number of consecutive seeds to run (default 4)")
    parser.add_argument("--switch-prob", type=float, default=0.25,
                        help="preemption probability at each fuzz point")
    parser.add_argument("--plan", metavar="FILE", default=None,
                        help="JSON fault plan (FaultPlan.to_json); inline "
                        "fault flags below are added on top of it")
    parser.add_argument("--kill", action="append", default=[],
                        metavar="RANK@POINT[:KIND]",
                        help="kill RANK at its POINT-th fuzz point")
    parser.add_argument("--stall", action="append", default=[],
                        metavar="RANK@POINT[:STEPS]",
                        help="stall RANK for STEPS scheduler steps (default 1)")
    parser.add_argument("--stall-transient", action="append", default=[],
                        metavar="RANK@POINT[:STEPS]",
                        help="transient stall: the injector retries with "
                        "exponential backoff; RetriesExhausted if STEPS "
                        "outlasts the budget")
    parser.add_argument("--fault-retries", type=int, default=None, metavar="N",
                        help="retry budget for transient stalls (default: "
                        "REPRO_FAULT_RETRIES or 3)")
    parser.add_argument("--corrupt", action="append", default=[], type=int,
                        metavar="OP", help="flip one seeded bit in RMA op #OP")
    parser.add_argument("--drop", action="append", default=[], type=int,
                        metavar="OP", help="silently drop RMA op #OP")
    parser.add_argument("--jitter", type=float, default=0.0,
                        help="seeded delivery-delay jitter fraction")
    parser.add_argument("--degrade", metavar="LAT[:BW]", default=None,
                        help="degrade the network path: latency factor and "
                        "optional bandwidth factor (e.g. 4:0.5)")
    parser.add_argument("--no-sanitize", action="store_true",
                        help="skip the RMA sanitizer")
    return parser


def _parse_at(spec: str, what: str) -> tuple:
    """Parse RANK@POINT[:EXTRA] into (rank, point, extra-or-None)."""
    try:
        head, _, extra = spec.partition(":")
        rank_s, _, point_s = head.partition("@")
        return int(rank_s), int(point_s), extra or None
    except ValueError:
        raise SystemExit(f"bad --{what} spec {spec!r}: expected RANK@POINT[:X]")


def build_plan(args) -> FaultPlan:
    """Compose the plan from --plan (if any) plus inline fault flags."""
    if args.plan is not None:
        plan = FaultPlan.from_json(pathlib.Path(args.plan).read_text())
    else:
        plan = FaultPlan(seed=args.seed)
    for spec in args.kill:
        rank, point, kind = _parse_at(spec, "kill")
        plan = plan.kill(rank, point, kind)
    for spec in args.stall:
        rank, point, steps = _parse_at(spec, "stall")
        plan = plan.stall(rank, point, int(steps or 1))
    for spec in args.stall_transient:
        rank, point, steps = _parse_at(spec, "stall-transient")
        plan = plan.stall(rank, point, int(steps or 1), transient=True)
    for op in args.corrupt:
        plan = plan.corrupt(op)
    for op in args.drop:
        plan = plan.drop(op)
    jitter, lat, bw = args.jitter, 1.0, 1.0
    if args.degrade is not None:
        lat_s, _, bw_s = args.degrade.partition(":")
        lat, bw = float(lat_s), float(bw_s) if bw_s else 1.0
    if jitter > 0.0 or lat > 1.0 or bw < 1.0:
        plan = plan.delay(jitter_frac=jitter, latency_factor=lat, bw_factor=bw)
    return plan


def load_body(script: str):
    if script.startswith("scenario:"):
        name = script[len("scenario:"):]
        try:
            return _ALL_SCENARIOS[name]
        except KeyError:
            raise SystemExit(
                f"unknown scenario {name!r}; choose from {sorted(_ALL_SCENARIOS)}"
            )
    from ..sanitizer.cli import load_entry

    return load_entry(script)


#: error classes that count as a *typed* failure diagnosis (report.error
#: is a repr, so the class name is its prefix)
_TYPED = ("TargetFailedError", "MutexHolderFailed", "RankKilledError",
          "OpTimeoutError", "RetriesExhausted", "CommRevokedError")


def graceful(report) -> bool:
    """A run is graceful iff clean, or typed-failure after injected faults."""
    if report.ok:
        return True
    if report.fault_events == 0:
        return False  # failed with no fault executed: a real finding
    err = report.error or ""
    return any(err.startswith(name) for name in _TYPED)


def main(argv: "list[str] | None" = None) -> int:
    import os

    from ..sanitizer.fuzz import format_reports, fuzz_schedules

    args = build_parser().parse_args(argv)
    if args.fault_retries is not None:
        os.environ["REPRO_FAULT_RETRIES"] = str(args.fault_retries)
    plan = build_plan(args)
    fn = load_body(args.script)
    print(f"fault plan: {plan.describe()}")
    reports = fuzz_schedules(
        fn,
        args.nproc,
        nschedules=args.schedules,
        base_seed=args.seed,
        switch_prob=args.switch_prob,
        sanitize=not args.no_sanitize,
        plan=plan,
    )
    print(format_reports(reports))
    bad = [r for r in reports if not graceful(r) or r.violations]
    for r in bad:
        print(f"  seed {r.seed}: NOT graceful — {r.error}")
        for v in r.violations:
            print(f"  seed {r.seed}: {v}")
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
