"""The checked-in regression corpus of failing ``(seed, plan)`` pairs.

``tests/corpus/failing_seeds.json`` holds scenarios that once exposed a
bug (or pin a guaranteed-graceful failure mode).  Every entry is fully
deterministic — a scenario name, rank count, schedule seed, and a
serialized :class:`~repro.faults.plan.FaultPlan` — so it replays
bit-identically forever.  Each entry records the *expected* outcome:

``"expect": "ok"``
    the run completes with no error and no sanitizer violations;
``"expect": "<ErrorClassName>"``
    the run fails and ``report.error`` starts with that exception name
    (always one of the typed graceful-degradation classes).

The corpus is replayed by ``python -m repro.sanitize --sweep`` (and by
``tests/test_seed_sweep.py`` on every tier-1 run); each entry runs
*twice* and the two digests must match, so schedule/injector
nondeterminism is caught immediately.
"""

from __future__ import annotations

import json
import pathlib

from .plan import FaultPlan
from .scenarios import SCENARIOS

__all__ = ["DEFAULT_CORPUS", "load_corpus", "replay_entry"]

DEFAULT_CORPUS = (
    pathlib.Path(__file__).resolve().parents[3]
    / "tests"
    / "corpus"
    / "failing_seeds.json"
)


def load_corpus(path: "pathlib.Path | str | None" = None) -> list:
    path = pathlib.Path(path) if path is not None else DEFAULT_CORPUS
    entries = json.loads(path.read_text())["entries"]
    for e in entries:
        for k in ("name", "scenario", "nproc", "seed", "plan", "expect"):
            if k not in e:
                raise ValueError(f"corpus entry missing {k!r}: {e}")
    return entries


def replay_entry(entry: dict) -> "tuple[bool, str]":
    """Replay one corpus entry twice; returns ``(passed, detail)``.

    Passes iff both runs produce the same digest AND the outcome matches
    ``entry["expect"]``.
    """
    from ..sanitizer.fuzz import run_schedule

    fn = SCENARIOS[entry["scenario"]]
    plan = FaultPlan.from_dict(entry["plan"])
    a = run_schedule(fn, entry["nproc"], entry["seed"], plan=plan)
    b = run_schedule(fn, entry["nproc"], entry["seed"], plan=plan)
    if a.digest != b.digest:
        return False, f"nondeterministic replay: {a.digest[:12]} != {b.digest[:12]}"
    expect = entry["expect"]
    if expect == "ok":
        if not a.ok:
            return False, f"expected clean completion, got {a.error}"
        if a.violations:
            return False, f"expected clean completion, got violations {a.violations}"
        return True, f"ok digest={a.digest[:12]}"
    if a.ok:
        return False, f"expected {expect}, but the run completed"
    if not (a.error or "").startswith(expect):
        return False, f"expected {expect}, got {a.error}"
    return True, f"{expect} digest={a.digest[:12]}"
