"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`
against a live runtime.

Install by assigning ``runtime.faults = FaultInjector(plan)`` before
``Runtime.spmd`` (or pass ``plan=`` to
:func:`repro.sanitizer.fuzz.run_schedule`, which does this and folds
the plan into the replay digest).  The runtime consults the injector at
three points:

``begin_run(runtime)``
    Called once by ``spmd``: installs seeded delivery-delay jitter into
    every rank's :class:`~repro.simtime.clock.SimClock` and swaps the
    installed timing policy's :class:`~repro.simtime.netmodel.PathModel`
    for its :meth:`~repro.simtime.netmodel.PathModel.degraded` copy.

``at_point(runtime, proc, kind)``
    Called from ``Runtime.fuzz_point`` — *not* holding the runtime
    condition variable.  Kill specs take the lock, run
    ``Runtime.mark_dead`` (which triggers the recovery death hooks),
    and raise :class:`~repro.mpi.errors.RankKilledError` inside the
    victim.  Stall specs hand the scheduler token away for N steps via
    ``DeterministicSchedule.forced_yield``.

``filter_rma(win, origin_world, kind, data)``
    Called by the window datapath *holding* the condition variable, so
    it must not block: returns the payload unchanged, a bit-flipped
    copy (``corrupt``), or ``None`` (``drop`` — the op silently moves
    no data, modeling a lost delivery).

All plan execution draws randomness from one ``random.Random`` seeded
by the plan; under a deterministic schedule every consultation happens
on the token-holding rank, so the whole fault scenario is a pure
function of ``(schedule seed, plan)``.
"""

from __future__ import annotations

import os
import random

import numpy as np

from ..backoff import STALL_STEPS, STALL_WAIT
from ..mpi.errors import RankKilledError, RetriesExhausted
from .plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Single-use executor of one :class:`FaultPlan` against one runtime.

    ``retries`` bounds the retry-with-backoff budget for *transient*
    stalls (``Stall(transient=True)``): attempt ``i`` absorbs up to
    ``2**i`` stall steps, so the budget covers ``2**(retries+1) - 1``
    steps in total before the stalled rank raises
    :class:`~repro.mpi.errors.RetriesExhausted`.  Defaults to the
    ``REPRO_FAULT_RETRIES`` environment variable (3).
    """

    def __init__(self, plan: FaultPlan, retries: "int | None" = None):
        self.plan = plan
        self.runtime = None
        if retries is None:
            retries = int(os.environ.get("REPRO_FAULT_RETRIES", "3"))
        self.retries = retries
        #: executed-fault log, e.g. ``("kill", rank, point, kind)`` — part
        #: of the replay digest, so divergent execution is detected
        self.events: list[tuple] = []
        self._rng = random.Random(0x0FAB17 ^ (plan.seed * 0x9E3779B1))
        self._point_counts: dict[int, int] = {}
        self._op_count = 0
        self._jitter_frac = sum(d.jitter_frac for d in plan.delays)

    # -- wiring ---------------------------------------------------------------
    def begin_run(self, runtime) -> None:
        """Attach to ``runtime`` (called by ``Runtime.spmd``); idempotent
        for the same runtime, single-use across runtimes."""
        if self.runtime is runtime:
            return
        if self.runtime is not None:
            raise RuntimeError("a FaultInjector is single-use; build a new one")
        self.runtime = runtime
        runtime.faults = self
        if self._jitter_frac > 0.0:
            for p in runtime.procs:
                p.clock.add_jitter(self._jitter)
        lat = 1.0
        bw = 1.0
        for d in self.plan.delays:
            lat *= d.latency_factor
            bw *= d.bw_factor
        if (lat > 1.0 or bw < 1.0) and runtime.timing is not None:
            path = getattr(runtime.timing, "path", None)
            if path is not None:
                runtime.timing.path = path.degraded(
                    latency_factor=lat, bw_factor=bw
                )

    def _jitter(self, kind: str, seconds: float) -> float:
        return seconds * self._jitter_frac * self._rng.random()

    def point_counts(self) -> dict[int, int]:
        """Fuzz points each rank reached (probe a run to size a kill matrix)."""
        return dict(self._point_counts)

    # -- fuzz-point hook (NOT holding runtime.cond) ----------------------------
    def at_point(self, runtime, proc, kind: str) -> None:
        rank = proc.rank
        if proc.dead:
            raise RankKilledError(
                f"rank {rank} was killed by fault injection"
            )
        idx = self._point_counts.get(rank, 0)
        self._point_counts[rank] = idx + 1
        for k in self.plan.kills:
            if k.rank == rank and k.point == idx and (k.kind in (None, kind)):
                with runtime.cond:
                    self.events.append(("kill", rank, idx, kind))
                    runtime.mark_dead(rank)
                raise RankKilledError(
                    f"rank {rank} killed at its fuzz point {idx} ({kind}) "
                    f"by fault plan"
                )
        for s in self.plan.stalls:
            if s.rank == rank and s.point == idx and (s.kind in (None, kind)):
                if s.transient:
                    self._transient_stall(runtime, rank, idx, kind, s)
                    continue
                with runtime.cond:
                    self.events.append(("stall", rank, idx, kind, s.steps))
                    sched = runtime.schedule
                    if sched is not None:
                        for _ in range(s.steps):
                            sched.forced_yield(rank, kind)
                    else:
                        # wall-clock mode: a bounded sleep models the stall
                        runtime.cond.wait(timeout=0.002 * s.steps)

    def _transient_stall(self, runtime, rank: int, idx: int, kind: str, s) -> None:
        """Retry-with-backoff through a transient stall (bounded attempts).

        Attempt ``i`` waits out up to :data:`repro.backoff.STALL_STEPS`
        scheduler steps (``2**i`` — deterministic, no shared RNG is
        consumed, so seeded replays are unaffected).  If the stall
        outlasts the whole budget, the rank raises a typed
        :class:`RetriesExhausted`; the fault was transient, so nothing
        is marked dead.
        """
        remaining = s.steps
        for attempt in range(self.retries + 1):
            burst = min(remaining, STALL_STEPS.steps(attempt))
            with runtime.cond:
                self.events.append(("retry", rank, idx, kind, attempt, burst))
                sched = runtime.schedule
                if sched is not None:
                    for _ in range(burst):
                        sched.forced_yield(rank, kind)
                else:
                    # wall-clock mode: deterministic exponential backoff
                    runtime.cond.wait(timeout=STALL_WAIT.delay(attempt))
            remaining -= burst
            if remaining <= 0:
                with runtime.cond:
                    self.events.append(("retry_cleared", rank, idx, kind, attempt))
                return
        with runtime.cond:
            self.events.append(("retries_exhausted", rank, idx, kind, self.retries + 1))
        raise RetriesExhausted(
            f"transient stall at rank {rank} fuzz point {idx} ({kind}) did not "
            f"clear within {self.retries + 1} attempts "
            f"({s.steps - remaining}/{s.steps} stall steps absorbed)"
        )

    # -- RMA datapath hook (HOLDING runtime.cond — must not block) -------------
    def filter_rma(self, win, origin_world: int, kind: str, data):
        """Pass/corrupt/drop one RMA payload; returns ``None`` to drop."""
        idx = self._op_count
        self._op_count += 1
        for c in self.plan.corruptions:
            if c.op == idx and (c.kind in (None, kind)):
                if c.mode == "drop":
                    self.events.append(("drop", idx, kind, origin_world))
                    return None
                corrupted = np.ascontiguousarray(data).copy()
                flat = corrupted.reshape(-1).view(np.uint8)
                if flat.size:
                    pos = self._rng.randrange(flat.size)
                    flat[pos] ^= np.uint8(1 << self._rng.randrange(8))
                    self.events.append(
                        ("corrupt", idx, kind, origin_world, pos)
                    )
                return corrupted
        return data
