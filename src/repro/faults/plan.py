"""Seeded, serializable fault plans.

A :class:`FaultPlan` is a *pure description* of a fault scenario — which
rank dies at which operation boundary, who stalls, which RMA operation
is corrupted or dropped, how the network path degrades.  Plans are
frozen and composable (builder methods return new plans), have a stable
canonical :meth:`key` that the schedule fuzzer folds into its replay
digest, and round-trip through JSON so failing ``(seed, plan)`` pairs
can be checked into a regression corpus and replayed bit-identically.

Coordinates
-----------
* ``point`` counts a rank's **own** fuzz points (the calls to
  ``Runtime.fuzz_point`` it makes), starting at 0.  Under the
  deterministic schedule this is a pure function of ``(seed, plan)``,
  so "kill rank 2 at its 7th op boundary" is fully reproducible.
* ``op`` counts RMA data-movement operations **globally** in issue
  order (the order the injector's ``filter_rma`` sees them) — again
  deterministic under a schedule.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

__all__ = ["FaultPlan", "Kill", "Stall", "Corrupt", "Delay"]


@dataclass(frozen=True)
class Kill:
    """Kill ``rank`` at its ``point``-th fuzz point (optionally only if
    the point's kind matches ``kind``, e.g. ``"lock"`` or ``"put"``)."""

    rank: int
    point: int
    kind: "str | None" = None


@dataclass(frozen=True)
class Stall:
    """Take the token away from ``rank`` for ``steps`` scheduler steps
    at its ``point``-th fuzz point (deterministic-schedule runs only;
    wall-clock runs sleep a token amount instead).

    With ``transient=True`` the stall models a *transient* fault the
    injector works through with bounded retry-with-backoff: attempt
    ``i`` absorbs up to ``2**i`` stall steps, so a stall of ``steps``
    clears iff it fits in the injector's retry budget — otherwise the
    stalled rank raises a typed
    :class:`~repro.mpi.errors.RetriesExhausted` (distinct from a
    permanent ``kill``: nothing dies, the operation just gives up)."""

    rank: int
    point: int
    steps: int = 1
    kind: "str | None" = None
    transient: bool = False


@dataclass(frozen=True)
class Corrupt:
    """Corrupt (``mode="corrupt"``: flip one seeded bit) or drop
    (``mode="drop"``) the ``op``-th RMA operation, optionally only if it
    is of ``kind`` (``put``/``get``/``acc``)."""

    op: int
    mode: str = "corrupt"
    kind: "str | None" = None

    def __post_init__(self) -> None:
        if self.mode not in ("corrupt", "drop"):
            raise ValueError(f"Corrupt.mode must be corrupt|drop, got {self.mode!r}")


@dataclass(frozen=True)
class Delay:
    """Delivery-delay injection: seeded per-op clock jitter (a fraction
    of each charged cost) plus optional degradation of the installed
    :class:`~repro.simtime.netmodel.PathModel` (latency multiplied,
    bandwidth scaled down)."""

    jitter_frac: float = 0.0
    latency_factor: float = 1.0
    bw_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.jitter_frac < 0.0:
            raise ValueError("Delay.jitter_frac must be >= 0")
        if self.latency_factor < 1.0 or not 0.0 < self.bw_factor <= 1.0:
            raise ValueError(
                "Delay: latency_factor must be >= 1 and bw_factor in (0, 1]"
            )


_SPEC_TYPES = {"kill": Kill, "stall": Stall, "corrupt": Corrupt, "delay": Delay}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded fault scenario.

    ``seed`` drives every random choice the injector makes while
    *executing* the plan (which bit to flip, jitter magnitudes) — the
    plan itself contains no randomness.  Builder usage::

        plan = (FaultPlan(seed=7)
                .kill(rank=1, point=5)
                .delay(jitter_frac=0.2))
    """

    seed: int = 0
    kills: tuple = field(default_factory=tuple)
    stalls: tuple = field(default_factory=tuple)
    corruptions: tuple = field(default_factory=tuple)
    delays: tuple = field(default_factory=tuple)

    # -- builders -------------------------------------------------------------
    def kill(self, rank: int, point: int, kind: "str | None" = None) -> "FaultPlan":
        return replace(self, kills=self.kills + (Kill(rank, point, kind),))

    def stall(
        self,
        rank: int,
        point: int,
        steps: int = 1,
        kind: "str | None" = None,
        transient: bool = False,
    ) -> "FaultPlan":
        return replace(
            self, stalls=self.stalls + (Stall(rank, point, steps, kind, transient),)
        )

    def corrupt(self, op: int, kind: "str | None" = None) -> "FaultPlan":
        return replace(
            self, corruptions=self.corruptions + (Corrupt(op, "corrupt", kind),)
        )

    def drop(self, op: int, kind: "str | None" = None) -> "FaultPlan":
        return replace(
            self, corruptions=self.corruptions + (Corrupt(op, "drop", kind),)
        )

    def delay(
        self,
        jitter_frac: float = 0.0,
        latency_factor: float = 1.0,
        bw_factor: float = 1.0,
    ) -> "FaultPlan":
        return replace(
            self, delays=self.delays + (Delay(jitter_frac, latency_factor, bw_factor),)
        )

    # -- identity -------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not (self.kills or self.stalls or self.corruptions or self.delays)

    def key(self) -> str:
        """Canonical string identity, folded into replay digests."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for k in self.kills:
            parts.append(f"kill rank {k.rank} @point {k.point}"
                         + (f" [{k.kind}]" if k.kind else ""))
        for s in self.stalls:
            parts.append(f"stall rank {s.rank} @point {s.point} x{s.steps}"
                         + (" (transient)" if s.transient else "")
                         + (f" [{s.kind}]" if s.kind else ""))
        for c in self.corruptions:
            parts.append(f"{c.mode} op {c.op}" + (f" [{c.kind}]" if c.kind else ""))
        for d in self.delays:
            parts.append(
                f"delay jitter={d.jitter_frac} lat*{d.latency_factor} "
                f"bw*{d.bw_factor}"
            )
        return "; ".join(parts)

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "kill": [asdict(k) for k in self.kills],
            "stall": [asdict(s) for s in self.stalls],
            "corrupt": [asdict(c) for c in self.corruptions],
            "delay": [asdict(d) for d in self.delays],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(
            seed=int(d.get("seed", 0)),
            kills=tuple(Kill(**k) for k in d.get("kill", ())),
            stalls=tuple(Stall(**s) for s in d.get("stall", ())),
            corruptions=tuple(Corrupt(**c) for c in d.get("corrupt", ())),
            delays=tuple(Delay(**e) for e in d.get("delay", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))
