"""Proc-backend fault injection: real signals on real processes.

The thread-backend injector (:mod:`repro.faults.injector`) schedules
faults at deterministic *fuzz points* — a coordinate system that only
exists when every rank runs under the giant lock in one address space.
Across OS processes there is no shared step counter, so the proc
backend accepts a different, smaller vocabulary measured in **wall-clock
seconds after launch** and executed with **real signals**:

* :class:`ProcKill` — ``SIGKILL`` the rank's process (no cleanup, no
  goodbye message; survivors learn of it from the heartbeat lease or
  the parent monitor's ``rank_dead`` broadcast),
* :class:`ProcStall` — ``SIGSTOP`` for a bounded interval, then
  ``SIGCONT``: the rank's heartbeat lease goes stale and peers may
  *suspect* it, but its pid stays alive so it is never declared dead
  (stalled-forever is indistinguishable from slow, exactly as in a real
  failure detector),
* :class:`ProcDelay` — hold the rank's body back ``startup_s`` seconds
  before it enters the user function (the pump thread is already
  heartbeating, so peers see a slow rank, not a dead one).

A :class:`ProcFaultPlan` is the frozen, composable description; a
:class:`ProcFaultInjector` (``proc_capable = True``) executes it from
the parent's monitor loop.  Install by assigning ``runtime.faults``
before :meth:`~repro.mpi.runtime.Runtime.spmd`::

    rt = Runtime(4, backend="proc")
    rt.faults = ProcFaultInjector(ProcFaultPlan(seed=0).kill(2, after_s=0.3))
    rt.spmd(body)

Timing is wall-clock, so *which operation* the victim dies inside is
not bit-reproducible the way thread-backend plans are — but the plan
itself (who dies, when, in what order) is, and the recovery protocol it
exercises must tolerate any interleaving anyway.
"""

from __future__ import annotations

import os
import pathlib
import signal
import time
from dataclasses import dataclass, field, replace
from multiprocessing import resource_tracker

__all__ = [
    "ProcKill",
    "ProcStall",
    "ProcDelay",
    "ProcFaultPlan",
    "ProcFaultInjector",
    "sweep_stale_segments",
]

#: a ``repro-*`` shm segment untouched this long is an orphan of a
#: previous (crashed or SIGKILLed) run, not a live window of this one
STALE_SEGMENT_S = 600.0


def sweep_stale_segments(
    stale_after_s: float = STALE_SEGMENT_S,
    shm_dir: "str | os.PathLike" = "/dev/shm",
) -> "list[str]":
    """Unlink orphaned ``repro-*`` shared-memory segments; idempotent.

    The proc backend's own teardown sweep only covers segments of *its*
    run id; a SIGKILLed traffic-harness worker from an earlier run (or
    a run whose parent itself died) leaves segments no live process
    will ever reclaim.  This sweeps any ``repro-*`` segment whose mtime
    is older than ``stale_after_s`` — age-gating keeps concurrent live
    runs safe, since their windows and heartbeat leases are touched far
    more often than that.  Returns the names removed; calling it twice
    is a no-op the second time (nothing matches, nothing raises).
    """
    shm = pathlib.Path(shm_dir)
    if not shm.is_dir():  # pragma: no cover - non-Linux shm layout
        return []
    removed: list[str] = []
    cutoff = time.time() - stale_after_s
    for seg in shm.glob("repro-*"):
        try:
            if seg.stat().st_mtime > cutoff:
                continue
        except OSError:  # concurrently unlinked — already swept
            continue
        try:
            # register first (idempotent): unregistering a name the
            # tracker never saw makes its process print a KeyError
            # traceback at shutdown
            resource_tracker.register(f"/{seg.name}", "shared_memory")
            resource_tracker.unregister(f"/{seg.name}", "shared_memory")
        except Exception:  # pragma: no cover - tracker gone at exit
            pass
        try:
            seg.unlink()
        except OSError:  # pragma: no cover - concurrent unlink
            continue
        removed.append(seg.name)
    return removed


@dataclass(frozen=True)
class ProcKill:
    """``SIGKILL`` ``rank`` ``after_s`` seconds after the run starts."""

    rank: int
    after_s: float

    def __post_init__(self) -> None:
        if self.after_s < 0.0:
            raise ValueError("ProcKill.after_s must be >= 0")


@dataclass(frozen=True)
class ProcStall:
    """``SIGSTOP`` ``rank`` ``after_s`` seconds in, ``SIGCONT`` after
    ``for_s`` more seconds (``finish`` resumes it regardless, so a
    stalled child can never outlive the run)."""

    rank: int
    after_s: float
    for_s: float = 0.5

    def __post_init__(self) -> None:
        if self.after_s < 0.0 or self.for_s <= 0.0:
            raise ValueError("ProcStall: after_s must be >= 0 and for_s > 0")


@dataclass(frozen=True)
class ProcDelay:
    """Delay ``rank``'s entry into the user function by ``startup_s``."""

    rank: int
    startup_s: float

    def __post_init__(self) -> None:
        if self.startup_s < 0.0:
            raise ValueError("ProcDelay.startup_s must be >= 0")


@dataclass(frozen=True)
class ProcFaultPlan:
    """An immutable cross-process fault scenario (builder-style).

    ``seed`` names the scenario for replay bookkeeping (bench gates fold
    it into their records); the plan's execution consults no randomness.
    """

    seed: int = 0
    kills: tuple = field(default_factory=tuple)
    stalls: tuple = field(default_factory=tuple)
    delays: tuple = field(default_factory=tuple)

    def kill(self, rank: int, after_s: float) -> "ProcFaultPlan":
        return replace(self, kills=self.kills + (ProcKill(rank, after_s),))

    def stall(self, rank: int, after_s: float, for_s: float = 0.5) -> "ProcFaultPlan":
        return replace(self, stalls=self.stalls + (ProcStall(rank, after_s, for_s),))

    def delay(self, rank: int, startup_s: float) -> "ProcFaultPlan":
        return replace(self, delays=self.delays + (ProcDelay(rank, startup_s),))

    @property
    def empty(self) -> bool:
        return not (self.kills or self.stalls or self.delays)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for k in self.kills:
            parts.append(f"SIGKILL rank {k.rank} @{k.after_s}s")
        for s in self.stalls:
            parts.append(f"SIGSTOP rank {s.rank} @{s.after_s}s for {s.for_s}s")
        for d in self.delays:
            parts.append(f"delay rank {d.rank} start by {d.startup_s}s")
        return "; ".join(parts)


def _signal_child(child, sig: int) -> bool:
    """Deliver ``sig`` to a live child process; False if already gone."""
    pid = child.pid
    if pid is None or not child.is_alive():
        return False
    try:
        os.kill(pid, sig)
    except (ProcessLookupError, PermissionError):
        return False
    return True


class ProcFaultInjector:
    """Executes a :class:`ProcFaultPlan` from the parent monitor loop.

    The proc backend recognises it by ``proc_capable`` and calls
    :meth:`start` once the children are launched, :meth:`poll` every
    monitor iteration, and :meth:`finish` unconditionally at teardown
    (first thing in the ``finally`` — a ``SIGSTOP``-ped child cannot
    handle the ``SIGTERM`` that follows).  ``startup_delays`` is read
    before fork and shipped to the children in their config tuple.
    """

    #: marks this injector as accepted by the proc backend's ``spmd``
    proc_capable = True

    def __init__(self, plan: ProcFaultPlan):
        self.plan = plan
        self._t0: "float | None" = None
        # (due_time, kind, rank) min-heap substitute: sorted list, popped
        # from the front as events fire
        self._pending: list[tuple[float, str, int, float]] = []
        self._stopped: set[int] = set()
        self.fired: list[tuple[str, int, float]] = []

    # -- lifecycle (called by the proc backend) ------------------------------------
    def startup_delays(self, nproc: int) -> dict[int, float]:
        """Per-rank startup delay in seconds (shipped to the children)."""
        return {
            d.rank: d.startup_s
            for d in self.plan.delays
            if 0 <= d.rank < nproc and d.startup_s > 0.0
        }

    def start(self, children: list) -> None:
        self._t0 = time.monotonic()
        events: list[tuple[float, str, int, float]] = []
        for k in self.plan.kills:
            if 0 <= k.rank < len(children):
                events.append((self._t0 + k.after_s, "kill", k.rank, 0.0))
        for s in self.plan.stalls:
            if 0 <= s.rank < len(children):
                events.append((self._t0 + s.after_s, "stop", s.rank, s.for_s))
        self._pending = sorted(events)

    def poll(self, children: list) -> None:
        """Fire every event whose due time has passed (monitor loop)."""
        if self._t0 is None:
            return
        now = time.monotonic()
        while self._pending and self._pending[0][0] <= now:
            due, kind, rank, for_s = self._pending.pop(0)
            if kind == "kill":
                if _signal_child(children[rank], signal.SIGKILL):
                    self.fired.append(("kill", rank, now - self._t0))
            elif kind == "stop":
                if _signal_child(children[rank], signal.SIGSTOP):
                    self._stopped.add(rank)
                    self.fired.append(("stop", rank, now - self._t0))
                    self._pending.append((now + for_s, "cont", rank, 0.0))
                    self._pending.sort()
            elif kind == "cont":
                self._resume(children, rank, now)

    def finish(self, children: list) -> None:
        """Resume every still-stopped child (teardown safety net).

        Also sweeps *stale* ``repro-*`` shm segments orphaned by earlier
        runs — a SIGKILL plan is exactly the kind of run that leaves
        them, so fault-injecting teardowns double as the janitor.
        """
        if self._t0 is None:
            return
        now = time.monotonic()
        for rank in sorted(self._stopped):
            self._resume(children, rank, now)
        self._pending = [e for e in self._pending if e[1] != "cont"]
        sweep_stale_segments()

    def _resume(self, children: list, rank: int, now: float) -> None:
        if rank in self._stopped:
            self._stopped.discard(rank)
            if _signal_child(children[rank], signal.SIGCONT):
                self.fired.append(("cont", rank, now - self._t0))
