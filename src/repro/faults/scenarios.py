"""Canonical fault-injection scenarios: the §V protocols under fire.

These are the SPMD bodies the fault-matrix tests, the seed-sweep gate,
and ``python -m repro.faults`` exercise.  Each follows the examples'
``main(comm)`` convention and demonstrates *graceful degradation*: a
rank receiving :class:`~repro.armci.mutexes.MutexHolderFailed` owns the
repaired mutex, releases it, and skips the torn round instead of
crashing; survivors of an injected death either finish or raise a typed
:class:`~repro.mpi.errors.TargetFailedError` from the next collective —
never an untyped hang.
"""

from __future__ import annotations

import numpy as np

from ..armci.mutexes import MutexHolderFailed
from ..mpi.errors import (
    CommRevokedError,
    OpTimeoutError,
    RankKilledError,
    TargetFailedError,
)

__all__ = [
    "SCENARIOS",
    "RECOVER_SCENARIOS",
    "mutex_counter",
    "rmw_counter",
    "gmr_free_null",
    "traffic_service",
    "recover_mutex",
    "recover_rmw",
    "recover_gmr",
    "recover_ga",
    "recover_rmw_mpi3",
    "recover_gmr_mpi3",
    "recover_nbq",
]

#: per-rank rounds in the counter scenarios (small: fuzz points multiply)
ROUNDS = 4


def mutex_counter(comm):
    """§V-D queueing-mutex handoff protecting a non-atomic counter."""
    from ..armci import Armci

    armci = Armci.init(comm)
    ptrs = armci.malloc(8 if armci.my_id == 0 else 0)
    mutexes = armci.create_mutexes(1)
    armci.barrier()
    buf = np.zeros(1, dtype=np.int64)
    done = 0
    for _ in range(ROUNDS):
        try:
            mutexes.lock(0, 0)
        except MutexHolderFailed:
            # we own the repaired mutex; the previous holder died
            # mid-update, so skip the (possibly torn) round
            mutexes.unlock(0, 0)
            continue
        armci.get(ptrs[0], buf, 8)
        buf[0] += 1
        armci.put(buf, ptrs[0], 8)
        mutexes.unlock(0, 0)
        done += 1
    armci.barrier()
    total = None
    if armci.my_id == 0:
        view = armci.access_begin(ptrs[0], 8, np.int64)
        total = int(view[0])
        armci.access_end(ptrs[0])
    armci.barrier()
    mutexes.destroy()
    armci.finalize()
    return (done, total)


def rmw_counter(comm):
    """ARMCI_Rmw's two-epoch mutex-based fetch-and-add (§V-D)."""
    from ..armci import Armci

    armci = Armci.init(comm)
    ptrs = armci.malloc(8 if armci.my_id == 0 else 0)
    armci.barrier()
    done = 0
    for _ in range(ROUNDS):
        try:
            armci.rmw("fetch_and_add_long", ptrs[0], 1)
        except MutexHolderFailed:
            continue  # rmw released the repaired mutex before raising
        done += 1
    armci.barrier()
    total = None
    if armci.my_id == 0:
        view = armci.access_begin(ptrs[0], 8, np.int64)
        total = int(view[0])
        armci.access_end(ptrs[0])
    armci.barrier()
    armci.finalize()
    return (done, total)


def gmr_free_null(comm):
    """§V-B leader-election free with NULL (zero-size) slices.

    Each round allocates on one owner only — every other rank holds a
    NULL slice and must pass ``None`` to free — so the leader-election
    path runs every time.  The translation table is invariant-checked
    after each free (abort-consistency: a fault either leaves the GMR
    fully registered or fully gone).
    """
    from ..armci import Armci

    armci = Armci.init(comm)
    freed = 0
    for owner in range(comm.size):
        ptrs = armci.malloc(64 if armci.my_id == owner else 0)
        armci.barrier()
        if armci.my_id == (owner + 1) % comm.size:
            armci.put(np.arange(8, dtype=np.int64), ptrs[owner], 64)
        armci.barrier()
        mine = ptrs[armci.my_id]
        armci.free(None if mine.is_null else mine)
        armci.table.check_consistent()
        freed += 1
    remaining = len(armci.table)
    armci.finalize()
    return (freed, remaining)


def traffic_service(comm):
    """One small tick of the §service-traffic harness (admission queue,
    deadlines, retry/backoff, circuit breaker) over a stencil workload.

    The full harness lives in :mod:`repro.traffic`; this scenario runs a
    deliberately tiny configuration so the seed sweep explores its
    GA-heavy interleavings cheaply, and so killed corpus seeds pin the
    recover-shed-drain path (the harness absorbs the death, so even
    kill plans expect ``"ok"``).
    """
    from ..traffic.harness import TrafficConfig, traffic_body

    cfg = TrafficConfig(
        scenario="stencil", seed=3, size=8,
        offered=2, service_rate=1, queue_capacity=3,
        deadline_ticks=6, checkpoint_every=2, max_ticks=40,
    )
    return traffic_body(comm, cfg)


#: name -> SPMD body, for the CLI and the fault-matrix tests
SCENARIOS = {
    "mutex": mutex_counter,
    "rmw": rmw_counter,
    "gmr_free": gmr_free_null,
    "traffic": traffic_service,
}


# ---------------------------------------------------------------------------
# Recovery scenarios: lose a rank, shrink, redistribute, finish correctly.
#
# These are the *survivor-restart* counterparts of the scenarios above:
# instead of merely degrading gracefully (typed error, no hang), they
# catch the failure, run the :mod:`repro.recover` protocol, and complete
# the computation with value-verified results on the shrunken world.
# Kept in a separate registry: the regression corpus (and its seed-sweep
# gate) enumerates exactly ``SCENARIOS``.
# ---------------------------------------------------------------------------

#: errors a *survivor* treats as "a peer failed, start recovery";
#: RankKilledError is excluded — that is the victim's own death notice
#: and must propagate (a dead rank cannot join the survivors' shrink)
_RECOVERABLE = (CommRevokedError, TargetFailedError, OpTimeoutError)


def _attempt_with_recovery(comm, phase, datapath="mpi2"):
    """Run ``phase(armci)`` until one attempt completes on a live world.

    The ULFM-textbook loop: try the phase; on a failure error, revoke
    the world (so survivors blocked in phase collectives abandon them
    too) and vote 0; then every rank votes through
    :meth:`~repro.mpi.comm.Comm.agree` — consensus, so either *all*
    survivors accept the attempt or *all* run :func:`repro.recover.
    recover` and retry on the shrunken world.  Returns
    ``(armci, recoveries, result)``.  ``datapath`` carries through
    recovery: the rebuilt runtime keeps the caller's completion mode.
    """
    from ..armci import Armci
    from ..recover import recover

    armci = Armci.init(comm, datapath=datapath)
    recoveries = 0
    while True:
        result = None
        try:
            result = phase(armci)
            flag = 1
        except RankKilledError:
            raise
        except _RECOVERABLE:
            # poison the phase everywhere before abandoning it, so no
            # survivor stays blocked in a collective we will never join
            armci.world.revoke()
            flag = 0
        if armci.world.agree(flag):
            return armci, recoveries, result
        if recoveries > comm.size:
            raise TargetFailedError(
                f"recovery did not converge after {recoveries} attempts"
            )
        armci, _report = recover(armci)
        recoveries += 1


def recover_mutex(comm):
    """§V-D queueing mutex under a kill, completed on the shrunken world.

    Each attempt runs the full mutex-counter protocol on a fresh
    allocation; the surviving attempt verifies the counter against an
    allgather of per-rank completed rounds (exact — torn rounds are
    skipped by their ranks and never counted).
    """

    def phase(armci):
        ptrs = armci.malloc(8 if armci.my_id == 0 else 0)
        mutexes = armci.create_mutexes(1)
        armci.barrier()
        buf = np.zeros(1, dtype=np.int64)
        done = 0
        for _ in range(ROUNDS):
            try:
                mutexes.lock(0, 0)
            except MutexHolderFailed:
                mutexes.unlock(0, 0)
                continue
            armci.get(ptrs[0], buf, 8)
            buf[0] += 1
            armci.put(buf, ptrs[0], 8)
            mutexes.unlock(0, 0)
            done += 1
        armci.barrier()
        total = None
        if armci.my_id == 0:
            view = armci.access_begin(ptrs[0], 8, np.int64)
            total = int(view[0])
            armci.access_end(ptrs[0])
        total = armci.world.bcast_obj(total, root=0)
        dones = armci.world.allgather(done)
        assert total == sum(dones), (total, dones)
        return total

    armci, recoveries, total = _attempt_with_recovery(comm, phase)
    return (armci.nproc, recoveries, total)


def recover_rmw(comm, datapath="mpi2"):
    """ARMCI_Rmw fetch-and-add under a kill, completed after recovery."""

    def phase(armci):
        ptrs = armci.malloc(8 if armci.my_id == 0 else 0)
        armci.barrier()
        done = 0
        for _ in range(ROUNDS):
            try:
                armci.rmw("fetch_and_add_long", ptrs[0], 1)
            except MutexHolderFailed:
                continue  # rmw released the repaired mutex before raising
            done += 1
        armci.barrier()
        total = None
        if armci.my_id == 0:
            view = armci.access_begin(ptrs[0], 8, np.int64)
            total = int(view[0])
            armci.access_end(ptrs[0])
        total = armci.world.bcast_obj(total, root=0)
        dones = armci.world.allgather(done)
        assert total == sum(dones), (total, dones)
        return total

    armci, recoveries, total = _attempt_with_recovery(comm, phase, datapath=datapath)
    return (armci.nproc, recoveries, total)


def recover_gmr(comm, datapath="mpi2"):
    """GMR reconstruction on the shrunken group (§V-B under failure).

    Rank 0 owns the only non-NULL slice.  If the victim held a NULL
    slice, the recovery protocol's per-GMR consensus votes *rebuild*
    and the data must read back intact through the reconstructed
    allocation; if rank 0 itself died, consensus votes *abort* and the
    survivors restart the allocation from scratch.  Both paths are
    value-verified.
    """
    from ..armci import Armci
    from ..recover import recover

    armci = Armci.init(comm, datapath=datapath)
    pattern = np.arange(8, dtype=np.int64)

    def seed_and_check(a):
        ptrs = a.malloc(64 if a.my_id == 0 else 0)
        if a.my_id == 0:
            a.put(pattern, ptrs[0], 64)
        a.barrier()
        buf = np.zeros(8, dtype=np.int64)
        a.get(ptrs[0], buf, 64)
        assert np.array_equal(buf, pattern), buf
        a.barrier()
        return ptrs

    try:
        seed_and_check(armci)
        flag = 1
    except RankKilledError:
        raise
    except _RECOVERABLE:
        armci.world.revoke()
        flag = 0
    if armci.world.agree(flag):
        return (armci.nproc, 0, "clean")

    armci, report = recover(armci)
    # the failure may predate the allocation (report.gmrs empty) — then
    # there is nothing to rebuild and the survivors simply start over
    outcome = report.gmrs[0] if report.gmrs else None
    if outcome is not None and outcome.action == "rebuilt":
        # the dead rank held a NULL slice: data survived the rebuild
        new_owner = dict(report.rank_map)[0]
        buf = np.zeros(8, dtype=np.int64)
        armci.get(outcome.new_ptrs[new_owner], buf, 64)
        assert np.array_equal(buf, pattern), buf
    else:
        # rank 0's data died with it (or never existed): restart fresh
        seed_and_check(armci)
    armci.barrier()
    return (armci.nproc, 1, outcome.action if outcome else "restarted")


def recover_ga(comm):
    """GA checkpoint / restore: lose a rank, shrink, redistribute, finish.

    The array is checkpointed (replicated snapshot) before the risky
    update phase.  A clean attempt verifies the update in place; after
    a failure the survivors restore the checkpoint onto the shrunken
    world — the block distribution is recomputed for the new process
    count — replay the update there, and verify the same values.
    """
    from ..armci import Armci
    from ..ga import GlobalArray
    from ..recover import recover

    armci = Armci.init(comm)
    shape = (8, 8)
    base = np.add.outer(
        np.arange(shape[0], dtype=np.float64) * 10,
        np.arange(shape[1], dtype=np.float64),
    )

    def update_and_check(a, ga, nproc):
        ga.acc([0, 0], list(shape), np.ones(shape))
        ga.sync()
        full = ga.get([0, 0], list(shape))
        assert np.array_equal(full, base + nproc), full
        ga.sync()

    ckpt = None
    try:
        ga = GlobalArray.create(armci, shape, "f8")
        blk = ga.distribution()
        if blk.size:
            view = ga.access()
            view[...] = base[tuple(slice(l, h) for l, h in zip(blk.lo, blk.hi))]
            ga.release()
        ga.sync()
        ckpt = ga.checkpoint()
        update_and_check(armci, ga, armci.nproc)
        flag = 1
    except RankKilledError:
        raise
    except _RECOVERABLE:
        armci.world.revoke()
        flag = 0
    if armci.world.agree(flag):
        return (armci.nproc, 0)

    armci, _report = recover(armci)
    # the checkpoint is per-rank local and the failure may have landed
    # mid-checkpoint, so agree on whether *every* survivor holds a good
    # snapshot — consensus keeps the restore/rebuild branch collective
    have_ckpt = ckpt is not None and np.array_equal(ckpt.data, base)
    if armci.world.agree(1 if have_ckpt else 0):
        ga = GlobalArray.restore(armci, ckpt)
    else:
        # died before a consistent checkpoint existed: rebuild from scratch
        ga = GlobalArray.create(armci, shape, "f8")
        blk = ga.distribution()
        if blk.size:
            view = ga.access()
            view[...] = base[tuple(slice(l, h) for l, h in zip(blk.lo, blk.hi))]
            ga.release()
        ga.sync()
    full = ga.get([0, 0], list(shape))
    assert np.array_equal(full, base), full
    # fence the verification read before the update phase mutates the
    # array, or a fast rank's acc lands inside a slow rank's get
    ga.sync()
    update_and_check(armci, ga, armci.nproc)
    return (armci.nproc, 1)


def recover_rmw_mpi3(comm):
    """The rmw scenario on the mpi3 datapath: single fetch_op RMW (no
    mutex to repair), standing lock_all epochs rebuilt after recovery."""
    return recover_rmw(comm, datapath="mpi3")


def recover_gmr_mpi3(comm):
    """GMR rebuild on the mpi3 datapath: the reconstructed windows must
    come back with their standing lock_all epoch (opened at malloc)."""
    return recover_gmr(comm, datapath="mpi3")


def recover_nbq(comm):
    """Queued nonblocking ops under a kill (mpi3 datapath).

    Each rank queues a ring of small nb_puts and completes them with
    ``wait_all``.  When a rank dies mid-attempt, recovery discards the
    survivors' queues — every handle the failed attempt left behind must
    then be *done* and ``wait`` must either return (it drained before
    the revoke) or raise the revoke error; never hang, never half-issue.
    The retried attempt completes value-verified on the shrunken world.
    """
    from ..armci import Armci
    from ..recover import recover

    armci = Armci.init(comm, datapath="mpi3")
    recoveries = 0
    pending: list = []

    def phase(a):
        me, n = a.my_id, a.nproc
        ptrs = a.malloc(64)
        a.barrier()
        pattern = np.full(8, me + 1, dtype=np.int64)
        dst = ptrs[(me + 1) % n]
        handles = [a.nb_put(pattern[i : i + 1], dst + 8 * i, 8) for i in range(8)]
        pending[:] = handles
        a.wait_all(handles)
        pending.clear()
        a.barrier()
        buf = np.zeros(8, dtype=np.int64)
        a.get(ptrs[me], buf, 64)
        want = ((me - 1) % n) + 1
        assert np.all(buf == want), buf
        a.barrier()
        return int(buf[0])

    while True:
        result = None
        try:
            result = phase(armci)
            flag = 1
        except RankKilledError:
            raise
        except _RECOVERABLE:
            armci.world.revoke()
            flag = 0
        if armci.world.agree(flag):
            return (armci.nproc, recoveries, result)
        if recoveries > comm.size:
            raise TargetFailedError(
                f"recovery did not converge after {recoveries} attempts"
            )
        armci, _report = recover(armci)
        recoveries += 1
        # the failed attempt's handles were discarded by recovery: each
        # is done, and wait() either returns (drained pre-revoke) or
        # re-raises the recovery's revoke error — consistently typed
        for h in pending:
            assert h.test(), "recovery left a nonblocking handle undone"
            try:
                h.wait()
            except _RECOVERABLE:
                pass
        pending.clear()


#: name -> recovery-capable SPMD body (kept OUT of ``SCENARIOS``: the
#: regression corpus and seed-sweep gate enumerate exactly that dict)
RECOVER_SCENARIOS = {
    "mutex": recover_mutex,
    "rmw": recover_rmw,
    "gmr": recover_gmr,
    "ga": recover_ga,
    "rmw_mpi3": recover_rmw_mpi3,
    "gmr_mpi3": recover_gmr_mpi3,
    "nbq_mpi3": recover_nbq,
}
