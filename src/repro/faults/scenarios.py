"""Canonical fault-injection scenarios: the §V protocols under fire.

These are the SPMD bodies the fault-matrix tests, the seed-sweep gate,
and ``python -m repro.faults`` exercise.  Each follows the examples'
``main(comm)`` convention and demonstrates *graceful degradation*: a
rank receiving :class:`~repro.armci.mutexes.MutexHolderFailed` owns the
repaired mutex, releases it, and skips the torn round instead of
crashing; survivors of an injected death either finish or raise a typed
:class:`~repro.mpi.errors.TargetFailedError` from the next collective —
never an untyped hang.
"""

from __future__ import annotations

import numpy as np

from ..armci.mutexes import MutexHolderFailed

__all__ = ["SCENARIOS", "mutex_counter", "rmw_counter", "gmr_free_null"]

#: per-rank rounds in the counter scenarios (small: fuzz points multiply)
ROUNDS = 4


def mutex_counter(comm):
    """§V-D queueing-mutex handoff protecting a non-atomic counter."""
    from ..armci import Armci

    armci = Armci.init(comm)
    ptrs = armci.malloc(8 if armci.my_id == 0 else 0)
    mutexes = armci.create_mutexes(1)
    armci.barrier()
    buf = np.zeros(1, dtype=np.int64)
    done = 0
    for _ in range(ROUNDS):
        try:
            mutexes.lock(0, 0)
        except MutexHolderFailed:
            # we own the repaired mutex; the previous holder died
            # mid-update, so skip the (possibly torn) round
            mutexes.unlock(0, 0)
            continue
        armci.get(ptrs[0], buf, 8)
        buf[0] += 1
        armci.put(buf, ptrs[0], 8)
        mutexes.unlock(0, 0)
        done += 1
    armci.barrier()
    total = None
    if armci.my_id == 0:
        view = armci.access_begin(ptrs[0], 8, np.int64)
        total = int(view[0])
        armci.access_end(ptrs[0])
    armci.barrier()
    mutexes.destroy()
    armci.finalize()
    return (done, total)


def rmw_counter(comm):
    """ARMCI_Rmw's two-epoch mutex-based fetch-and-add (§V-D)."""
    from ..armci import Armci

    armci = Armci.init(comm)
    ptrs = armci.malloc(8 if armci.my_id == 0 else 0)
    armci.barrier()
    done = 0
    for _ in range(ROUNDS):
        try:
            armci.rmw("fetch_and_add_long", ptrs[0], 1)
        except MutexHolderFailed:
            continue  # rmw released the repaired mutex before raising
        done += 1
    armci.barrier()
    total = None
    if armci.my_id == 0:
        view = armci.access_begin(ptrs[0], 8, np.int64)
        total = int(view[0])
        armci.access_end(ptrs[0])
    armci.barrier()
    armci.finalize()
    return (done, total)


def gmr_free_null(comm):
    """§V-B leader-election free with NULL (zero-size) slices.

    Each round allocates on one owner only — every other rank holds a
    NULL slice and must pass ``None`` to free — so the leader-election
    path runs every time.  The translation table is invariant-checked
    after each free (abort-consistency: a fault either leaves the GMR
    fully registered or fully gone).
    """
    from ..armci import Armci

    armci = Armci.init(comm)
    freed = 0
    for owner in range(comm.size):
        ptrs = armci.malloc(64 if armci.my_id == owner else 0)
        armci.barrier()
        if armci.my_id == (owner + 1) % comm.size:
            armci.put(np.arange(8, dtype=np.int64), ptrs[owner], 64)
        armci.barrier()
        mine = ptrs[armci.my_id]
        armci.free(None if mine.is_null else mine)
        armci.table.check_consistent()
        freed += 1
    remaining = len(armci.table)
    armci.finalize()
    return (freed, remaining)


#: name -> SPMD body, for the CLI and the fault-matrix tests
SCENARIOS = {
    "mutex": mutex_counter,
    "rmw": rmw_counter,
    "gmr_free": gmr_free_null,
}
