"""Global Arrays: the PGAS array model on top of ARMCI (§II-B).

Runs unchanged over ARMCI-MPI (:class:`repro.armci.Armci`) or the
simulated native ARMCI (:class:`repro.armci_native.NativeArmci`) —
mirroring Figure 1's two software stacks.
"""

from .array import GlobalArray
from .collectives import (
    add,
    copy,
    copy_patch,
    dgemm,
    dot,
    fill,
    fill_patch,
    norm2,
    scale,
    scale_patch,
    sum_all,
    transpose,
    zero,
)
from .elements import gather, read_inc, scatter, scatter_acc
from .elementwise import (
    abs_value,
    add_constant,
    elem_divide,
    elem_maximum,
    elem_minimum,
    elem_multiply,
    recip,
    select_elem,
)
from .ghosts import GhostArray, jacobi_sweep
from .periodic import periodic_acc, periodic_get, periodic_put
from .counters import SharedCounter, TaskPool
from .distribution import BlockDistribution, OwnedPiece, Patch, block_bounds, grid_dims
from .irregular import IrregularDistribution, create_irregular

__all__ = [
    "BlockDistribution",
    "GhostArray",
    "GlobalArray",
    "IrregularDistribution",
    "OwnedPiece",
    "Patch",
    "SharedCounter",
    "TaskPool",
    "abs_value",
    "add",
    "add_constant",
    "block_bounds",
    "copy",
    "copy_patch",
    "create_irregular",
    "dgemm",
    "dot",
    "elem_divide",
    "elem_maximum",
    "elem_minimum",
    "elem_multiply",
    "fill",
    "fill_patch",
    "gather",
    "grid_dims",
    "jacobi_sweep",
    "norm2",
    "periodic_acc",
    "periodic_get",
    "periodic_put",
    "read_inc",
    "recip",
    "scale",
    "scale_patch",
    "scatter",
    "scatter_acc",
    "select_elem",
    "sum_all",
    "transpose",
    "zero",
]
