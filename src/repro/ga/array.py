"""Global Arrays: distributed shared multidimensional arrays (§II-B).

A :class:`GlobalArray` aggregates the memory of all processes into one
n-D array accessed by *index ranges*:

* ``put(lo, hi, data)`` / ``get(lo, hi)`` / ``acc(lo, hi, data, alpha)``
  are one-sided and may touch several owners; each owner's share becomes
  one strided ARMCI operation (Fig. 2);
* ``access()`` / ``release()`` give direct load/store access to the
  local block through the ARMCI DLA extension (§V-E);
* locality introspection (``distribution``) lets owner-computes code
  avoid communication, GA's core performance idiom.

The class is generic over the runtime: anything exposing the ARMCI call
surface works — :class:`repro.armci.Armci` (the paper's ARMCI-MPI) or
:class:`repro.armci_native.NativeArmci` (the baseline), which is how
the NWChem proxy runs the same science on both stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..armci.gmr import GlobalPtr
from ..mpi.errors import ArgumentError
from .distribution import BlockDistribution, Patch


@dataclass(frozen=True)
class GaCheckpoint:
    """An in-memory GA snapshot, replicated on every rank.

    Produced by :meth:`GlobalArray.checkpoint`; consumed by
    :meth:`GlobalArray.restore` — possibly on a *different* (smaller)
    runtime after a rank failure and :meth:`~repro.mpi.comm.Comm.shrink`.
    Replication is the point: when the rank that owned a block dies, every
    survivor still holds the block's bytes.
    """

    name: str
    shape: tuple
    dtype: np.dtype
    data: np.ndarray
    #: per-dimension minimum block sizes the GA was created with, so a
    #: restore-with-redistribution honours the same chunking constraints
    chunk: "tuple | None" = None


class GlobalArray:
    """A distributed shared n-D array in the Global Arrays model."""

    def __init__(self, runtime, shape, dtype, ptrs, dist, name, chunk=None):
        self.runtime = runtime
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.ptrs: list[GlobalPtr] = ptrs
        self.dist: BlockDistribution = dist
        self.name = name
        self.chunk = None if chunk is None else tuple(int(c) for c in chunk)
        self._access_view: "np.ndarray | None" = None

    # -- creation ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        runtime,
        shape: Sequence[int],
        dtype: "np.dtype | str" = "f8",
        chunk: "Sequence[int] | None" = None,
        name: str = "ga",
    ) -> "GlobalArray":
        """Collective creation (GA_Create).

        ``chunk`` gives per-dimension minimum block sizes, as in GA.
        """
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        dist = BlockDistribution(shape, runtime.nproc, chunk)
        block = dist.block(runtime.my_id)
        nbytes = block.size * dtype.itemsize
        ptrs = runtime.malloc(nbytes)
        return cls(runtime, shape, dtype, ptrs, dist, name, chunk=chunk)

    def destroy(self) -> None:
        """Collective destruction (GA_Destroy)."""
        if self._access_view is not None:
            raise ArgumentError(f"{self.name}: destroy() during access()")
        me = self.runtime.my_id
        ptr = self.ptrs[me]
        self.runtime.barrier()
        self.runtime.free(None if ptr.is_null else ptr)

    def duplicate(self, name: "str | None" = None) -> "GlobalArray":
        """Collective: new GA with the same shape/distribution (GA_Duplicate)."""
        return GlobalArray.create(
            self.runtime, self.shape, self.dtype, chunk=self.chunk,
            name=name or f"{self.name}_copy",
        )

    # -- introspection -----------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    def distribution(self, rank: "int | None" = None) -> Patch:
        """The block ``[lo, hi)`` owned by ``rank`` (GA_Distribution)."""
        return self.dist.block(self.runtime.my_id if rank is None else rank)

    def owner(self, index: Sequence[int]) -> int:
        return self.dist.owner(index)

    # -- patch addressing --------------------------------------------------------------
    def _patch(self, lo, hi) -> Patch:
        patch = Patch(tuple(int(x) for x in lo), tuple(int(x) for x in hi))
        if len(patch.lo) != self.ndim:
            raise ArgumentError(
                f"{self.name}: patch rank {len(patch.lo)} != array rank {self.ndim}"
            )
        return patch

    def _owner_strided_args(self, piece) -> tuple[GlobalPtr, list[int]]:
        """Remote base pointer and stride vector for one owner's share."""
        block = self.dist.block(piece.rank)
        bshape = block.shape
        item = self.dtype.itemsize
        # C-order byte strides of the owner's local block
        strides = [item] * len(bshape)
        for d in range(len(bshape) - 2, -1, -1):
            strides[d] = strides[d + 1] * max(bshape[d + 1], 1)
        offset = sum(
            l * s for l, s in zip(piece.local_patch.lo, strides)
        )
        ptr = self.ptrs[piece.rank] + offset
        # ARMCI stride vector: [innermost..outermost][:-1] reversed, minus
        # the contiguous dimension
        armci_strides = list(reversed(strides[:-1])) if len(bshape) > 1 else []
        return ptr, armci_strides

    @staticmethod
    def _count_vector(shape: Sequence[int], item: int) -> list[int]:
        """ARMCI count vector for a patch shape (count[0] in bytes)."""
        return [shape[-1] * item] + list(reversed(shape[:-1]))

    def _local_strides(self, request_shape: Sequence[int], item: int) -> list[int]:
        strides = [item] * len(request_shape)
        for d in range(len(request_shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * max(request_shape[d + 1], 1)
        return list(reversed(strides[:-1])) if len(request_shape) > 1 else []

    # -- one-sided data access (GA_Put / GA_Get / GA_Acc) ------------------------------
    def put(self, lo: Sequence[int], hi: Sequence[int], data: np.ndarray) -> None:
        """One-sided put of ``data`` into the global patch ``[lo, hi)``."""
        patch = self._patch(lo, hi)
        data = self._check_data(patch, data)
        item = self.dtype.itemsize
        buf = np.ascontiguousarray(data)
        for piece in self.dist.locate(patch):
            sub = np.ascontiguousarray(_subpatch(buf, piece.request_patch))
            ptr, rem_strides = self._owner_strided_args(piece)
            pshape = piece.global_patch.shape
            self.runtime.put_s(
                sub,
                self._local_strides(pshape, item),
                ptr,
                rem_strides[: len(pshape) - 1],
                self._count_vector(pshape, item),
            )

    def get(
        self, lo: Sequence[int], hi: Sequence[int], out: "np.ndarray | None" = None
    ) -> np.ndarray:
        """One-sided get of the global patch ``[lo, hi)``."""
        patch = self._patch(lo, hi)
        if out is None:
            out = np.empty(patch.shape, dtype=self.dtype)
        else:
            out = self._check_data(patch, out, writable=True)
        item = self.dtype.itemsize
        for piece in self.dist.locate(patch):
            pshape = piece.global_patch.shape
            sub = np.empty(pshape, dtype=self.dtype)
            ptr, rem_strides = self._owner_strided_args(piece)
            self.runtime.get_s(
                ptr,
                rem_strides[: len(pshape) - 1],
                sub,
                self._local_strides(pshape, item),
                self._count_vector(pshape, item),
            )
            _subpatch_assign(out, piece.request_patch, sub)
        return out

    def acc(
        self,
        lo: Sequence[int],
        hi: Sequence[int],
        data: np.ndarray,
        alpha: float = 1.0,
    ) -> None:
        """One-sided accumulate: ``GA[lo:hi) += alpha * data`` (GA_Acc)."""
        patch = self._patch(lo, hi)
        data = self._check_data(patch, data)
        item = self.dtype.itemsize
        buf = np.ascontiguousarray(data)
        for piece in self.dist.locate(patch):
            sub = np.ascontiguousarray(_subpatch(buf, piece.request_patch))
            ptr, rem_strides = self._owner_strided_args(piece)
            pshape = piece.global_patch.shape
            self.runtime.acc_s(
                sub,
                self._local_strides(pshape, item),
                ptr,
                rem_strides[: len(pshape) - 1],
                self._count_vector(pshape, item),
                scale=alpha,
                dtype=self.dtype,
            )

    def _check_data(self, patch: Patch, data: np.ndarray, writable=False) -> np.ndarray:
        data = np.asarray(data)
        if data.dtype != self.dtype:
            raise ArgumentError(
                f"{self.name}: data dtype {data.dtype} != array dtype {self.dtype}"
            )
        if tuple(data.shape) != patch.shape:
            raise ArgumentError(
                f"{self.name}: data shape {data.shape} != patch shape {patch.shape}"
            )
        return data

    # -- direct local access (GA_Access / GA_Release, §V-E) ------------------------------
    def access(self) -> np.ndarray:
        """Exclusive direct access to the local block (GA_Access)."""
        if self._access_view is not None:
            raise ArgumentError(f"{self.name}: access() is already open")
        block = self.distribution()
        ptr = self.ptrs[self.runtime.my_id]
        nbytes = block.size * self.dtype.itemsize
        if hasattr(self.runtime, "access_begin"):
            flat = self.runtime.access_begin(ptr, nbytes, self.dtype)
        else:  # native runtime: coherent direct access
            slab, disp = self.runtime._locate(ptr)
            flat = slab[disp : disp + nbytes].view(self.dtype)
        view = flat.reshape(block.shape)
        self._access_view = view
        return view

    def release(self) -> None:
        """End direct access (GA_Release)."""
        if self._access_view is None:
            raise ArgumentError(f"{self.name}: release() without access()")
        self._access_view = None
        if hasattr(self.runtime, "access_end"):
            self.runtime.access_end(self.ptrs[self.runtime.my_id])

    # -- checkpoint / restore (survivor-restart support) --------------------------------
    def checkpoint(self) -> GaCheckpoint:
        """Collective in-memory checkpoint: a replicated full-array snapshot.

        Every rank reads the entire array one-sidedly (so only GA-surface
        operations are used — this works on both the ARMCI-MPI and native
        runtimes) and keeps a private copy.  Barriers on both sides make
        the snapshot a consistent cut: no in-flight update is half
        captured.  The returned :class:`GaCheckpoint` survives the death
        of any rank because every rank holds all of it.
        """
        self.sync()
        full = self.get([0] * self.ndim, list(self.shape))
        self.sync()
        return GaCheckpoint(self.name, self.shape, self.dtype, full, self.chunk)

    @classmethod
    def restore(cls, runtime, ckpt: GaCheckpoint, name: "str | None" = None) -> "GlobalArray":
        """Collective: recreate a checkpointed GA on ``runtime``.

        ``runtime`` may be a *different* ARMCI runtime than the one the
        checkpoint was taken on — in the survivor-restart protocol it is
        the rebuilt :class:`~repro.armci.Armci` on the shrunken world, so
        the block distribution is recomputed for the new process count
        (redistribute-on-shrink).  Each rank writes only its own block
        from the replicated snapshot (owner-computes), so restore issues
        no communication beyond the closing sync.
        """
        ga = cls.create(
            runtime, ckpt.shape, ckpt.dtype, chunk=ckpt.chunk,
            name=name or ckpt.name,
        )
        block = ga.distribution()
        if block.size:
            view = ga.access()
            view[...] = _subpatch(np.asarray(ckpt.data), block)
            ga.release()
        ga.sync()
        return ga

    # -- convenience --------------------------------------------------------------------
    def sync(self) -> None:
        """GA_Sync: fence + barrier."""
        self.runtime.barrier()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GlobalArray {self.name!r} shape={self.shape} dtype={self.dtype} "
            f"grid={self.dist.dims}>"
        )


def _subpatch(arr: np.ndarray, patch: Patch) -> np.ndarray:
    return arr[tuple(slice(l, h) for l, h in zip(patch.lo, patch.hi))]


def _subpatch_assign(arr: np.ndarray, patch: Patch, value: np.ndarray) -> None:
    arr[tuple(slice(l, h) for l, h in zip(patch.lo, patch.hi))] = value
