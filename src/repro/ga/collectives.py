"""Collective whole-array operations (GA's parallel math layer, §II-B).

Owner-computes implementations of the GA routines the NWChem proxy and
examples need: fill/scale/copy/add (element-wise), dot products, norms,
and a distributed matrix multiply.  Each routine is collective over the
array's group and ends with a sync, matching GA semantics (the caller
may observe the full result afterwards from any process).

``dgemm`` uses the owner-computes panel algorithm (each process builds
its own block of C by fetching A row-panels and B column-panels) — not
the fastest possible SUMMA, but it generates exactly the get/compute/
accumulate traffic pattern GA applications exhibit, which is what the
performance model consumes.
"""

from __future__ import annotations

import numpy as np

from ..mpi.errors import ArgumentError
from .array import GlobalArray


def _check_same(a: GlobalArray, b: GlobalArray) -> None:
    if a.shape != b.shape or a.dtype != b.dtype:
        raise ArgumentError(
            f"arrays are not conformant: {a.shape}/{a.dtype} vs {b.shape}/{b.dtype}"
        )


def fill(ga: GlobalArray, value) -> None:
    """GA_Fill: set every element to ``value``."""
    block = ga.distribution()
    if not block.empty:
        view = ga.access()
        view[...] = value
        ga.release()
    ga.sync()


def zero(ga: GlobalArray) -> None:
    """GA_Zero."""
    fill(ga, 0)


def scale(ga: GlobalArray, alpha) -> None:
    """GA_Scale: ``ga *= alpha``."""
    block = ga.distribution()
    if not block.empty:
        view = ga.access()
        view *= alpha
        ga.release()
    ga.sync()


def copy(src: GlobalArray, dst: GlobalArray) -> None:
    """GA_Copy (same shape; distributions may differ)."""
    _check_same(src, dst)
    dst.sync()
    block = dst.distribution()
    if not block.empty:
        data = src.get(block.lo, block.hi)
        view = dst.access()
        view[...] = data
        dst.release()
    dst.sync()


def add(
    alpha, a: GlobalArray, beta, b: GlobalArray, c: GlobalArray
) -> None:
    """GA_Add: ``c = alpha*a + beta*b`` element-wise."""
    _check_same(a, c)
    _check_same(b, c)
    c.sync()
    block = c.distribution()
    if not block.empty:
        da = a.get(block.lo, block.hi)
        db = b.get(block.lo, block.hi)
        view = c.access()
        view[...] = alpha * da + beta * db
        c.release()
    c.sync()


def dot(a: GlobalArray, b: GlobalArray) -> float:
    """GA_Dot: global inner product (all ranks receive the result)."""
    _check_same(a, b)
    a.sync()
    block = a.distribution()
    local = 0.0
    if not block.empty:
        va = a.access()
        partial_a = va.copy()
        a.release()
        db = b.get(block.lo, block.hi)
        local = float(np.vdot(partial_a, db).real)
    total = a.runtime.world.allreduce(np.array([local]))
    return float(total[0])


def norm2(ga: GlobalArray) -> float:
    """Frobenius norm."""
    return float(np.sqrt(max(dot(ga, ga), 0.0)))


def sum_all(ga: GlobalArray) -> float:
    """Global element sum."""
    ga.sync()
    block = ga.distribution()
    local = 0.0
    if not block.empty:
        view = ga.access()
        local = float(view.sum())
        ga.release()
    total = ga.runtime.world.allreduce(np.array([local]))
    return float(total[0])


def dgemm(
    alpha: float,
    a: GlobalArray,
    b: GlobalArray,
    beta: float,
    c: GlobalArray,
    k_tile: int = 0,
) -> None:
    """GA_Dgemm: ``C = alpha * A @ B + beta * C`` (2-D, owner-computes).

    Every process fetches the A row-panel and B column-panel matching
    its C block in ``k_tile``-wide chunks, multiplies locally, and
    stores through direct access — the canonical GA compute pattern.
    """
    if a.ndim != 2 or b.ndim != 2 or c.ndim != 2:
        raise ArgumentError("dgemm requires 2-D arrays")
    m, k = a.shape
    k2, n = b.shape
    if k2 != k or c.shape != (m, n):
        raise ArgumentError(
            f"dgemm shape mismatch: A{a.shape} B{b.shape} C{c.shape}"
        )
    c.sync()
    block = c.distribution()
    if not block.empty:
        (ilo, jlo), (ihi, jhi) = block.lo, block.hi
        tile = k_tile if k_tile > 0 else k
        acc = np.zeros(block.shape, dtype=c.dtype)
        for k0 in range(0, k, tile):
            k1 = min(k0 + tile, k)
            pa = a.get((ilo, k0), (ihi, k1))
            pb = b.get((k0, jlo), (k1, jhi))
            acc += pa @ pb
        view = c.access()
        view[...] = alpha * acc + beta * view
        c.release()
    c.sync()


def fill_patch(ga: GlobalArray, lo, hi, value) -> None:
    """GA_Fill_patch: set ``ga[lo:hi) = value`` (collective, owner-computes)."""
    from .distribution import Patch

    patch = Patch(tuple(lo), tuple(hi))
    ga.sync()
    block = ga.distribution()
    piece = patch.intersect(block)
    if not piece.empty:
        view = ga.access()
        local = piece.shifted_into(block.lo)
        view[tuple(slice(l, h) for l, h in zip(local.lo, local.hi))] = value
        ga.release()
    ga.sync()


def scale_patch(ga: GlobalArray, lo, hi, alpha) -> None:
    """GA_Scale_patch: ``ga[lo:hi) *= alpha`` (collective, owner-computes)."""
    from .distribution import Patch

    patch = Patch(tuple(lo), tuple(hi))
    ga.sync()
    block = ga.distribution()
    piece = patch.intersect(block)
    if not piece.empty:
        view = ga.access()
        local = piece.shifted_into(block.lo)
        view[tuple(slice(l, h) for l, h in zip(local.lo, local.hi))] *= alpha
        ga.release()
    ga.sync()


def copy_patch(
    src: GlobalArray, src_lo, src_hi, dst: GlobalArray, dst_lo, dst_hi
) -> None:
    """GA_Copy_patch: copy one index-range patch into another (same shape,
    arrays/patches may be distributed differently)."""
    from .distribution import Patch

    sp = Patch(tuple(src_lo), tuple(src_hi))
    dp = Patch(tuple(dst_lo), tuple(dst_hi))
    if sp.shape != dp.shape:
        raise ArgumentError(
            f"copy_patch: source {sp.shape} != destination {dp.shape}"
        )
    dst.sync()
    # owner-computes on the destination: each rank fetches the matching
    # source region for the part of the patch it owns
    block = dst.distribution()
    piece = dp.intersect(block)
    if not piece.empty:
        rel = piece.shifted_into(dp.lo)
        src_sub_lo = tuple(a + b for a, b in zip(sp.lo, rel.lo))
        src_sub_hi = tuple(a + b for a, b in zip(sp.lo, rel.hi))
        data = src.get(src_sub_lo, src_sub_hi)
        view = dst.access()
        local = piece.shifted_into(block.lo)
        view[tuple(slice(l, h) for l, h in zip(local.lo, local.hi))] = data
        dst.release()
    dst.sync()


def transpose(a: GlobalArray, b: GlobalArray) -> None:
    """GA_Transpose: ``b = a.T`` (2-D)."""
    if a.ndim != 2 or b.ndim != 2:
        raise ArgumentError("transpose requires 2-D arrays")
    if (a.shape[1], a.shape[0]) != b.shape:
        raise ArgumentError(f"transpose shapes: A{a.shape} -> B{b.shape}")
    b.sync()
    block = b.distribution()
    if not block.empty:
        (ilo, jlo), (ihi, jhi) = block.lo, block.hi
        patch = a.get((jlo, ilo), (jhi, ihi))
        view = b.access()
        view[...] = patch.T
        b.release()
    b.sync()
