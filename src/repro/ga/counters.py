"""Shared counters: GA's NXTVAL dynamic load balancing primitive.

NWChem's task pools are driven by a shared counter: every process draws
the next task index with an atomic fetch-and-add on a globally
accessible integer (historically ``NXTVAL``, served by ARMCI's RMW or a
helper process).  Under ARMCI-MPI the fetch-and-add is the §V-D
mutex-based RMW (two epochs + mutex messages) — the paper names the
resulting latency as one of MPI-2's costs, and MPI-3's ``fetch_and_op``
as the remedy.
"""

from __future__ import annotations

import numpy as np

from ..armci.rmw import FETCH_AND_ADD_LONG
from ..mpi.errors import ArgumentError


class SharedCounter:
    """A distributed atomic counter (NXTVAL).

    Hosted on ``host``'s slice of a dedicated ARMCI allocation.
    ``next()`` atomically returns-and-increments; ``reset()`` is
    collective.
    """

    def __init__(self, runtime, host: int = 0):
        if not 0 <= host < runtime.nproc:
            raise ArgumentError(f"counter host {host} out of range")
        self.runtime = runtime
        self.host = host
        # every process allocates 8 bytes; only the host's slice is used,
        # mirroring how GA lays out its NXTVAL counter
        self.ptrs = runtime.malloc(8)
        self._destroyed = False

    def next(self, stride: int = 1) -> int:
        """Atomically fetch the counter and add ``stride``."""
        if self._destroyed:
            raise ArgumentError("counter already destroyed")
        return self.runtime.rmw(FETCH_AND_ADD_LONG, self.ptrs[self.host], stride)

    def read(self) -> int:
        """Non-atomic read (diagnostics only)."""
        out = np.zeros(1, dtype="i8")
        self.runtime.get(self.ptrs[self.host], out, nbytes=8)
        return int(out[0])

    def reset(self, value: int = 0) -> None:
        """Collective reset; includes barriers on both sides."""
        self.runtime.barrier()
        if self.runtime.my_id == self.host:
            self.runtime.put(np.array([value], dtype="i8"), self.ptrs[self.host])
        self.runtime.barrier()

    def destroy(self) -> None:
        """Collective destruction."""
        self.runtime.barrier()
        me = self.runtime.my_id
        self.runtime.free(self.ptrs[me])
        self._destroyed = True


class TaskPool:
    """NXTVAL-driven dynamic task distribution (the NWChem TCE pattern).

    ``tasks()`` yields a disjoint, exhaustive subset of ``range(ntasks)``
    to each calling process, assigned greedily by counter draws —
    processes that finish fast draw more tasks, which is GA
    applications' load-balancing story.
    """

    def __init__(self, runtime, ntasks: int, counter: "SharedCounter | None" = None):
        if ntasks < 0:
            raise ArgumentError(f"negative task count {ntasks}")
        self.ntasks = ntasks
        self.counter = counter or SharedCounter(runtime)
        self._owns_counter = counter is None

    def tasks(self):
        while True:
            t = self.counter.next()
            if t >= self.ntasks:
                return
            yield t

    def reset(self) -> None:
        self.counter.reset()

    def destroy(self) -> None:
        if self._owns_counter:
            self.counter.destroy()
