"""Block data distribution for Global Arrays (Fig. 2's decomposition).

GA distributes an n-D array over a process grid in contiguous blocks.
A ``GA_Put``/``GA_Get`` on an index-range patch is decomposed into one
access per owning process — each generally a *noncontiguous* (strided)
ARMCI operation, which is exactly the translation Figure 2 of the paper
illustrates (one GA_Put on a 2-D array distributed over 4 processes →
four ``ARMCI_PutS`` calls).

The process-grid factorisation mirrors GA's heuristic: factor P into
grid dimensions so blocks stay as square as possible, respecting
minimum-chunk hints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..mpi.errors import ArgumentError


def _prime_factors(n: int) -> list[int]:
    out, d = [], 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return sorted(out, reverse=True)


def grid_dims(nproc: int, shape: Sequence[int], chunk: "Sequence[int] | None" = None) -> list[int]:
    """Factor ``nproc`` into a process grid matched to ``shape``.

    Greedy assignment of prime factors (largest first) to the dimension
    whose per-process extent is currently largest — GA's "keep blocks
    square" heuristic.  A ``chunk`` hint gives per-dimension minimum
    block sizes; dimensions whose blocks would drop below the minimum
    stop receiving factors.
    """
    if nproc < 1:
        raise ArgumentError(f"nproc must be positive, got {nproc}")
    ndim = len(shape)
    if ndim == 0:
        raise ArgumentError("zero-dimensional arrays are not distributable")
    if any(s < 1 for s in shape):
        raise ArgumentError(f"bad shape {shape}")
    chunk = list(chunk) if chunk is not None else [1] * ndim
    dims = [1] * ndim
    for f in _prime_factors(nproc):
        # current block extent per dimension
        best, best_extent = None, -1.0
        for d in range(ndim):
            extent = shape[d] / dims[d]
            if extent / f >= max(chunk[d], 1) and extent > best_extent:
                best, best_extent = d, extent
        if best is None:
            break  # no dimension can be split further; leave procs idle
    # (idle processes own empty blocks)
        else:
            dims[best] *= f
    return dims


def block_bounds(extent: int, nblocks: int, b: int) -> tuple[int, int]:
    """[lo, hi) of block ``b`` when ``extent`` is split into ``nblocks``."""
    base, rem = divmod(extent, nblocks)
    lo = b * base + min(b, rem)
    hi = lo + base + (1 if b < rem else 0)
    return lo, hi


@dataclass(frozen=True)
class Patch:
    """An n-D index patch ``[lo, hi)`` (half-open on every dimension)."""

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ArgumentError(f"patch rank mismatch: {self.lo} vs {self.hi}")
        for l, h in zip(self.lo, self.hi):
            if l > h:
                raise ArgumentError(f"inverted patch {self.lo}..{self.hi}")

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def empty(self) -> bool:
        return any(h <= l for l, h in zip(self.lo, self.hi))

    def intersect(self, other: "Patch") -> "Patch":
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        hi = tuple(max(l, h) for l, h in zip(lo, hi))
        return Patch(lo, hi)

    def shifted_into(self, origin: Sequence[int]) -> "Patch":
        """This patch re-expressed relative to ``origin``."""
        return Patch(
            tuple(l - o for l, o in zip(self.lo, origin)),
            tuple(h - o for h, o in zip(self.hi, origin)),
        )


@dataclass(frozen=True)
class OwnedPiece:
    """One owner's share of a requested patch (the Fig. 2 decomposition)."""

    rank: int  # owning process (group rank)
    global_patch: Patch  # piece in global coordinates
    local_patch: Patch  # same piece in the owner's block coordinates
    request_patch: Patch  # same piece relative to the requested patch


class BlockDistribution:
    """Blocked distribution of ``shape`` over ``nproc`` processes."""

    def __init__(
        self,
        shape: Sequence[int],
        nproc: int,
        chunk: "Sequence[int] | None" = None,
    ):
        self.shape = tuple(int(s) for s in shape)
        self.nproc = nproc
        self.dims = grid_dims(nproc, self.shape, chunk)
        self.grid_size = 1
        for d in self.dims:
            self.grid_size *= d

    # -- rank <-> grid coordinates -------------------------------------------------
    def grid_coords(self, rank: int) -> "tuple[int, ...] | None":
        """Grid coordinate of ``rank``; None for idle (surplus) processes."""
        if rank >= self.grid_size:
            return None
        coords = []
        for d in reversed(self.dims):
            coords.append(rank % d)
            rank //= d
        return tuple(reversed(coords))

    def rank_of_coords(self, coords: Sequence[int]) -> int:
        rank = 0
        for c, d in zip(coords, self.dims):
            if not 0 <= c < d:
                raise ArgumentError(f"grid coordinate {coords} outside {self.dims}")
            rank = rank * d + c
        return rank

    # -- ownership ---------------------------------------------------------------------
    def block(self, rank: int) -> Patch:
        """The block ``[lo, hi)`` owned by ``rank`` (empty for idle ranks)."""
        coords = self.grid_coords(rank)
        if coords is None:
            zeros = tuple(0 for _ in self.shape)
            return Patch(zeros, zeros)
        lo, hi = [], []
        for extent, nb, c in zip(self.shape, self.dims, coords):
            l, h = block_bounds(extent, nb, c)
            lo.append(l)
            hi.append(h)
        return Patch(tuple(lo), tuple(hi))

    def owner(self, index: Sequence[int]) -> int:
        """The rank owning element ``index``."""
        coords = []
        for x, extent, nb in zip(index, self.shape, self.dims):
            if not 0 <= x < extent:
                raise ArgumentError(f"index {tuple(index)} outside shape {self.shape}")
            base, rem = divmod(extent, nb)
            # first `rem` blocks have size base+1
            boundary = rem * (base + 1)
            if x < boundary:
                coords.append(x // (base + 1))
            else:
                coords.append(rem + (x - boundary) // base if base else nb - 1)
        return self.rank_of_coords(coords)

    def locate(self, patch: Patch) -> Iterator[OwnedPiece]:
        """All owners intersecting ``patch`` — NGA_Locate_region.

        Yields one :class:`OwnedPiece` per owning process, the unit that
        becomes one ARMCI strided operation (Fig. 2).
        """
        if len(patch.lo) != len(self.shape):
            raise ArgumentError(
                f"patch rank {len(patch.lo)} != array rank {len(self.shape)}"
            )
        for l, h, extent in zip(patch.lo, patch.hi, self.shape):
            if l < 0 or h > extent:
                raise ArgumentError(f"patch {patch} outside array shape {self.shape}")
        if patch.empty:
            return
        # grid-coordinate range intersecting the patch per dimension
        coord_ranges = []
        for d, (extent, nb) in enumerate(zip(self.shape, self.dims)):
            c_lo = self._coord_of(d, patch.lo[d])
            c_hi = self._coord_of(d, patch.hi[d] - 1)
            coord_ranges.append(range(c_lo, c_hi + 1))
        # iterate the (small) sub-grid
        def rec(d: int, coords: list[int]):
            if d == len(coord_ranges):
                rank = self.rank_of_coords(coords)
                block = self.block(rank)
                piece = patch.intersect(block)
                if not piece.empty:
                    yield OwnedPiece(
                        rank=rank,
                        global_patch=piece,
                        local_patch=piece.shifted_into(block.lo),
                        request_patch=piece.shifted_into(patch.lo),
                    )
                return
            for c in coord_ranges[d]:
                coords.append(c)
                yield from rec(d + 1, coords)
                coords.pop()

        yield from rec(0, [])

    def _coord_of(self, dim: int, x: int) -> int:
        extent, nb = self.shape[dim], self.dims[dim]
        base, rem = divmod(extent, nb)
        boundary = rem * (base + 1)
        if x < boundary:
            return x // (base + 1)
        return rem + ((x - boundary) // base if base else 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockDistribution(shape={self.shape}, grid={self.dims})"
