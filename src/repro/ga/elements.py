"""Element-list access: GA_Gather / GA_Scatter / GA_Scatter_acc / GA_Read_inc.

These GA calls access *lists of individual elements* rather than
rectangular patches.  Under ARMCI they map onto the generalized I/O
vector operations (§VI-A): elements are grouped by owner and each
owner's group becomes one ``ARMCI_GetV``/``PutV``/``AccV`` whose
segments are single elements — the many-tiny-segments regime where the
method choice (conservative / batched / direct / auto) matters most.

``read_inc`` is GA's element-granularity atomic counter
(``GA_Read_inc``), implemented with ``ARMCI_Rmw`` on the owner.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..mpi.errors import ArgumentError
from .array import GlobalArray


def _element_addr(ga: GlobalArray, index: Sequence[int]) -> tuple[int, int]:
    """(owner rank, byte offset within the owner's block) of one element."""
    owner = ga.dist.owner(index)
    block = ga.dist.block(owner)
    bshape = block.shape
    item = ga.dtype.itemsize
    strides = [item] * len(bshape)
    for d in range(len(bshape) - 2, -1, -1):
        strides[d] = strides[d + 1] * max(bshape[d + 1], 1)
    local = [x - lo for x, lo in zip(index, block.lo)]
    return owner, sum(l * s for l, s in zip(local, strides))


def _group_by_owner(ga: GlobalArray, subs: np.ndarray):
    """Group element indices by owner: {owner: (positions, byte offsets)}."""
    if subs.ndim != 2 or subs.shape[1] != ga.ndim:
        raise ArgumentError(
            f"{ga.name}: subscript array must be (n, {ga.ndim}), got {subs.shape}"
        )
    groups: dict[int, tuple[list[int], list[int]]] = {}
    for pos in range(len(subs)):
        owner, off = _element_addr(ga, subs[pos])
        positions, offsets = groups.setdefault(owner, ([], []))
        positions.append(pos)
        offsets.append(off)
    return groups


def gather(ga: GlobalArray, subscripts) -> np.ndarray:
    """GA_Gather: fetch the elements at ``subscripts`` (one-sided).

    ``subscripts`` is an (n, ndim) integer array; returns the n values.
    """
    subs = np.asarray(subscripts, dtype=np.int64)
    out = np.empty(len(subs), dtype=ga.dtype)
    if len(subs) == 0:
        return out
    item = ga.dtype.itemsize
    for owner, (positions, offsets) in _group_by_owner(ga, subs).items():
        base = ga.ptrs[owner]
        buf = np.empty(len(positions), dtype=ga.dtype)
        ga.runtime.getv(
            [base + off for off in offsets],
            buf,
            [i * item for i in range(len(positions))],
            item,
        )
        out[positions] = buf
    return out


def scatter(ga: GlobalArray, subscripts, values) -> None:
    """GA_Scatter: store ``values[i]`` at ``subscripts[i]`` (one-sided).

    Duplicate subscripts are erroneous in GA (last-writer would be
    nondeterministic); the IOV auto method's conflict scan enforces the
    same rule here by degrading to conservative, so we check eagerly.
    """
    subs = np.asarray(subscripts, dtype=np.int64)
    vals = np.ascontiguousarray(values, dtype=ga.dtype)
    if len(vals) != len(subs):
        raise ArgumentError(
            f"{ga.name}: {len(subs)} subscripts vs {len(vals)} values"
        )
    item = ga.dtype.itemsize
    for owner, (positions, offsets) in _group_by_owner(ga, subs).items():
        if len(set(offsets)) != len(offsets):
            raise ArgumentError(
                f"{ga.name}: duplicate subscripts in scatter target rank {owner}"
            )
        local = np.ascontiguousarray(vals[positions])
        base = ga.ptrs[owner]
        ga.runtime.putv(
            local,
            [i * item for i in range(len(positions))],
            [base + off for off in offsets],
            item,
        )


def scatter_acc(ga: GlobalArray, subscripts, values, alpha: float = 1.0) -> None:
    """GA_Scatter_acc: atomic ``ga[subscripts[i]] += alpha * values[i]``."""
    subs = np.asarray(subscripts, dtype=np.int64)
    vals = np.ascontiguousarray(values, dtype=ga.dtype)
    if len(vals) != len(subs):
        raise ArgumentError(
            f"{ga.name}: {len(subs)} subscripts vs {len(vals)} values"
        )
    item = ga.dtype.itemsize
    for owner, (positions, offsets) in _group_by_owner(ga, subs).items():
        local = np.ascontiguousarray(vals[positions])
        base = ga.ptrs[owner]
        ga.runtime.accv(
            local,
            [i * item for i in range(len(positions))],
            [base + off for off in offsets],
            item,
            scale=alpha,
            dtype=ga.dtype,
        )


def read_inc(ga: GlobalArray, index: Sequence[int], inc: int = 1) -> int:
    """GA_Read_inc: atomically read-and-increment one integer element.

    The array must have an 8-byte integer dtype; returns the old value.
    """
    if ga.dtype != np.dtype("i8"):
        raise ArgumentError(
            f"{ga.name}: read_inc requires an i8 array, got {ga.dtype}"
        )
    owner, off = _element_addr(ga, index)
    from ..armci.rmw import FETCH_AND_ADD_LONG

    return ga.runtime.rmw(FETCH_AND_ADD_LONG, ga.ptrs[owner] + off, inc)
