"""Element-wise whole-array operations (GA_Elem_* / GA_Abs_value family).

Owner-computes one-liners over direct local access, collective over the
array's group: each process transforms its own block under the DLA
exclusive epoch, then syncs.  No communication beyond the sync — the GA
idiom for embarrassingly parallel element math.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..mpi.errors import ArgumentError
from .array import GlobalArray
from .collectives import _check_same


def _unary(ga: GlobalArray, fn: Callable[[np.ndarray], np.ndarray]) -> None:
    ga.sync()
    if not ga.distribution().empty:
        view = ga.access()
        view[...] = fn(view)
        ga.release()
    ga.sync()


def _binary(
    a: GlobalArray, b: GlobalArray, c: GlobalArray,
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> None:
    _check_same(a, c)
    _check_same(b, c)
    c.sync()
    block = c.distribution()
    if not block.empty:
        da = a.get(block.lo, block.hi)
        db = b.get(block.lo, block.hi)
        view = c.access()
        view[...] = fn(da, db)
        c.release()
    c.sync()


def abs_value(ga: GlobalArray) -> None:
    """GA_Abs_value: ``ga = |ga|`` element-wise."""
    _unary(ga, np.abs)


def add_constant(ga: GlobalArray, alpha) -> None:
    """GA_Add_constant: ``ga += alpha``."""
    _unary(ga, lambda v: v + alpha)


def recip(ga: GlobalArray) -> None:
    """GA_Recip: element-wise reciprocal (zero elements are erroneous)."""

    def fn(v: np.ndarray) -> np.ndarray:
        if np.any(v == 0):
            raise ArgumentError(f"{ga.name}: reciprocal of a zero element")
        return 1.0 / v

    _unary(ga, fn)


def elem_multiply(a: GlobalArray, b: GlobalArray, c: GlobalArray) -> None:
    """GA_Elem_multiply: ``c = a * b`` element-wise (Hadamard)."""
    _binary(a, b, c, np.multiply)


def elem_divide(a: GlobalArray, b: GlobalArray, c: GlobalArray) -> None:
    """GA_Elem_divide: ``c = a / b`` element-wise (zero divisors erroneous)."""

    def fn(da: np.ndarray, db: np.ndarray) -> np.ndarray:
        if np.any(db == 0):
            raise ArgumentError(f"{c.name}: division by a zero element")
        return da / db

    _binary(a, b, c, fn)


def elem_maximum(a: GlobalArray, b: GlobalArray, c: GlobalArray) -> None:
    """GA_Elem_maximum: ``c = max(a, b)`` element-wise."""
    _binary(a, b, c, np.maximum)


def elem_minimum(a: GlobalArray, b: GlobalArray, c: GlobalArray) -> None:
    """GA_Elem_minimum: ``c = min(a, b)`` element-wise."""
    _binary(a, b, c, np.minimum)


def select_elem(ga: GlobalArray, kind: str = "max") -> tuple[float, tuple[int, ...]]:
    """GA_Select_elem: global (value, index) of the max or min element.

    Every rank receives the same result; ties resolve to the lowest
    global index (deterministic across decompositions).
    """
    if kind not in ("max", "min"):
        raise ArgumentError(f"select_elem kind must be 'max' or 'min', got {kind!r}")
    ga.sync()
    block = ga.distribution()
    if not block.empty:
        view = ga.access()
        flat = np.argmax(view) if kind == "max" else np.argmin(view)
        local_idx = np.unravel_index(int(flat), view.shape)
        value = float(view[local_idx])
        gidx = tuple(l + o for l, o in zip(block.lo, local_idx))
        ga.release()
    else:
        value = -np.inf if kind == "max" else np.inf
        gidx = tuple(-1 for _ in ga.shape)
    # reduce (value, flattened index) pairs; prefer extremal value, then
    # the smallest flat index for determinism
    flatten = 0
    for g, e in zip(gidx, ga.shape):
        flatten = flatten * e + max(g, 0)
    candidates = ga.runtime.world.allgather((value, flatten, gidx))
    if kind == "max":
        best = max(candidates, key=lambda t: (t[0], -t[1]))
    else:
        best = min(candidates, key=lambda t: (t[0], t[1]))
    return best[0], tuple(best[2])
