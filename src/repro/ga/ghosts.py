"""Ghost (halo) cells: GA_Create_ghosts / GA_Update_ghosts.

Stencil codes on Global Arrays allocate each block with a halo of ghost
cells mirroring the neighbouring blocks' edges; ``update_ghosts`` is the
collective that refreshes every halo with one-sided strided gets — a
communication pattern (2·ndim noncontiguous transfers per process per
update) that leans directly on the ARMCI strided machinery of §VI.

:class:`GhostArray` wraps a :class:`~repro.ga.array.GlobalArray` and
keeps the halo in a separate local NumPy buffer (the simulated analogue
of GA's in-place ghost regions):

* ``local_with_ghosts()`` — the owner's block plus halo, ready for a
  stencil sweep;
* ``update_ghosts()`` — refresh all halos (collective);
* ``store_local(interior)`` — write the swept interior back.

Boundary handling is periodic (wrap-around) or clamped-to-zero,
matching GA's ``GA_Set_ghost_corner_flag``-era options closely enough
for stencil workloads.
"""

from __future__ import annotations

import numpy as np

from ..mpi.errors import ArgumentError
from .array import GlobalArray


class GhostArray:
    """A GlobalArray plus per-process halo of ``width`` ghost cells."""

    def __init__(self, ga: GlobalArray, width: int, periodic: bool = True):
        if width < 0:
            raise ArgumentError(f"ghost width must be >= 0, got {width}")
        for extent in ga.shape:
            if width > extent:
                raise ArgumentError(
                    f"ghost width {width} exceeds array extent {extent}"
                )
        self.ga = ga
        self.width = width
        self.periodic = periodic
        block = ga.distribution()
        self._halo_shape = tuple(s + 2 * width for s in block.shape)
        self._halo = np.zeros(self._halo_shape, dtype=ga.dtype)

    # -- creation ------------------------------------------------------------
    @classmethod
    def create(
        cls,
        runtime,
        shape,
        width: int,
        dtype="f8",
        periodic: bool = True,
        name: str = "ga_ghost",
    ) -> "GhostArray":
        """GA_Create_ghosts: distributed array with halo support."""
        ga = GlobalArray.create(runtime, shape, dtype, name=name)
        return cls(ga, width, periodic)

    # -- views ------------------------------------------------------------------
    def local_with_ghosts(self) -> np.ndarray:
        """The halo buffer: interior = owner's block, rim = ghosts.

        Call :meth:`update_ghosts` first to make the rim current.
        """
        return self._halo

    def interior(self) -> np.ndarray:
        """Writable view of the interior of the halo buffer."""
        w = self.width
        if w == 0:
            return self._halo
        return self._halo[tuple(slice(w, -w) for _ in self.ga.shape)]

    # -- data movement -------------------------------------------------------------
    def update_ghosts(self) -> None:
        """Refresh interior + halo from the global array (collective).

        Every process issues one one-sided get per halo-buffer row
        region (wrapping regions split into at most 3 pieces per
        dimension), then a sync — GA_Update_ghosts' semantics: after
        return, every halo reflects a consistent global state.
        """
        self.ga.sync()
        block = self.ga.distribution()
        w = self.width
        ndim = self.ga.ndim
        # global index range the halo buffer covers (may run off the edges)
        lo = [l - w for l in block.lo]
        hi = [h + w for h in block.hi]
        # split each dimension into in-range pieces (with wrap if periodic)
        pieces_per_dim: list[list[tuple[int, int, int]]] = []
        for d in range(ndim):
            extent = self.ga.shape[d]
            pieces = []  # (halo offset, global lo, length)
            cursor = lo[d]
            while cursor < hi[d]:
                if cursor < 0:
                    glob = cursor % extent if self.periodic else None
                    length = min(-cursor, hi[d] - cursor)
                elif cursor >= extent:
                    glob = cursor % extent if self.periodic else None
                    length = hi[d] - cursor
                else:
                    glob = cursor
                    length = min(extent, hi[d]) - cursor
                if glob is not None:
                    # clip wrap pieces so they stay inside the array
                    length = min(length, extent - glob)
                pieces.append((cursor - lo[d], glob, length))
                cursor += length
            pieces_per_dim.append(pieces)

        def rec(d: int, halo_idx: list, glob_lo: list, lengths: list):
            if d == ndim:
                sl = tuple(
                    slice(h, h + n) for h, n in zip(halo_idx, lengths)
                )
                if any(g is None for g in glob_lo):
                    self._halo[sl] = 0  # clamped boundary
                    return
                g_lo = tuple(glob_lo)
                g_hi = tuple(g + n for g, n in zip(glob_lo, lengths))
                self._halo[sl] = self.ga.get(g_lo, g_hi)
                return
            for off, glob, length in pieces_per_dim[d]:
                if length <= 0:
                    continue
                rec(d + 1, halo_idx + [off], glob_lo + [glob], lengths + [length])

        rec(0, [], [], [])
        self.ga.sync()

    def store_local(self, interior: "np.ndarray | None" = None) -> None:
        """Write the interior back to the global array (collective)."""
        block = self.ga.distribution()
        data = self.interior() if interior is None else np.asarray(interior)
        if tuple(data.shape) != block.shape:
            raise ArgumentError(
                f"interior shape {data.shape} != owned block {block.shape}"
            )
        if not block.empty:
            self.ga.put(block.lo, block.hi, np.ascontiguousarray(data))
        self.ga.sync()

    def destroy(self) -> None:
        self.ga.destroy()


def jacobi_sweep(halo: np.ndarray) -> np.ndarray:
    """One 2-D 5-point Jacobi step over a halo buffer (helper for tests
    and the stencil example); returns the new interior."""
    if halo.ndim != 2:
        raise ArgumentError("jacobi_sweep expects a 2-D halo buffer")
    return 0.25 * (
        halo[:-2, 1:-1] + halo[2:, 1:-1] + halo[1:-1, :-2] + halo[1:-1, 2:]
    )
