"""Irregular (user-specified) block distributions — GA's ``NGA_Create_irreg``.

GA lets applications dictate block boundaries per dimension instead of
the automatic even split: NWChem, for example, aligns array blocks with
orbital-tile boundaries so tile fetches hit a single owner.  The class
below plugs into :class:`~repro.ga.array.GlobalArray` wherever
:class:`~repro.ga.distribution.BlockDistribution` does (same locate /
owner / block interface), so every GA operation works unchanged.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ..mpi.errors import ArgumentError
from .distribution import BlockDistribution, Patch


class IrregularDistribution(BlockDistribution):
    """Blocked distribution with explicit per-dimension boundaries.

    ``boundaries[d]`` lists the starting index of every block along
    dimension ``d`` (first entry must be 0); the number of blocks per
    dimension defines the process grid, whose size must not exceed
    ``nproc`` (surplus processes own empty blocks, as with the regular
    distribution).
    """

    def __init__(
        self,
        shape: Sequence[int],
        nproc: int,
        boundaries: Sequence[Sequence[int]],
    ):
        shape = tuple(int(s) for s in shape)
        if len(boundaries) != len(shape):
            raise ArgumentError(
                f"need one boundary list per dimension: got {len(boundaries)} "
                f"for a {len(shape)}-d array"
            )
        self._bounds: list[list[int]] = []
        dims = []
        for d, (extent, marks) in enumerate(zip(shape, boundaries)):
            marks = [int(m) for m in marks]
            if not marks or marks[0] != 0:
                raise ArgumentError(f"dim {d}: boundaries must start at 0")
            if any(b >= c for b, c in zip(marks, marks[1:])):
                raise ArgumentError(f"dim {d}: boundaries must increase: {marks}")
            if marks[-1] >= extent and extent > 0:
                raise ArgumentError(
                    f"dim {d}: last boundary {marks[-1]} must lie inside "
                    f"extent {extent}"
                )
            self._bounds.append(marks)
            dims.append(len(marks))
        grid_size = 1
        for n in dims:
            grid_size *= n
        if grid_size > nproc:
            raise ArgumentError(
                f"irregular grid {dims} needs {grid_size} processes, "
                f"only {nproc} available"
            )
        # Intentionally bypass BlockDistribution.__init__'s automatic
        # factorisation: we install the explicit grid instead.
        self.shape = shape
        self.nproc = nproc
        self.dims = dims
        self.grid_size = grid_size

    # -- ownership overrides --------------------------------------------------
    def block(self, rank: int) -> Patch:
        coords = self.grid_coords(rank)
        if coords is None:
            zeros = tuple(0 for _ in self.shape)
            return Patch(zeros, zeros)
        lo, hi = [], []
        for extent, marks, c in zip(self.shape, self._bounds, coords):
            lo.append(marks[c])
            hi.append(marks[c + 1] if c + 1 < len(marks) else extent)
        return Patch(tuple(lo), tuple(hi))

    def _coord_of(self, dim: int, x: int) -> int:
        marks = self._bounds[dim]
        if not 0 <= x < self.shape[dim]:
            raise ArgumentError(
                f"index {x} outside dimension {dim} extent {self.shape[dim]}"
            )
        return bisect.bisect_right(marks, x) - 1

    def owner(self, index: Sequence[int]) -> int:
        coords = [self._coord_of(d, int(x)) for d, x in enumerate(index)]
        return self.rank_of_coords(coords)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IrregularDistribution(shape={self.shape}, "
            f"bounds={self._bounds})"
        )


def create_irregular(
    runtime,
    shape: Sequence[int],
    boundaries: Sequence[Sequence[int]],
    dtype="f8",
    name: str = "ga_irreg",
):
    """``NGA_Create_irreg``: a GlobalArray with explicit block boundaries."""
    import numpy as np

    from .array import GlobalArray

    shape = tuple(int(s) for s in shape)
    dt = np.dtype(dtype)
    dist = IrregularDistribution(shape, runtime.nproc, boundaries)
    block = dist.block(runtime.my_id)
    ptrs = runtime.malloc(block.size * dt.itemsize)
    return GlobalArray(runtime, shape, dt, ptrs, dist, name)
