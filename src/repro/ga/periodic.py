"""Periodic patch access: NGA_Periodic_get / _put / _acc.

Stencil and lattice codes address patches that run off the array edges
with wrap-around (torus) semantics; GA provides periodic variants of
the patch operations so the application does not have to split wrapped
requests itself.  Implementation: decompose the requested (possibly
out-of-range) patch into at most ``3^ndim`` in-range pieces per
dimension-combination, then issue the ordinary one-sided patch op for
each piece — every piece becomes the usual per-owner strided ARMCI
traffic underneath.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from ..mpi.errors import ArgumentError
from .array import GlobalArray


def _axis_pieces(lo: int, hi: int, extent: int) -> Iterator[tuple[int, int, int]]:
    """Split [lo, hi) into in-range pieces: yields (out offset, global lo, len).

    ``lo`` may be negative and ``hi`` may exceed ``extent``; the request
    length must not exceed ``extent`` (one full wrap maximum, as in GA).
    """
    if hi - lo > extent:
        raise ArgumentError(
            f"periodic patch of {hi - lo} exceeds the array extent {extent}"
        )
    cursor = lo
    while cursor < hi:
        glob = cursor % extent
        length = min(hi - cursor, extent - glob)
        yield cursor - lo, glob, length
        cursor += length


def _pieces(ga: GlobalArray, lo: Sequence[int], hi: Sequence[int]):
    """All in-range sub-patches of a wrapped request (cartesian product)."""
    lo = [int(x) for x in lo]
    hi = [int(x) for x in hi]
    if len(lo) != ga.ndim or len(hi) != ga.ndim:
        raise ArgumentError(f"{ga.name}: periodic patch rank mismatch")
    per_dim = [
        list(_axis_pieces(l, h, e)) for l, h, e in zip(lo, hi, ga.shape)
    ]

    def rec(d: int, out_lo: list, glob_lo: list, lengths: list):
        if d == ga.ndim:
            yield tuple(out_lo), tuple(glob_lo), tuple(lengths)
            return
        for off, glob, length in per_dim[d]:
            yield from rec(
                d + 1, out_lo + [off], glob_lo + [glob], lengths + [length]
            )

    yield from rec(0, [], [], [])


def periodic_get(ga: GlobalArray, lo, hi, out: "np.ndarray | None" = None) -> np.ndarray:
    """NGA_Periodic_get: fetch a patch with wrap-around indexing."""
    shape = tuple(h - l for l, h in zip(lo, hi))
    if out is None:
        out = np.empty(shape, dtype=ga.dtype)
    elif tuple(out.shape) != shape:
        raise ArgumentError(f"{ga.name}: out shape {out.shape} != {shape}")
    for out_lo, glob_lo, lengths in _pieces(ga, lo, hi):
        glob_hi = tuple(g + n for g, n in zip(glob_lo, lengths))
        sl = tuple(slice(o, o + n) for o, n in zip(out_lo, lengths))
        out[sl] = ga.get(glob_lo, glob_hi)
    return out


def periodic_put(ga: GlobalArray, lo, hi, data: np.ndarray) -> None:
    """NGA_Periodic_put: store a patch with wrap-around indexing."""
    data = np.asarray(data)
    shape = tuple(h - l for l, h in zip(lo, hi))
    if tuple(data.shape) != shape:
        raise ArgumentError(f"{ga.name}: data shape {data.shape} != {shape}")
    for out_lo, glob_lo, lengths in _pieces(ga, lo, hi):
        glob_hi = tuple(g + n for g, n in zip(glob_lo, lengths))
        sl = tuple(slice(o, o + n) for o, n in zip(out_lo, lengths))
        ga.put(glob_lo, glob_hi, np.ascontiguousarray(data[sl]))


def periodic_acc(
    ga: GlobalArray, lo, hi, data: np.ndarray, alpha: float = 1.0
) -> None:
    """NGA_Periodic_acc: atomic accumulate with wrap-around indexing.

    A patch may wrap onto itself only if the pieces remain disjoint
    (guaranteed by the one-wrap limit), so per-piece accumulates compose
    atomically exactly like the non-periodic operation.
    """
    data = np.asarray(data)
    shape = tuple(h - l for l, h in zip(lo, hi))
    if tuple(data.shape) != shape:
        raise ArgumentError(f"{ga.name}: data shape {data.shape} != {shape}")
    for out_lo, glob_lo, lengths in _pieces(ga, lo, hi):
        glob_hi = tuple(g + n for g, n in zip(glob_lo, lengths))
        sl = tuple(slice(o, o + n) for o, n in zip(out_lo, lengths))
        ga.acc(glob_lo, glob_hi, np.ascontiguousarray(data[sl]), alpha=alpha)
