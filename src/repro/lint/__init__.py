"""repro.lint — static RMA/ARMCI usage analyzer (§V, §VIII-B).

The static front half of the checking story whose dynamic back half is
:mod:`repro.sanitizer`: both report through the shared
:data:`~repro.sanitizer.violations.CATALOG`, so ``[epoch] (§V-C)``
means the same rule whether a linter found the call site or the
sanitizer caught the run.  See ``docs/lint.md`` for the rule reference
and suppression syntax, and ``tests/lint_corpus/`` for one
bad/good snippet pair per rule.

Usage::

    python -m repro.lint src tests examples benchmarks
    python -m repro.lint --rules
"""

from ..sanitizer.violations import CATALOG, LINT_ONLY_KINDS, ViolationKind
from .cli import lint_file, lint_paths, lint_source, main
from .diagnostics import Diagnostic, Suppressions, parse_suppressions
from .engine import analyze_module
from .rules import STATIC_RULES, rule_lines

__all__ = [
    "CATALOG",
    "LINT_ONLY_KINDS",
    "ViolationKind",
    "Diagnostic",
    "Suppressions",
    "STATIC_RULES",
    "analyze_module",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "parse_suppressions",
    "rule_lines",
]
