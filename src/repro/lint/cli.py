"""``python -m repro.lint`` — lint paths, print findings, exit 0/1/2.

Exit codes (the contract ``docs/lint.md`` documents and CI relies on):

* ``0`` — every linted file is clean (after suppressions);
* ``1`` — at least one finding survived suppression;
* ``2`` — usage error or a file that failed to parse.
"""

from __future__ import annotations

import argparse
import os
import sys

from .diagnostics import Diagnostic, parse_suppressions
from .engine import analyze_module
from .rules import rule_lines

__all__ = ["lint_source", "lint_file", "lint_paths", "main"]

#: directories never worth descending into
_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", ".pytest_cache", ".ruff_cache"}

#: the corpus exists to trip every rule; skip it unless explicitly asked
_CORPUS_DIR = "lint_corpus"


def lint_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Lint one module's source, honoring its lint-ignore comments."""
    sup = parse_suppressions(source)
    return [d for d in analyze_module(source, path) if not sup.suppresses(d)]


def lint_file(path: str) -> list[Diagnostic]:
    with open(path, encoding="utf-8") as f:
        return lint_source(f.read(), path)


def _iter_py_files(paths, include_corpus: bool):
    for p in paths:
        if os.path.isfile(p):
            yield p
            continue
        for root, dirs, files in os.walk(p):
            dirs[:] = sorted(
                d for d in dirs
                if d not in _SKIP_DIRS and (include_corpus or d != _CORPUS_DIR)
            )
            if not include_corpus and _CORPUS_DIR in root.split(os.sep):
                continue  # the corpus dir itself was passed as a root
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_paths(paths, include_corpus: bool = False):
    """Lint every .py file under paths; returns (diagnostics, errors)."""
    diags: list[Diagnostic] = []
    errors: list[str] = []
    for path in _iter_py_files(paths, include_corpus):
        try:
            diags.extend(lint_file(path))
        except SyntaxError as exc:
            errors.append(f"{path}:{exc.lineno or 0}: parse error: {exc.msg}")
        except OSError as exc:
            errors.append(f"{path}: {exc}")
    return diags, errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static RMA/ARMCI usage analyzer sharing the dynamic "
            "sanitizer's diagnostics catalog."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--rules", action="store_true",
        help="list every rule with its catalog section and exit",
    )
    parser.add_argument(
        "--include-corpus", action="store_true",
        help="also lint tests/lint_corpus (deliberately-bad snippets)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the per-file summary line",
    )
    args = parser.parse_args(argv)

    if args.rules:
        print("\n".join(rule_lines()))
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --rules)", file=sys.stderr)
        return 2

    diags, errors = lint_paths(args.paths, include_corpus=args.include_corpus)
    for d in diags:
        print(d.format())
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        return 2
    if diags:
        if not args.quiet:
            print(f"{len(diags)} finding{'s' if len(diags) != 1 else ''}")
        return 1
    if not args.quiet:
        print("clean")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
