"""Diagnostic records and the ``# repro: lint-ignore[...]`` machinery.

A :class:`Diagnostic` is the static analogue of a
:class:`~repro.sanitizer.violations.RmaViolation`: it carries the same
:class:`~repro.sanitizer.violations.ViolationKind` and renders with the
same paper-section reference out of the shared
:data:`~repro.sanitizer.violations.CATALOG`, so a misuse reads
identically whether the linter found it before the run or the sanitizer
during one.

Suppression syntax (documented in ``docs/lint.md``):

* ``# repro: lint-ignore[code1,code2]`` — suppress those codes on this
  line (or, when the comment stands on a line of its own, on the next
  line);
* ``# repro: lint-ignore`` — same, all codes;
* ``# repro: lint-ignore-file[code1,...]`` — suppress for the whole
  file (top-of-file escape hatch for generated or corpus-like files).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..sanitizer.violations import CATALOG, ViolationKind

__all__ = ["Diagnostic", "Suppressions", "parse_suppressions"]

_IGNORE_RE = re.compile(
    r"#\s*repro:\s*lint-ignore(?P<file>-file)?(?:\[(?P<codes>[^\]]*)\])?"
)


@dataclass(frozen=True)
class Diagnostic:
    """One static finding, addressed like a compiler error."""

    path: str
    line: int
    col: int
    kind: ViolationKind
    message: str

    @property
    def code(self) -> str:
        return self.kind.value

    @property
    def section(self) -> str:
        return CATALOG[self.kind].section

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.code}] ({self.section}) {self.message}"
        )

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)


class Suppressions:
    """Per-file suppression table built from lint-ignore comments.

    ``None`` as a code set means "all codes".
    """

    def __init__(self):
        #: line -> set of codes (or None for all)
        self.by_line: dict[int, "set[str] | None"] = {}
        #: file-wide codes (or None for all)
        self.file_codes: "set[str] | None | bool" = False  # False = none

    def _line_matches(self, line: int, code: str) -> bool:
        if line not in self.by_line:
            return False
        codes = self.by_line[line]
        return codes is None or code in codes

    def suppresses(self, diag: Diagnostic) -> bool:
        if self.file_codes is None:
            return True
        if self.file_codes is not False and diag.code in self.file_codes:
            return True
        return self._line_matches(diag.line, diag.code)


def _parse_codes(raw: "str | None") -> "set[str] | None":
    if raw is None:
        return None
    codes = {c.strip() for c in raw.split(",") if c.strip()}
    return codes or None


def parse_suppressions(source: str) -> Suppressions:
    """Scan source lines for lint-ignore comments.

    A plain text scan (not tokenize) keeps this robust against files
    that do not parse; a matching pattern inside a string literal at
    worst suppresses codes on a line that has no finding.
    """
    sup = Suppressions()
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _IGNORE_RE.search(text)
        if not m:
            continue
        codes = _parse_codes(m.group("codes"))
        if m.group("file"):
            if sup.file_codes is False:
                sup.file_codes = codes
            elif sup.file_codes is not None and codes is not None:
                sup.file_codes |= codes
            else:
                sup.file_codes = None
            continue
        # a comment standing alone applies to the following line
        target = lineno + 1 if text.lstrip().startswith("#") else lineno
        prev = sup.by_line.get(target, set())
        if prev is None or codes is None:
            sup.by_line[target] = None
        else:
            sup.by_line[target] = prev | codes
    return sup
