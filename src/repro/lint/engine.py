"""The per-function abstract interpreter behind ``repro.lint``.

One :class:`FunctionAnalyzer` walks one function body over the
:class:`~repro.lint.state.AbsState` lattice: branches fork and join
(must = intersection, may = union), loop bodies run twice (so a
second-iteration misuse like re-locking is seen) with diagnostics
deduplicated by (line, code), and ``with pytest.raises(...)`` bodies
are skipped entirely — they exist to misuse the API.

Value tracking (see :mod:`repro.lint.model`) plus escape analysis keep
the checks silent about anything the function cannot fully see: a
resource passed to an unknown call, returned, stored into an attribute
or container, or captured by a nested function is exempt from the
leak/double-release/discipline rules from that point on.
"""

from __future__ import annotations

import ast

from ..sanitizer.violations import ViolationKind
from .diagnostics import Diagnostic
from .model import (
    ARMCI_COMM_METHODS,
    ARMCI_INIT_CLASSES,
    ARMCI_WRAPPER_CLASSES,
    WIN_OP_METHODS,
    WIN_REQ_METHODS,
    base_name,
    dotted_name,
    expr_text,
    is_pytest_raises,
)
from .state import AbsState, join_all

__all__ = ["ModuleAnalyzer", "analyze_module"]

#: resource kinds the leak rule covers, with display names
_LEAKABLE = {
    "epoch": "lock epoch",
    "lockall": "lock_all epoch",
    "fence": "fence epoch",
    "dla": "direct-local-access epoch",
    "mlock": "mutex hold",
    "alloc": "ARMCI allocation",
    "mutexset": "mutex set",
    "nb": "nonblocking-op handle",
}


class _Block:
    """Result of executing a statement block."""

    __slots__ = ("fall", "breaks", "conts")

    def __init__(self, fall, breaks=None, conts=None):
        self.fall = fall
        self.breaks = breaks if breaks is not None else []
        self.conts = conts if conts is not None else []


class FunctionAnalyzer:
    def __init__(self, path: str, emit):
        self.path = path
        self._emit = emit
        #: resource key / object id -> acquisition (line, col, description)
        self.info: dict = {}
        #: resource key -> owning object id (armci/win/mutexset chains)
        self.owner: dict = {}
        self._mute = 0
        #: enclosing finally bodies, outermost first: a return statement
        #: runs them all before the function is actually left
        self._finally_stack: list = []

    # -- reporting ---------------------------------------------------------------
    def emit(self, node, kind: ViolationKind, message: str) -> None:
        if self._mute:
            return
        self._emit(Diagnostic(self.path, node.lineno, node.col_offset + 1, kind, message))

    def emit_at(self, line: int, col: int, kind: ViolationKind, message: str) -> None:
        if self._mute:
            return
        self._emit(Diagnostic(self.path, line, col + 1, kind, message))

    # -- entry -------------------------------------------------------------------
    def analyze(self, fn) -> None:
        st = AbsState()
        res = self.exec_block(fn.body, st)
        if res.fall is not None:
            self.check_leaks(res.fall, getattr(fn, "end_lineno", fn.lineno))

    # -- ownership / exemption ----------------------------------------------------
    def owner_root(self, key: tuple):
        if key[0] in ("epoch", "lockall", "fence", "dla", "mlock"):
            return key[1]
        return self.owner.get(key)

    def exempt(self, key: tuple, st: AbsState) -> bool:
        seen = set()
        k = key
        while k is not None and k not in seen:
            if k in st.escaped:
                return True
            seen.add(k)
            k = self.owner_root(k) if isinstance(k, tuple) else None
        return False

    def escape_binding(self, b, st: AbsState) -> None:
        if not b:
            return
        kind = b[0]
        if kind in ("armci", "win", "alloc", "mutexset", "req", "nb", "allocitem"):
            st.escaped.add(b[1])

    # -- leak rule ---------------------------------------------------------------
    def check_leaks(self, st: AbsState, exit_line: int) -> None:
        for key in sorted(st.must, key=repr):
            name = _LEAKABLE.get(key[0])
            if name is None or self.exempt(key, st):
                continue
            line, col, desc = self.info.get(key, (exit_line, 0, name))
            if key[0] == "nb":
                # a handle nobody can ever wait: its queued op may never
                # reach a completion point (mpi3 datapath)
                self.emit_at(
                    line, col, ViolationKind.NB_PENDING,
                    f"{desc} is still pending on the path leaving the "
                    f"function at line {exit_line}: complete it with "
                    "wait()/test(), or drain with fence/barrier",
                )
                continue
            self.emit_at(
                line, col, ViolationKind.LINT_LEAK,
                f"{desc} is still held on the path leaving the function at "
                f"line {exit_line}; release it on every path out",
            )

    # -- statement execution -------------------------------------------------------
    def exec_block(self, stmts, st: "AbsState | None") -> _Block:
        breaks: list = []
        conts: list = []
        for s in stmts:
            if st is None:
                break  # unreachable code: stay silent
            st = self.exec_stmt(s, st, breaks, conts)
        return _Block(st, breaks, conts)

    def exec_stmt(self, s, st: AbsState, breaks, conts) -> "AbsState | None":
        if isinstance(s, ast.Expr):
            b = self.eval_expr(s.value, st)
            if b:
                if b[0] == "newreq":
                    self.emit(
                        s, ViolationKind.REQUEST,
                        "rput/rget request discarded: assign it and complete "
                        "it with wait()/test() before the epoch closes",
                    )
                elif b[0] == "newnb":
                    self.emit(
                        s, ViolationKind.NB_PENDING,
                        "nonblocking-op handle discarded: assign it and "
                        "complete it with wait()/test(), or drain the queue "
                        "with fence/barrier",
                    )
                elif b[0] == "newalloc":
                    self.emit(
                        s, ViolationKind.LINT_LEAK,
                        "ARMCI allocation discarded: bind the pointer vector "
                        "so it can be freed",
                    )
                elif b[0] == "newmutexset":
                    self.emit(
                        s, ViolationKind.LINT_LEAK,
                        "mutex set discarded: bind it so it can be destroyed",
                    )
            return st
        if isinstance(s, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return self.exec_assign(s, st)
        if isinstance(s, ast.If):
            self.eval_expr(s.test, st)
            rb = self.exec_block(s.body, st.clone())
            ro = self.exec_block(s.orelse, st.clone())
            breaks.extend(rb.breaks + ro.breaks)
            conts.extend(rb.conts + ro.conts)
            return join_all([rb.fall, ro.fall])
        if isinstance(s, (ast.While, ast.For, ast.AsyncFor)):
            return self.exec_loop(s, st, breaks, conts)
        if isinstance(s, (ast.With, ast.AsyncWith)):
            return self.exec_with(s, st, breaks, conts)
        if isinstance(s, ast.Try):
            return self.exec_try(s, st, breaks, conts)
        if isinstance(s, ast.Return):
            if s.value is not None:
                self.escape_binding(self.eval_expr(s.value, st), st)
            out = self._through_finallies(st.clone())
            if out is not None:
                self.check_leaks(out, s.lineno)
            return None
        if isinstance(s, ast.Raise):
            # exceptional exit: cleanup obligations are the caller's
            # problem (and usually unreachable in deliberate-failure code)
            if s.exc is not None:
                self.eval_expr(s.exc, st)
            return None
        if isinstance(s, ast.Break):
            breaks.append(st)
            return None
        if isinstance(s, ast.Continue):
            conts.append(st)
            return None
        if isinstance(s, ast.Assert):
            self.eval_expr(s.test, st)
            if s.msg is not None:
                self.eval_expr(s.msg, st)
            return st
        if isinstance(s, ast.Delete):
            for t in s.targets:
                if isinstance(t, ast.Name):
                    st.bindings.pop(t.id, None)
            return st
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            # a nested scope may capture and use anything it names;
            # its own body is analyzed separately by the module walker
            for n in ast.walk(s):
                if isinstance(n, ast.Name) and n.id in st.bindings:
                    self.escape_binding(st.bindings[n.id], st)
            return st
        if isinstance(s, (ast.Global, ast.Nonlocal)):
            for name in s.names:
                if name in st.bindings:
                    self.escape_binding(st.bindings.pop(name), st)
            return st
        if isinstance(s, (ast.Import, ast.ImportFrom, ast.Pass)):
            return st
        # anything else: evaluate contained expressions for visibility
        for child in ast.iter_child_nodes(s):
            if isinstance(child, ast.expr):
                self.eval_expr(child, st)
        return st

    # -- compound statements -------------------------------------------------------
    def exec_assign(self, s, st: AbsState) -> AbsState:
        if isinstance(s, ast.AugAssign):
            self.eval_expr(s.value, st)
            return st
        value = s.value
        if value is None:  # bare annotation
            return st
        b = self.eval_expr(value, st)
        targets = s.targets if isinstance(s, ast.Assign) else [s.target]
        for t in targets:
            self.bind_target(t, b, st)
        return st

    def bind_target(self, t, b, st: AbsState) -> None:
        if isinstance(t, ast.Name):
            if b is None:
                st.bindings.pop(t.id, None)
            elif b[0] == "newalloc":
                key = ("alloc", t.id, b[2], b[3])
                self.owner[key] = b[1]
                self.info[key] = (b[2], b[3], f"ARMCI allocation '{t.id}'")
                st.acquire(key)
                st.bindings[t.id] = ("alloc", key)
            elif b[0] == "newmutexset":
                key = ("mutexset", t.id, b[2], b[3])
                self.owner[key] = b[1]
                self.info[key] = (b[2], b[3], f"mutex set '{t.id}'")
                st.acquire(key)
                st.bindings[t.id] = ("mutexset", key)
            elif b[0] == "newreq":
                key = ("req", t.id, b[2], b[3])
                self.owner[key] = b[1]
                self.info[key] = (b[2], b[3], f"request '{t.id}'")
                st.acquire(key)
                st.bindings[t.id] = ("req", key)
            elif b[0] == "newnb":
                key = ("nb", t.id, b[2], b[3])
                self.owner[key] = b[1]
                self.info[key] = (b[2], b[3], f"nonblocking-op handle '{t.id}'")
                st.acquire(key)
                st.bindings[t.id] = ("nb", key)
            elif b[0] == "win_tuple":
                st.bindings.pop(t.id, None)
            else:
                st.bindings[t.id] = b
        elif isinstance(t, (ast.Tuple, ast.List)):
            elts = t.elts
            if b is not None and b[0] == "win_tuple" and elts and isinstance(elts[0], ast.Name):
                st.bindings[elts[0].id] = ("win", b[1])
                rest = elts[1:]
            else:
                if b is not None and b[0] != "win_tuple":
                    self.escape_binding(b, st)
                rest = elts
            for e in rest:
                if isinstance(e, ast.Name):
                    st.bindings.pop(e.id, None)
                elif isinstance(e, ast.Starred) and isinstance(e.value, ast.Name):
                    st.bindings.pop(e.value.id, None)
        else:
            # attribute / subscript store: the value leaves our sight
            self.escape_binding(b, st)
            self.eval_expr(t, st)

    def exec_loop(self, s, st: AbsState, breaks, conts) -> "AbsState | None":
        if isinstance(s, (ast.For, ast.AsyncFor)):
            self.eval_expr(s.iter, st)
            self.bind_target(s.target, None, st)
        else:
            self.eval_expr(s.test, st)
        r1 = self.exec_block(s.body, st.clone())
        s1 = join_all([r1.fall] + r1.conts)
        r2 = None
        s2 = None
        if s1 is not None:
            # second pass entered from the state one iteration leaves
            # behind: catches misuse that only appears on iteration two
            # (re-lock, re-free, ...)
            r2 = self.exec_block(s.body, s1.clone())
            s2 = join_all([r2.fall] + r2.conts)
        exits = [st] + r1.breaks + (r2.breaks if r2 is not None else [])
        if s2 is not None:
            exits.append(s2)
        out = join_all(exits)
        if s.orelse and out is not None:
            ro = self.exec_block(s.orelse, out)
            breaks.extend(ro.breaks)
            conts.extend(ro.conts)
            out = ro.fall
        return out

    def exec_with(self, s, st: AbsState, breaks, conts) -> "AbsState | None":
        for item in s.items:
            if is_pytest_raises(item.context_expr):
                # the body is *supposed* to violate: analyze nothing,
                # keep the pre-state (the exception unwinds the block)
                self._mute += 1
                try:
                    self.exec_block(s.body, st.clone())
                finally:
                    self._mute -= 1
                return st
        for item in s.items:
            self.eval_expr(item.context_expr, st)
            if item.optional_vars is not None:
                self.bind_target(item.optional_vars, None, st)
        r = self.exec_block(s.body, st)
        breaks.extend(r.breaks)
        conts.extend(r.conts)
        return r.fall

    def _through_finallies(self, st: "AbsState | None") -> "AbsState | None":
        """Run every pending finally block, innermost first (return path)."""
        stack = self._finally_stack
        saved = list(stack)
        try:
            while stack and st is not None:
                fb = stack.pop()
                st = self.exec_block(fb, st).fall
        finally:
            stack[:] = saved
        return st

    def exec_try(self, s, st: AbsState, breaks, conts) -> "AbsState | None":
        if s.finalbody:
            self._finally_stack.append(s.finalbody)
        try:
            rb = self.exec_block(s.body, st.clone())
            base = rb.fall if rb.fall is not None else st
            # a handler can be entered from any point inside the body:
            # weaken to the join of entry and exit states
            h_in = st.join(base)
            outs: list = []
            pend_breaks = list(rb.breaks)
            pend_conts = list(rb.conts)
            for h in s.handlers:
                rh = self.exec_block(h.body, h_in.clone())
                pend_breaks.extend(rh.breaks)
                pend_conts.extend(rh.conts)
                if rh.fall is not None:
                    outs.append(rh.fall)
            body_out = rb.fall
            if s.orelse and body_out is not None:
                ro = self.exec_block(s.orelse, body_out)
                pend_breaks.extend(ro.breaks)
                pend_conts.extend(ro.conts)
                body_out = ro.fall
            out = join_all(outs + [body_out])
        finally:
            if s.finalbody:
                self._finally_stack.pop()
        if s.finalbody:
            # break/continue leave through the finally as well
            pend_breaks = [
                b for b in (self.exec_block(s.finalbody, x.clone()).fall
                            for x in pend_breaks) if b is not None
            ]
            pend_conts = [
                c for c in (self.exec_block(s.finalbody, x.clone()).fall
                            for x in pend_conts) if c is not None
            ]
            rf = self.exec_block(s.finalbody, out if out is not None else h_in.clone())
            breaks.extend(rf.breaks)
            conts.extend(rf.conts)
            out = rf.fall
        breaks.extend(pend_breaks)
        conts.extend(pend_conts)
        return out

    # -- expression evaluation -------------------------------------------------------
    def eval_expr(self, e, st: AbsState):
        """Evaluate an expression; returns the tracked binding of its value."""
        if e is None or isinstance(e, ast.Constant):
            return None
        if isinstance(e, ast.Name):
            return st.bindings.get(e.id)
        if isinstance(e, ast.Call):
            return self.handle_call(e, st)
        if isinstance(e, ast.Attribute):
            self.eval_expr(e.value, st)
            return None
        if isinstance(e, ast.Subscript):
            b = self.eval_expr(e.value, st)
            self.eval_expr(e.slice, st)
            if b is not None:
                if b[0] == "alloc":
                    return ("allocitem", b[1])
                if b[0] in ("allocitem", "wb"):
                    return b
            return None
        if isinstance(e, (ast.Tuple, ast.List, ast.Set)):
            for x in e.elts:
                self.escape_binding(self.eval_expr(x, st), st)
            return None
        if isinstance(e, ast.Dict):
            for x in list(e.keys) + list(e.values):
                if x is not None:
                    self.escape_binding(self.eval_expr(x, st), st)
            return None
        if isinstance(e, ast.IfExp):
            self.eval_expr(e.test, st)
            b1 = self.eval_expr(e.body, st)
            b2 = self.eval_expr(e.orelse, st)
            if b1 is not None and b2 is not None and b1 != b2:
                self.escape_binding(b1, st)
                self.escape_binding(b2, st)
                return None
            return b1 if b1 is not None else b2
        if isinstance(e, ast.BoolOp):
            for x in e.values:
                self.eval_expr(x, st)
            return None
        if isinstance(e, ast.BinOp):
            self.eval_expr(e.left, st)
            self.eval_expr(e.right, st)
            return None
        if isinstance(e, ast.UnaryOp):
            self.eval_expr(e.operand, st)
            return None
        if isinstance(e, ast.Compare):
            self.eval_expr(e.left, st)
            for x in e.comparators:
                self.eval_expr(x, st)
            return None
        if isinstance(e, ast.Starred):
            return self.eval_expr(e.value, st)
        if isinstance(e, ast.NamedExpr):
            b = self.eval_expr(e.value, st)
            self.bind_target(e.target, b, st)
            return st.bindings.get(e.target.id) if isinstance(e.target, ast.Name) else b
        if isinstance(e, ast.Slice):
            for x in (e.lower, e.upper, e.step):
                self.eval_expr(x, st)
            return None
        if isinstance(e, ast.JoinedStr):
            for x in e.values:
                self.eval_expr(x, st)
            return None
        if isinstance(e, ast.FormattedValue):
            self.eval_expr(e.value, st)
            return None
        if isinstance(e, (ast.Lambda, ast.ListComp, ast.SetComp, ast.DictComp,
                          ast.GeneratorExp)):
            for n in ast.walk(e):
                if isinstance(n, ast.Name) and n.id in st.bindings:
                    self.escape_binding(st.bindings[n.id], st)
            return None
        if isinstance(e, (ast.Await, ast.Yield, ast.YieldFrom)):
            inner = getattr(e, "value", None)
            if inner is not None:
                self.escape_binding(self.eval_expr(inner, st), st)
            return None
        for child in ast.iter_child_nodes(e):
            if isinstance(child, ast.expr):
                self.eval_expr(child, st)
        return None

    # -- call classification --------------------------------------------------------
    def scan_args(self, call, st: AbsState, escape: bool) -> list:
        """Evaluate call arguments; returns positional-arg bindings."""
        out = []
        for a in call.args:
            b = self.eval_expr(a, st)
            out.append(b)
            if escape:
                self.escape_binding(b, st)
        for kw in call.keywords:
            b = self.eval_expr(kw.value, st)
            if escape:
                self.escape_binding(b, st)
        return out

    def handle_call(self, call, st: AbsState):
        func = call.func
        d = dotted_name(func)
        if d is not None:
            if len(d) >= 2 and d[-1] == "init" and d[-2] in ARMCI_INIT_CLASSES:
                self.scan_args(call, st, escape=False)
                aid = ("armci", call.lineno, call.col_offset)
                self.info[aid] = (call.lineno, call.col_offset, "ARMCI handle")
                return ("armci", aid)
            if len(d) >= 2 and d[-2] == "Win" and d[-1] in ("create", "allocate"):
                self.scan_args(call, st, escape=False)
                wid = ("win", call.lineno, call.col_offset)
                self.info[wid] = (call.lineno, call.col_offset, "window")
                return ("win", wid) if d[-1] == "create" else ("win_tuple", wid)
            if d[-1] in ARMCI_WRAPPER_CLASSES:
                self.scan_args(call, st, escape=True)
                aid = ("armci", call.lineno, call.col_offset)
                self.info[aid] = (call.lineno, call.col_offset, "ARMCI handle")
                return ("armci", aid)
        if isinstance(func, ast.Attribute):
            recv = self.eval_expr(func.value, st)
            if func.attr in ("agree", "shrink") and recv is None:
                # ULFM-analogue recovery boundary (repro.recover): agree()
                # and shrink() are the only operations guaranteed to
                # complete once a member has failed, and recovery abandons
                # whatever epochs the wounded world still had open.  Epochs
                # leave *must* (a path through here is a valid exit for
                # them: no leak, and recovery may re-lock on the new world)
                # but stay in *may* (an unlock on the path where the
                # attempt succeeded is still a matched release).
                self.scan_args(call, st, escape=False)
                for k in [
                    k for k in st.must
                    if k[0] in ("epoch", "lockall", "fence", "dla", "mlock", "nb")
                ]:
                    st.must.discard(k)
                return None
            if recv is not None:
                if recv[0] == "armci":
                    return self.armci_method(call, func.attr, recv[1], st)
                if recv[0] == "win":
                    return self.win_method(call, func.attr, recv[1], st)
                if recv[0] == "mutexset":
                    return self.ms_method(call, func.attr, recv[1], st)
                if recv[0] == "req":
                    return self.req_method(call, func.attr, recv[1], st)
                if recv[0] == "nb":
                    return self.nb_method(call, func.attr, recv[1], st)
                # methods on tracked values we have no rules for
                self.scan_args(call, st, escape=False)
                return None
            self.scan_args(call, st, escape=True)
            return None
        self.scan_args(call, st, escape=True)
        return None

    # -- ARMCI handle methods ---------------------------------------------------------
    def armci_method(self, call, m, aid, st: AbsState):
        esc = st.is_escaped(aid)
        if aid in st.finalized_must and not esc:
            if m == "finalize":
                self.emit(
                    call, ViolationKind.LINT_INIT,
                    "finalize called twice on the same ARMCI handle "
                    "(it is collective and must run exactly once)",
                )
            else:
                self.emit(
                    call, ViolationKind.LINT_INIT,
                    f"ARMCI call '{m}' on a handle already finalized",
                )
        if m == "finalize":
            self.scan_args(call, st, escape=False)
            if not esc:
                # finalize audits (does not drain) the nonblocking queue:
                # a still-pending handle here is the dynamic NB_PENDING
                for k in sorted(
                    (k for k in st.must
                     if k[0] == "nb" and self.owner.get(k) == aid
                     and not self.exempt(k, st)),
                    key=repr,
                ):
                    self.emit(
                        call, ViolationKind.NB_PENDING,
                        f"{self.info[k][2]} (line {self.info[k][0]}) is "
                        "still pending at finalize: wait it, or drain the "
                        "queue with fence/barrier first",
                    )
            # finalize frees every remaining allocation and mutex set
            for k in list(st.may):
                if self.owner_root(k) == aid or (
                    self.owner_root(k) is not None
                    and self.owner_root(self.owner_root(k)) == aid
                ):
                    st.drop(k)
            st.finalized_must.add(aid)
            st.finalized_may.add(aid)
            return None
        if m == "malloc":
            self.scan_args(call, st, escape=False)
            return ("newalloc", aid, call.lineno, call.col_offset)
        if m == "create_mutexes":
            self.scan_args(call, st, escape=False)
            return ("newmutexset", aid, call.lineno, call.col_offset)
        if m == "access_begin":
            self.scan_args(call, st, escape=False)
            vec = base_name(call.args[0]) if call.args else None
            if vec is None:
                return None
            key = ("dla", aid, vec)
            if key in st.must and not esc:
                self.emit(
                    call, ViolationKind.DLA,
                    f"nested access_begin on '{vec}': direct-local-access "
                    "epochs do not nest",
                )
            self.info.setdefault(
                key,
                (call.lineno, call.col_offset,
                 f"direct-local-access epoch on '{vec}'"),
            )
            st.acquire(key)
            return None
        if m == "access_end":
            self.scan_args(call, st, escape=False)
            vec = base_name(call.args[0]) if call.args else None
            if vec is None:
                return None
            key = ("dla", aid, vec)
            if key in st.may:
                st.release(key)
            elif not any(k[0] == "dla" and k[1] == aid for k in st.may) and not esc:
                self.emit(
                    call, ViolationKind.DLA,
                    f"access_end on '{vec}' without a matching access_begin",
                )
            return None
        if m == "free":
            arg_bindings = self.scan_args(call, st, escape=False)
            for b in arg_bindings:
                if b is None or b[0] not in ("alloc", "allocitem"):
                    continue
                key = b[1]
                if self.exempt(key, st):
                    continue
                if key in st.released and key not in st.may:
                    self.emit(
                        call, ViolationKind.LINT_DOUBLE_RELEASE,
                        f"free of {self.info[key][2]} already freed on "
                        "every path here",
                    )
                else:
                    st.release(key)
            return None
        if m in ARMCI_COMM_METHODS:
            self.scan_args(call, st, escape=False)
            if not esc:
                for a in call.args:
                    vec = base_name(a)
                    if vec is not None and ("dla", aid, vec) in st.must:
                        self.emit(
                            call, ViolationKind.LOCK_WHILE_DLA,
                            f"'{m}' communicates through '{vec}' while a "
                            "direct-local-access epoch is open on it "
                            "(call access_end first)",
                        )
                        break
            if m in ("fence", "all_fence"):
                # fence drains this handle's nonblocking queue (mpi3
                # datapath): every queued op reaches its completion point
                self._drop_nb(aid, st)
            if m in ("nb_put", "nb_get", "nb_acc"):
                return ("newnb", aid, call.lineno, call.col_offset)
            return None
        if m in ("barrier", "fence_all", "wait", "wait_all"):
            arg_bindings = self.scan_args(call, st, escape=False)
            if m == "wait":
                for b in arg_bindings:
                    if b is not None and b[0] == "nb":
                        st.drop(b[1])
            else:
                # barrier/fence_all drain every queue; wait_all completes
                # every handle it is given (conservatively: all of them)
                self._drop_nb(aid, st)
            return None
        # set_access_mode, translation queries, ...
        self.scan_args(call, st, escape=False)
        return None

    def _drop_nb(self, aid, st: AbsState) -> None:
        """A completion point: forget every nb handle owned by ``aid``."""
        for k in [k for k in st.may if k[0] == "nb" and self.owner.get(k) == aid]:
            st.drop(k)

    # -- Win methods -------------------------------------------------------------------
    def _epoch_on(self, win_id, s: set) -> bool:
        return any(k[0] in ("epoch", "lockall", "fence") and k[1] == win_id for k in s)

    def win_method(self, call, m, wid, st: AbsState):
        esc = st.is_escaped(wid)
        if m == "lock":
            self.scan_args(call, st, escape=False)
            if not esc and self._epoch_on(wid, st.must):
                self.emit(
                    call, ViolationKind.LOCK_NESTING,
                    "lock while an epoch is already open on this window "
                    "(MPI-2 allows one lock per window per process)",
                )
            t = expr_text(call.args[0] if call.args else None)
            key = ("epoch", wid, t)
            self.info.setdefault(
                key, (call.lineno, call.col_offset, f"lock epoch on target {t}")
            )
            st.acquire(key)
            return None
        if m == "unlock":
            self.scan_args(call, st, escape=False)
            self._pending_request_check(call, wid, st, "unlock")
            t = expr_text(call.args[0] if call.args else None)
            key = ("epoch", wid, t)
            had_any = any(k[0] == "epoch" and k[1] == wid for k in st.may)
            if key in st.must:
                st.release(key)
            # after an unlock at most zero epochs remain on this window
            # (the one-lock rule): drop whatever branch-alternatives exist
            for k in [k for k in st.may if k[0] == "epoch" and k[1] == wid]:
                st.drop(k)
            if not had_any and not self._epoch_on(wid, st.may) and not esc:
                self.emit(
                    call, ViolationKind.LOCK_UNMATCHED,
                    "unlock without a lock possibly held on this window",
                )
            return None
        if m == "lock_all":
            self.scan_args(call, st, escape=False)
            if not esc and self._epoch_on(wid, st.must):
                self.emit(
                    call, ViolationKind.LOCK_NESTING,
                    "lock_all while an epoch is already open on this window",
                )
            key = ("lockall", wid)
            self.info.setdefault(key, (call.lineno, call.col_offset, "lock_all epoch"))
            st.acquire(key)
            return None
        if m == "unlock_all":
            self.scan_args(call, st, escape=False)
            self._pending_request_check(call, wid, st, "unlock_all")
            key = ("lockall", wid)
            if key in st.may:
                st.release(key)
            elif not self._epoch_on(wid, st.may) and not esc:
                self.emit(
                    call, ViolationKind.LOCK_UNMATCHED,
                    "unlock_all without a lock_all epoch possibly open",
                )
            return None
        if m in ("flush", "flush_all"):
            self.scan_args(call, st, escape=False)
            passive = any(
                k[0] in ("epoch", "lockall") and k[1] == wid for k in st.may
            )
            if not esc and not passive:
                if any(k[0] == "fence" and k[1] == wid for k in st.must):
                    self.emit(
                        call, ViolationKind.FLUSH,
                        f"{m} inside an active-target (fence) epoch: flush "
                        "completes passive-target operations only — open a "
                        "lock or lock_all epoch instead",
                    )
                else:
                    self.emit(
                        call, ViolationKind.FLUSH,
                        f"{m} outside any passive-target epoch on this "
                        "window: nothing to complete",
                    )
            return None
        if m == "fence_sync":
            args = self.scan_args(call, st, escape=False)
            if not esc and any(
                k[0] in ("epoch", "lockall") and k[1] == wid for k in st.must
            ):
                self.emit(
                    call, ViolationKind.LOCK_NESTING,
                    "fence while holding a passive-target lock: active and "
                    "passive epochs may not overlap",
                )
            end = False
            for kw in call.keywords:
                if kw.arg == "end" and isinstance(kw.value, ast.Constant):
                    end = bool(kw.value.value)
            if call.args and isinstance(call.args[0], ast.Constant):
                end = bool(call.args[0].value)
            key = ("fence", wid)
            if end:
                st.drop(key)
            else:
                self.info.setdefault(key, (call.lineno, call.col_offset, "fence epoch"))
                st.acquire(key)
            del args
            return None
        if m in WIN_OP_METHODS:
            arg_bindings = self.scan_args(call, st, escape=False)
            if not esc and not self._epoch_on(wid, st.may):
                self.emit(
                    call, ViolationKind.EPOCH,
                    f"'{m}' outside any access epoch on this window "
                    "(lock/unlock it, or use lock_all or a fence)",
                )
            if (
                not esc
                and arg_bindings
                and arg_bindings[0] is not None
                and arg_bindings[0][0] == "wb"
                and arg_bindings[0][1] == wid
                and m in ("put", "get", "accumulate")
            ):
                self.emit(
                    call, ViolationKind.LOCAL_ALIAS,
                    f"the local buffer of this '{m}' is a view of the same "
                    "window's exposed memory: that needs a second lock the "
                    "one-lock rule forbids — stage through a private buffer",
                )
            return None
        if m in WIN_REQ_METHODS:
            self.scan_args(call, st, escape=False)
            if not esc and not self._epoch_on(wid, st.may):
                self.emit(
                    call, ViolationKind.EPOCH,
                    f"'{m}' outside any access epoch on this window",
                )
            return ("newreq", wid, call.lineno, call.col_offset)
        if m == "local_view":
            self.scan_args(call, st, escape=False)
            if not esc and not self._epoch_on(wid, st.may):
                self.emit(
                    call, ViolationKind.LOCAL_LOAD_STORE,
                    "direct load/store view taken with no epoch possibly "
                    "open (needs an exclusive self-lock or "
                    "access_begin/access_end)",
                )
            return ("wb", wid)
        if m == "exposed_buffer":
            self.scan_args(call, st, escape=False)
            return ("wb", wid)
        if m in ("free", "free_with"):
            self.scan_args(call, st, escape=True)
            for k in list(st.may):
                if self.owner_root(k) == wid:
                    st.drop(k)
            st.escaped.add(wid)  # a freed window is no longer ours to check
            return None
        self.scan_args(call, st, escape=False)
        return None

    def _pending_request_check(self, call, wid, st: AbsState, op: str) -> None:
        pending = [
            k for k in st.must
            if k[0] == "req" and self.owner.get(k) == wid and not self.exempt(k, st)
        ]
        for k in sorted(pending, key=repr):
            self.emit(
                call, ViolationKind.REQUEST,
                f"{self.info[k][2]} (rput/rget, line {self.info[k][0]}) is "
                f"still pending at {op}: complete it with wait()/test() "
                "before closing the epoch",
            )
        for k in [k for k in st.may if k[0] == "req" and self.owner.get(k) == wid]:
            st.drop(k)

    # -- mutex-set / request methods ------------------------------------------------
    def ms_method(self, call, m, ms_key, st: AbsState):
        esc = self.exempt(ms_key, st)
        if m in ("lock", "trylock"):
            self.scan_args(call, st, escape=False)
            idx = expr_text(call.args[0] if call.args else None)
            key = ("mlock", ms_key, idx)
            self.info.setdefault(
                key, (call.lineno, call.col_offset, f"mutex hold on {idx}")
            )
            if m == "lock":
                st.acquire(key)
            else:
                st.may.add(key)  # conditional acquisition
            return None
        if m == "unlock":
            self.scan_args(call, st, escape=False)
            idx = expr_text(call.args[0] if call.args else None)
            key = ("mlock", ms_key, idx)
            if key in st.may:
                st.release(key)
            return None
        if m == "destroy":
            self.scan_args(call, st, escape=False)
            if ms_key in st.released and ms_key not in st.may and not esc:
                self.emit(
                    call, ViolationKind.LINT_DOUBLE_RELEASE,
                    f"destroy of {self.info[ms_key][2]} already destroyed "
                    "on every path here",
                )
            for k in list(st.may):
                if k[0] == "mlock" and k[1] == ms_key:
                    st.drop(k)
            st.release(ms_key)
            return None
        self.scan_args(call, st, escape=False)
        return None

    def req_method(self, call, m, key, st: AbsState):
        self.scan_args(call, st, escape=False)
        if m in ("wait", "test"):
            st.drop(key)  # completed
        return None

    def nb_method(self, call, m, key, st: AbsState):
        self.scan_args(call, st, escape=False)
        if m in ("wait", "test"):
            # wait() drains; a polled test() is the completion discipline
            st.drop(key)
        return None


class ModuleAnalyzer:
    """Analyze every function in a parsed module."""

    def __init__(self, path: str):
        self.path = path
        self.diags: list[Diagnostic] = []
        self._seen: set[tuple] = set()

    def _emit(self, d: Diagnostic) -> None:
        k = (d.line, d.kind)
        if k in self._seen:
            return
        self._seen.add(k)
        self.diags.append(d)

    def run(self, tree: ast.Module) -> list[Diagnostic]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                FunctionAnalyzer(self.path, self._emit).analyze(node)
        self.diags.sort(key=Diagnostic.sort_key)
        return self.diags


def analyze_module(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Parse and lint one module's source; raises SyntaxError on bad input."""
    tree = ast.parse(source, filename=path)
    return ModuleAnalyzer(path).run(tree)
