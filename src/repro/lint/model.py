"""The API surface the linter understands, as AST-level classification.

The analyzer is *value-tracking*: it only reasons about objects whose
construction is visible in the function being analyzed (``armci =
Armci.init(comm)``, ``win, buf = Win.allocate(...)``, ``ptrs =
armci.malloc(...)``).  Objects that arrive through parameters, helper
calls, or attributes are unknown, and every rule stays silent about
them — that asymmetry is what keeps the whole-repo gate at zero false
positives while still catching each misuse pattern where it is visible.
"""

from __future__ import annotations

import ast

__all__ = [
    "ARMCI_INIT_CLASSES",
    "ARMCI_WRAPPER_CLASSES",
    "ARMCI_COMM_METHODS",
    "WIN_OP_METHODS",
    "WIN_REQ_METHODS",
    "dotted_name",
    "base_name",
    "expr_text",
    "is_pytest_raises",
]

#: classes whose ``.init(comm)`` classmethod yields an ARMCI handle
ARMCI_INIT_CLASSES = {"Armci", "NativeArmci", "DataServerArmci"}

#: wrapper constructors taking an existing handle and returning one
ARMCI_WRAPPER_CLASSES = {"TracingArmci"}

#: ARMCI methods that communicate through a GMR's window — issuing one
#: while a direct-local-access epoch is open on the same GMR reproduces
#: the §V-E double-lock hazard the dynamic LOCK_WHILE_DLA rule catches
ARMCI_COMM_METHODS = {
    "put", "get", "acc",
    "put_s", "get_s", "acc_s",
    "putv", "getv", "accv",
    "nb_put", "nb_get", "nb_acc",
    "rmw", "fence", "all_fence",
}

#: Win data-movement methods that require an access epoch
WIN_OP_METHODS = {"put", "get", "accumulate", "fetch_and_op", "compare_and_swap"}

#: request-based Win methods (MPI-3): the returned request must be
#: completed with wait/test before the epoch closes
WIN_REQ_METHODS = {"rput", "rget"}


def dotted_name(node: ast.expr) -> "tuple[str, ...] | None":
    """``a.b.c`` as ``('a', 'b', 'c')``, or None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def base_name(node: ast.expr) -> "str | None":
    """The root variable of ``ptrs[0]`` / ``ptrs[i].x`` / ``ptrs`` chains."""
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def expr_text(node: "ast.expr | None") -> str:
    """Stable textual key for an expression (epoch targets, mutex ids)."""
    if node is None:
        return "?"
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "?"


def is_pytest_raises(node: ast.expr) -> bool:
    """True for ``pytest.raises(...)`` / ``raises(...)`` context managers.

    Bodies under them are *expected* to misuse the API — the analyzer
    skips them entirely (diagnostics and state effects both)."""
    if not isinstance(node, ast.Call):
        return False
    d = dotted_name(node.func)
    return d is not None and d[-1] == "raises"
