"""The static rule table: what ``repro.lint`` checks, in catalog order.

Every rule emits a :class:`~repro.sanitizer.violations.ViolationKind`
from the shared CATALOG.  Most kinds are also checked dynamically by
:class:`~repro.sanitizer.RmaSanitizer`; the ``LINT_*`` kinds are
static-only path properties.  ``docs/lint.md`` is generated-by-hand
from this table and ``tests/lint_corpus/`` carries one bad/good snippet
pair per rule.
"""

from __future__ import annotations

from ..sanitizer.violations import CATALOG, LINT_ONLY_KINDS, ViolationKind

__all__ = ["STATIC_RULES", "rule_lines"]

#: kind -> how the *static* check fires (the catalog carries the rule
#: statement itself; this is the linter's detection condition)
STATIC_RULES: dict[ViolationKind, str] = {
    ViolationKind.EPOCH: (
        "a tracked window's put/get/accumulate/atomic runs while no "
        "lock, lock_all, or fence epoch can be open on any path"
    ),
    ViolationKind.LOCK_NESTING: (
        "lock/lock_all/fence_sync while an epoch on the same window is "
        "definitely open (one lock per window per process)"
    ),
    ViolationKind.LOCK_UNMATCHED: (
        "unlock/unlock_all with no epoch possibly open on the window"
    ),
    ViolationKind.LOCK_WHILE_DLA: (
        "ARMCI communication on a GMR vector while a direct-local-access "
        "epoch is definitely open on the same vector"
    ),
    ViolationKind.LOCAL_ALIAS: (
        "a window-backed view (local_view/exposed_buffer) used as the "
        "local buffer of a put/get/accumulate through the same window"
    ),
    ViolationKind.LOCAL_LOAD_STORE: (
        "local_view() taken while no epoch can be open on the window"
    ),
    ViolationKind.DLA: (
        "access_begin nested on a vector already in a DLA epoch, or "
        "access_end with no DLA epoch possibly open"
    ),
    ViolationKind.REQUEST: (
        "an rput/rget request discarded unassigned, or still pending "
        "(no wait/test) when unlock/unlock_all closes its epoch"
    ),
    ViolationKind.FLUSH: (
        "flush/flush_all on a window with no passive-target epoch "
        "(lock/lock_all) possibly open — including inside an "
        "active-target fence epoch"
    ),
    ViolationKind.NB_PENDING: (
        "a nonblocking-op handle discarded unassigned, still pending "
        "at finalize, or leaked at a return with no wait()/test(), "
        "wait_all, fence, or barrier completing it"
    ),
    ViolationKind.LINT_LEAK: (
        "an acquired resource (epoch, lock_all, fence, DLA epoch, mutex "
        "hold, allocation, mutex set) still definitely held at a return "
        "with no release on that path"
    ),
    ViolationKind.LINT_DOUBLE_RELEASE: (
        "free/destroy of a resource already definitely released"
    ),
    ViolationKind.LINT_INIT: (
        "any ARMCI call on a handle definitely finalized, or a second "
        "finalize on the same handle"
    ),
}

assert LINT_ONLY_KINDS <= set(STATIC_RULES)


def rule_lines() -> list[str]:
    """Human-readable rule listing for ``python -m repro.lint --rules``."""
    lines = []
    for kind, trigger in STATIC_RULES.items():
        e = CATALOG[kind]
        lines.append(f"{kind.value:20s} {e.section:12s} {e.rule}")
        lines.append(f"{'':20s} {'fires:':12s} {trigger}")
    return lines
