"""The abstract state the per-function interpreter runs over.

Resources are tuples — ``('epoch', win_id, target_text)``,
``('lockall', win_id)``, ``('fence', win_id)``, ``('dla', armci_id,
vector_name)``, ``('mlock', mutexset_key, index_text)``, ``('alloc',
var_name)``, ``('mutexset', var_name)``, ``('req', var_name)`` — held in
a dual *must*/*may* set pair:

* ``must`` (definitely held on every path into this point) drives the
  definite-misuse rules: nesting, double release, leak-on-return.
* ``may`` (possibly held on some path) drives the absence rules: an op
  is outside any epoch only when *no* path could have opened one.

Joining two branches therefore intersects ``must`` and unions ``may``
(and, symmetrically, intersects ``released``/``finalized_must`` while
unioning ``escaped``/``finalized_may``), so diagnostics degrade to
silence — never to noise — as control flow gets harder to see through.
"""

from __future__ import annotations

__all__ = ["AbsState", "join_all"]


class AbsState:
    """One program point's abstract state (see module docstring)."""

    __slots__ = (
        "must", "may", "released", "escaped",
        "finalized_must", "finalized_may", "bindings",
    )

    def __init__(self):
        self.must: set[tuple] = set()
        self.may: set[tuple] = set()
        #: resource keys definitely released on every path (double-release)
        self.released: set[tuple] = set()
        #: object ids / resource keys that left the function's sight
        self.escaped: set = set()
        #: armci ids finalized on every path / on some path
        self.finalized_must: set = set()
        self.finalized_may: set = set()
        #: variable name -> (kind, id-or-key) for tracked values
        self.bindings: dict[str, tuple] = {}

    def clone(self) -> "AbsState":
        st = AbsState()
        st.must = set(self.must)
        st.may = set(self.may)
        st.released = set(self.released)
        st.escaped = set(self.escaped)
        st.finalized_must = set(self.finalized_must)
        st.finalized_may = set(self.finalized_may)
        st.bindings = dict(self.bindings)
        return st

    def join(self, other: "AbsState") -> "AbsState":
        st = AbsState()
        st.must = self.must & other.must
        st.may = self.may | other.may
        st.released = self.released & other.released
        st.escaped = self.escaped | other.escaped
        st.finalized_must = self.finalized_must & other.finalized_must
        st.finalized_may = self.finalized_may | other.finalized_may
        st.bindings = {
            k: v for k, v in self.bindings.items() if other.bindings.get(k) == v
        }
        return st

    # -- resource primitives ---------------------------------------------------
    def acquire(self, key: tuple) -> None:
        self.must.add(key)
        self.may.add(key)
        self.released.discard(key)  # re-acquisition revives the key

    def release(self, key: tuple) -> None:
        definite = key in self.must
        self.must.discard(key)
        self.may.discard(key)
        if definite:
            self.released.add(key)

    def drop(self, key: tuple) -> None:
        """Forget a key without recording a release (finalize/free-all)."""
        self.must.discard(key)
        self.may.discard(key)

    def is_escaped(self, *ids) -> bool:
        return any(i in self.escaped for i in ids)


def join_all(states: "list[AbsState | None]") -> "AbsState | None":
    """Join every live state; None when all paths are dead."""
    live = [s for s in states if s is not None]
    if not live:
        return None
    out = live[0]
    for s in live[1:]:
        out = out.join(s)
    return out
