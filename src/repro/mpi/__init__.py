"""Simulated MPI-2 (with gated MPI-3 RMA extensions).

A functional, strict-semantics MPI substrate: ranks are threads, windows
are NumPy buffers, and every rule the MPI-2 standard declares *erroneous*
(conflicting RMA accesses, double window locks, ops outside epochs) is
detected and raised.  See DESIGN.md for why this substitution preserves
the behaviour the paper's design responds to.

Public surface::

    from repro import mpi

    def main(comm):
        win, mem = mpi.Win.allocate(comm, 1024)
        win.lock(0, mpi.LOCK_EXCLUSIVE)
        ...
        win.unlock(0)

    mpi.spmd_run(4, main)
"""

from . import datatypes, ops
from .backend import BACKENDS, RuntimeBackend, ThreadBackend, resolve_backend
from .comm import Comm, Intercomm
from .datatypes import (
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    Datatype,
    SegmentMap,
    contiguous,
    hindexed,
    indexed,
    indexed_block,
    struct_type,
    subarray,
    vector,
)
from .errors import (
    ArgumentError,
    CommRevokedError,
    DatatypeError,
    MPIError,
    OpTimeoutError,
    ProgressDeadlockError,
    RankKilledError,
    RetriesExhausted,
    RMAConflictError,
    RMARangeError,
    RMASyncError,
    TargetFailedError,
    WinError,
)
from .group import UNDEFINED, Group
from .ops import BAND, BOR, BXOR, LAND, LOR, MAX, MIN, NO_OP, PROD, REPLACE, SUM, Op
from .p2p import ANY_SOURCE, ANY_TAG, Request, Status
from .progress import MPI_ASYNC, MPI_POLLING, NATIVE_CHT, ProgressConfig
from .runtime import Proc, RankFailedError, Runtime, current_proc, spmd_run
from .window import LOCK_EXCLUSIVE, LOCK_SHARED, Win

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "ArgumentError",
    "BACKENDS",
    "BAND",
    "BOR",
    "BXOR",
    "BYTE",
    "Comm",
    "CommRevokedError",
    "Datatype",
    "DatatypeError",
    "DOUBLE",
    "FLOAT",
    "Group",
    "INT",
    "Intercomm",
    "LAND",
    "LOCK_EXCLUSIVE",
    "LOCK_SHARED",
    "LONG",
    "LOR",
    "MAX",
    "MIN",
    "MPI_ASYNC",
    "MPI_POLLING",
    "MPIError",
    "NATIVE_CHT",
    "NO_OP",
    "Op",
    "OpTimeoutError",
    "PROD",
    "Proc",
    "ProgressConfig",
    "ProgressDeadlockError",
    "RankFailedError",
    "RankKilledError",
    "REPLACE",
    "Request",
    "RetriesExhausted",
    "RMAConflictError",
    "RMARangeError",
    "RMASyncError",
    "Runtime",
    "RuntimeBackend",
    "SegmentMap",
    "Status",
    "SUM",
    "TargetFailedError",
    "ThreadBackend",
    "UNDEFINED",
    "Win",
    "WinError",
    "contiguous",
    "current_proc",
    "datatypes",
    "hindexed",
    "indexed",
    "indexed_block",
    "ops",
    "resolve_backend",
    "spmd_run",
    "struct_type",
    "subarray",
    "vector",
]
