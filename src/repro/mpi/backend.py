"""Runtime execution backends: how simulated ranks map onto the OS.

The :class:`~repro.mpi.runtime.Runtime` delegates three decisions to a
pluggable backend object:

* **spmd** — how the N rank bodies execute (threads under the giant
  lock, or one OS process per rank),
* **make_world** — what the world communicator is (the plain shared
  :class:`~repro.mpi.comm.Comm`, or a process-local replica that routes
  messages through OS queues),
* **win_create** — where window memory lives (the caller's NumPy arrays,
  or ``multiprocessing.shared_memory`` segments every rank attaches).

``backend="thread"`` (the default, :class:`ThreadBackend`) is the
deterministic path every checking layer is built on: ranks are threads
sharing one address space, so the sanitizer, the schedule fuzzer, fault
injection, and the watchdog all see every rank's state.  The
``backend="proc"`` alternative (:mod:`repro.mpi.backend_proc`) trades
those cross-rank checks for true multi-core parallelism.  See
``docs/backends.md`` for the full comparison.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .comm import Comm
    from .runtime import Runtime
    from .window import Win

__all__ = ["RuntimeBackend", "ThreadBackend", "BACKENDS", "resolve_backend"]


class RuntimeBackend(ABC):
    """The three extension points a rank-execution backend provides."""

    #: short identifier (``"thread"`` / ``"proc"``) used in config
    #: validation and error messages
    name: str = "abstract"

    @abstractmethod
    def spmd(
        self,
        runtime: "Runtime",
        fn: Callable[..., Any],
        args: tuple,
        join_timeout: float,
    ) -> list[Any]:
        """Run ``fn(comm, *args)`` on every rank; return per-rank results."""

    @abstractmethod
    def make_world(self, runtime: "Runtime") -> "Comm":
        """Build the world communicator ``spmd`` hands to every rank."""

    @abstractmethod
    def win_create(
        self,
        comm: "Comm",
        local: Any,
        disp_unit: int,
        strict: bool,
        mpi3: bool,
    ) -> "Win":
        """Collective window creation (the body of ``Win.create``)."""


class ThreadBackend(RuntimeBackend):
    """Ranks as OS threads under the giant lock (the deterministic path).

    This is the historical runtime verbatim: one shared address space,
    every MPI state transition linearised by ``runtime.cond``, windows
    aliasing the caller's NumPy buffers.  The deterministic scheduler,
    the RMA sanitizer, and the fault injector all assume this backend —
    they observe and steer *all* ranks from one process.
    """

    name = "thread"

    def make_world(self, runtime: "Runtime") -> "Comm":
        from .comm import Comm
        from .group import Group

        with runtime.cond:
            cid = runtime.alloc_context_id()
        return Comm(runtime, Group(range(runtime.nproc)), cid)

    def spmd(
        self,
        runtime: "Runtime",
        fn: Callable[..., Any],
        args: tuple,
        join_timeout: float,
    ) -> list[Any]:
        from .comm import Comm  # deferred: comm.py imports runtime
        from .runtime import Proc, RankFailedError, RankKilledError, _tls
        from .errors import ProgressDeadlockError

        world = Comm._world(runtime)
        results: list[Any] = [None] * runtime.nproc
        if runtime.schedule is not None:
            runtime.schedule.begin_run(runtime)
        if runtime.faults is not None:
            runtime.faults.begin_run(runtime)

        def body(proc: "Proc") -> None:
            _tls.proc = proc
            try:
                if runtime.schedule is not None:
                    with runtime.cond:
                        runtime.schedule.thread_started(proc.rank)
                results[proc.rank] = fn(world, *args)
            except RankKilledError as exc:
                # injected death: record it on the proc but do not poison
                # the run — survivors must be able to finish (or raise
                # their own typed TargetFailedError).
                with runtime.cond:
                    proc.exception = exc
                    runtime.mark_dead(proc.rank)
            except BaseException as exc:  # noqa: BLE001 - propagated to caller
                with runtime.cond:
                    proc.exception = exc
                    if runtime.failed is None and not isinstance(exc, RankFailedError):
                        runtime.failed = exc
                    runtime.notify_progress()
            finally:
                with runtime.cond:
                    proc.finished = True
                    if runtime.schedule is not None:
                        runtime.schedule.thread_finished(proc.rank)
                    runtime._maybe_clear_dead_stall()
                    runtime.notify_progress()
                _tls.proc = None

        threads = [
            threading.Thread(target=body, args=(p,), name=f"rank-{p.rank}", daemon=True)
            for p in runtime.procs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=join_timeout)
        if any(t.is_alive() for t in threads):
            with runtime.cond:
                if runtime.failed is None:
                    runtime.failed = ProgressDeadlockError(
                        "rank threads did not finish within join_timeout"
                    )
                runtime._deadlocked = True
                runtime.notify_progress()
            # grace period scales with the caller's patience budget instead
            # of a hard-coded constant: a long join_timeout implies a slow
            # workload whose poisoned ranks also need longer to unwind
            grace = max(1.0, min(join_timeout / 4.0, 30.0))
            for t in threads:
                t.join(timeout=grace)
        if runtime.failed is not None:
            raise runtime.failed
        for p in runtime.procs:
            if p.exception is not None and not isinstance(p.exception, RankKilledError):
                raise p.exception
        return results

    def win_create(
        self,
        comm: "Comm",
        local: Any,
        disp_unit: int,
        strict: bool,
        mpi3: bool,
    ) -> "Win":
        from .window import Win, _local_exposure_view

        view = _local_exposure_view(local)
        contribs = comm.allgather((view, disp_unit))

        def build() -> "Win":
            buffers = [c[0] for c in contribs]
            units = [c[1] for c in contribs]
            return Win(comm, buffers, units, strict=strict, mpi3=mpi3)

        # second rendezvous so every rank shares ONE Win object
        with comm.runtime.cond:
            win = comm._coll.run(comm.rank, "win_create", None, lambda _c: build())
        return win


def _proc_backend() -> RuntimeBackend:
    from .backend_proc import ProcBackend

    return ProcBackend()


#: backend registry: name -> zero-argument factory
BACKENDS: dict[str, Callable[[], RuntimeBackend]] = {
    "thread": ThreadBackend,
    "proc": _proc_backend,
}


def resolve_backend(spec: "str | RuntimeBackend | None") -> RuntimeBackend:
    """Resolve a backend spec (name, instance, or None) to an instance."""
    if spec is None:
        return ThreadBackend()
    if isinstance(spec, RuntimeBackend):
        return spec
    factory = BACKENDS.get(spec)
    if factory is None:
        from .errors import ArgumentError

        raise ArgumentError(
            f"unknown runtime backend {spec!r}; expected one of "
            f"{sorted(BACKENDS)} or a RuntimeBackend instance"
        )
    return factory()
