"""Process-parallel runtime backend: one OS process per rank.

``Runtime(nproc, backend="proc")`` escapes the GIL: every rank is a
forked child process, window memory lives in
``multiprocessing.shared_memory`` segments (the MPI-3
``MPI_Win_allocate_shared`` analogue from Hammond et al., PAPERS.md),
and puts/gets are true cross-process memory traffic.  The moving parts:

* **Parent** (:class:`ProcBackend`): forks the children, then runs a
  monitor loop — collecting per-rank results, broadcasting a
  ``rank_dead`` control message when a child exits abnormally (so
  survivors raise :class:`~repro.mpi.runtime.RankFailedError`, the
  cross-process analogue of ``mark_dead``), and enforcing
  ``join_timeout`` as the deadlock backstop (the thread watchdog cannot
  see other processes).
* **Child** (:func:`_child_main`): builds a private :class:`Runtime`
  *replica* (``apply_hooks=False`` — ambient sanitizer/fuzzer/fault
  hooks must not silently duplicate into processes they cannot
  observe), a :class:`ProcComm` world, and a pump thread that drains
  this rank's inbox queue into the local p2p engines.
* **Messaging** (:class:`ProcComm`): sends put pickled payloads on the
  destination's inbox queue; the destination's pump injects them into
  the matching :class:`~repro.mpi.p2p.P2PEngine` replica.  Context ids
  are *structural tuples* (``("w",)``, parent + ``("dup", seq)``, …)
  because integer context counters diverge across processes when
  communicators are created on subgroups.
* **Collectives** (:class:`_ProcCollEngine`): gather-to-root /
  broadcast over a reserved p2p engine; every process then runs the
  ``compute`` step on the full contribution dict, so collectives that
  construct unpicklable objects (communicators, windows, ARMCI
  registries) build a consistent per-process replica — contributions
  are inserted in rank order to keep replicas deterministic.
* **Windows** (:class:`ProcWin`): each rank's exposure is copied into a
  shared-memory segment all peers attach; passive-target ``lock`` maps
  onto ``fcntl.flock`` range locks (shared/exclusive), and the atomic
  ops (``accumulate``/``fetch_and_op``/``compare_and_swap``) take a
  separate per-target *atomic sublock* file so they are atomic across
  processes even inside shared epochs (MPI-3 ``lock_all`` takes no
  cross-process lock at all — like real MPI, conflicting plain put/put
  is the user's race, atomics are the runtime's job).

What the proc backend does **not** support — by design, raising typed
errors rather than misbehaving: the deterministic scheduler and fuzzer,
the RMA sanitizer, fault *injection* (real ``kill`` works: see the
monitor), ULFM ``revoke``/``agree``/``shrink``, and intercommunicators.
``docs/backends.md`` has the full matrix.
"""

from __future__ import annotations

import fcntl
import itertools
import os
import pickle
import queue as _queue
import shutil
import tempfile
import threading
import time
import traceback
import zlib
from contextlib import contextmanager
from multiprocessing import get_context, resource_tracker, shared_memory
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from .backend import RuntimeBackend
from .comm import Comm
from .errors import (
    ArgumentError,
    CommError,
    InternalError,
    ProgressDeadlockError,
    RMASyncError,
    TagError,
    TargetFailedError,
)
from .group import Group
from .p2p import ANY_SOURCE, P2PEngine, Request
from .runtime import RankFailedError, Runtime, _tls, current_proc
from .window import (
    LOCK_EXCLUSIVE,
    LOCK_SHARED,
    Win,
    WinError,
    _Epoch,
    _local_exposure_view,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["ProcBackend", "ProcComm", "ProcWin"]

#: every operation the thread backend supports but this one rejects
#: carries this hint in its error message
_THREAD_ONLY = "is thread-backend only (see docs/backends.md); use backend='thread'"


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------

class ProcBackend(RuntimeBackend):
    """One forked OS process per rank; true multi-core parallelism."""

    name = "proc"

    _run_counter = itertools.count()

    def spmd(
        self,
        runtime: "Runtime",
        fn: Callable[..., Any],
        args: tuple,
        join_timeout: float,
    ) -> list[Any]:
        if runtime.schedule is not None:
            raise InternalError(f"the deterministic scheduler {_THREAD_ONLY}")
        if runtime.sanitizer is not None:
            raise InternalError(f"the RMA sanitizer {_THREAD_ONLY}")
        if runtime.faults is not None:
            raise InternalError(f"fault injection {_THREAD_ONLY}")
        nproc = runtime.nproc
        ctx = get_context("fork")
        inboxes = [ctx.Queue() for _ in range(nproc)]
        result_q = ctx.Queue()
        lockdir = tempfile.mkdtemp(prefix="repro-proc-")
        run_id = f"{os.getpid()}x{next(self._run_counter)}"
        cfg = (
            runtime.nproc,
            runtime.watchdog_s,
            runtime.op_timeout_s,
            runtime.op_retries,
            runtime.seed,
        )
        children = [
            ctx.Process(
                target=_child_main,
                args=(r, cfg, fn, args, inboxes, result_q, lockdir, run_id),
                name=f"rank-{r}",
                daemon=True,
            )
            for r in range(nproc)
        ]
        try:
            for p in children:
                p.start()
            results, errors, died = self._monitor(
                children, inboxes, result_q, join_timeout
            )
        finally:
            for p in children:
                if p.is_alive():
                    p.terminate()
            for p in children:
                p.join(timeout=5.0)
            for q in inboxes:
                q.cancel_join_thread()
            shutil.rmtree(lockdir, ignore_errors=True)
        # error precedence mirrors the thread backend: the original
        # failure (any non-secondary exception) outranks the
        # RankFailedError/TargetFailedError echoes it caused elsewhere.
        primary = {
            r: e
            for r, e in errors.items()
            if not isinstance(e, (RankFailedError, TargetFailedError))
        }
        if primary:
            raise primary[min(primary)]
        if died:
            r = min(died)
            raise RankFailedError(
                f"rank {r} process died without reporting a result "
                f"(exit code {died[r]})"
            )
        if errors:
            raise errors[min(errors)]
        return [results[r] for r in range(nproc)]

    def _monitor(
        self,
        children: list,
        inboxes: list,
        result_q,
        join_timeout: float,
    ) -> tuple[dict[int, Any], dict[int, BaseException], dict[int, "int | None"]]:
        """Drain results, detect silent deaths, broadcast ``rank_dead``."""
        nproc = len(children)
        results: dict[int, Any] = {}
        errors: dict[int, BaseException] = {}
        died: dict[int, "int | None"] = {}
        pending = set(range(nproc))
        deadline = time.monotonic() + join_timeout

        def announce(rank: int, detail: str) -> None:
            for other in range(nproc):
                if other != rank and other in pending:
                    inboxes[other].put(("ctl", "rank_dead", rank, detail))

        def drain(block_s: float) -> None:
            try:
                while True:
                    rank, status, payload = result_q.get(timeout=block_s)
                    block_s = 0.0
                    pending.discard(rank)
                    if status == "ok":
                        results[rank] = payload
                        continue
                    exc = (
                        payload
                        if isinstance(payload, BaseException)
                        else InternalError(f"rank {rank} failed: {payload}")
                    )
                    errors[rank] = exc
                    # a raised child is as dead to its peers as a killed
                    # one: it exits without serving further collectives
                    announce(rank, f"raised {type(exc).__name__}")
            except _queue.Empty:
                pass

        while pending:
            if time.monotonic() > deadline:
                raise ProgressDeadlockError(
                    f"rank processes {sorted(pending)} did not finish within "
                    f"join_timeout={join_timeout}s (proc-backend deadlock backstop)"
                )
            drain(0.05)
            stopped = [r for r in pending if not children[r].is_alive()]
            if stopped:
                # a racing result may still sit in the queue's pipe buffer;
                # give it a grace period before declaring a silent death
                drain(0.25)
                for r in stopped:
                    if r in pending:
                        pending.discard(r)
                        died[r] = children[r].exitcode
                        announce(r, f"exit code {children[r].exitcode}")
        return results, errors, died

    def make_world(self, runtime: "Runtime") -> "Comm":
        raise InternalError(
            "the proc backend's world communicator exists only inside "
            "rank processes (call it via spmd)"
        )

    def win_create(self, comm, local, disp_unit, strict, mpi3):
        raise InternalError(
            "proc-backend windows are created inside rank processes "
            "(call Win.create from spmd code)"
        )


# ---------------------------------------------------------------------------
# child side
# ---------------------------------------------------------------------------

def _child_main(
    rank: int,
    cfg: tuple,
    fn: Callable[..., Any],
    args: tuple,
    inboxes: list,
    result_q,
    lockdir: str,
    run_id: str,
) -> None:
    nproc, watchdog_s, op_timeout_s, op_retries, seed = cfg
    backend = _ProcChildBackend(rank, nproc, inboxes, lockdir, run_id)
    runtime = Runtime(
        nproc,
        watchdog_s=watchdog_s,
        op_timeout_s=op_timeout_s,
        op_retries=op_retries,
        seed=seed,
        backend=backend,
        apply_hooks=False,
    )
    backend.runtime = runtime
    _tls.proc = runtime.procs[rank]
    stop = threading.Event()
    pump = threading.Thread(
        target=_pump, args=(backend, runtime, inboxes[rank], stop),
        name=f"pump-{rank}", daemon=True,
    )
    pump.start()
    status, payload = "ok", None
    try:
        world = Comm._world(runtime)
        payload = fn(world, *args)
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        # pickling drops __traceback__; carry the formatted one as a note
        try:
            exc.add_note(f"[rank {rank} traceback]\n{traceback.format_exc()}")
        except Exception:
            pass
        status, payload = "err", exc
    finally:
        try:
            pickle.dumps(payload)
        except Exception:
            # the queue's feeder thread pickles asynchronously; an
            # unpicklable result would be dropped silently, so degrade
            # to a description here
            if status == "ok":
                status = "err"
                payload = (
                    f"rank {rank} returned an unpicklable result of type "
                    f"{type(payload).__name__}"
                )
            else:
                payload = f"{type(payload).__name__}: {payload}"
        # clean up BEFORE reporting: once the result is posted the
        # parent may consider this child done and terminate stragglers,
        # which must not race the shared-memory unlinks
        stop.set()
        pump.join(timeout=1.0)
        backend.release_windows()
        result_q.put((rank, status, payload))


def _pump(backend: "_ProcChildBackend", runtime: "Runtime", inbox, stop) -> None:
    """Drain this rank's inbox into the local p2p-engine replicas."""
    while not stop.is_set():
        try:
            msg = inbox.get(timeout=0.05)
        except _queue.Empty:
            continue
        try:
            if msg[0] == "p2p":
                _, key, src, dst, tag, payload = msg
                with runtime.cond:
                    engine = backend.engines.get(key)
                    if engine is None:
                        # the matching communicator replica is not
                        # constructed yet on this rank; stash until its
                        # engine registers
                        backend.stash.setdefault(key, []).append(
                            (src, dst, tag, payload)
                        )
                    else:
                        engine.post_send(src, dst, tag, payload)
            elif msg[0] == "ctl" and msg[1] == "rank_dead":
                _, _, dead, detail = msg
                with runtime.cond:
                    runtime.mark_dead(dead)
                    if runtime.failed is None:
                        runtime.failed = RankFailedError(
                            f"rank {dead} process died ({detail})"
                        )
                    runtime.notify_progress()
        except BaseException as exc:  # noqa: BLE001 - pump must survive
            with runtime.cond:
                runtime.death_hook_errors.append(exc)


class _ProcChildBackend(RuntimeBackend):
    """The backend a child-process runtime replica delegates to."""

    name = "proc"

    def __init__(
        self, rank: int, nproc: int, inboxes: list, lockdir: str, run_id: str
    ):
        self.rank = rank
        self.nproc = nproc
        self.inboxes = inboxes
        self.lockdir = lockdir
        self.run_id = run_id
        self.runtime: "Runtime | None" = None
        #: ctx key -> P2PEngine replica (guarded by runtime.cond)
        self.engines: dict[Any, P2PEngine] = {}
        #: ctx key -> messages that arrived before the engine registered
        self.stash: dict[Any, list[tuple]] = {}
        #: per-context window sequence numbers (window tokens must agree
        #: across processes, so they derive from the comm's structural
        #: key + creation order, not the per-runtime ``win_id`` counter)
        self._win_seq: dict[Any, int] = {}
        self._windows: list["ProcWin"] = []

    # -- RuntimeBackend ------------------------------------------------------
    def spmd(self, runtime, fn, args, join_timeout):
        raise InternalError("nested spmd inside a proc-backend rank")

    def make_world(self, runtime: "Runtime") -> "Comm":
        return ProcComm(runtime, Group(range(self.nproc)), ("w",), self)

    def win_create(self, comm, local, disp_unit, strict, mpi3):
        view = _local_exposure_view(local)
        token = self._win_token(comm)
        me = comm.rank
        own = shared_memory.SharedMemory(
            name=self._segment_name(token, me), create=True,
            size=max(1, view.nbytes),
        )
        if view.nbytes:
            np.ndarray((view.nbytes,), dtype=np.uint8, buffer=own.buf)[:] = view
        # the allgather is also the barrier guaranteeing every segment
        # exists before any peer attaches
        contribs = comm.allgather((view.nbytes, disp_unit))
        buffers: list[np.ndarray] = []
        units: list[int] = []
        segments: list[shared_memory.SharedMemory] = []
        for r in range(comm.size):
            nbytes, unit = contribs[r]
            if r == me:
                seg = own
            else:
                seg = shared_memory.SharedMemory(
                    name=self._segment_name(token, r), create=False
                )
                # CPython's resource tracker registers attached segments
                # too; unregister so only the creator unlinks
                resource_tracker.unregister(seg._name, "shared_memory")
            buffers.append(np.ndarray((nbytes,), dtype=np.uint8, buffer=seg.buf))
            units.append(unit)
            segments.append(seg)
        win = ProcWin(
            comm, buffers, units, strict=strict, mpi3=mpi3,
            segments=segments, creator_rank=me, token=token,
            lockdir=self.lockdir,
        )
        self._windows.append(win)
        return win

    # -- child-side plumbing -------------------------------------------------
    def register_engine(self, key: Any, engine: P2PEngine) -> None:
        """Publish an engine replica; replay messages that beat it here.

        Must be called with ``runtime.cond`` held (communicator
        construction paths already do).
        """
        self.engines[key] = engine
        for src, dst, tag, payload in self.stash.pop(key, ()):
            engine.post_send(src, dst, tag, payload)

    def send_to(self, dst_world: int, msg: tuple) -> None:
        self.inboxes[dst_world].put(msg)

    def _win_token(self, comm: "Comm") -> str:
        """Deterministic cross-process window identity.

        Same structural context key + same per-comm creation ordinal on
        every member ⇒ same token ⇒ same segment names and lock files.
        """
        key = comm.context_id
        seq = self._win_seq.get(key, 0)
        self._win_seq[key] = seq + 1
        return f"{zlib.crc32(repr(key).encode()) & 0xFFFFFFFF:08x}.{seq}"

    def _segment_name(self, token: str, rank: int) -> str:
        return f"repro-{self.run_id}-{token}-r{rank}"

    def release_windows(self) -> None:
        for win in self._windows:
            win._release_segments()


# ---------------------------------------------------------------------------
# communicators
# ---------------------------------------------------------------------------

class ProcComm(Comm):
    """Per-process communicator replica routing p2p through OS queues.

    ``context_id`` is a structural tuple, identical on every member
    process because communicator-management calls are collective and
    each replica advances the same sub-creation counter in lockstep.
    """

    def __init__(
        self,
        runtime: "Runtime",
        group: Group,
        ctx_key: tuple,
        backend: _ProcChildBackend,
    ):
        super().__init__(runtime, group, ctx_key)
        self._backend = backend
        with runtime.cond:
            backend.register_engine(ctx_key, self._p2p)
        self._coll = _ProcCollEngine(self)
        #: ordinal of the next derived communicator (advances identically
        #: on every member because dup/split/create are collective)
        self._sub_seq = 0

    # -- p2p -----------------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        self.runtime.check_self_alive()
        self._check_revoked()
        if tag < 0:
            raise TagError(f"send tag must be >= 0, got {tag}")
        dst_world = self.group.world_rank(dest)
        me = current_proc().rank
        if dst_world == me:
            with self.runtime.cond:
                self._p2p.post_send(me, dst_world, tag, payload)
            return
        with self.runtime.cond:
            if dst_world in self.runtime.dead_ranks:
                raise TargetFailedError(
                    f"send to failed rank {dest} (world {dst_world})"
                )
        if isinstance(payload, np.ndarray):
            # snapshot: the sender may mutate its buffer after an eager
            # send returns (thread backend copies in post_send)
            payload = np.ascontiguousarray(payload).copy()
        self._backend.send_to(
            dst_world, ("p2p", self.context_id, me, dst_world, tag, payload)
        )

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        self.send(payload, dest, tag)
        with self.runtime.cond:
            req = Request(self._p2p)
            req._finish(None)
        return req

    # -- management ----------------------------------------------------------
    def _next_sub_seq(self) -> int:
        with self.runtime.cond:
            seq = self._sub_seq
            self._sub_seq += 1
        return seq

    def dup(self) -> "Comm":
        seq = self._next_sub_seq()
        self.barrier()  # collective, like the thread backend's rendezvous
        return ProcComm(
            self.runtime, self.group, self.context_id + ("dup", seq),
            self._backend,
        )

    def split(self, color: int, key: int = 0) -> "Comm | None":
        seq = self._next_sub_seq()
        me_world = self.group.world_rank(self.rank)
        contribs = self.allgather((color, key, me_world))
        if color < 0:
            return None
        members = sorted(
            (k, r, w) for r, (c, k, w) in enumerate(contribs) if c == color
        )
        grp = Group(w for _k, _r, w in members)
        return ProcComm(
            self.runtime, grp, self.context_id + ("split", seq, color),
            self._backend,
        )

    def create(self, group: Group) -> "Comm | None":
        for w in group:
            if not self.group.contains_world(w):
                raise ArgumentError(f"create: world rank {w} not in parent {self}")
        seq = self._next_sub_seq()
        self.barrier()  # create is collective over the parent
        if not group.contains_world(current_proc().rank):
            return None
        return ProcComm(
            self.runtime, group, self.context_id + ("create", seq),
            self._backend,
        )

    # -- unsupported surfaces --------------------------------------------------
    def revoke(self) -> None:
        raise CommError(f"Comm.revoke {_THREAD_ONLY}")

    def agree(self, flag: int = 1) -> int:
        raise CommError(f"Comm.agree {_THREAD_ONLY}")

    def shrink(self) -> "Comm":
        raise CommError(f"Comm.shrink {_THREAD_ONLY}")

    def create_intercomm(self, *args: Any, **kw: Any):
        raise CommError(f"Comm.create_intercomm {_THREAD_ONLY}")


class _ProcCollEngine:
    """Gather-to-root / broadcast collectives over a reserved p2p engine.

    Compatible with :class:`~repro.mpi.collectives.CollectiveEngine.run`:
    called with the giant (process-local) lock held; returns
    ``compute(contribs)`` where ``contribs`` maps comm rank ->
    contribution.  *Every* process runs ``compute`` — object-building
    collectives (``comm_dup``, ``armci_malloc``, ``win_free``) construct
    per-process replicas, which is exactly what a distributed runtime
    needs.  Contributions are inserted in rank order so dict-iteration
    dependent computes stay deterministic across processes.
    """

    def __init__(self, comm: ProcComm):
        self.comm = comm
        self._backend = comm._backend
        key = (comm.context_id, "__coll__")
        self._key = key
        self._p2p = P2PEngine(comm.runtime, key)
        with comm.runtime.cond:
            self._backend.register_engine(key, self._p2p)
        #: collective ordinal; doubles as the message tag so mismatched
        #: call sequences hang (-> join_timeout) instead of cross-matching
        self._seq = 0

    def run(
        self,
        rank: int,
        kind: str,
        contribution: Any,
        compute: Callable[[dict[int, Any]], Any],
    ) -> Any:
        rt = self.comm.runtime
        rt.check_self_alive()
        seq = self._seq
        self._seq += 1
        size = self.comm.size
        if size == 1:
            return compute({0: contribution})
        me_world = current_proc().rank
        root_world = self.comm.group.world_rank(0)
        if rank == 0:
            arrived: dict[int, tuple[str, Any]] = {}
            for _ in range(size - 1):
                req = self._p2p.post_recv(me_world, ANY_SOURCE, seq, None)
                rt.wait_for(
                    lambda: req._done, what=f"collective {kind} (gather)"
                )
                if req._error is not None:
                    raise req._error
                peer_rank, peer_kind, peer_contrib = req._status.payload
                arrived[peer_rank] = (peer_kind, peer_contrib)
            contribs: dict[int, Any] = {0: contribution}
            for r in range(1, size):
                peer_kind, peer_contrib = arrived[r]
                if peer_kind != kind:
                    exc = InternalError(
                        f"collective mismatch: rank 0 in {kind!r}, "
                        f"rank {r} in {peer_kind!r}"
                    )
                    for r2 in range(1, size):
                        self._send(self.comm.group.world_rank(r2), seq, exc)
                    raise exc
                contribs[r] = peer_contrib
            blob = [(r, contribs[r]) for r in range(size)]
            for r in range(1, size):
                self._send(self.comm.group.world_rank(r), seq, (kind, blob))
        else:
            self._send(root_world, seq, (rank, kind, contribution))
            req = self._p2p.post_recv(me_world, root_world, seq, None)
            rt.wait_for(lambda: req._done, what=f"collective {kind} (result)")
            if req._error is not None:
                raise req._error
            payload = req._status.payload
            if isinstance(payload, BaseException):
                raise payload
            root_kind, blob = payload
            if root_kind != kind:
                raise InternalError(
                    f"collective mismatch: rank {rank} in {kind!r}, "
                    f"rank 0 in {root_kind!r}"
                )
            contribs = {}
            for r, c in blob:
                contribs[r] = c
        return compute(contribs)

    def _send(self, dst_world: int, tag: int, payload: Any) -> None:
        me = current_proc().rank
        if dst_world == me:
            self._p2p.post_send(me, dst_world, tag, payload)
        else:
            self._backend.send_to(
                dst_world, ("p2p", self._key, me, dst_world, tag, payload)
            )

    def fail_all(self, exc: BaseException) -> None:
        self._p2p.fail_all(exc)


# ---------------------------------------------------------------------------
# windows
# ---------------------------------------------------------------------------

class ProcWin(Win):
    """A window whose memory is shared-memory segments, locks are flocks.

    Epoch bookkeeping (one-lock-per-window, epoch-required, strict
    conflict tracking) stays process-local in the inherited state; the
    *mutual exclusion* between processes comes from two families of
    ``fcntl.flock`` files under the run's lock directory:

    * ``<token>.t<target>.lock`` — the passive-target epoch lock taken
      by :meth:`lock` (``LOCK_SH``/``LOCK_EX`` mirroring
      shared/exclusive); :meth:`lock_all` deliberately takes none
      (MPI-3 shared epochs don't exclude anyone).
    * ``<token>.t<target>.atomic`` — a short-lived exclusive sublock
      wrapped around accumulate/fetch_and_op/compare_and_swap so
      atomics are atomic across processes even inside shared epochs.
      Ordering is always epoch-lock → atomic-sublock, so the two
      families cannot deadlock.
    """

    def __init__(
        self,
        comm: Comm,
        buffers: list[np.ndarray],
        disp_units: list[int],
        strict: bool = True,
        mpi3: bool = False,
        *,
        segments: list,
        creator_rank: int,
        token: str,
        lockdir: str,
    ):
        super().__init__(comm, buffers, disp_units, strict=strict, mpi3=mpi3)
        self._segments = segments
        self._creator_rank = creator_rank
        self._token = token
        self._lockdir = lockdir
        #: target -> open epoch-lock file (this process holds its flock)
        self._epoch_files: dict[int, Any] = {}
        self._released = False

    # -- flock plumbing ------------------------------------------------------
    def _lockfile(self, target_rank: int, kind: str = "lock") -> str:
        return os.path.join(
            self._lockdir, f"{self._token}.t{target_rank}.{kind}"
        )

    def _acquire_flock(self, path: str, exclusive: bool):
        """Blocking-with-failure-checks flock acquisition.

        Polls nonblockingly so a survivor stuck behind a dead peer's
        lock still observes ``runtime.failed`` (set by the pump on a
        ``rank_dead`` control message) and raises the typed error.
        """
        rt = self.runtime
        f = open(path, "ab")
        op = (fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH) | fcntl.LOCK_NB
        try:
            while True:
                try:
                    fcntl.flock(f.fileno(), op)
                    return f
                except OSError:
                    pass
                with rt.cond:
                    if rt.failed is not None:
                        raise RankFailedError(
                            f"rank failed elsewhere: {rt.failed!r}"
                        )
                time.sleep(0.002)
        except BaseException:
            f.close()
            raise

    @staticmethod
    def _drop_flock(f) -> None:
        fcntl.flock(f.fileno(), fcntl.LOCK_UN)
        f.close()

    @contextmanager
    def _atomic_section(self, target_rank: int):
        f = self._acquire_flock(self._lockfile(target_rank, "atomic"), True)
        try:
            yield
        finally:
            self._drop_flock(f)

    # -- passive-target sync -------------------------------------------------
    def lock(self, target_rank: int, mode: str = LOCK_EXCLUSIVE) -> None:
        if mode not in (LOCK_SHARED, LOCK_EXCLUSIVE):
            raise ArgumentError(f"unknown lock mode {mode!r}")
        self._check_target(target_rank)
        rt = self.runtime
        origin = current_proc().rank
        if self.comm.group.rank_of_world(origin) < 0:
            raise WinError(
                f"world rank {origin} is not in this window's group and "
                "cannot open an access epoch on it"
            )
        with rt.cond:
            self._check_alive()
            rt.check_self_alive()
            if origin in self._held:
                raise RMASyncError(
                    f"origin {origin} already holds a lock on target "
                    f"{self._held[origin]} of this window (MPI-2 allows one "
                    "lock per window per process)"
                )
            if origin in self._lock_all:
                raise RMASyncError("lock() inside a lock_all epoch")
            if origin in self._fence_members:
                raise RMASyncError("lock() inside an active-target fence epoch")
            if self._target_world(target_rank) in rt.dead_ranks:
                raise TargetFailedError(
                    f"lock: target rank {target_rank} of win {self.win_id} "
                    "has failed"
                )
        # the cross-process exclusion, acquired without the giant lock so
        # the pump thread keeps running while we spin
        f = self._acquire_flock(
            self._lockfile(target_rank), mode == LOCK_EXCLUSIVE
        )
        with rt.cond:
            self._epoch_files[target_rank] = f
            ls = self._locks[target_rank]
            ls.mode = mode
            ls.holders.add(origin)
            self._held[origin] = target_rank
            self._epochs[(origin, target_rank)] = _Epoch(origin, target_rank, mode)
            rt.notify_progress()

    def unlock(self, target_rank: int) -> None:
        self._check_target(target_rank)
        rt = self.runtime
        origin = current_proc().rank
        with rt.cond:
            self._check_alive()
            rt.check_self_alive()
            epoch = self._epochs.pop((origin, target_rank), None)
            if epoch is None or self._held.get(origin) != target_rank:
                raise RMASyncError(
                    f"unlock({target_rank}) without a matching lock by "
                    f"origin {origin}"
                )
            self._deliver_gets(epoch)
            del self._held[origin]
            ls = self._locks[target_rank]
            ls.holders.discard(origin)
            if not ls.holders:
                ls.mode = None
            f = self._epoch_files.pop(target_rank, None)
            rt.notify_progress()
        if f is not None:
            self._drop_flock(f)

    # -- atomics -------------------------------------------------------------
    def accumulate(self, origin: np.ndarray, target_rank: int, *args, **kw):
        with self._atomic_section(target_rank):
            return super().accumulate(origin, target_rank, *args, **kw)

    def fetch_and_op(self, value, target_rank: int, *args, **kw):
        with self._atomic_section(target_rank):
            return super().fetch_and_op(value, target_rank, *args, **kw)

    def compare_and_swap(self, compare, value, target_rank: int, *args, **kw):
        with self._atomic_section(target_rank):
            return super().compare_and_swap(compare, value, target_rank, *args, **kw)

    # -- teardown ------------------------------------------------------------
    def free_with(self, on_free) -> Any:
        result = super().free_with(on_free)
        self._release_segments()
        return result

    def invalidate(self) -> None:
        super().invalidate()
        with self.runtime.cond:
            files = list(self._epoch_files.values())
            self._epoch_files.clear()
        for f in files:
            self._drop_flock(f)
        self._release_segments()

    def _release_segments(self) -> None:
        """Detach the shared-memory segments; the creator unlinks its own.

        Peers' mappings stay valid after an unlink (POSIX), so a rank
        finishing early never pulls memory out from under survivors —
        only *new* attachments become impossible, and window creation is
        collective, so there are none.
        """
        if self._released:
            return
        self._released = True
        self._buffers = [np.empty(0, dtype=np.uint8) for _ in self._buffers]
        segments, self._segments = self._segments, []
        for r, seg in enumerate(segments):
            if r == self._creator_rank:
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
            try:
                seg.close()
            except BufferError:
                # a live external view (user-held local_view) pins the
                # mapping; the OS reclaims it at process exit
                pass
