"""Process-parallel runtime backend: one OS process per rank.

``Runtime(nproc, backend="proc")`` escapes the GIL: every rank is a
forked child process, window memory lives in
``multiprocessing.shared_memory`` segments (the MPI-3
``MPI_Win_allocate_shared`` analogue from Hammond et al., PAPERS.md),
and puts/gets are true cross-process memory traffic.  The moving parts:

* **Parent** (:class:`ProcBackend`): forks the children, then runs a
  monitor loop — collecting per-rank results, broadcasting a
  ``rank_dead`` control message when a child exits abnormally (so
  survivors raise :class:`~repro.mpi.runtime.RankFailedError`, the
  cross-process analogue of ``mark_dead``), driving an optional
  proc-capable fault injector (``repro.faults.proc`` — real ``SIGKILL``
  / ``SIGSTOP``+``SIGCONT`` / delayed starts), and enforcing
  ``join_timeout`` as the deadlock backstop (the thread watchdog cannot
  see other processes).
* **Child** (:func:`_child_main`): builds a private :class:`Runtime`
  *replica* (``apply_hooks=False`` — ambient sanitizer/fuzzer/fault
  hooks must not silently duplicate into processes they cannot
  observe), a :class:`ProcComm` world, and a pump thread that drains
  this rank's inbox queue into the local p2p engines.
* **Failure detection**: every child re-stamps a per-rank *heartbeat
  lease* (pid + monotonic timestamp) in a parent-created shared-memory
  segment from its pump thread; peers whose lease goes stale past
  ``Runtime.suspect_after`` are probed directly (with exponential
  backoff) and declared dead only when their pid is gone or a zombie —
  so a SIGSTOPped rank is *stalled*, never falsely killed, and a
  SIGKILLed one is detected by survivors themselves, well before the
  parent's ``join_timeout`` backstop and independent of the parent.
* **Fault tolerance** (ULFM surface): ``revoke``/``agree``/``shrink``
  run over the inbox queues.  Agreement is coordinator-based — votes go
  to the lowest live member, whose pump collects them and broadcasts
  the result in ascending rank order; participants that see their
  coordinator die re-send their vote to the next-lowest live rank, and
  any rank that already holds a round's result answers re-votes with
  the *same* value, so a coordinator dying mid-broadcast cannot produce
  divergent outcomes.  ``Runtime.failure_ack`` clears the peer-death
  poisoning in each surviving process, which is what lets
  ``repro.recover`` rebuild in place.
* **Messaging** (:class:`ProcComm`): sends put pickled payloads on the
  destination's inbox queue; the destination's pump injects them into
  the matching :class:`~repro.mpi.p2p.P2PEngine` replica.  Context ids
  are *structural tuples* (``("w",)``, parent + ``("dup", seq)``, …)
  because integer context counters diverge across processes when
  communicators are created on subgroups.
* **Collectives** (:class:`_ProcCollEngine`): gather-to-root /
  broadcast over a reserved p2p engine; every process then runs the
  ``compute`` step on the full contribution dict, so collectives that
  construct unpicklable objects (communicators, windows, ARMCI
  registries) build a consistent per-process replica — contributions
  are inserted in rank order to keep replicas deterministic.
* **Windows** (:class:`ProcWin`): each rank's exposure is copied into a
  shared-memory segment all peers attach; passive-target ``lock`` maps
  onto ``fcntl.flock`` range locks (shared/exclusive), and the atomic
  ops (``accumulate``/``fetch_and_op``/``compare_and_swap``) take a
  separate per-target *atomic sublock* file so they are atomic across
  processes even inside shared epochs (MPI-3 ``lock_all`` takes no
  cross-process lock at all — like real MPI, conflicting plain put/put
  is the user's race, atomics are the runtime's job).

What the proc backend does **not** support — by design, raising typed
errors rather than misbehaving: the deterministic scheduler and fuzzer,
the RMA sanitizer, *thread-style* fault plans (``repro.faults.plan``
schedules faults at deterministic fuzz points, which do not exist
across processes; the wall-clock subset in ``repro.faults.proc`` is
accepted instead), and intercommunicators.  ``docs/backends.md`` has
the full matrix.
"""

from __future__ import annotations

import fcntl
import itertools
import os
import pathlib
import pickle
import queue as _queue
import shutil
import tempfile
import threading
import time
import traceback
import zlib
from contextlib import contextmanager
from multiprocessing import get_context, resource_tracker, shared_memory
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..backoff import BackoffPolicy
from .backend import RuntimeBackend
from .comm import Comm
from .errors import (
    ArgumentError,
    CommError,
    CommRevokedError,
    InternalError,
    OpTimeoutError,
    ProgressDeadlockError,
    RMASyncError,
    TagError,
    TargetFailedError,
)
from .group import Group
from .p2p import ANY_SOURCE, P2PEngine, Request
from .runtime import RankFailedError, Runtime, _tls, current_proc
from .window import (
    LOCK_EXCLUSIVE,
    LOCK_SHARED,
    Win,
    WinError,
    _Epoch,
    _local_exposure_view,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["ProcBackend", "ProcComm", "ProcWin"]

#: every operation the thread backend supports but this one rejects
#: carries this hint in its error message
_THREAD_ONLY = "is thread-backend only (see docs/backends.md); use backend='thread'"

#: per-round wait bound for ``agree``/``shrink`` when the runtime has no
#: ``op_timeout_s``: a live-but-wedged coordinator must not hang a
#: fault-tolerance primitive until ``join_timeout``
_FT_ROUND_TIMEOUT_S = 5.0

_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without the resource tracker adopting it.

    CPython (before 3.13's ``track=`` parameter) registers every attach
    with the shared resource tracker, whose per-name *set* semantics mean
    the matching unregisters from several attaching processes can race —
    the second ``remove`` of the same name makes the tracker process print
    a KeyError traceback.  Swapping ``register`` out for the duration of
    the constructor is process-local (each rank is its own process) and
    lock-guarded, so the creator's registration stays the only one the
    tracker ever sees.
    """
    with _ATTACH_LOCK:
        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = orig


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------

class ProcBackend(RuntimeBackend):
    """One forked OS process per rank; true multi-core parallelism."""

    name = "proc"

    _run_counter = itertools.count()

    def spmd(
        self,
        runtime: "Runtime",
        fn: Callable[..., Any],
        args: tuple,
        join_timeout: float,
    ) -> list[Any]:
        if runtime.schedule is not None:
            raise InternalError(f"the deterministic scheduler {_THREAD_ONLY}")
        if runtime.sanitizer is not None:
            raise InternalError(f"the RMA sanitizer {_THREAD_ONLY}")
        injector = None
        if runtime.faults is not None:
            if not getattr(runtime.faults, "proc_capable", False):
                raise InternalError(
                    f"fault injection via repro.faults.plan {_THREAD_ONLY}; "
                    "cross-process faults use repro.faults.proc"
                )
            injector = runtime.faults
        nproc = runtime.nproc
        ctx = get_context("fork")
        inboxes = [ctx.Queue() for _ in range(nproc)]
        result_q = ctx.Queue()
        lockdir = tempfile.mkdtemp(prefix="repro-proc-")
        run_id = f"{os.getpid()}x{next(self._run_counter)}"
        # per-rank heartbeat leases: nproc slots of (pid, monotonic_ns),
        # created zeroed here so every child can attach before its peers
        # have written anything
        hb_seg = shared_memory.SharedMemory(
            name=_hb_segment_name(run_id), create=True, size=max(16 * nproc, 16)
        )
        delays = injector.startup_delays(nproc) if injector is not None else {}
        cfg = (
            runtime.nproc,
            runtime.watchdog_s,
            runtime.op_timeout_s,
            runtime.op_retries,
            runtime.seed,
            runtime.heartbeat_s,
            runtime.suspect_after,
            delays,
        )
        children = [
            ctx.Process(
                target=_child_main,
                args=(r, cfg, fn, args, inboxes, result_q, lockdir, run_id),
                name=f"rank-{r}",
                daemon=True,
            )
            for r in range(nproc)
        ]
        try:
            for p in children:
                p.start()
            if injector is not None:
                injector.start(children)
            results, errors, died = self._monitor(
                children, inboxes, result_q, join_timeout, injector
            )
        finally:
            if injector is not None:
                # un-stall before terminating: a SIGSTOPped child cannot
                # handle SIGTERM
                injector.finish(children)
            # teardown grace derived from the caller's deadlock budget
            # rather than a magic constant; clamped so a generous
            # join_timeout doesn't turn teardown into a second hang
            join_grace = max(1.0, min(join_timeout / 4.0, 30.0))
            for p in children:
                if p.is_alive():
                    p.terminate()
            for p in children:
                p.join(timeout=join_grace)
            for p in children:
                if p.is_alive():  # ignored SIGTERM (wedged/stopped): escalate
                    p.kill()
                    p.join(timeout=join_grace)
            for q in inboxes:
                q.cancel_join_thread()
            shutil.rmtree(lockdir, ignore_errors=True)
            try:
                hb_seg.close()
                # re-register before unlink (idempotent) in case the
                # teardown sweep of a concurrent run already consumed the
                # tracker entry; unlink's own unregister then always finds
                # it instead of warning
                resource_tracker.register(hb_seg._name, "shared_memory")
                hb_seg.unlink()
            except Exception:  # pragma: no cover - teardown best effort
                pass
            # killed children never ran their unlink paths: sweep every
            # segment of this run so an abnormal exit leaks nothing and
            # the resource tracker has nothing to warn about
            self._sweep_segments(run_id)
        # error precedence mirrors the thread backend: the original
        # failure (any non-secondary exception) outranks the
        # RankFailedError/TargetFailedError echoes it caused elsewhere —
        # including CommRevokedError, which is how a revoke-triggering
        # failure manifests in the ranks that didn't cause it.
        primary = {
            r: e
            for r, e in errors.items()
            if not isinstance(
                e, (RankFailedError, TargetFailedError, CommRevokedError)
            )
        }
        if primary:
            raise primary[min(primary)]
        if died and not errors:
            missing = [
                r for r in range(nproc) if r not in died and r not in results
            ]
            if not missing:
                # every survivor completed: a recovered run.  Results for
                # dead ranks are None — the shrunken grid finished the job.
                return [results.get(r) for r in range(nproc)]
        if died:
            r = min(died)
            raise RankFailedError(
                f"rank {r} process died without reporting a result "
                f"(exit code {died[r]})"
            )
        if errors:
            raise errors[min(errors)]
        return [results[r] for r in range(nproc)]

    @staticmethod
    def _sweep_segments(run_id: str) -> None:
        """Unlink every leftover shared-memory segment of this run.

        Normal exits already unlinked everything (creators unlink their
        windows, the parent unlinks the heartbeat segment); this sweep
        covers ranks that were SIGKILLed before their cleanup ran.  The
        resource tracker is told first so it doesn't warn about leaked
        segments at interpreter shutdown.
        """
        shm = pathlib.Path("/dev/shm")
        if not shm.is_dir():  # pragma: no cover - non-Linux shm layout
            return
        for seg in shm.glob(f"repro-{run_id}-*"):
            try:
                # register first (idempotent): peers' attach-time
                # unregisters may have already emptied the tracker's
                # entry, and unregistering a missing name makes the
                # tracker process print a KeyError traceback
                resource_tracker.register(f"/{seg.name}", "shared_memory")
                resource_tracker.unregister(f"/{seg.name}", "shared_memory")
            except Exception:  # pragma: no cover - tracker gone at exit
                pass
            try:
                seg.unlink()
            except OSError:  # pragma: no cover - concurrent unlink
                pass

    def _monitor(
        self,
        children: list,
        inboxes: list,
        result_q,
        join_timeout: float,
        injector=None,
    ) -> tuple[dict[int, Any], dict[int, BaseException], dict[int, "int | None"]]:
        """Drain results, detect silent deaths, broadcast ``rank_dead``."""
        nproc = len(children)
        results: dict[int, Any] = {}
        errors: dict[int, BaseException] = {}
        died: dict[int, "int | None"] = {}
        pending = set(range(nproc))
        deadline = time.monotonic() + join_timeout

        def announce(rank: int, detail: str) -> None:
            for other in range(nproc):
                if other != rank and other in pending:
                    inboxes[other].put(("ctl", "rank_dead", rank, detail))

        def announce_done(rank: int) -> None:
            # backstop for the child's own rank_done broadcast: a
            # finished rank stops heartbeating, and survivors must not
            # mistake its exit for a death
            for other in range(nproc):
                if other != rank and other in pending:
                    inboxes[other].put(("ctl", "rank_done", rank))

        def drain(block_s: float) -> None:
            try:
                while True:
                    rank, status, payload = result_q.get(timeout=block_s)
                    block_s = 0.0
                    pending.discard(rank)
                    if status == "ok":
                        results[rank] = payload
                        announce_done(rank)
                        continue
                    exc = (
                        payload
                        if isinstance(payload, BaseException)
                        else InternalError(f"rank {rank} failed: {payload}")
                    )
                    errors[rank] = exc
                    # a raised child is as dead to its peers as a killed
                    # one: it exits without serving further collectives
                    announce(rank, f"raised {type(exc).__name__}")
            except _queue.Empty:
                pass

        while pending:
            if time.monotonic() > deadline:
                raise ProgressDeadlockError(
                    f"rank processes {sorted(pending)} did not finish within "
                    f"join_timeout={join_timeout}s (proc-backend deadlock backstop)"
                )
            if injector is not None:
                injector.poll(children)
            drain(0.05)
            stopped = [r for r in pending if not children[r].is_alive()]
            if stopped:
                # a racing result may still sit in the queue's pipe buffer;
                # give it a grace period before declaring a silent death
                drain(0.25)
                for r in stopped:
                    if r in pending:
                        pending.discard(r)
                        died[r] = children[r].exitcode
                        announce(r, f"exit code {children[r].exitcode}")
        return results, errors, died

    def make_world(self, runtime: "Runtime") -> "Comm":
        raise InternalError(
            "the proc backend's world communicator exists only inside "
            "rank processes (call it via spmd)"
        )

    def win_create(self, comm, local, disp_unit, strict, mpi3):
        raise InternalError(
            "proc-backend windows are created inside rank processes "
            "(call Win.create from spmd code)"
        )


# ---------------------------------------------------------------------------
# child side
# ---------------------------------------------------------------------------

def _hb_segment_name(run_id: str) -> str:
    return f"repro-{run_id}-hb"


def _pid_alive(pid: int) -> bool:
    """True if ``pid`` exists and is not a zombie.

    ``os.kill(pid, 0)`` alone is not a liveness probe here: a SIGKILLed
    sibling stays a zombie until the *parent* reaps it, and signal 0
    succeeds on zombies.  The ``/proc`` state field disambiguates.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid recycled to another user
        return True
    try:
        with open(f"/proc/{pid}/stat", "rb") as f:
            data = f.read()
        # the state field follows the parenthesised comm, which may
        # itself contain spaces or parens — split on the LAST ')'
        return not data.rpartition(b")")[2].lstrip().startswith(b"Z")
    except OSError:  # pragma: no cover - non-Linux: trust the signal probe
        return True


def _child_main(
    rank: int,
    cfg: tuple,
    fn: Callable[..., Any],
    args: tuple,
    inboxes: list,
    result_q,
    lockdir: str,
    run_id: str,
) -> None:
    (
        nproc, watchdog_s, op_timeout_s, op_retries, seed,
        heartbeat_s, suspect_after, delays,
    ) = cfg
    backend = _ProcChildBackend(
        rank, nproc, inboxes, lockdir, run_id,
        heartbeat_s=heartbeat_s, suspect_after=suspect_after,
    )
    runtime = Runtime(
        nproc,
        watchdog_s=watchdog_s,
        op_timeout_s=op_timeout_s,
        op_retries=op_retries,
        seed=seed,
        backend=backend,
        apply_hooks=False,
        heartbeat_s=heartbeat_s,
        suspect_after=suspect_after,
    )
    # only this rank lives in this process: acknowledgement-based
    # recovery must not wait on the other ranks' replicas
    runtime.local_ranks = {rank}
    backend.runtime = runtime
    try:
        backend.attach_heartbeat(_hb_segment_name(run_id))
    except Exception:  # pragma: no cover - no shm: parent monitor still detects
        backend.hb_view = None
    _tls.proc = runtime.procs[rank]
    stop = threading.Event()
    pump = threading.Thread(
        target=_pump, args=(backend, runtime, inboxes[rank], stop),
        name=f"pump-{rank}", daemon=True,
    )
    pump.start()
    status, payload = "ok", None
    try:
        if delays and rank in delays:
            # injected startup delay (repro.faults.proc); the pump is
            # already heartbeating, so peers see a slow rank, not a dead one
            time.sleep(delays[rank])
        world = Comm._world(runtime)
        payload = fn(world, *args)
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        # pickling drops __traceback__; carry the formatted one as a note
        try:
            exc.add_note(f"[rank {rank} traceback]\n{traceback.format_exc()}")
        except Exception:
            pass
        status, payload = "err", exc
    finally:
        try:
            pickle.dumps(payload)
        except Exception:
            # the queue's feeder thread pickles asynchronously; an
            # unpicklable result would be dropped silently, so degrade
            # to a description here
            if status == "ok":
                status = "err"
                payload = (
                    f"rank {rank} returned an unpicklable result of type "
                    f"{type(payload).__name__}"
                )
            else:
                payload = f"{type(payload).__name__}: {payload}"
        # clean up BEFORE reporting: once the result is posted the
        # parent may consider this child done and terminate stragglers,
        # which must not race the shared-memory unlinks
        stop.set()
        pump.join(timeout=1.0)
        backend.release_windows()
        backend.release_heartbeat()
        # tell peers this rank *finished* (stopped heartbeating on
        # purpose) before the parent can observe the exit
        for other in range(nproc):
            if other != rank:
                try:
                    inboxes[other].put(("ctl", "rank_done", rank))
                except Exception:  # pragma: no cover - peer queue torn down
                    pass
        result_q.put((rank, status, payload))


def _pump(backend: "_ProcChildBackend", runtime: "Runtime", inbox, stop) -> None:
    """Drain this rank's inbox into the local replicas; police liveness.

    Besides routing p2p/control/fault-tolerance messages, each loop
    iteration re-stamps this rank's heartbeat lease and scans the peers'
    leases — the pump is the per-rank progress/liveness thread the
    async-progress designs in PAPERS.md argue for, so detection keeps
    working while the application thread is blocked (or never blocks).
    """
    poll_s = min(0.05, max(backend.heartbeat_s, 0.005))
    while not stop.is_set():
        try:
            msg = inbox.get(timeout=poll_s)
        except _queue.Empty:
            msg = None
        while msg is not None:
            # apply every queued message before the liveness scan so
            # ordered control traffic (rank_done, holder notes) lands
            # before a probe could misread a silent slot
            try:
                backend.dispatch(runtime, msg)
            except BaseException as exc:  # noqa: BLE001 - pump must survive
                with runtime.cond:
                    runtime.death_hook_errors.append(exc)
            try:
                msg = inbox.get_nowait()
            except _queue.Empty:
                msg = None
        try:
            backend.heartbeat_tick(runtime)
        except BaseException as exc:  # noqa: BLE001 - pump must survive
            with runtime.cond:
                runtime.death_hook_errors.append(exc)


class _ProcChildBackend(RuntimeBackend):
    """The backend a child-process runtime replica delegates to."""

    name = "proc"

    def __init__(
        self, rank: int, nproc: int, inboxes: list, lockdir: str, run_id: str,
        heartbeat_s: float = 0.05, suspect_after: float = 1.0,
    ):
        self.rank = rank
        self.nproc = nproc
        self.inboxes = inboxes
        self.lockdir = lockdir
        self.run_id = run_id
        self.runtime: "Runtime | None" = None
        #: ctx key -> P2PEngine replica (guarded by runtime.cond)
        self.engines: dict[Any, P2PEngine] = {}
        #: ctx key -> messages that arrived before the engine registered
        self.stash: dict[Any, list[tuple]] = {}
        #: per-context window sequence numbers (window tokens must agree
        #: across processes, so they derive from the comm's structural
        #: key + creation order, not the per-runtime ``win_id`` counter)
        self._win_seq: dict[Any, int] = {}
        self._windows: list["ProcWin"] = []
        #: ctx key -> local communicator replica (guarded by runtime.cond);
        #: lets the pump apply a peer's revoke / complete FT rounds
        self.comms: dict[Any, "ProcComm"] = {}
        #: ctx keys revoked before their replica was constructed here
        self.revoked_ctx: set[Any] = set()
        #: (ctx, kind, seq) -> coordinator-side round state
        #: {"votes": {world: contrib}, "value": result-or-None}
        self.ft_rounds: dict[Any, dict] = {}
        #: (ctx, kind, seq) -> decided result, participant side
        self.ft_results: dict[Any, Any] = {}
        #: ranks that announced a *clean* finish (stop heartbeating them)
        self.done_ranks: set[int] = set()
        # -- heartbeat lease state (pump thread only) --
        self.heartbeat_s = heartbeat_s
        self.suspect_after = suspect_after
        self.hb_view: "np.ndarray | None" = None
        self._hb_seg = None
        self._beat_ns = max(int(heartbeat_s * 1e9), 1_000_000)
        self._last_beat = 0
        #: pid-probe intervals for a suspected peer: start at one beat,
        #: double per probe, cap at 1 s (ns units, no jitter — the pump
        #: thread must stay wall-clock deterministic for a given lease)
        self._probe_backoff = BackoffPolicy(
            base=float(self._beat_ns), factor=2.0, cap=1e9, jitter=1.0
        )
        #: suspected rank -> [next_probe_ns, probe_attempt]
        self._suspect: dict[int, list[int]] = {}

    # -- RuntimeBackend ------------------------------------------------------
    def spmd(self, runtime, fn, args, join_timeout):
        raise InternalError("nested spmd inside a proc-backend rank")

    def make_world(self, runtime: "Runtime") -> "Comm":
        return ProcComm(runtime, Group(range(self.nproc)), ("w",), self)

    def win_create(self, comm, local, disp_unit, strict, mpi3):
        view = _local_exposure_view(local)
        token = self._win_token(comm)
        me = comm.rank
        own = shared_memory.SharedMemory(
            name=self._segment_name(token, me), create=True,
            size=max(1, view.nbytes),
        )
        if view.nbytes:
            np.ndarray((view.nbytes,), dtype=np.uint8, buffer=own.buf)[:] = view
        # the allgather is also the barrier guaranteeing every segment
        # exists before any peer attaches
        contribs = comm.allgather((view.nbytes, disp_unit))
        buffers: list[np.ndarray] = []
        units: list[int] = []
        segments: list[shared_memory.SharedMemory] = []
        for r in range(comm.size):
            nbytes, unit = contribs[r]
            if r == me:
                seg = own
            else:
                # attach untracked so only the creator unlinks
                seg = _attach_untracked(self._segment_name(token, r))
            buffers.append(np.ndarray((nbytes,), dtype=np.uint8, buffer=seg.buf))
            units.append(unit)
            segments.append(seg)
        win = ProcWin(
            comm, buffers, units, strict=strict, mpi3=mpi3,
            segments=segments, creator_rank=me, token=token,
            lockdir=self.lockdir,
        )
        self._windows.append(win)
        return win

    # -- child-side plumbing -------------------------------------------------
    def register_engine(self, key: Any, engine: P2PEngine) -> None:
        """Publish an engine replica; replay messages that beat it here.

        Must be called with ``runtime.cond`` held (communicator
        construction paths already do).
        """
        self.engines[key] = engine
        for src, dst, tag, payload in self.stash.pop(key, ()):
            engine.post_send(src, dst, tag, payload)

    def send_to(self, dst_world: int, msg: tuple) -> None:
        self.inboxes[dst_world].put(msg)

    def _win_token(self, comm: "Comm") -> str:
        """Deterministic cross-process window identity.

        Same structural context key + same per-comm creation ordinal on
        every member ⇒ same token ⇒ same segment names and lock files.
        """
        key = comm.context_id
        seq = self._win_seq.get(key, 0)
        self._win_seq[key] = seq + 1
        return f"{zlib.crc32(repr(key).encode()) & 0xFFFFFFFF:08x}.{seq}"

    def _segment_name(self, token: str, rank: int) -> str:
        return f"repro-{self.run_id}-{token}-r{rank}"

    def release_windows(self) -> None:
        for win in self._windows:
            win._release_segments()

    # -- heartbeat failure detector -----------------------------------------
    def attach_heartbeat(self, name: str) -> None:
        """Attach the parent's lease segment and stamp our own slot."""
        seg = _attach_untracked(name)
        self._hb_seg = seg
        self.hb_view = np.ndarray((self.nproc, 2), dtype=np.int64, buffer=seg.buf)
        now = time.monotonic_ns()
        self.hb_view[self.rank, 0] = os.getpid()
        self.hb_view[self.rank, 1] = now
        self._last_beat = now

    def release_heartbeat(self) -> None:
        self.hb_view = None
        if self._hb_seg is not None:
            try:
                self._hb_seg.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
            self._hb_seg = None

    def heartbeat_tick(self, runtime: "Runtime") -> None:
        """Refresh our lease; suspect, probe, and declare stale peers.

        Runs on the pump thread each loop iteration.  A peer whose lease
        is stale past ``suspect_after`` is *suspected* and its pid
        probed with exponential backoff; only a pid that is gone (or a
        zombie awaiting the parent's reap) is declared dead.  A present
        pid with a stale lease — a SIGSTOPped or wedged rank — stays
        merely suspected forever: stall is not death, and the
        ``join_timeout`` backstop owns that verdict.
        """
        hb = self.hb_view
        if hb is None:
            return
        now = time.monotonic_ns()
        if now - self._last_beat >= self._beat_ns:
            hb[self.rank, 1] = now
            self._last_beat = now
        suspect_ns = max(int(self.suspect_after * 1e9), 2 * self._beat_ns)
        for r in range(self.nproc):
            if r == self.rank or r in self.done_ranks:
                continue
            if r in runtime.dead_ranks:  # benign unlocked read (GIL)
                continue
            pid, beat = int(hb[r, 0]), int(hb[r, 1])
            if pid == 0 or beat == 0:
                continue  # not started yet (fork/attach still in flight)
            if now - beat <= suspect_ns:
                self._suspect.pop(r, None)
                continue
            st = self._suspect.get(r)
            if st is None:
                st = self._suspect[r] = [now, 0]
            if now < st[0]:
                continue
            st[1] += 1
            st[0] = now + int(self._probe_backoff.delay(st[1]))
            if _pid_alive(pid):
                continue
            stale = (now - beat) / 1e9
            self._declare_dead(
                runtime, r,
                f"heartbeat lease stale for {stale:.2f}s and pid {pid} is gone",
            )

    def _declare_dead(self, runtime: "Runtime", dead: int, detail: str) -> None:
        """Local death verdict: mark, poison, and re-drive open FT rounds."""
        with runtime.cond:
            if dead == self.rank or dead in runtime.dead_ranks:
                return
            runtime.mark_dead(dead)
            if runtime.failed is None:
                runtime.failed = RankFailedError(
                    f"rank {dead} process died ({detail})"
                )
            # the death may make us coordinator of an open round, or
            # remove the last missing vote
            for key in list(self.ft_rounds):
                self._ft_try_complete(runtime, key)
            runtime.notify_progress()

    # -- pump dispatch -------------------------------------------------------
    def dispatch(self, runtime: "Runtime", msg: tuple) -> None:
        """Apply one inbox message (pump thread)."""
        kind = msg[0]
        if kind == "p2p":
            _, key, src, dst, tag, payload = msg
            with runtime.cond:
                engine = self.engines.get(key)
                if engine is None:
                    # the matching communicator replica is not
                    # constructed yet on this rank; stash until its
                    # engine registers
                    self.stash.setdefault(key, []).append(
                        (src, dst, tag, payload)
                    )
                else:
                    engine.post_send(src, dst, tag, payload)
        elif kind == "ctl":
            sub = msg[1]
            if sub == "rank_dead":
                _, _, dead, detail = msg
                self._declare_dead(runtime, dead, detail)
            elif sub == "rank_done":
                self.done_ranks.add(msg[2])
            elif sub == "mutex_holder":
                _, _, win_id, host, mutex, holder = msg
                with runtime.cond:
                    holders = runtime.shared.setdefault(
                        ("mutex_holders", win_id), {}
                    )
                    if holder is None:
                        holders.pop((host, mutex), None)
                    else:
                        holders[(host, mutex)] = holder
        elif kind == "ft":
            sub = msg[1]
            if sub == "revoke":
                _, _, ctx_key = msg
                with runtime.cond:
                    self.revoked_ctx.add(ctx_key)
                    comm = self.comms.get(ctx_key)
                    if comm is not None:
                        comm._apply_revoke()
            elif sub == "vote":
                _, _, key, voter, contrib = msg
                with runtime.cond:
                    self._ft_vote(runtime, key, voter, contrib)
            elif sub == "result":
                _, _, key, value = msg
                with runtime.cond:
                    self._ft_result(runtime, key, value)

    # -- fault-tolerant consensus (coordinator side, under runtime.cond) ----
    def _ft_vote(self, runtime: "Runtime", key: Any, voter: int, contrib: Any) -> None:
        state = self.ft_rounds.setdefault(key, {"votes": {}, "value": None})
        if state["value"] is not None:
            # a re-vote after the round closed (the voter never heard a
            # coordinator that died mid-broadcast): answer directly with
            # the SAME value so outcomes cannot diverge
            self._ft_send_result(voter, key, state["value"])
            return
        state["votes"][voter] = contrib
        self._ft_try_complete(runtime, key)

    def _ft_try_complete(self, runtime: "Runtime", key: Any) -> None:
        state = self.ft_rounds.get(key)
        if state is None or state["value"] is not None:
            return
        ctx_key, kind, _seq = key
        comm = self.comms.get(ctx_key)
        if comm is None:
            return
        live = [w for w in comm.group.members if w not in runtime.dead_ranks]
        if not live or min(live) != self.rank:
            return  # not (or no longer) the coordinator
        if any(w not in state["votes"] for w in live):
            return
        if kind == "agree":
            value = -1  # AND identity (all ones)
            for w in live:
                value &= int(state["votes"][w])
        else:  # shrink: the surviving membership, world-rank ordered
            value = tuple(sorted(live))
        state["value"] = value
        # ascending broadcast order is a correctness invariant: if this
        # coordinator dies partway, the new coordinator (next-lowest
        # live rank) is in the already-notified prefix and answers
        # re-votes from ``state["value"]``
        for w in live:
            self._ft_send_result(w, key, value)

    def _ft_send_result(self, voter: int, key: Any, value: Any) -> None:
        if voter == self.rank:
            self.ft_results[key] = value
            self.runtime.notify_progress()
        else:
            self.send_to(voter, ("ft", "result", key, value))

    def _ft_result(self, runtime: "Runtime", key: Any, value: Any) -> None:
        self.ft_results[key] = value
        # mirror into the coordinator-side cache: if the deciding
        # coordinator died after a partial broadcast, re-votes get routed
        # here and must be answered with the decided value
        self.ft_rounds.setdefault(key, {"votes": {}, "value": None})["value"] = value
        runtime.notify_progress()


# ---------------------------------------------------------------------------
# communicators
# ---------------------------------------------------------------------------

class ProcComm(Comm):
    """Per-process communicator replica routing p2p through OS queues.

    ``context_id`` is a structural tuple, identical on every member
    process because communicator-management calls are collective and
    each replica advances the same sub-creation counter in lockstep.
    """

    def __init__(
        self,
        runtime: "Runtime",
        group: Group,
        ctx_key: tuple,
        backend: _ProcChildBackend,
    ):
        super().__init__(runtime, group, ctx_key)
        self._backend = backend
        with runtime.cond:
            backend.register_engine(ctx_key, self._p2p)
        self._coll = _ProcCollEngine(self)
        #: ordinal of the next derived communicator (advances identically
        #: on every member because dup/split/create are collective)
        self._sub_seq = 0
        with runtime.cond:
            backend.comms[ctx_key] = self
            if ctx_key in backend.revoked_ctx:
                # a peer revoked this context before our replica existed
                self._apply_revoke()

    # -- p2p -----------------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        self.runtime.check_self_alive()
        self._check_revoked()
        if tag < 0:
            raise TagError(f"send tag must be >= 0, got {tag}")
        dst_world = self.group.world_rank(dest)
        me = current_proc().rank
        if dst_world == me:
            with self.runtime.cond:
                self._p2p.post_send(me, dst_world, tag, payload)
            return
        with self.runtime.cond:
            if dst_world in self.runtime.dead_ranks:
                raise TargetFailedError(
                    f"send to failed rank {dest} (world {dst_world})"
                )
        if isinstance(payload, np.ndarray):
            # snapshot: the sender may mutate its buffer after an eager
            # send returns (thread backend copies in post_send)
            payload = np.ascontiguousarray(payload).copy()
        self._backend.send_to(
            dst_world, ("p2p", self.context_id, me, dst_world, tag, payload)
        )

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        self.send(payload, dest, tag)
        with self.runtime.cond:
            req = Request(self._p2p)
            req._finish(None)
        return req

    # -- management ----------------------------------------------------------
    def _next_sub_seq(self) -> int:
        with self.runtime.cond:
            seq = self._sub_seq
            self._sub_seq += 1
        return seq

    def dup(self) -> "Comm":
        seq = self._next_sub_seq()
        self.barrier()  # collective, like the thread backend's rendezvous
        return ProcComm(
            self.runtime, self.group, self.context_id + ("dup", seq),
            self._backend,
        )

    def split(self, color: int, key: int = 0) -> "Comm | None":
        seq = self._next_sub_seq()
        me_world = self.group.world_rank(self.rank)
        contribs = self.allgather((color, key, me_world))
        if color < 0:
            return None
        members = sorted(
            (k, r, w) for r, (c, k, w) in enumerate(contribs) if c == color
        )
        grp = Group(w for _k, _r, w in members)
        return ProcComm(
            self.runtime, grp, self.context_id + ("split", seq, color),
            self._backend,
        )

    def create(self, group: Group) -> "Comm | None":
        for w in group:
            if not self.group.contains_world(w):
                raise ArgumentError(f"create: world rank {w} not in parent {self}")
        seq = self._next_sub_seq()
        self.barrier()  # create is collective over the parent
        if not group.contains_world(current_proc().rank):
            return None
        return ProcComm(
            self.runtime, group, self.context_id + ("create", seq),
            self._backend,
        )

    # -- fault tolerance (cross-process ULFM surface) --------------------------
    def revoke(self) -> None:
        """Revoke this communicator on every member process.

        Applies locally first (poisoning in-flight operations on this
        replica), then broadcasts an ``("ft", "revoke", ctx)`` control
        message to every live peer; their pumps apply it to their
        replicas — or record the context so a replica constructed later
        is born revoked.  Idempotent; non-collective, as ULFM requires.
        """
        rt = self.runtime
        rt.check_self_alive()
        me = current_proc().rank
        with rt.cond:
            already = self._revoked
            self._apply_revoke()
            self._backend.revoked_ctx.add(self.context_id)
            peers = [
                w for w in self.group.members
                if w != me and w not in rt.dead_ranks
            ]
        if already:
            return
        for w in peers:
            self._backend.send_to(w, ("ft", "revoke", self.context_id))

    def _ft_round(self, kind: str, contribution: Any) -> tuple[int, Any]:
        """One fault-tolerant decision round; returns ``(seq, value)``.

        Coordinator-based consensus over the inbox queues: every member
        sends its contribution to the lowest live member, whose *pump*
        collects votes and broadcasts the decided value (see
        ``_ProcChildBackend._ft_try_complete`` for why a coordinator
        dying mid-broadcast cannot cause divergence).  The participant
        side here tolerates every failure mode the round can see:

        * a member dies → ``failure_ack`` clears the local poisoning and
          the completion predicate re-evaluates the coordinator;
        * the *coordinator* dies → the vote is re-sent to the next
          lowest live rank (which either decides fresh or answers from
          the already-decided value);
        * a live-but-wedged coordinator → per-round timeout and re-vote,
          bounded by ``op_retries``.
        """
        rt = self.runtime
        rt.check_self_alive()
        rt.failure_ack()
        backend = self._backend
        me = current_proc().rank
        with rt.cond:
            seq = self._ft_seq(kind)
        key = (self.context_id, kind, seq)
        members = list(self.group.members)
        timeout = (
            rt.op_timeout_s if rt.op_timeout_s is not None
            else _FT_ROUND_TIMEOUT_S
        )
        attempts = 0
        voted_to: "int | None" = None
        while True:
            with rt.cond:
                if key in backend.ft_results:
                    return seq, backend.ft_results[key]
                live = [w for w in members if w not in rt.dead_ranks]
                coord = min(live) if live else me
                if coord != voted_to:
                    voted_to = coord
                    if coord == me:
                        backend._ft_vote(rt, key, me, contribution)
                    else:
                        backend.send_to(
                            coord, ("ft", "vote", key, me, contribution)
                        )

                def moved() -> bool:
                    if key in backend.ft_results:
                        return True
                    live_now = [w for w in members if w not in rt.dead_ranks]
                    return (min(live_now) if live_now else me) != voted_to

                try:
                    rt.wait_for(
                        moved, timeout_s=timeout, what=f"{kind} (ft round)"
                    )
                except (RankFailedError, TargetFailedError):
                    pass  # acknowledge below; coordinator re-evaluated
                except OpTimeoutError:
                    attempts += 1
                    if attempts > rt.op_retries:
                        raise
                    voted_to = None  # re-send the vote
            rt.failure_ack()
            with rt.cond:
                if rt.failed is not None and not isinstance(
                    rt.failed, RankFailedError
                ):
                    # a local hard failure, not a peer death: surface it
                    raise RankFailedError(
                        f"rank failed elsewhere: {rt.failed!r}"
                    )

    def agree(self, flag: int = 1) -> int:
        """Fault-tolerant agreement (ULFM ``MPIX_Comm_agree``): bitwise
        AND of the live members' ``flag`` contributions, decided by the
        coordinator round in :meth:`_ft_round`.  Completes with dead (or
        dying) members and on a revoked communicator."""
        _seq, value = self._ft_round("agree", int(flag))
        return int(value)

    def shrink(self) -> "Comm":
        """Re-form a communicator of the survivors (ULFM
        ``MPIX_Comm_shrink``).

        The coordinator round decides the surviving membership (a
        world-rank-ordered tuple, identical on every participant); each
        process then constructs its replica under the structural context
        key ``parent + ("shrink", seq)``, so windows created on the new
        communicator get fresh shared-memory tokens.  As in ULFM, a
        member dying *concurrently* with the decision may survive into
        the returned membership — the next operation on the new
        communicator then fails over and the application shrinks again.
        """
        seq, live = self._ft_round("shrink", 1)
        return ProcComm(
            self.runtime, Group(live),
            self.context_id + ("shrink", seq), self._backend,
        )

    def _holder_note(
        self, win_id: int, host: int, mutex: int, holder: "int | None"
    ) -> None:
        # mutex-holder tracking lives in per-process ``runtime.shared``
        # replicas; broadcast each change so *survivors'* death hooks can
        # see acquisitions made in other processes (win_id is consistent
        # across replicas because window creation is collective)
        rt = self.runtime
        me = current_proc().rank
        with rt.cond:
            peers = [
                w for w in self.group.members
                if w != me and w not in rt.dead_ranks
            ]
        for w in peers:
            self._backend.send_to(
                w, ("ctl", "mutex_holder", win_id, host, mutex, holder)
            )

    # -- unsupported surfaces --------------------------------------------------
    def create_intercomm(self, *args: Any, **kw: Any):
        raise CommError(f"Comm.create_intercomm {_THREAD_ONLY}")


class _ProcCollEngine:
    """Gather-to-root / broadcast collectives over a reserved p2p engine.

    Compatible with :class:`~repro.mpi.collectives.CollectiveEngine.run`:
    called with the giant (process-local) lock held; returns
    ``compute(contribs)`` where ``contribs`` maps comm rank ->
    contribution.  *Every* process runs ``compute`` — object-building
    collectives (``comm_dup``, ``armci_malloc``, ``win_free``) construct
    per-process replicas, which is exactly what a distributed runtime
    needs.  Contributions are inserted in rank order so dict-iteration
    dependent computes stay deterministic across processes.
    """

    def __init__(self, comm: ProcComm):
        self.comm = comm
        self._backend = comm._backend
        key = (comm.context_id, "__coll__")
        self._key = key
        self._p2p = P2PEngine(comm.runtime, key)
        with comm.runtime.cond:
            self._backend.register_engine(key, self._p2p)
        #: collective ordinal; doubles as the message tag so mismatched
        #: call sequences hang (-> join_timeout) instead of cross-matching
        self._seq = 0

    def run(
        self,
        rank: int,
        kind: str,
        contribution: Any,
        compute: Callable[[dict[int, Any]], Any],
    ) -> Any:
        rt = self.comm.runtime
        rt.check_self_alive()
        self.comm._check_revoked()
        seq = self._seq
        self._seq += 1
        size = self.comm.size
        if size == 1:
            return compute({0: contribution})
        me_world = current_proc().rank
        root_world = self.comm.group.world_rank(0)
        if rank == 0:
            arrived: dict[int, tuple[str, Any]] = {}
            for _ in range(size - 1):
                req = self._p2p.post_recv(me_world, ANY_SOURCE, seq, None)
                rt.wait_for(
                    lambda: req._done, what=f"collective {kind} (gather)"
                )
                if req._error is not None:
                    raise req._error
                peer_rank, peer_kind, peer_contrib = req._status.payload
                arrived[peer_rank] = (peer_kind, peer_contrib)
            contribs: dict[int, Any] = {0: contribution}
            for r in range(1, size):
                peer_kind, peer_contrib = arrived[r]
                if peer_kind != kind:
                    exc = InternalError(
                        f"collective mismatch: rank 0 in {kind!r}, "
                        f"rank {r} in {peer_kind!r}"
                    )
                    for r2 in range(1, size):
                        self._send(self.comm.group.world_rank(r2), seq, exc)
                    raise exc
                contribs[r] = peer_contrib
            blob = [(r, contribs[r]) for r in range(size)]
            for r in range(1, size):
                self._send(self.comm.group.world_rank(r), seq, (kind, blob))
        else:
            self._send(root_world, seq, (rank, kind, contribution))
            req = self._p2p.post_recv(me_world, root_world, seq, None)
            rt.wait_for(lambda: req._done, what=f"collective {kind} (result)")
            if req._error is not None:
                raise req._error
            payload = req._status.payload
            if isinstance(payload, BaseException):
                raise payload
            root_kind, blob = payload
            if root_kind != kind:
                raise InternalError(
                    f"collective mismatch: rank {rank} in {kind!r}, "
                    f"rank 0 in {root_kind!r}"
                )
            contribs = {}
            for r, c in blob:
                contribs[r] = c
        return compute(contribs)

    def _send(self, dst_world: int, tag: int, payload: Any) -> None:
        me = current_proc().rank
        if dst_world == me:
            self._p2p.post_send(me, dst_world, tag, payload)
        else:
            self._backend.send_to(
                dst_world, ("p2p", self._key, me, dst_world, tag, payload)
            )

    def fail_all(self, exc: BaseException) -> None:
        self._p2p.fail_all(exc)


# ---------------------------------------------------------------------------
# windows
# ---------------------------------------------------------------------------

class ProcWin(Win):
    """A window whose memory is shared-memory segments, locks are flocks.

    Epoch bookkeeping (one-lock-per-window, epoch-required, strict
    conflict tracking) stays process-local in the inherited state; the
    *mutual exclusion* between processes comes from two families of
    ``fcntl.flock`` files under the run's lock directory:

    * ``<token>.t<target>.lock`` — the passive-target epoch lock taken
      by :meth:`lock` (``LOCK_SH``/``LOCK_EX`` mirroring
      shared/exclusive); :meth:`lock_all` deliberately takes none
      (MPI-3 shared epochs don't exclude anyone).
    * ``<token>.t<target>.atomic`` — a short-lived exclusive sublock
      wrapped around accumulate/fetch_and_op/compare_and_swap so
      atomics are atomic across processes even inside shared epochs.
      Ordering is always epoch-lock → atomic-sublock, so the two
      families cannot deadlock.
    """

    def __init__(
        self,
        comm: Comm,
        buffers: list[np.ndarray],
        disp_units: list[int],
        strict: bool = True,
        mpi3: bool = False,
        *,
        segments: list,
        creator_rank: int,
        token: str,
        lockdir: str,
    ):
        super().__init__(comm, buffers, disp_units, strict=strict, mpi3=mpi3)
        self._segments = segments
        self._creator_rank = creator_rank
        self._token = token
        self._lockdir = lockdir
        #: target -> open epoch-lock file (this process holds its flock)
        self._epoch_files: dict[int, Any] = {}
        self._released = False

    # -- flock plumbing ------------------------------------------------------
    def _lockfile(self, target_rank: int, kind: str = "lock") -> str:
        return os.path.join(
            self._lockdir, f"{self._token}.t{target_rank}.{kind}"
        )

    def _acquire_flock(self, path: str, exclusive: bool, what: str = "flock"):
        """Blocking-with-failure-checks flock acquisition.

        Polls nonblockingly so a survivor stuck behind a dead peer's
        lock still observes ``runtime.failed`` (set by the pump on a
        ``rank_dead`` control message or a heartbeat verdict) and raises
        the typed error.  A *dead* holder's flock self-reclaims — the
        kernel releases flocks when the holding process dies — so this
        path never blocks forever on a corpse; a *stalled* (SIGSTOPped)
        holder keeps its lock, and with ``op_timeout_s`` set the wait
        gives up with :class:`OpTimeoutError` instead of wedging.
        """
        rt = self.runtime
        deadline = (
            None if rt.op_timeout_s is None
            else time.monotonic() + rt.op_timeout_s
        )
        f = open(path, "ab")
        op = (fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH) | fcntl.LOCK_NB
        try:
            while True:
                try:
                    fcntl.flock(f.fileno(), op)
                    return f
                except OSError:
                    pass
                with rt.cond:
                    if rt.failed is not None:
                        raise RankFailedError(
                            f"rank failed elsewhere: {rt.failed!r}"
                        )
                if deadline is not None and time.monotonic() >= deadline:
                    raise OpTimeoutError(
                        f"{what} timed out after {rt.op_timeout_s}s "
                        "(holder stalled but alive?)"
                    )
                time.sleep(0.002)
        except BaseException:
            f.close()
            raise

    @staticmethod
    def _drop_flock(f) -> None:
        fcntl.flock(f.fileno(), fcntl.LOCK_UN)
        f.close()

    @contextmanager
    def _atomic_section(self, target_rank: int):
        f = self._acquire_flock(
            self._lockfile(target_rank, "atomic"), True,
            what=f"win {self.win_id} atomic sublock (target {target_rank})",
        )
        try:
            yield
        finally:
            self._drop_flock(f)

    # -- passive-target sync -------------------------------------------------
    def lock(self, target_rank: int, mode: str = LOCK_EXCLUSIVE) -> None:
        if mode not in (LOCK_SHARED, LOCK_EXCLUSIVE):
            raise ArgumentError(f"unknown lock mode {mode!r}")
        self._check_target(target_rank)
        rt = self.runtime
        origin = current_proc().rank
        if self.comm.group.rank_of_world(origin) < 0:
            raise WinError(
                f"world rank {origin} is not in this window's group and "
                "cannot open an access epoch on it"
            )
        with rt.cond:
            self._check_alive()
            rt.check_self_alive()
            if origin in self._held:
                raise RMASyncError(
                    f"origin {origin} already holds a lock on target "
                    f"{self._held[origin]} of this window (MPI-2 allows one "
                    "lock per window per process)"
                )
            if origin in self._lock_all:
                raise RMASyncError("lock() inside a lock_all epoch")
            if origin in self._fence_members:
                raise RMASyncError("lock() inside an active-target fence epoch")
            if self._target_world(target_rank) in rt.dead_ranks:
                raise TargetFailedError(
                    f"lock: target rank {target_rank} of win {self.win_id} "
                    "has failed"
                )
        # the cross-process exclusion, acquired without the giant lock so
        # the pump thread keeps running while we spin
        f = self._acquire_flock(
            self._lockfile(target_rank), mode == LOCK_EXCLUSIVE,
            what=f"win {self.win_id} lock (target {target_rank})",
        )
        with rt.cond:
            self._epoch_files[target_rank] = f
            ls = self._locks[target_rank]
            ls.mode = mode
            ls.holders.add(origin)
            self._held[origin] = target_rank
            self._epochs[(origin, target_rank)] = _Epoch(origin, target_rank, mode)
            rt.notify_progress()

    def unlock(self, target_rank: int) -> None:
        self._check_target(target_rank)
        rt = self.runtime
        origin = current_proc().rank
        with rt.cond:
            self._check_alive()
            rt.check_self_alive()
            epoch = self._epochs.pop((origin, target_rank), None)
            if epoch is None or self._held.get(origin) != target_rank:
                raise RMASyncError(
                    f"unlock({target_rank}) without a matching lock by "
                    f"origin {origin}"
                )
            self._deliver_gets(epoch)
            del self._held[origin]
            ls = self._locks[target_rank]
            ls.holders.discard(origin)
            if not ls.holders:
                ls.mode = None
            f = self._epoch_files.pop(target_rank, None)
            rt.notify_progress()
        if f is not None:
            self._drop_flock(f)

    # -- atomics -------------------------------------------------------------
    def accumulate(self, origin: np.ndarray, target_rank: int, *args, **kw):
        with self._atomic_section(target_rank):
            return super().accumulate(origin, target_rank, *args, **kw)

    def fetch_and_op(self, value, target_rank: int, *args, **kw):
        with self._atomic_section(target_rank):
            return super().fetch_and_op(value, target_rank, *args, **kw)

    def compare_and_swap(self, compare, value, target_rank: int, *args, **kw):
        with self._atomic_section(target_rank):
            return super().compare_and_swap(compare, value, target_rank, *args, **kw)

    # -- teardown ------------------------------------------------------------
    def free_with(self, on_free) -> Any:
        result = super().free_with(on_free)
        self._release_segments()
        return result

    def invalidate(self) -> None:
        super().invalidate()
        with self.runtime.cond:
            files = list(self._epoch_files.values())
            self._epoch_files.clear()
        for f in files:
            self._drop_flock(f)
        self._release_segments()

    def _release_segments(self) -> None:
        """Detach the shared-memory segments; the creator unlinks its own.

        Peers' mappings stay valid after an unlink (POSIX), so a rank
        finishing early never pulls memory out from under survivors —
        only *new* attachments become impossible, and window creation is
        collective, so there are none.
        """
        if self._released:
            return
        self._released = True
        self._buffers = [np.empty(0, dtype=np.uint8) for _ in self._buffers]
        segments, self._segments = self._segments, []
        for r, seg in enumerate(segments):
            if r == self._creator_rank:
                try:
                    # the parent's teardown sweep can consume the
                    # (set-valued) tracker entry before this unlink's own
                    # unregister arrives; re-registering is idempotent and
                    # keeps the tracker from warning
                    resource_tracker.register(seg._name, "shared_memory")
                    seg.unlink()
                except FileNotFoundError:
                    pass
            try:
                seg.close()
            except BufferError:
                # a live external view (user-held local_view) pins the
                # mapping; the OS reclaims it at process exit
                pass
