"""Collective communication over the simulated runtime.

Collectives are implemented with a rendezvous-context scheme: the *i*-th
collective call on a communicator creates (or joins) a shared context;
ranks deposit contributions, the last arrival computes the result, and
every rank picks up its share.  Because all of this happens under the
runtime's giant lock, the implementation is linearisable and the MPI
ordering rule (all ranks call the same collectives in the same order on a
communicator) is *checked*: mismatched collective kinds raise instead of
hanging.

Modeled cost uses binomial/recursive-doubling shapes — ``ceil(log2 p)``
rounds of latency plus the per-round byte costs — charged through the
runtime's timing policy when one is installed.  Barrier-class collectives
also synchronise the participants' simulated clocks to the common exit
time, which is what makes NWChem-proxy load-imbalance measurements
meaningful.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from . import ops as mpi_ops
from .errors import ArgumentError, InternalError, RankError, TargetFailedError


class _CollectiveContext:
    """Rendezvous state of one collective call instance."""

    __slots__ = (
        "kind",
        "size",
        "contributions",
        "arrived",
        "departed",
        "result",
        "ready",
        "error",
    )

    def __init__(self, kind: str, size: int):
        self.kind = kind
        self.size = size
        self.contributions: dict[int, Any] = {}
        self.arrived = 0
        self.departed = 0
        self.result: Any = None
        self.ready = False
        self.error: BaseException | None = None


class CollectiveEngine:
    """Per-communicator collective rendezvous (giant lock held by callers)."""

    def __init__(self, comm):
        self.comm = comm
        self._contexts: dict[int, _CollectiveContext] = {}
        self._counters: list[int] = [0] * comm.size
        comm.runtime.add_death_hook(self._on_rank_death)

    # -- fault handling ---------------------------------------------------------
    def _dead_members(self) -> list[int]:
        """Comm ranks of this communicator's failed members."""
        rt = self.comm.runtime
        group = self.comm.group
        return [
            group.rank_of_world(w)
            for w in rt.dead_ranks
            if group.contains_world(w)
        ]

    def _poison(self, ctx: _CollectiveContext, dead: list[int]) -> bool:
        """Fail ``ctx`` if a dead member has not deposited; returns True if so."""
        missing = [r for r in dead if r not in ctx.contributions]
        if not missing or ctx.ready:
            return False
        ctx.error = TargetFailedError(
            f"collective {ctx.kind} on {self.comm} cannot complete: "
            f"failed member rank(s) {missing} never arrived"
        )
        ctx.ready = True
        return True

    def _on_rank_death(self, world_rank: int) -> None:
        """Death hook: fail every in-flight collective missing the dead rank."""
        if not self.comm.group.contains_world(world_rank):
            return
        dead_rank = self.comm.group.rank_of_world(world_rank)
        for ctx in self._contexts.values():
            self._poison(ctx, [dead_rank])

    def fail_all(self, exc: BaseException) -> None:
        """Fail every in-flight collective with ``exc`` (comm revocation).

        Must be called with the giant lock held.  Contexts that already
        completed (``ready`` with no error) are left alone so departing
        ranks still pick up their result.
        """
        for ctx in self._contexts.values():
            if not ctx.ready:
                ctx.error = exc
                ctx.ready = True

    def _enter(self, rank: int, kind: str) -> tuple[int, _CollectiveContext]:
        idx = self._counters[rank]
        self._counters[rank] += 1
        ctx = self._contexts.get(idx)
        if ctx is None:
            ctx = _CollectiveContext(kind, self.comm.size)
            self._contexts[idx] = ctx
        elif ctx.kind != kind:
            raise InternalError(
                f"collective mismatch on {self.comm}: rank {rank} called {kind}, "
                f"others called {ctx.kind}"
            )
        return idx, ctx

    def run(
        self,
        rank: int,
        kind: str,
        contribution: Any,
        compute: Callable[[dict[int, Any]], Any],
    ) -> Any:
        """Generic rendezvous: deposit, wait for all, compute once, fetch.

        ``compute`` receives the rank→contribution map and returns the
        shared result object; per-rank extraction is the caller's job.
        """
        rt = self.comm.runtime
        rt.check_self_alive()
        self.comm._check_revoked()
        idx, ctx = self._enter(rank, kind)
        ctx.contributions[rank] = contribution
        ctx.arrived += 1
        if ctx.arrived == ctx.size:
            try:
                ctx.result = compute(ctx.contributions)
            except BaseException as exc:  # propagate to every participant
                ctx.error = exc
            ctx.ready = True
            rt.notify_progress()
        else:
            # quarantine: a failed member can never deposit, so fail the
            # whole collective with a typed error instead of hanging
            if rt.dead_ranks and self._poison(ctx, self._dead_members()):
                rt.notify_progress()
            rt.wait_for(lambda: ctx.ready)
        result, error = ctx.result, ctx.error
        ctx.departed += 1
        if ctx.departed == ctx.size:
            del self._contexts[idx]
        if error is not None:
            raise error
        self._charge(kind, contribution)
        return result

    # -- modeled time -----------------------------------------------------------
    def _charge(self, kind: str, contribution: Any) -> None:
        rt = self.comm.runtime
        if rt.timing is None:
            return
        nbytes = 0
        if isinstance(contribution, np.ndarray):
            nbytes = contribution.nbytes
        elif isinstance(contribution, tuple):
            nbytes = sum(
                c.nbytes for c in contribution if isinstance(c, np.ndarray)
            )
        cost = rt.timing.collective_cost(kind, nbytes, self.comm.size)
        from .runtime import current_proc

        proc = current_proc()
        proc.clock.advance(cost, kind=f"coll:{kind}", nbytes=nbytes)
        if kind in ("barrier", "allreduce", "allgather", "alltoall"):
            # synchronising collectives: every rank leaves at the common time
            latest = max(p.clock.now for p in rt.procs)
            proc.clock.sync_to(latest)


# ---------------------------------------------------------------------------
# Collective algorithms (invoked by Comm methods; giant lock held)
# ---------------------------------------------------------------------------


def barrier(comm, rank: int) -> None:
    comm._coll.run(rank, "barrier", None, lambda contrib: None)


def bcast(comm, rank: int, buf: np.ndarray, root: int) -> None:
    """In-place broadcast of a NumPy buffer from ``root``."""
    _check_root(comm, root)
    payload = np.ascontiguousarray(buf).copy() if rank == root else None
    data = comm._coll.run(
        rank, "bcast", payload, lambda contrib: contrib[root]
    )
    if rank != root:
        if buf.nbytes != data.nbytes:
            raise ArgumentError(
                f"bcast: rank {rank} buffer {buf.nbytes}B != root payload {data.nbytes}B"
            )
        buf.reshape(-1).view(np.uint8)[:] = data.reshape(-1).view(np.uint8)


def bcast_obj(comm, rank: int, obj: Any, root: int) -> Any:
    """Broadcast an arbitrary Python object (reference semantics)."""
    _check_root(comm, root)
    return comm._coll.run(
        rank, "bcast_obj", obj if rank == root else None, lambda c: c[root]
    )


def gather(comm, rank: int, sendobj: Any, root: int) -> "list[Any] | None":
    _check_root(comm, root)
    result = comm._coll.run(
        rank,
        "gather",
        sendobj,
        lambda c: [c[r] for r in range(comm.size)],
    )
    return result if rank == root else None


def allgather(comm, rank: int, sendobj: Any) -> list[Any]:
    return comm._coll.run(
        rank, "allgather", sendobj, lambda c: [c[r] for r in range(comm.size)]
    )


def scatter(comm, rank: int, sendobjs: "list[Any] | None", root: int) -> Any:
    _check_root(comm, root)
    if rank == root:
        if sendobjs is None or len(sendobjs) != comm.size:
            raise ArgumentError("scatter: root must supply one object per rank")
    result = comm._coll.run(
        rank, "scatter", sendobjs if rank == root else None, lambda c: c[root]
    )
    return result[rank]

def alltoall(comm, rank: int, sendobjs: list[Any]) -> list[Any]:
    """Each rank supplies one object per destination; returns one per source."""
    if len(sendobjs) != comm.size:
        raise ArgumentError("alltoall: need one object per rank")
    matrix = comm._coll.run(
        rank, "alltoall", list(sendobjs), lambda c: c
    )
    return [matrix[src][rank] for src in range(comm.size)]


def reduce(comm, rank: int, send: np.ndarray, op, root: int) -> "np.ndarray | None":
    _check_root(comm, root)
    op = mpi_ops.lookup(op)
    result = comm._coll.run(
        rank,
        "reduce",
        np.ascontiguousarray(send).copy(),
        lambda c: _tree_reduce(c, op, comm.size),
    )
    return result.copy() if rank == root else None


def allreduce(comm, rank: int, send: np.ndarray, op) -> np.ndarray:
    op = mpi_ops.lookup(op)
    result = comm._coll.run(
        rank,
        "allreduce",
        np.ascontiguousarray(send).copy(),
        lambda c: _tree_reduce(c, op, comm.size),
    )
    return result.copy()


def scan(comm, rank: int, send: np.ndarray, op) -> np.ndarray:
    """Inclusive prefix reduction."""
    op = mpi_ops.lookup(op)
    prefixes = comm._coll.run(
        rank,
        "scan",
        np.ascontiguousarray(send).copy(),
        lambda c: _prefix(c, op, comm.size, inclusive=True),
    )
    return prefixes[rank].copy()


def exscan(comm, rank: int, send: np.ndarray, op) -> "np.ndarray | None":
    """Exclusive prefix reduction; rank 0 receives None (undefined in MPI)."""
    op = mpi_ops.lookup(op)
    prefixes = comm._coll.run(
        rank,
        "exscan",
        np.ascontiguousarray(send).copy(),
        lambda c: _prefix(c, op, comm.size, inclusive=False),
    )
    res = prefixes[rank]
    return None if res is None else res.copy()


def _tree_reduce(contrib: dict[int, np.ndarray], op: mpi_ops.Op, size: int) -> np.ndarray:
    """Rank-ordered pairwise reduction (deterministic, MPI-canonical order)."""
    shapes = {contrib[r].shape for r in range(size)}
    if len(shapes) != 1:
        raise ArgumentError(f"reduce: mismatched buffer shapes across ranks: {shapes}")
    acc = contrib[0].copy()
    for r in range(1, size):
        acc = op.combine(acc, contrib[r])
    return acc


def _prefix(
    contrib: dict[int, np.ndarray], op: mpi_ops.Op, size: int, inclusive: bool
) -> "list[np.ndarray | None]":
    out: list[np.ndarray | None] = []
    acc: np.ndarray | None = None
    for r in range(size):
        if inclusive:
            acc = contrib[r].copy() if acc is None else op.combine(acc, contrib[r])
            out.append(acc.copy())
        else:
            out.append(None if acc is None else acc.copy())
            acc = contrib[r].copy() if acc is None else op.combine(acc, contrib[r])
    return out


def _check_root(comm, root: int) -> None:
    if not 0 <= root < comm.size:
        raise RankError(f"root {root} not in [0, {comm.size})")


def log2_rounds(p: int) -> int:
    """Rounds of a binomial-tree collective on ``p`` ranks."""
    return max(1, math.ceil(math.log2(max(p, 2))))
