"""Communicators: intra- and inter-communicators over the simulated runtime.

One :class:`Comm` object is shared by all of its member rank-threads;
``comm.rank`` resolves through the calling thread's :class:`Proc`.  The
communicator carries

* a context id (isolating p2p matching between communicators, as in MPI),
* a :class:`~repro.mpi.group.Group` of world ranks,
* a :class:`~repro.mpi.p2p.P2PEngine` and a collective engine.

Intercommunicators (:class:`Intercomm`) exist to support the paper's
noncollective group-creation algorithm (§V-A, citing Dinan et al.
EuroMPI'11): subgroups build intracommunicators recursively, connect
leaders with ``create_intercomm`` over a bridge communicator, and
``merge`` the result — all without participation of non-members.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from . import collectives as coll
from .errors import ArgumentError, CommError, CommRevokedError, RankError
from .group import UNDEFINED, Group
from .p2p import ANY_SOURCE, ANY_TAG, P2PEngine, Request, Status, _ObjStatus
from .runtime import Runtime, current_proc


class Comm:
    """An intracommunicator (shared object; rank resolved per thread)."""

    def __init__(self, runtime: Runtime, group: Group, context_id: int):
        self.runtime = runtime
        self.group = group
        self.context_id = context_id
        self._p2p = P2PEngine(runtime, context_id)
        self._coll = coll.CollectiveEngine(self)
        #: set by :meth:`revoke`; poisons every op except ``agree``/``shrink``
        self._revoked = False
        #: per-(kind, world rank) sequence numbers matching successive
        #: fault-tolerant rendezvous (``agree``/``shrink``) across members
        self._ft_counters: dict = {}

    # -- construction -----------------------------------------------------------
    @classmethod
    def _world(cls, runtime: Runtime) -> "Comm":
        """World communicator for ``runtime`` (backend decides the flavour)."""
        return runtime.backend.make_world(runtime)

    # -- identity ---------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.group.size

    @property
    def rank(self) -> int:
        """Rank of the calling thread in this communicator."""
        r = self.group.rank_of_world(current_proc().rank)
        if r == UNDEFINED:
            raise CommError(
                f"world rank {current_proc().rank} is not a member of {self}"
            )
        return r

    def world_rank(self, rank: int) -> int:
        return self.group.world_rank(rank)

    @property
    def revoked(self) -> bool:
        """True once any member called :meth:`revoke`."""
        return self._revoked

    def _check_revoked(self) -> None:
        if self._revoked:
            raise CommRevokedError(
                f"communicator ctx={self.context_id} was revoked"
            )

    # -- point to point -----------------------------------------------------------
    def _charge_p2p(self, nbytes: int, kind: str) -> None:
        if self.runtime.timing is not None:
            cost = self.runtime.timing.p2p_cost(nbytes)
            current_proc().clock.advance(cost, kind=kind, nbytes=nbytes)

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Blocking (eager) send of a NumPy buffer or Python object."""
        self.runtime.check_self_alive()
        self._check_revoked()
        self.runtime.fuzz_point("p2p:send")
        dst_world = self.group.world_rank(dest)
        nbytes = payload.nbytes if isinstance(payload, np.ndarray) else 0
        with self.runtime.cond:
            self._p2p.post_send(current_proc().rank, dst_world, tag, payload)
        self._charge_p2p(nbytes, "p2p:send")

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (eager: completes immediately)."""
        self.runtime.check_self_alive()
        self._check_revoked()
        self.runtime.fuzz_point("p2p:isend")
        dst_world = self.group.world_rank(dest)
        with self.runtime.cond:
            self._p2p.post_send(current_proc().rank, dst_world, tag, payload)
            req = Request(self._p2p)
            req._finish(None)
        self._charge_p2p(
            payload.nbytes if isinstance(payload, np.ndarray) else 0, "p2p:isend"
        )
        return req

    def irecv(
        self, buf: "np.ndarray | None" = None, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Request:
        """Nonblocking receive; ``buf=None`` selects object mode."""
        self.runtime.check_self_alive()
        self._check_revoked()
        self.runtime.fuzz_point("p2p:recv")
        src_world = (
            source if source == ANY_SOURCE else self.group.world_rank(source)
        )
        with self.runtime.cond:
            return self._p2p.post_recv(current_proc().rank, src_world, tag, buf)

    def recv(
        self, buf: "np.ndarray | None" = None, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Any:
        """Blocking receive.

        With a buffer: fills it and returns a :class:`Status` whose
        ``source`` is a rank *in this communicator*.  Without: returns
        ``(payload, Status)``.
        """
        req = self.irecv(buf, source, tag)
        status = req.wait()
        assert status is not None
        self._charge_p2p(status.count, "p2p:recv")
        status.source = self.group.rank_of_world(status.source)
        if buf is None:
            assert isinstance(status, _ObjStatus)
            return status.payload, status
        return status

    def sendrecv(
        self,
        sendpayload: Any,
        dest: int,
        recvbuf: "np.ndarray | None" = None,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """Combined send+receive (deadlock-free by construction here)."""
        req = self.irecv(recvbuf, source, recvtag)
        self.send(sendpayload, dest, sendtag)
        status = req.wait()
        assert status is not None
        status.source = self.group.rank_of_world(status.source)
        if recvbuf is None:
            assert isinstance(status, _ObjStatus)
            return status.payload, status
        return status

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "Status | None":
        self.runtime.check_self_alive()
        self._check_revoked()
        src_world = (
            source if source == ANY_SOURCE else self.group.world_rank(source)
        )
        with self.runtime.cond:
            st = self._p2p.probe(current_proc().rank, src_world, tag)
        if st is not None:
            st.source = self.group.rank_of_world(st.source)
        return st

    # -- collectives ---------------------------------------------------------------
    def barrier(self) -> None:
        self.runtime.fuzz_point("coll:barrier")
        with self.runtime.cond:
            coll.barrier(self, self.rank)

    def bcast(self, buf: np.ndarray, root: int = 0) -> None:
        self.runtime.fuzz_point("coll:bcast")
        with self.runtime.cond:
            coll.bcast(self, self.rank, buf, root)

    def bcast_obj(self, obj: Any = None, root: int = 0) -> Any:
        self.runtime.fuzz_point("coll:bcast_obj")
        with self.runtime.cond:
            return coll.bcast_obj(self, self.rank, obj, root)

    def gather(self, sendobj: Any, root: int = 0) -> "list[Any] | None":
        self.runtime.fuzz_point("coll:gather")
        with self.runtime.cond:
            return coll.gather(self, self.rank, sendobj, root)

    def allgather(self, sendobj: Any) -> list[Any]:
        self.runtime.fuzz_point("coll:allgather")
        with self.runtime.cond:
            return coll.allgather(self, self.rank, sendobj)

    def scatter(self, sendobjs: "list[Any] | None" = None, root: int = 0) -> Any:
        self.runtime.fuzz_point("coll:scatter")
        with self.runtime.cond:
            return coll.scatter(self, self.rank, sendobjs, root)

    def alltoall(self, sendobjs: list[Any]) -> list[Any]:
        self.runtime.fuzz_point("coll:alltoall")
        with self.runtime.cond:
            return coll.alltoall(self, self.rank, sendobjs)

    def reduce(self, send: np.ndarray, op="MPI_SUM", root: int = 0) -> "np.ndarray | None":
        self.runtime.fuzz_point("coll:reduce")
        with self.runtime.cond:
            return coll.reduce(self, self.rank, send, op, root)

    def allreduce(self, send: np.ndarray, op="MPI_SUM") -> np.ndarray:
        self.runtime.fuzz_point("coll:allreduce")
        with self.runtime.cond:
            return coll.allreduce(self, self.rank, send, op)

    def scan(self, send: np.ndarray, op="MPI_SUM") -> np.ndarray:
        self.runtime.fuzz_point("coll:scan")
        with self.runtime.cond:
            return coll.scan(self, self.rank, send, op)

    def exscan(self, send: np.ndarray, op="MPI_SUM") -> "np.ndarray | None":
        self.runtime.fuzz_point("coll:exscan")
        with self.runtime.cond:
            return coll.exscan(self, self.rank, send, op)

    # -- communicator management -----------------------------------------------------
    def dup(self) -> "Comm":
        """Collective duplicate with a fresh context id."""
        with self.runtime.cond:
            rank = self.rank

            def make(_contrib):
                return Comm(self.runtime, self.group, self.runtime.alloc_context_id())

            return self._coll.run(rank, "comm_dup", None, make)

    def split(self, color: int, key: int = 0) -> "Comm | None":
        """Collective split; ``color < 0`` (MPI_UNDEFINED) opts out."""
        with self.runtime.cond:
            rank = self.rank

            def make(contrib: dict[int, tuple[int, int, int]]):
                by_color: dict[int, list[tuple[int, int, int]]] = {}
                for r in range(self.size):
                    c, k, w = contrib[r]
                    if c >= 0:
                        by_color.setdefault(c, []).append((k, r, w))
                comms: dict[int, Comm] = {}
                for c, members in by_color.items():
                    members.sort()
                    grp = Group(w for _k, _r, w in members)
                    comms[c] = Comm(self.runtime, grp, self.runtime.alloc_context_id())
                return comms

            comms = self._coll.run(
                rank, "comm_split", (color, key, self.group.world_rank(rank)), make
            )
            return comms.get(color) if color >= 0 else None

    def create(self, group: Group) -> "Comm | None":
        """Collective over the parent; returns a comm for members of ``group``."""
        for w in group:
            if not self.group.contains_world(w):
                raise ArgumentError(f"create: world rank {w} not in parent {self}")
        with self.runtime.cond:
            rank = self.rank

            def make(_contrib):
                return Comm(self.runtime, group, self.runtime.alloc_context_id())

            newcomm = self._coll.run(rank, "comm_create", None, make)
            return newcomm if group.contains_world(self.group.world_rank(rank)) else None

    # -- fault tolerance (ULFM analogues) --------------------------------------
    #
    # The four primitives below mirror the ULFM MPI fault-tolerance
    # proposal: ``failure_ack``/``failure_get_acked`` acknowledge known
    # failures (clearing a standing dead-stall verdict so survivors can
    # block again), ``revoke`` poisons every other operation on this
    # communicator with :class:`CommRevokedError`, and ``agree``/``shrink``
    # are the only operations guaranteed to complete with dead (or
    # revoked) members — which is exactly what recovery code needs to
    # rendezvous and rebuild.  They deliberately do *not* go through
    # :class:`~repro.mpi.collectives.CollectiveEngine` (whose contexts are
    # poisoned by dead members); instead they use a survivor-only
    # rendezvous in ``runtime.shared`` whose completion predicate is
    # re-evaluated as ranks die, modeled on :meth:`Intercomm.merge`.

    def failure_ack(self) -> None:
        """Acknowledge all currently-known member failures (ULFM
        ``MPIX_Comm_failure_ack``)."""
        self.runtime.check_self_alive()
        self.runtime.failure_ack()

    def failure_get_acked(self) -> Group:
        """Group of failed members this rank has acknowledged (ULFM
        ``MPIX_Comm_failure_get_acked``)."""
        self.runtime.check_self_alive()
        acked = self.runtime.acked_failures()
        return Group(w for w in sorted(acked) if self.group.contains_world(w))

    def revoke(self) -> None:
        """Revoke the communicator (ULFM ``MPIX_Comm_revoke``).

        Non-collective: any member may call it.  Every in-flight
        operation on this communicator fails with
        :class:`CommRevokedError` on every member, as does every future
        operation except :meth:`agree` and :meth:`shrink`.  Idempotent.
        """
        rt = self.runtime
        rt.check_self_alive()
        rt.fuzz_point("ft:revoke")
        with rt.cond:
            self._apply_revoke()

    def _apply_revoke(self) -> None:
        """Mark this communicator revoked and poison in-flight operations.

        Must be called with ``runtime.cond`` held.  Idempotent.  Shared
        by the thread-backend :meth:`revoke` (where every member sees the
        same object) and the proc backend's pump thread (which applies a
        peer's revoke to the local replica).
        """
        if self._revoked:
            return
        self._revoked = True
        exc = CommRevokedError(f"communicator ctx={self.context_id} was revoked")
        self._coll.fail_all(exc)
        self._p2p.fail_all(exc)
        self.runtime.notify_progress()

    def _holder_note(self, win_id: int, host: int, mutex: int, holder: "int | None") -> None:
        """Backend hook: publish a mutex-holder tracking update.

        ``armci.mutexes`` calls this whenever its holder table changes
        (``holder`` is the new holding group rank, or ``None`` on a
        release).  On the thread backend the table lives in
        ``runtime.shared`` and is visible to every rank already, so this
        is a no-op; the proc backend overrides it to broadcast the update
        to peer processes, which is what lets a *survivor's* death hooks
        see acquisitions made by a rank in another process.
        """

    def _ft_seq(self, kind: str) -> int:
        """Next rendezvous sequence number for the calling member.

        Each member's *n*-th ``agree`` (or ``shrink``) matches every other
        member's *n*-th — the same per-rank counter device the collective
        engine uses for context matching.  Must hold ``runtime.cond``.
        """
        me = current_proc().rank
        idx = self._ft_counters.get((kind, me), 0)
        self._ft_counters[(kind, me)] = idx + 1
        return idx

    def agree(self, flag: int = 1) -> int:
        """Fault-tolerant agreement (ULFM ``MPIX_Comm_agree``).

        Returns the bitwise AND of the ``flag`` contributions of all
        *live* members.  Completes even when members are dead or die
        mid-operation: the completion predicate is re-evaluated each time
        a member dies, so a contribution that will never arrive stops
        being waited for.  Acknowledges known failures on entry.
        """
        rt = self.runtime
        rt.check_self_alive()
        rt.fuzz_point("ft:agree")
        rt.failure_ack()
        with rt.cond:
            me = current_proc().rank
            key = ("ft_agree", self.context_id, self._ft_seq("agree"))
            state = rt.shared.get(key)
            if state is None:
                state = {"contrib": {}, "value": None, "done": False, "departed": 0}
                rt.shared[key] = state
            state["contrib"][me] = int(flag)
            rt.notify_progress()
            members = list(self.group.members)

            def complete() -> bool:
                if state["done"]:
                    return True
                live = [w for w in members if w not in rt.dead_ranks]
                if live and all(w in state["contrib"] for w in live):
                    value = -1  # AND identity (all ones)
                    for w in live:
                        value &= state["contrib"][w]
                    state["value"] = value
                    state["done"] = True
                    rt.notify_progress()
                    return True
                return False

            rt.wait_for(complete, what="agree")
            value: int = state["value"]
            state["departed"] += 1
            live_now = [w for w in members if w not in rt.dead_ranks]
            if state["departed"] >= len(live_now):
                rt.shared.pop(key, None)
            return value

    def shrink(self) -> "Comm":
        """Re-form a communicator of the survivors (ULFM
        ``MPIX_Comm_shrink``).

        Collective over the *live* members only.  Returns a new
        communicator containing every surviving member, densely re-ranked
        in world-rank order (rank ``i`` of the new communicator is the
        ``i``-th smallest surviving world rank).  Acknowledges known
        failures on entry; works on a revoked communicator.
        """
        rt = self.runtime
        rt.check_self_alive()
        rt.fuzz_point("ft:shrink")
        rt.failure_ack()
        with rt.cond:
            me = current_proc().rank
            key = ("ft_shrink", self.context_id, self._ft_seq("shrink"))
            state = rt.shared.get(key)
            if state is None:
                state = {"arrived": set(), "comm": None, "departed": 0}
                rt.shared[key] = state
            state["arrived"].add(me)
            rt.notify_progress()
            members = list(self.group.members)

            def complete() -> bool:
                if state["comm"] is not None:
                    return True
                live = [w for w in members if w not in rt.dead_ranks]
                if live and set(live) <= state["arrived"]:
                    state["comm"] = Comm(
                        rt, Group(sorted(live)), rt.alloc_context_id()
                    )
                    rt.notify_progress()
                    return True
                return False

            rt.wait_for(complete, what="shrink")
            newcomm: Comm = state["comm"]
            state["departed"] += 1
            if state["departed"] >= newcomm.size:
                rt.shared.pop(key, None)
            return newcomm

    # -- intercommunicators --------------------------------------------------------
    def create_intercomm(
        self, local_leader: int, bridge: "Comm", remote_leader_bridge_rank: int, tag: int
    ) -> "Intercomm":
        """Build an intercommunicator (MPI_Intercomm_create).

        Collective over this (local) communicator; the two local leaders
        exchange group information and a shared context id through the
        ``bridge`` communicator using ``tag``.
        """
        if not 0 <= local_leader < self.size:
            raise RankError(f"local_leader {local_leader} out of range")
        rank = self.rank
        if rank == local_leader:
            my_world = self.group.world_rank(rank)
            # deterministically pick the context-id allocator: the leader
            # with the smaller world rank allocates and sends it
            remote_world = bridge.group.world_rank(remote_leader_bridge_rank)
            if my_world < remote_world:
                with self.runtime.cond:
                    cid = self.runtime.alloc_context_id()
                bridge.send((cid, self.group.members), remote_leader_bridge_rank, tag)
                payload, _ = bridge.recv(source=remote_leader_bridge_rank, tag=tag)
                (_, remote_members) = payload
            else:
                payload, _ = bridge.recv(source=remote_leader_bridge_rank, tag=tag)
                (cid, remote_members) = payload
                bridge.send((cid, self.group.members), remote_leader_bridge_rank, tag)
            info = (cid, remote_members)
        else:
            info = None
        info = self.bcast_obj(info, root=local_leader)
        cid, remote_members = info
        return Intercomm(
            self.runtime, self.group, Group(remote_members), cid, local_comm=self
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Comm size={self.size} ctx={self.context_id}>"


class Intercomm:
    """An intercommunicator: p2p targets ranks in the *remote* group."""

    def __init__(
        self,
        runtime: Runtime,
        local_group: Group,
        remote_group: Group,
        context_id: int,
        local_comm: Comm,
    ):
        self.runtime = runtime
        self.local_group = local_group
        self.remote_group = remote_group
        self.context_id = context_id
        self.local_comm = local_comm
        key = ("intercomm_p2p", context_id)
        with runtime.cond:
            engine = runtime.shared.get(key)
            if engine is None:
                engine = P2PEngine(runtime, context_id)
                runtime.shared[key] = engine
        self._p2p = engine

    @property
    def rank(self) -> int:
        return self.local_group.rank_of_world(current_proc().rank)

    @property
    def size(self) -> int:
        return self.local_group.size

    @property
    def remote_size(self) -> int:
        return self.remote_group.size

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        dst_world = self.remote_group.world_rank(dest)
        with self.runtime.cond:
            self._p2p.post_send(current_proc().rank, dst_world, tag, payload)

    def recv(
        self, buf: "np.ndarray | None" = None, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Any:
        src_world = (
            source if source == ANY_SOURCE else self.remote_group.world_rank(source)
        )
        with self.runtime.cond:
            req = self._p2p.post_recv(current_proc().rank, src_world, tag, buf)
        status = req.wait()
        assert status is not None
        status.source = self.remote_group.rank_of_world(status.source)
        if buf is None:
            assert isinstance(status, _ObjStatus)
            return status.payload, status
        return status

    def merge(self, high: bool = False) -> Comm:
        """Merge into an intracommunicator (MPI_Intercomm_merge).

        Collective over the union.  The ``high=False`` side's group is
        ordered first; a tie (both sides same flag) is broken by smaller
        leading world rank, as real MPI implementations do.
        """
        rt = self.runtime
        key = ("intercomm_merge", self.context_id)
        total = self.local_group.size + self.remote_group.size
        with rt.cond:
            state = rt.shared.get(key)
            if state is None:
                state = {"flags": {}, "arrived": 0, "departed": 0, "result": None}
                rt.shared[key] = state
            me = current_proc().rank
            state["flags"][me] = bool(high)
            state["arrived"] += 1
            if state["arrived"] == total:
                local_first = self._merge_order(state["flags"])
                members = (
                    list(local_first[0].members) + list(local_first[1].members)
                )
                state["result"] = Comm(rt, Group(members), rt.alloc_context_id())
                rt.notify_progress()
            else:
                rt.wait_for(lambda: state["result"] is not None)
            result: Comm = state["result"]
            state["departed"] += 1
            if state["departed"] == total:
                del rt.shared[key]
            return result

    def _merge_order(self, flags: dict[int, bool]) -> tuple[Group, Group]:
        lo_flag = all(flags[w] for w in self.local_group) if self.local_group.size else False
        hi_flag = all(flags[w] for w in self.remote_group) if self.remote_group.size else False
        local_high = lo_flag
        remote_high = hi_flag
        if local_high != remote_high:
            return (
                (self.remote_group, self.local_group)
                if local_high
                else (self.local_group, self.remote_group)
            )
        # tie: smaller leading world rank first
        if min(self.local_group.members) < min(self.remote_group.members):
            return self.local_group, self.remote_group
        return self.remote_group, self.local_group

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Intercomm local={self.local_group.size} "
            f"remote={self.remote_group.size} ctx={self.context_id}>"
        )
