"""MPI derived datatypes for the simulated runtime.

The paper's *direct* noncontiguous methods (§VI-A, §VI-C) hand an entire
IOV or strided transfer to MPI as **one** communication operation using an
indexed or subarray derived datatype, letting the MPI library choose
pack/unpack vs. scatter/gather.  To reproduce that, the simulated MPI
implements a working datatype engine:

* predefined types (``BYTE``, ``INT``, ``LONG``, ``FLOAT``, ``DOUBLE`` …)
  backed by NumPy dtypes;
* constructors: ``contiguous``, ``vector``/``hvector``,
  ``indexed``/``hindexed``/``indexed_block``, and ``subarray`` (C order);
* ``commit()``/``free()`` bookkeeping (uncommitted types are erroneous in
  communication, as in MPI);
* **flattening** to a canonical ``(offsets, lengths)`` byte-segment map
  with adjacent-segment coalescing — the segment map drives packing,
  conflict detection, and the cost model;
* vectorised ``pack``/``unpack`` between user buffers and contiguous
  wire representation.

Flattening is vectorised with NumPy (offset grids are built by
broadcasting, not by Python loops) because NWChem-scale transfers flatten
tens of thousands of segments (§VI-B).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import ArgumentError, DatatypeError

__all__ = [
    "Datatype",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "LONG_LONG",
    "FLOAT",
    "DOUBLE",
    "UNSIGNED",
    "UNSIGNED_LONG",
    "PREDEFINED",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "struct_type",
    "subarray",
    "SegmentMap",
    "pack_reference",
    "unpack_reference",
]


#: flat gather/scatter index matrices are memoised on the segment map only
#: up to this many data bytes (the index is int64, i.e. 8x the data size)
_INDEX_CACHE_MAX_BYTES = 1 << 20


class SegmentMap:
    """Canonical flattened form of a datatype: byte segments in layout order.

    ``offsets[i]`` is the byte displacement of segment *i* from the start
    of the buffer; ``lengths[i]`` its length in bytes.  Segments are
    stored in *traversal* order (the order MPI serialises data), which is
    not necessarily ascending address order for exotic layouts.

    The map also owns the vectorised datapath: :meth:`gather` and
    :meth:`scatter` move all segments with one NumPy fancy-indexing
    operation (§VI's observation that datatype processing dominates
    noncontiguous transfer cost — a per-segment Python loop is exactly
    the overhead the paper's direct methods avoid).
    """

    __slots__ = (
        "offsets",
        "lengths",
        "_total",
        "_uniform",
        "_flat_idx",
        "_self_overlap",
        "_arith",
        "_bounds",
    )

    def __init__(self, offsets: np.ndarray, lengths: np.ndarray):
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        if self.offsets.shape != self.lengths.shape or self.offsets.ndim != 1:
            raise ArgumentError("SegmentMap arrays must be 1-D and equal length")
        self._total = int(self.lengths.sum())
        self._uniform: "int | None | bool" = False  # False = not yet computed
        self._flat_idx: "np.ndarray | None" = None
        self._self_overlap: "bool | None" = None
        self._arith: "tuple[int, int, int, int] | None | bool" = False
        self._bounds: "tuple[int, int] | None" = None

    @property
    def nsegments(self) -> int:
        return len(self.offsets)

    @property
    def total_bytes(self) -> int:
        return self._total

    @property
    def uniform_seg_len(self) -> "int | None":
        """Shared segment length in bytes, or None when lengths differ.

        Zero-segment maps report None; single-segment maps report their
        length.  Computed once and memoised — the uniform case is the
        gather/scatter fast path.
        """
        if self._uniform is False:
            if len(self.lengths) == 0:
                self._uniform = None
            else:
                first = int(self.lengths[0])
                if np.all(self.lengths == first):
                    self._uniform = first
                else:
                    self._uniform = None
        return self._uniform

    def bounds(self) -> tuple[int, int]:
        """``(lo, hi)`` half-open byte bounds of the whole map (memoised)."""
        if self._bounds is None:
            if len(self.offsets) == 0:
                self._bounds = (0, 0)
            elif len(self.offsets) == 1:
                off = int(self.offsets[0])
                self._bounds = (off, off + int(self.lengths[0]))
            else:
                self._bounds = (
                    int(self.offsets.min()),
                    int((self.offsets + self.lengths).max()),
                )
        return self._bounds

    def _arith_params(self) -> "tuple[int, int, int, int] | None":
        """``(start, step, seg_len, nsegments)`` when segments are uniform
        and equally spaced with positive step, else None (memoised).

        Such maps are views with strides ``(step, 1)`` — the layout every
        vector/subarray type and GA tile produces — so gather/scatter can
        run as one C-level 2-D strided copy instead of fancy indexing.
        """
        if self._arith is False:
            self._arith = None
            L = self.uniform_seg_len
            if L is not None and len(self.offsets) > 1 and L > 0:
                step = int(self.offsets[1]) - int(self.offsets[0])
                if step > 0 and bool(np.all(np.diff(self.offsets) == step)):
                    self._arith = (int(self.offsets[0]), step, L, len(self.offsets))
        return self._arith

    def _strided_view(self, buffer: np.ndarray) -> np.ndarray:
        start, step, L, n = self._arith_params()  # type: ignore[misc]
        window = buffer[start : start + (n - 1) * step + L]
        return np.lib.stride_tricks.as_strided(window, shape=(n, L), strides=(step, 1))

    def flat_index(self) -> np.ndarray:
        """``int64`` array mapping wire position -> buffer byte offset.

        ``buffer[flat_index()]`` serialises the map; assigning through it
        deserialises.  Memoised for small maps (committed datatypes are
        long-lived and reused), rebuilt on the fly for large ones to
        bound memory.
        """
        idx = self._flat_idx
        if idx is not None:
            return idx
        L = self.uniform_seg_len
        if L is not None:
            idx = (
                self.offsets[:, None] + np.arange(L, dtype=np.int64)[None, :]
            ).reshape(-1)
        elif self._total == 0:
            idx = np.empty(0, dtype=np.int64)
        else:
            # general case: repeat each segment start over its length and
            # add the intra-segment position
            starts = np.repeat(self.offsets, self.lengths)
            cum = np.concatenate(([0], np.cumsum(self.lengths)[:-1]))
            within = np.arange(self._total, dtype=np.int64) - np.repeat(cum, self.lengths)
            idx = starts + within
        if self._total <= _INDEX_CACHE_MAX_BYTES:
            self._flat_idx = idx
        return idx

    def gather(self, buffer: np.ndarray, copy: bool = True) -> np.ndarray:
        """Serialise this map's bytes from ``buffer`` into one contiguous array.

        With ``copy=False`` the single-segment case returns a zero-copy
        view into ``buffer``; callers must consume it before mutating the
        source.
        """
        n = len(self.offsets)
        if n == 0:
            return np.empty(0, dtype=np.uint8)
        if n == 1:
            off = int(self.offsets[0])
            seg = buffer[off : off + int(self.lengths[0])]
            return seg if not copy else seg.copy()
        if self._arith_params() is not None:
            return np.ascontiguousarray(self._strided_view(buffer)).reshape(-1)
        return buffer[self.flat_index()]

    def scatter(self, buffer: np.ndarray, data: np.ndarray) -> None:
        """Deserialise contiguous ``data`` into ``buffer`` (inverse of gather).

        Traversal-order write semantics (later segments win on overlap)
        are preserved: the fancy-indexed store is only used for
        non-self-overlapping maps.
        """
        n = len(self.offsets)
        if n == 0:
            return
        if n == 1:
            off = int(self.offsets[0])
            buffer[off : off + int(self.lengths[0])] = data
            return
        arith = self._arith_params()
        if arith is not None and arith[1] >= arith[2]:
            # step >= segment length: rows are disjoint, one strided store
            _, _, L, nseg = arith
            self._strided_view(buffer)[...] = data.reshape(nseg, L)
            return
        if not self.overlaps_self():
            buffer[self.flat_index()] = data
            return
        pos = 0
        for off, ln in zip(self.offsets.tolist(), self.lengths.tolist()):
            buffer[off : off + ln] = data[pos : pos + ln]
            pos += ln

    def coalesced(self) -> "SegmentMap":
        """Merge segments that are adjacent in both traversal and address order."""
        if self.nsegments <= 1:
            return self
        offs, lens = self.offsets, self.lengths
        # boundary[i] is True where segment i does NOT merge into i-1
        boundary = np.empty(len(offs), dtype=bool)
        boundary[0] = True
        boundary[1:] = offs[:-1] + lens[:-1] != offs[1:]
        starts = np.flatnonzero(boundary)
        ends_excl = np.append(starts[1:], len(offs))
        new_offs = offs[starts]
        cum = np.concatenate(([0], np.cumsum(lens)))
        new_lens = cum[ends_excl] - cum[starts]
        return SegmentMap(new_offs, new_lens)

    def shifted(self, displacement_bytes: int) -> "SegmentMap":
        """Return a copy displaced by ``displacement_bytes``."""
        return SegmentMap(self.offsets + int(displacement_bytes), self.lengths)

    def intervals(self) -> Iterable[tuple[int, int]]:
        """Yield ``(lo, hi)`` half-open byte intervals in traversal order."""
        for off, ln in zip(self.offsets.tolist(), self.lengths.tolist()):
            yield off, off + ln

    def overlaps_self(self) -> bool:
        """True if any two segments of this map overlap each other (memoised)."""
        if self._self_overlap is None:
            if self.nsegments <= 1:
                self._self_overlap = False
            else:
                order = np.argsort(self.offsets, kind="stable")
                offs = self.offsets[order]
                ends = offs + self.lengths[order]
                self._self_overlap = bool(np.any(ends[:-1] > offs[1:]))
        return self._self_overlap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentMap(n={self.nsegments}, bytes={self.total_bytes})"


class Datatype:
    """An MPI datatype: a recipe mapping buffer bytes to wire bytes.

    Attributes
    ----------
    size:
        Number of data bytes one instance of the type carries.
    extent:
        Span in the user buffer from the first to one past the last byte
        (MPI extent; replication with ``count > 1`` advances by extent).
    base:
        NumPy dtype of the underlying predefined leaf type.  MPI
        accumulate requires all leaves to share one predefined type; the
        constructors enforce that.
    """

    __slots__ = ("name", "size", "extent", "base", "committed", "_segmap", "_count_maps")

    #: per-datatype bound on memoised replicated segment maps
    _COUNT_CACHE_MAX = 64

    def __init__(self, name: str, size: int, extent: int, base: np.dtype):
        if size < 0 or extent < 0:
            raise DatatypeError(f"{name}: negative size/extent")
        self.name = name
        self.size = int(size)
        self.extent = int(extent)
        self.base = np.dtype(base)
        self.committed = False
        self._segmap: SegmentMap | None = None
        self._count_maps: dict[int, SegmentMap] = {}

    # -- structural interface -------------------------------------------------
    def _flatten(self) -> SegmentMap:
        raise NotImplementedError

    def commit(self) -> "Datatype":
        """Finalize the type for use in communication (computes the segment map)."""
        if not self.committed:
            self._segmap = self._flatten().coalesced()
            if self._segmap.total_bytes != self.size:
                raise DatatypeError(
                    f"{self.name}: flatten produced {self._segmap.total_bytes} bytes, "
                    f"expected {self.size}"
                )
            self.committed = True
        return self

    def free(self) -> None:
        """Release the cached segment maps (mirrors MPI_Type_free)."""
        self.committed = False
        self._segmap = None
        self._count_maps.clear()

    @property
    def is_predefined(self) -> bool:
        return False

    def segment_map(self, count: int = 1) -> SegmentMap:
        """Segment map for ``count`` replications of this type.

        Predefined types are implicitly committed.  Derived types must be
        committed first, as in MPI.
        """
        if count < 0:
            raise ArgumentError(f"negative count {count}")
        if not self.committed:
            if self.is_predefined:
                self.commit()
            else:
                raise DatatypeError(f"{self.name} used before commit()")
        assert self._segmap is not None
        if count == 1:
            return self._segmap
        cached = self._count_maps.get(count)
        if cached is not None:
            return cached
        base = self._segmap
        reps = np.arange(count, dtype=np.int64) * self.extent
        offsets = (base.offsets[None, :] + reps[:, None]).reshape(-1)
        lengths = np.tile(base.lengths, count)
        segmap = SegmentMap(offsets, lengths).coalesced()
        if len(self._count_maps) >= self._COUNT_CACHE_MAX:
            self._count_maps.clear()
        self._count_maps[count] = segmap
        return segmap

    # -- data movement ---------------------------------------------------------
    def pack(self, buffer: np.ndarray, count: int = 1, copy: bool = True) -> np.ndarray:
        """Gather ``count`` instances from ``buffer`` into contiguous bytes.

        ``buffer`` is a 1-D ``uint8`` view of the user's memory, starting
        at the address the datatype's offsets are relative to.  With
        ``copy=False`` a single-segment (contiguous) type returns a
        zero-copy view of ``buffer``.
        """
        segmap = self.segment_map(count)
        _check_bounds(segmap, len(buffer), self.name)
        return segmap.gather(buffer, copy=copy)

    def unpack(self, buffer: np.ndarray, data: np.ndarray, count: int = 1) -> None:
        """Scatter contiguous bytes ``data`` into ``buffer`` (inverse of pack)."""
        segmap = self.segment_map(count)
        _check_bounds(segmap, len(buffer), self.name)
        if len(data) != segmap.total_bytes:
            raise ArgumentError(
                f"{self.name}: unpack got {len(data)} bytes, needs {segmap.total_bytes}"
            )
        segmap.scatter(buffer, data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Datatype {self.name} size={self.size} extent={self.extent}>"


def pack_reference(datatype: "Datatype", buffer: np.ndarray, count: int = 1) -> np.ndarray:
    """Naive per-segment pack (pre-vectorization reference implementation).

    Retained as the semantic oracle: property tests assert the vectorised
    :meth:`Datatype.pack` is byte-identical, and the hot-path benchmark
    suite uses it as the pre-PR baseline.
    """
    segmap = datatype.segment_map(count)
    _check_bounds(segmap, len(buffer), datatype.name)
    out = np.empty(segmap.total_bytes, dtype=np.uint8)
    pos = 0
    for off, ln in zip(segmap.offsets.tolist(), segmap.lengths.tolist()):
        out[pos : pos + ln] = buffer[off : off + ln]
        pos += ln
    return out


def unpack_reference(
    datatype: "Datatype", buffer: np.ndarray, data: np.ndarray, count: int = 1
) -> None:
    """Naive per-segment unpack (pre-vectorization reference implementation)."""
    segmap = datatype.segment_map(count)
    _check_bounds(segmap, len(buffer), datatype.name)
    if len(data) != segmap.total_bytes:
        raise ArgumentError(
            f"{datatype.name}: unpack got {len(data)} bytes, needs {segmap.total_bytes}"
        )
    pos = 0
    for off, ln in zip(segmap.offsets.tolist(), segmap.lengths.tolist()):
        buffer[off : off + ln] = data[pos : pos + ln]
        pos += ln


def _check_bounds(segmap: SegmentMap, buflen: int, name: str) -> None:
    if segmap.nsegments == 0:
        return
    lo, hi = segmap.bounds()
    if lo < 0 or hi > buflen:
        raise ArgumentError(
            f"{name}: access [{lo}, {hi}) outside buffer of {buflen} bytes"
        )


class _Predefined(Datatype):
    """A predefined (leaf) type backed by a NumPy scalar dtype."""

    __slots__ = ()

    def __init__(self, name: str, np_dtype: str):
        dt = np.dtype(np_dtype)
        super().__init__(name, dt.itemsize, dt.itemsize, dt)
        self.commit()

    @property
    def is_predefined(self) -> bool:
        return True

    def _flatten(self) -> SegmentMap:
        return SegmentMap(np.array([0]), np.array([self.size]))


BYTE = _Predefined("MPI_BYTE", "u1")
CHAR = _Predefined("MPI_CHAR", "b")
SHORT = _Predefined("MPI_SHORT", "i2")
INT = _Predefined("MPI_INT", "i4")
LONG = _Predefined("MPI_LONG", "i8")
LONG_LONG = _Predefined("MPI_LONG_LONG", "i8")
UNSIGNED = _Predefined("MPI_UNSIGNED", "u4")
UNSIGNED_LONG = _Predefined("MPI_UNSIGNED_LONG", "u8")
FLOAT = _Predefined("MPI_FLOAT", "f4")
DOUBLE = _Predefined("MPI_DOUBLE", "f8")

PREDEFINED = {
    t.name: t
    for t in (BYTE, CHAR, SHORT, INT, LONG, LONG_LONG, UNSIGNED, UNSIGNED_LONG, FLOAT, DOUBLE)
}


def from_numpy_dtype(dt: "np.dtype | str") -> Datatype:
    """Map a NumPy dtype onto the matching predefined MPI type."""
    dt = np.dtype(dt)
    for t in PREDEFINED.values():
        if t.base == dt:
            return t
    raise DatatypeError(f"no predefined MPI type for numpy dtype {dt}")


class _Derived(Datatype):
    __slots__ = ("_builder",)

    def __init__(self, name, size, extent, base, builder):
        super().__init__(name, size, extent, base)
        self._builder = builder

    def _flatten(self) -> SegmentMap:
        return self._builder()


def contiguous(count: int, oldtype: Datatype) -> Datatype:
    """``MPI_Type_contiguous``: ``count`` back-to-back instances of ``oldtype``."""
    if count < 0:
        raise ArgumentError(f"contiguous: negative count {count}")

    def build() -> SegmentMap:
        return oldtype.segment_map(count)

    return _Derived(
        f"contig({count},{oldtype.name})",
        count * oldtype.size,
        count * oldtype.extent,
        oldtype.base,
        build,
    )


def vector(count: int, blocklength: int, stride: int, oldtype: Datatype) -> Datatype:
    """``MPI_Type_vector``: ``count`` blocks of ``blocklength`` elements,
    successive blocks ``stride`` *elements* apart."""
    return hvector(count, blocklength, stride * oldtype.extent, oldtype)


def hvector(count: int, blocklength: int, stride_bytes: int, oldtype: Datatype) -> Datatype:
    """``MPI_Type_create_hvector``: like :func:`vector` with a byte stride."""
    if count < 0 or blocklength < 0:
        raise ArgumentError("hvector: negative count/blocklength")

    def build() -> SegmentMap:
        block = oldtype.segment_map(blocklength)
        reps = np.arange(count, dtype=np.int64) * stride_bytes
        offsets = (block.offsets[None, :] + reps[:, None]).reshape(-1)
        lengths = np.tile(block.lengths, count)
        return SegmentMap(offsets, lengths)

    if count == 0 or blocklength == 0:
        extent = 0
    else:
        last_start = (count - 1) * stride_bytes
        extent = max(
            last_start + blocklength * oldtype.extent,
            blocklength * oldtype.extent,
        )
    return _Derived(
        f"hvector({count},{blocklength},{stride_bytes},{oldtype.name})",
        count * blocklength * oldtype.size,
        extent,
        oldtype.base,
        build,
    )


def indexed(
    blocklengths: Sequence[int], displacements: Sequence[int], oldtype: Datatype
) -> Datatype:
    """``MPI_Type_indexed``: blocks with per-block length and *element*
    displacement.  This is the type the paper's direct IOV method builds."""
    disp_bytes = [d * oldtype.extent for d in displacements]
    return hindexed(blocklengths, disp_bytes, oldtype, _name="indexed")


def hindexed(
    blocklengths: Sequence[int],
    displacements_bytes: Sequence[int],
    oldtype: Datatype,
    _name: str = "hindexed",
) -> Datatype:
    """``MPI_Type_create_hindexed``: indexed with byte displacements."""
    if len(blocklengths) != len(displacements_bytes):
        raise ArgumentError("hindexed: blocklengths/displacements length mismatch")
    if any(b < 0 for b in blocklengths):
        raise ArgumentError("hindexed: negative blocklength")
    blocklengths = [int(b) for b in blocklengths]
    displacements_bytes = [int(d) for d in displacements_bytes]

    def build() -> SegmentMap:
        parts_off: list[np.ndarray] = []
        parts_len: list[np.ndarray] = []
        for bl, disp in zip(blocklengths, displacements_bytes):
            if bl == 0:
                continue
            block = oldtype.segment_map(bl)
            parts_off.append(block.offsets + disp)
            parts_len.append(block.lengths)
        if not parts_off:
            return SegmentMap(np.empty(0, np.int64), np.empty(0, np.int64))
        return SegmentMap(np.concatenate(parts_off), np.concatenate(parts_len))

    size = sum(blocklengths) * oldtype.size
    if blocklengths:
        extent = max(
            (d + b * oldtype.extent for b, d in zip(blocklengths, displacements_bytes)),
            default=0,
        )
        extent = max(extent, 0)
    else:
        extent = 0
    return _Derived(
        f"{_name}(n={len(blocklengths)},{oldtype.name})",
        size,
        extent,
        oldtype.base,
        build,
    )


def indexed_block(
    blocklength: int, displacements: Sequence[int], oldtype: Datatype
) -> Datatype:
    """``MPI_Type_create_indexed_block``: indexed with one shared block length."""
    return indexed([blocklength] * len(displacements), displacements, oldtype)


def struct_type(
    blocklengths: Sequence[int],
    displacements_bytes: Sequence[int],
    types: "Sequence[Datatype]",
) -> Datatype:
    """``MPI_Type_create_struct``: heterogeneous blocks at byte displacements.

    The most general constructor: each block carries its own member
    datatype.  When the member leaf types differ, the resulting type has
    no single predefined base, so it is valid for put/get but erroneous
    in accumulate (matching MPI's rule that accumulate needs a uniform
    predefined type) — the window rejects it.
    """
    if not (len(blocklengths) == len(displacements_bytes) == len(types)):
        raise ArgumentError("struct: blocklengths/displacements/types mismatch")
    if any(b < 0 for b in blocklengths):
        raise ArgumentError("struct: negative blocklength")
    blocklengths = [int(b) for b in blocklengths]
    displacements_bytes = [int(d) for d in displacements_bytes]
    types = list(types)

    def build() -> SegmentMap:
        parts_off: list[np.ndarray] = []
        parts_len: list[np.ndarray] = []
        for bl, disp, t in zip(blocklengths, displacements_bytes, types):
            if bl == 0:
                continue
            block = t.segment_map(bl)
            parts_off.append(block.offsets + disp)
            parts_len.append(block.lengths)
        if not parts_off:
            return SegmentMap(np.empty(0, np.int64), np.empty(0, np.int64))
        return SegmentMap(np.concatenate(parts_off), np.concatenate(parts_len))

    size = sum(b * t.size for b, t in zip(blocklengths, types))
    extent = max(
        (d + b * t.extent for b, d, t in
         zip(blocklengths, displacements_bytes, types)),
        default=0,
    )
    bases = {t.base for t in types if t.size}
    base = bases.pop() if len(bases) == 1 else np.dtype("V")
    return _Derived(
        f"struct(n={len(types)})", size, max(extent, 0), base, build
    )


def subarray(
    sizes: Sequence[int],
    subsizes: Sequence[int],
    starts: Sequence[int],
    oldtype: Datatype,
    order: str = "C",
) -> Datatype:
    """``MPI_Type_create_subarray`` (C order): an n-D patch of an n-D array.

    This is the target of the paper's direct strided translation (§VI-C):
    ARMCI strided notation is converted back into (array dims, subarray
    dims, start index) and handed to MPI as one subarray type.
    """
    sizes = [int(s) for s in sizes]
    subsizes = [int(s) for s in subsizes]
    starts = [int(s) for s in starts]
    ndims = len(sizes)
    if not (len(subsizes) == len(starts) == ndims):
        raise ArgumentError("subarray: sizes/subsizes/starts length mismatch")
    if ndims == 0:
        raise ArgumentError("subarray: zero dimensions")
    if order != "C":
        raise ArgumentError("subarray: only C order is supported")
    for d, (sz, ssz, st) in enumerate(zip(sizes, subsizes, starts)):
        if ssz < 0 or sz < 0 or st < 0 or st + ssz > sz:
            raise ArgumentError(
                f"subarray: dim {d} patch [{st},{st + ssz}) outside array of {sz}"
            )

    def build() -> SegmentMap:
        ext = oldtype.extent
        # byte strides of the parent array, C order
        strides = np.empty(ndims, dtype=np.int64)
        strides[-1] = ext
        for d in range(ndims - 2, -1, -1):
            strides[d] = strides[d + 1] * sizes[d + 1]
        base_off = int(np.dot(strides, starts))
        inner = oldtype.segment_map(subsizes[-1]) if subsizes[-1] else SegmentMap(
            np.empty(0, np.int64), np.empty(0, np.int64)
        )
        if any(s == 0 for s in subsizes):
            return SegmentMap(np.empty(0, np.int64), np.empty(0, np.int64))
        # outer index grid over dims 0..ndims-2, vectorised via broadcasting
        if ndims == 1:
            outer_offsets = np.zeros(1, dtype=np.int64)
        else:
            grids = np.meshgrid(
                *[np.arange(subsizes[d], dtype=np.int64) for d in range(ndims - 1)],
                indexing="ij",
            )
            outer_offsets = sum(
                g * strides[d] for d, g in enumerate(grids)
            ).reshape(-1)
        offsets = (
            base_off + outer_offsets[:, None] + inner.offsets[None, :]
        ).reshape(-1)
        lengths = np.tile(inner.lengths, len(outer_offsets))
        return SegmentMap(offsets, lengths)

    nelem = 1
    for s in subsizes:
        nelem *= s
    total = 1
    for s in sizes:
        total *= s
    return _Derived(
        f"subarray({sizes},{subsizes},{starts},{oldtype.name})",
        nelem * oldtype.size,
        total * oldtype.extent,
        oldtype.base,
        build,
    )
