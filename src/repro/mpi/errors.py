"""MPI error classes for the simulated MPI-2 runtime.

The real MPI standard defines integer error *classes* attached to an
``MPI_ERR_*`` namespace; an implementation may abort or raise depending on
the error handler installed on the communicator.  Our simulated runtime
always behaves like ``MPI_ERRORS_RETURN`` lifted into Python exceptions:
every erroneous program (as defined by the MPI-2 standard) raises a typed
exception instead of silently corrupting memory.

The most important of these for the paper is :class:`RMAConflictError` —
MPI-2 declares conflicting accesses within an epoch (or through a shared
lock) *erroneous*, and the entire design of ARMCI-MPI (one exclusive epoch
per operation, staged global buffers, conflict-tree IOV checking) exists to
never trigger this error.  The simulated window raises it eagerly so tests
can prove that the ARMCI-MPI layer is conflict-free by construction.
"""

from __future__ import annotations

__all__ = [
    "MPIError",
    "ArgumentError",
    "RankError",
    "CountError",
    "DatatypeError",
    "TruncationError",
    "CommError",
    "GroupError",
    "TagError",
    "WinError",
    "RMASyncError",
    "RMAConflictError",
    "RMARangeError",
    "ProgressDeadlockError",
    "InternalError",
    "OpTimeoutError",
    "RankKilledError",
    "TargetFailedError",
    "CommRevokedError",
    "RetriesExhausted",
]


class MPIError(Exception):
    """Base class for every error raised by the simulated MPI runtime."""

    #: symbolic error class, mirroring MPI_ERR_* names
    error_class: str = "MPI_ERR_OTHER"

    def __init__(self, message: str = ""):
        super().__init__(f"[{self.error_class}] {message}" if message else self.error_class)
        self.message = message


class ArgumentError(MPIError):
    """Invalid argument passed to an MPI call (MPI_ERR_ARG)."""

    error_class = "MPI_ERR_ARG"


class RankError(MPIError):
    """Rank out of range for the communicator or group (MPI_ERR_RANK)."""

    error_class = "MPI_ERR_RANK"


class CountError(MPIError):
    """Negative or inconsistent count argument (MPI_ERR_COUNT)."""

    error_class = "MPI_ERR_COUNT"


class DatatypeError(MPIError):
    """Invalid or uncommitted datatype (MPI_ERR_TYPE)."""

    error_class = "MPI_ERR_TYPE"


class TruncationError(MPIError):
    """Receive buffer too small for the matched message (MPI_ERR_TRUNCATE)."""

    error_class = "MPI_ERR_TRUNCATE"


class CommError(MPIError):
    """Invalid communicator (MPI_ERR_COMM)."""

    error_class = "MPI_ERR_COMM"


class GroupError(MPIError):
    """Invalid group argument (MPI_ERR_GROUP)."""

    error_class = "MPI_ERR_GROUP"


class TagError(MPIError):
    """Tag out of the valid range (MPI_ERR_TAG)."""

    error_class = "MPI_ERR_TAG"


class WinError(MPIError):
    """Invalid window handle or window operation (MPI_ERR_WIN)."""

    error_class = "MPI_ERR_WIN"


class RMASyncError(MPIError):
    """RMA synchronization misuse (MPI_ERR_RMA_SYNC).

    Raised for: RMA ops outside an access epoch, unlock without a matching
    lock, locking the same window twice from one process (forbidden by
    MPI-2 and the reason ARMCI-MPI stages global-buffer transfers), and
    freeing a window with epochs still open.
    """

    error_class = "MPI_ERR_RMA_SYNC"


class RMAConflictError(MPIError):
    """Conflicting RMA accesses detected (MPI_ERR_RMA_CONFLICT).

    MPI-2 defines overlapping operations within one epoch — or a local
    load/store racing a remote access — as erroneous.  Real
    implementations may corrupt data; the simulated window detects the
    overlap and raises instead.
    """

    error_class = "MPI_ERR_RMA_CONFLICT"


class RMARangeError(MPIError):
    """RMA access outside the bounds of the target window (MPI_ERR_RMA_RANGE)."""

    error_class = "MPI_ERR_RMA_RANGE"


class ProgressDeadlockError(MPIError):
    """The runtime watchdog concluded that all ranks are blocked.

    This has no MPI_ERR_* equivalent (a real MPI program simply hangs);
    the simulated runtime detects the global-wait condition so tests can
    assert that e.g. circular window locking deadlocks, as §V-E.1 of the
    paper warns.
    """

    error_class = "MPI_ERR_PENDING"


class InternalError(MPIError):
    """Invariant violation inside the simulated runtime itself."""

    error_class = "MPI_ERR_INTERN"


class TargetFailedError(MPIError):
    """An operation required a rank that has failed (MPI_ERR_PROC_FAILED).

    Mirrors the ULFM fault-tolerance proposal's error class: once a rank
    is marked dead (see :meth:`~repro.mpi.runtime.Runtime.mark_dead`),
    operations that need it — locking its window, sending to it, a
    collective it never joined — raise this typed error instead of
    hanging until the watchdog declares global deadlock.
    """

    error_class = "MPI_ERR_PROC_FAILED"


class RankKilledError(TargetFailedError):
    """Raised *inside* a rank killed by a fault plan (``repro.faults``).

    The dying rank unwinds with this exception; any further MPI call it
    makes while unwinding re-raises it, so ``finally`` blocks cannot
    resurrect the rank (a dead process releases no locks by itself —
    recovery is the runtime's job).  ``Runtime.spmd`` treats it as an
    injected death, not a test failure: it is never propagated to the
    caller and never poisons surviving ranks on its own.
    """


class CommRevokedError(MPIError):
    """The communicator has been revoked (MPI_ERR_REVOKED).

    Mirrors ULFM's ``MPIX_Comm_revoke``: after any member calls
    :meth:`~repro.mpi.comm.Comm.revoke`, every in-flight and future
    operation on that communicator (point-to-point, collectives, RMA on
    windows built over it) raises this error on every member.  The only
    calls that keep working on a revoked communicator are the
    fault-tolerance primitives themselves — ``agree`` and ``shrink`` —
    which is exactly what lets survivors rendezvous to rebuild.
    """

    error_class = "MPI_ERR_REVOKED"


class OpTimeoutError(MPIError):
    """A per-operation timeout expired before the operation completed.

    Distinct from :class:`ProgressDeadlockError` (the global watchdog):
    a timed-out operation may be retried with backoff while the rest of
    the system keeps making progress.  Configured per-runtime via
    ``op_timeout_s`` / ``REPRO_OP_TIMEOUT_S`` (see
    :class:`~repro.mpi.runtime.Runtime`).
    """

    error_class = "MPI_ERR_PENDING"


class RetriesExhausted(OpTimeoutError):
    """A transient fault was retried up to its budget and never cleared.

    Raised by :class:`~repro.faults.injector.FaultInjector` when a
    ``stall``/``delay`` fault marked *transient* keeps firing past the
    configured retry budget (``REPRO_FAULT_RETRIES``).  Subclasses
    :class:`OpTimeoutError` because semantically the operation timed out
    — but the typed subclass lets callers distinguish "the fault plan
    said this would never clear" from an organic timeout.
    """
