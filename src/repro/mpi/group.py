"""MPI group algebra.

A group is an ordered set of *world ranks*.  ARMCI's group support
(§IV, §V-A) leans on exactly this machinery: ARMCI communication targets
absolute (world) ranks, so the GMR layer must translate between a
window's group ranks and absolute ids — which is ``translate_ranks``
against the world group.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .errors import GroupError, RankError

#: sentinel returned by rank queries when the process is not a member
UNDEFINED = -1


class Group:
    """An immutable ordered set of world ranks."""

    __slots__ = ("_members", "_index")

    def __init__(self, members: Iterable[int]):
        members = list(members)
        if len(set(members)) != len(members):
            raise GroupError(f"duplicate ranks in group: {members}")
        if any(m < 0 for m in members):
            raise GroupError(f"negative world rank in group: {members}")
        self._members = tuple(members)
        self._index = {w: i for i, w in enumerate(self._members)}

    # -- queries ---------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._members)

    def world_rank(self, group_rank: int) -> int:
        """World rank of the member at position ``group_rank``."""
        if not 0 <= group_rank < self.size:
            raise RankError(f"group rank {group_rank} not in [0, {self.size})")
        return self._members[group_rank]

    def rank_of_world(self, world_rank: int) -> int:
        """Group rank of ``world_rank``, or :data:`UNDEFINED` if absent."""
        return self._index.get(world_rank, UNDEFINED)

    def contains_world(self, world_rank: int) -> bool:
        return world_rank in self._index

    @property
    def members(self) -> tuple[int, ...]:
        return self._members

    # -- algebra ---------------------------------------------------------------
    def incl(self, ranks: Sequence[int]) -> "Group":
        """Subgroup of the members at the given positions (MPI_Group_incl)."""
        return Group(self.world_rank(r) for r in ranks)

    def excl(self, ranks: Sequence[int]) -> "Group":
        """Members minus the given positions (MPI_Group_excl)."""
        drop = set(ranks)
        for r in drop:
            if not 0 <= r < self.size:
                raise RankError(f"excl rank {r} not in [0, {self.size})")
        return Group(w for i, w in enumerate(self._members) if i not in drop)

    def union(self, other: "Group") -> "Group":
        """Members of self, then members of other not in self (MPI order)."""
        extra = [w for w in other._members if w not in self._index]
        return Group(self._members + tuple(extra))

    def intersection(self, other: "Group") -> "Group":
        return Group(w for w in self._members if other.contains_world(w))

    def difference(self, other: "Group") -> "Group":
        return Group(w for w in self._members if not other.contains_world(w))

    def translate_ranks(self, ranks: Sequence[int], other: "Group") -> list[int]:
        """Positions in ``other`` of our members at ``ranks`` (MPI_Group_translate_ranks)."""
        return [other.rank_of_world(self.world_rank(r)) for r in ranks]

    # -- dunder ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._members == other._members

    def __hash__(self) -> int:
        return hash(self._members)

    def __len__(self) -> int:
        return self.size

    def __iter__(self):
        return iter(self._members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Group{self._members}"
