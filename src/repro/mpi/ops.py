"""Predefined reduction operations for collectives and RMA accumulate.

MPI accumulate is restricted to predefined operations on predefined
datatypes; ``MPI_REPLACE`` turns ``MPI_Accumulate`` into an element-wise
put.  ARMCI's double-precision accumulate (``ARMCI_ACC_DBL``, a scaled
``y += alpha * x``) maps onto ``MPI_SUM`` after the origin scales the
source data — which is exactly what the ARMCI-MPI layer does.

Each op is a small value object wrapping a NumPy ufunc-style callable
operating on (target_view, source_array) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .errors import ArgumentError


@dataclass(frozen=True)
class Op:
    """A predefined MPI reduction operation.

    ``apply(target, source)`` combines ``source`` into ``target`` in
    place; both are 1-D NumPy views of equal length and dtype.
    ``combine(a, b)`` is the pure (non-mutating) form used by the
    reduction-tree collectives.
    """

    name: str
    _combine: Callable[[np.ndarray, np.ndarray], np.ndarray] = field(repr=False)
    commutative: bool = True

    def apply(self, target: np.ndarray, source: np.ndarray) -> None:
        if target.shape != source.shape:
            raise ArgumentError(
                f"{self.name}: shape mismatch {target.shape} vs {source.shape}"
            )
        target[...] = self._combine(target, source)

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._combine(a, b)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _logical(fn: Callable[[np.ndarray, np.ndarray], np.ndarray]):
    def wrapped(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return fn(a.astype(bool), b.astype(bool)).astype(a.dtype)

    return wrapped


SUM = Op("MPI_SUM", lambda a, b: a + b)
PROD = Op("MPI_PROD", lambda a, b: a * b)
MAX = Op("MPI_MAX", np.maximum)
MIN = Op("MPI_MIN", np.minimum)
LAND = Op("MPI_LAND", _logical(np.logical_and))
LOR = Op("MPI_LOR", _logical(np.logical_or))
LXOR = Op("MPI_LXOR", _logical(np.logical_xor))
BAND = Op("MPI_BAND", np.bitwise_and)
BOR = Op("MPI_BOR", np.bitwise_or)
BXOR = Op("MPI_BXOR", np.bitwise_xor)
#: MPI_REPLACE: accumulate's "atomic element-wise put" op (RMA only).
REPLACE = Op("MPI_REPLACE", lambda a, b: b.copy())
#: MPI_NO_OP: fetch without modifying (MPI-3 Get_accumulate / Fetch_and_op).
NO_OP = Op("MPI_NO_OP", lambda a, b: a.copy())

#: All predefined ops, keyed by MPI name.
PREDEFINED = {
    op.name: op
    for op in (SUM, PROD, MAX, MIN, LAND, LOR, LXOR, BAND, BOR, BXOR, REPLACE, NO_OP)
}


def lookup(name_or_op: "str | Op") -> Op:
    """Resolve an op argument that may be an :class:`Op` or an MPI name."""
    if isinstance(name_or_op, Op):
        return name_or_op
    try:
        return PREDEFINED[name_or_op]
    except KeyError:
        raise ArgumentError(f"unknown reduction op {name_or_op!r}") from None
