"""Two-sided message matching engine (send/recv/isend/irecv).

ARMCI-MPI needs two-sided MPI in two places: the queueing-mutex algorithm
(§V-D) blocks dequeued lock requesters in an ``MPI_Recv`` from a wildcard
source and hands the mutex off with a zero-byte send, and GA applications
freely mix GA one-sided calls with their own MPI messaging (§I impact 2).

Matching semantics follow MPI: messages between one (source, dest) pair
are non-overtaking; receives match on ``(source | ANY_SOURCE,
tag | ANY_TAG)`` in message-arrival order.  Sends are eager (buffered):
the payload is copied at send time, so a blocking send never waits for
the receiver.  That is a legal MPI implementation choice and matches how
small/control messages behave on real systems.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .errors import TagError, TargetFailedError, TruncationError
from .runtime import Runtime, current_proc

ANY_SOURCE = -1
ANY_TAG = -1


class Status:
    """Result metadata of a completed receive (MPI_Status)."""

    __slots__ = ("source", "tag", "count")

    def __init__(self, source: int, tag: int, count: int):
        self.source = source
        self.tag = tag
        self.count = count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Status(source={self.source}, tag={self.tag}, count={self.count})"


class _Envelope:
    """A message in flight: payload already copied (eager protocol)."""

    __slots__ = ("src", "tag", "payload", "seq")

    def __init__(self, src: int, tag: int, payload: Any, seq: int):
        self.src = src
        self.tag = tag
        self.payload = payload
        self.seq = seq


class Request:
    """Handle for a nonblocking operation (MPI_Request)."""

    __slots__ = ("_engine", "_done", "_status", "_complete_cb", "_error")

    def __init__(self, engine: "P2PEngine"):
        self._engine = engine
        self._done = False
        self._status: Status | None = None
        self._complete_cb = None
        self._error: BaseException | None = None

    def _finish(self, status: Status | None) -> None:
        self._done = True
        self._status = status
        if self._complete_cb is not None:
            self._complete_cb()

    def _fail(self, exc: BaseException) -> None:
        """Complete the request with an error (dead-source quarantine)."""
        self._done = True
        self._error = exc
        if self._complete_cb is not None:
            self._complete_cb()

    def test(self) -> tuple[bool, Status | None]:
        """Nonblocking completion check."""
        with self._engine.runtime.cond:
            self._engine._drain()
            if self._done and self._error is not None:
                raise self._error
            return self._done, self._status

    def wait(self) -> Status | None:
        """Block until the operation completes."""
        rt = self._engine.runtime
        with rt.cond:
            rt.wait_for(lambda: self._engine._drain() or self._done)
            if self._error is not None:
                raise self._error
            return self._status


class _PendingRecv:
    __slots__ = ("source", "tag", "buf", "request", "posted_seq")

    def __init__(self, source: int, tag: int, buf: "np.ndarray | None", request: Request, posted_seq: int):
        self.source = source
        self.tag = tag
        self.buf = buf
        self.request = request
        self.posted_seq = posted_seq


class P2PEngine:
    """Per-runtime matching engine; all methods require the giant lock."""

    def __init__(self, runtime: Runtime, context_id: int):
        self.runtime = runtime
        self.context_id = context_id
        # per destination world-rank
        self._unexpected: dict[int, list[_Envelope]] = {}
        self._posted: dict[int, list[_PendingRecv]] = {}
        self._seq = 0
        runtime.add_death_hook(self._on_rank_death)

    # -- fault handling -------------------------------------------------------
    def _on_rank_death(self, world_rank: int) -> None:
        """Fail posted receives that only the dead rank could satisfy.

        ``ANY_SOURCE`` receives are left posted: another rank — or a
        recovery hook acting for the dead one, as the mutex layer's
        handoff forwarding does — may still complete them.
        """
        for posted in self._posted.values():
            for pr in [p for p in posted if p.source == world_rank]:
                posted.remove(pr)
                pr.request._fail(
                    TargetFailedError(
                        f"receive matched only by failed rank {world_rank}"
                    )
                )

    def fail_all(self, exc: BaseException) -> None:
        """Fail every posted receive with ``exc`` and drop buffered sends.

        Used by :meth:`~repro.mpi.comm.Comm.revoke`: a revoked
        communicator delivers nothing, so pending receives complete with
        the revocation error and unmatched eager sends are discarded.
        Must be called with the giant lock held.
        """
        for posted in self._posted.values():
            for pr in list(posted):
                posted.remove(pr)
                pr.request._fail(exc)
        self._unexpected.clear()

    # -- internal -----------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _match_posted(self, dst: int, env: _Envelope) -> bool:
        """Try to deliver ``env`` to an already-posted receive at ``dst``."""
        posted = self._posted.get(dst, [])
        for i, pr in enumerate(posted):
            if (pr.source in (ANY_SOURCE, env.src)) and (pr.tag in (ANY_TAG, env.tag)):
                posted.pop(i)
                self._deliver(pr, env)
                return True
        return False

    @staticmethod
    def _deliver(pr: _PendingRecv, env: _Envelope) -> None:
        payload = env.payload
        if pr.buf is None:
            # object-mode receive: stash the payload on the status
            count = payload.nbytes if isinstance(payload, np.ndarray) else 0
            pr.request._finish(_ObjStatus(env.src, env.tag, count, payload))
            return
        data = payload
        if not isinstance(data, np.ndarray):
            raise TruncationError("typed receive matched an object-mode send")
        flat = pr.buf
        if data.nbytes > flat.nbytes:
            raise TruncationError(
                f"message of {data.nbytes} bytes into buffer of {flat.nbytes}"
            )
        flat_view = flat.reshape(-1).view(np.uint8)
        flat_view[: data.nbytes] = data.reshape(-1).view(np.uint8)
        pr.request._finish(Status(env.src, env.tag, data.nbytes))

    def _drain(self) -> bool:
        """Hook used by Request predicates; matching is eager so no-op."""
        return False

    # -- public (giant lock held by callers in comm.py) -----------------------
    def post_send(self, src_world: int, dst_world: int, tag: int, payload: Any) -> None:
        if tag < 0:
            raise TagError(f"send tag must be >= 0, got {tag}")
        if dst_world in self.runtime.dead_ranks:
            # quarantine: typed failure instead of buffering into a void
            raise TargetFailedError(f"send to failed rank {dst_world}")
        if isinstance(payload, np.ndarray):
            payload = np.ascontiguousarray(payload).copy()
        env = _Envelope(src_world, tag, payload, self._next_seq())
        if not self._match_posted(dst_world, env):
            self._unexpected.setdefault(dst_world, []).append(env)
        self.runtime.notify_progress()

    def post_recv(
        self,
        dst_world: int,
        source: int,
        tag: int,
        buf: "np.ndarray | None",
    ) -> Request:
        req = Request(self)
        pr = _PendingRecv(source, tag, buf, req, self._next_seq())
        queue = self._unexpected.get(dst_world, [])
        for i, env in enumerate(queue):
            if (source in (ANY_SOURCE, env.src)) and (tag in (ANY_TAG, env.tag)):
                queue.pop(i)
                self._deliver(pr, env)
                self.runtime.notify_progress()
                return req
        if source != ANY_SOURCE and source in self.runtime.dead_ranks:
            # nothing buffered and the only legal sender is dead: the
            # receive can never complete — fail it now, typed.
            req._fail(TargetFailedError(f"receive from failed rank {source}"))
            return req
        self._posted.setdefault(dst_world, []).append(pr)
        return req

    def probe(self, dst_world: int, source: int, tag: int) -> "Status | None":
        """Nonblocking probe: status of the first matching unexpected message."""
        for env in self._unexpected.get(dst_world, []):
            if (source in (ANY_SOURCE, env.src)) and (tag in (ANY_TAG, env.tag)):
                count = env.payload.nbytes if isinstance(env.payload, np.ndarray) else 0
                return Status(env.src, env.tag, count)
        return None


class _ObjStatus(Status):
    """Status carrying an object-mode payload (internal)."""

    __slots__ = ("payload",)

    def __init__(self, source: int, tag: int, count: int, payload: Any):
        super().__init__(source, tag, count)
        self.payload = payload
