"""Asynchronous-progress accounting (the CHT question, §IV-A) and the
deterministic schedule fuzzer built on the same runtime hooks.

Native ARMCI implementations usually run a *communication helper thread*
(CHT) on every node so one-sided operations progress even while the
target rank is busy in a BLAS call.  The MPI standard likewise requires
asynchronous progress for RMA, though implementations sometimes gate it
behind a runtime option because it costs a core or interrupt overhead.

In this simulated substrate, asynchronous progress is *structural*: RMA
operations execute entirely on the origin thread under the giant lock and
never require the target thread to run.  This module therefore does not
implement a helper thread; it provides the accounting object that the
performance model uses to charge the *cost* of progress options
(dedicated-core loss for a CHT, interrupt overhead for MPI async
progress), so application-level models (Fig. 6) can include it.

The second half of the module is :class:`DeterministicSchedule`: a
seeded, token-passing rank scheduler.  Every blocking MPI primitive
funnels through ``Runtime.wait_for`` and every RMA operation boundary
calls ``Runtime.fuzz_point``, so by parking all ranks except one and
drawing each dispatch decision from a seeded PRNG, the simulator can
explore *legal* interleavings of the paper's protocols (mutex handoff
§V-D, the two-epoch RMW, GMR free's leader election §V-B) and replay
any of them bit-identically from the seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "ProgressConfig",
    "DeterministicSchedule",
    "NATIVE_CHT",
    "MPI_ASYNC",
    "MPI_POLLING",
]


@dataclass(frozen=True)
class ProgressConfig:
    """How a runtime achieves asynchronous progress, and what it costs.

    Attributes
    ----------
    mode:
        ``"cht"`` — a dedicated communication helper thread per node
        (native ARMCI); ``"interrupt"`` — interrupt-driven progress (some
        MPI RMA implementations); ``"polling"`` — progress only inside
        MPI calls (asynchronous progress effectively off).
    core_fraction_lost:
        Fraction of one node's compute capacity consumed by the progress
        mechanism (a CHT burns a hardware thread; interrupts steal cycles).
    target_delay_factor:
        Multiplier on remote-operation latency when the target is busy in
        a non-communication call.  ``1.0`` = fully asynchronous; larger
        values model polling-only progress where a put must wait for the
        target's next MPI call.
    """

    mode: str = "cht"
    core_fraction_lost: float = 0.0
    target_delay_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("cht", "interrupt", "polling"):
            raise ValueError(f"unknown progress mode {self.mode!r}")
        if not 0.0 <= self.core_fraction_lost < 1.0:
            raise ValueError("core_fraction_lost must be in [0, 1)")
        if self.target_delay_factor < 1.0:
            raise ValueError("target_delay_factor must be >= 1")


class DeterministicSchedule:
    """Seeded token-passing scheduler over the SPMD rank threads.

    Exactly one rank holds the *token* (is running) at any moment; the
    others are parked on the runtime condition variable.  The token
    changes hands only at well-defined points:

    * ``block`` — the running rank entered ``Runtime.wait_for`` with a
      false predicate;
    * ``yield_point`` — the running rank crossed an operation boundary
      (``Runtime.fuzz_point``) and a seeded coin chose to preempt it;
    * ``thread_finished`` — the running rank's SPMD body returned.

    Every dispatch decision is drawn from one ``random.Random(seed)``;
    because execution between decisions is fully serialised, the decision
    sequence — and therefore the entire interleaving — is a pure function
    of the seed.  ``trace`` records it, so two runs with the same seed
    can be compared event-for-event (the fuzzer hashes this).

    Deadlock detection is deterministic too: when no rank is eligible
    (all blocked with no progress since they blocked) the schedule marks
    the runtime deadlocked and every rank raises — no wall-clock
    watchdog involved.

    Optional ``jitter_frac`` injects seeded delivery delays into each
    rank's :class:`~repro.simtime.clock.SimClock` (scaled fractions of
    each charged cost), modeling variable message-delivery timing.
    """

    def __init__(
        self,
        seed: int,
        switch_prob: float = 0.25,
        jitter_frac: float = 0.0,
        trace_limit: int = 250_000,
    ):
        if not 0.0 <= switch_prob <= 1.0:
            raise ValueError(f"switch_prob must be in [0, 1], got {switch_prob}")
        if jitter_frac < 0.0:
            raise ValueError(f"jitter_frac must be >= 0, got {jitter_frac}")
        self.seed = seed
        self.switch_prob = switch_prob
        self.jitter_frac = jitter_frac
        self.rng = random.Random(seed)
        #: serialized event log: tuples like ("run", rank), ("yield", rank, kind)
        self.trace: list[tuple] = []
        self._trace_limit = trace_limit
        self.runtime = None
        self.nproc = 0
        self._running: "int | None" = None
        self._started: set[int] = set()
        self._ready: set[int] = set()
        #: rank -> runtime.progress_counter observed when it blocked
        self._blocked: dict[int, int] = {}
        self._finished: set[int] = set()

    # -- wiring ---------------------------------------------------------------
    def begin_run(self, runtime) -> None:
        """Attach to a runtime (called by ``Runtime.spmd``)."""
        if self.runtime is not None and self.runtime is not runtime:
            raise RuntimeError("a DeterministicSchedule is single-use")
        self.runtime = runtime
        self.nproc = runtime.nproc
        if self.jitter_frac > 0.0:
            for p in runtime.procs:
                p.clock.add_jitter(self._jitter)
        runtime.schedule = self

    def _jitter(self, kind: str, seconds: float) -> float:
        # consumed only by the token-holding rank => deterministic order
        rt = self.runtime
        if rt is not None and rt._dead_stall:
            # token regime suspended (survivors stampeding toward
            # failure_ack): charging seeded jitter here would consume RNG
            # in OS order and break replay — jitter is deterministically
            # zero until the stall clears and the token resumes.
            return 0.0
        return seconds * self.jitter_frac * self.rng.random()

    def _event(self, *ev) -> None:
        rt = self.runtime
        if rt is not None and (rt.failed is not None or rt._deadlocked or rt._dead_stall):
            # the failure/deadlock point is deterministic; the teardown
            # stampede after it (ranks waking to raise) is OS-ordered —
            # keep it out of the replayable trace
            return
        if len(self.trace) < self._trace_limit:
            self.trace.append(ev)

    # -- thread lifecycle (all called with runtime.cond held) ------------------
    def thread_started(self, rank: int) -> None:
        self._started.add(rank)
        self._ready.add(rank)
        self._event("start", rank)
        if len(self._started) == self.nproc:
            # all ranks registered: the token regime begins
            self._dispatch()
        self._park(rank)

    def thread_finished(self, rank: int) -> None:
        self._finished.add(rank)
        self._ready.discard(rank)
        self._blocked.pop(rank, None)
        self._event("finish", rank)
        if self._running == rank:
            self._running = None
        if len(self._started) == self.nproc:
            self._dispatch()

    # -- scheduling points -----------------------------------------------------
    def block(self, rank: int) -> None:
        """The running rank's wait predicate is false; park it."""
        self._blocked[rank] = self.runtime.progress_counter
        self._ready.discard(rank)
        self._event("block", rank)
        if self._running == rank:
            self._running = None
        self._dispatch()
        self._park(rank)
        # re-dispatched: wait_for re-evaluates the predicate
        self._blocked.pop(rank, None)
        self._ready.add(rank)

    def yield_point(self, rank: int, kind: str) -> None:
        """Operation boundary: seeded coin decides whether to preempt."""
        if self._running != rank:
            return  # pre-token registration phase
        if self.rng.random() >= self.switch_prob:
            return
        self._event("yield", rank, kind)
        self._ready.add(rank)
        self._running = None
        self._dispatch()
        self._park(rank)

    def forced_yield(self, rank: int, kind: str) -> None:
        """Unconditional preemption (fault-injected stall): no coin toss.

        Used by ``repro.faults`` to take the token away from a stalled
        rank for one scheduler step.  If no other rank is eligible the
        dispatcher simply hands the token back, so a stall can never
        manufacture a deadlock on its own.
        """
        if self._running != rank:
            return
        self._event("stall", rank, kind)
        self._ready.add(rank)
        self._running = None
        self._dispatch()
        self._park(rank)

    # -- failure acknowledgment (ULFM recovery; called with cond held) ---------
    def ack_point(self, rank: int) -> None:
        """``rank`` acknowledged the current failures (``failure_ack``).

        During a dead-stall the token regime is suspended: every survivor
        raised out of its wait and is running its recovery handler
        unscheduled.  Acknowledging re-registers the rank as dispatchable
        so that when the *last* survivor acks (clearing the stall), the
        eligible set is exactly the live acknowledged ranks — independent
        of the OS order in which the handlers ran.
        """
        self._blocked.pop(rank, None)
        self._ready.add(rank)

    def stall_cleared(self) -> None:
        """The runtime cleared ``_dead_stall``: resume the token regime.

        Emits a single ``("recover", dead_ranks)`` trace event and hands
        the token to a seeded choice among the survivors.  No RNG was
        consumed while the regime was suspended (``yield_point`` and
        ``_jitter`` are gated), so the post-recovery decision sequence is
        still a pure function of the seed.
        """
        self._event("recover", tuple(sorted(self.runtime.dead_ranks)))
        self._dispatch()

    def ack_park(self, rank: int) -> None:
        """Park an acknowledged rank until the resumed token reaches it."""
        if self._running == rank:
            return
        self._park(rank)

    # -- internals -------------------------------------------------------------
    def _eligible(self) -> list[int]:
        counter = self.runtime.progress_counter
        elig = set(self._ready)
        for rank, seen in self._blocked.items():
            if counter > seen:
                elig.add(rank)
        return sorted(elig)

    def _dispatch(self) -> None:
        rt = self.runtime
        if self._running is not None or rt.failed is not None or rt._dead_stall:
            # on failure, wake everyone so parked ranks can raise
            rt.cond.notify_all()
            return
        elig = self._eligible()
        if not elig:
            live = [r for r in self._started if r not in self._finished]
            if live:
                if rt.dead_ranks:
                    # survivors are stuck *because* of dead ranks: the
                    # deterministic analogue of the wall-clock watchdog's
                    # dead-stall verdict — typed TargetFailedError, not a
                    # deadlock diagnosis.
                    self._event("dead_stall")
                    rt._dead_stall = True
                else:
                    # deterministic deadlock: nobody can make progress
                    self._event("deadlock",)
                    rt._deadlocked = True
            rt.cond.notify_all()
            return
        choice = self.rng.choice(elig)
        self._running = choice
        self._event("run", choice)
        self.runtime.cond.notify_all()

    def _park(self, rank: int) -> None:
        from .errors import ProgressDeadlockError, TargetFailedError
        from .runtime import RankFailedError

        rt = self.runtime
        while self._running != rank:
            if rt.failed is not None:
                raise RankFailedError(f"rank failed elsewhere: {rt.failed!r}")
            unacked = rt.dead_ranks - rt.procs[rank].acked_dead
            if rt._dead_stall and unacked:
                raise TargetFailedError(
                    "deterministic schedule: no rank can make progress while "
                    f"rank(s) {sorted(unacked)} are failed (seed {self.seed})"
                )
            if rt._deadlocked:
                raise ProgressDeadlockError(
                    "deterministic schedule: all ranks blocked "
                    f"(seed {self.seed})"
                )
            # the timeout is a lost-wakeup safety net only; scheduling
            # decisions never depend on it, so determinism is preserved
            rt.cond.wait(timeout=1.0)


#: native ARMCI: helper thread consumes a share of a core, fully async
NATIVE_CHT = ProgressConfig(mode="cht", core_fraction_lost=1.0 / 16, target_delay_factor=1.0)
#: MPI with async progress enabled (interrupt-driven)
MPI_ASYNC = ProgressConfig(mode="interrupt", core_fraction_lost=0.02, target_delay_factor=1.0)
#: MPI with polling-only progress: remote ops stall on busy targets
MPI_POLLING = ProgressConfig(mode="polling", core_fraction_lost=0.0, target_delay_factor=4.0)
