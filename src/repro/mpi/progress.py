"""Asynchronous-progress accounting (the CHT question, §IV-A / §V-F).

Native ARMCI implementations usually run a *communication helper thread*
(CHT) on every node so one-sided operations progress even while the
target rank is busy in a BLAS call.  The MPI standard likewise requires
asynchronous progress for RMA, though implementations sometimes gate it
behind a runtime option because it costs a core or interrupt overhead.

In this simulated substrate, asynchronous progress is *structural*: RMA
operations execute entirely on the origin thread under the giant lock and
never require the target thread to run.  This module therefore does not
implement a helper thread; it provides the accounting object that the
performance model uses to charge the *cost* of progress options
(dedicated-core loss for a CHT, interrupt overhead for MPI async
progress), so application-level models (Fig. 6) can include it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProgressConfig:
    """How a runtime achieves asynchronous progress, and what it costs.

    Attributes
    ----------
    mode:
        ``"cht"`` — a dedicated communication helper thread per node
        (native ARMCI); ``"interrupt"`` — interrupt-driven progress (some
        MPI RMA implementations); ``"polling"`` — progress only inside
        MPI calls (asynchronous progress effectively off).
    core_fraction_lost:
        Fraction of one node's compute capacity consumed by the progress
        mechanism (a CHT burns a hardware thread; interrupts steal cycles).
    target_delay_factor:
        Multiplier on remote-operation latency when the target is busy in
        a non-communication call.  ``1.0`` = fully asynchronous; larger
        values model polling-only progress where a put must wait for the
        target's next MPI call.
    """

    mode: str = "cht"
    core_fraction_lost: float = 0.0
    target_delay_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("cht", "interrupt", "polling"):
            raise ValueError(f"unknown progress mode {self.mode!r}")
        if not 0.0 <= self.core_fraction_lost < 1.0:
            raise ValueError("core_fraction_lost must be in [0, 1)")
        if self.target_delay_factor < 1.0:
            raise ValueError("target_delay_factor must be >= 1")


#: native ARMCI: helper thread consumes a share of a core, fully async
NATIVE_CHT = ProgressConfig(mode="cht", core_fraction_lost=1.0 / 16, target_delay_factor=1.0)
#: MPI with async progress enabled (interrupt-driven)
MPI_ASYNC = ProgressConfig(mode="interrupt", core_fraction_lost=0.02, target_delay_factor=1.0)
#: MPI with polling-only progress: remote ops stall on busy targets
MPI_POLLING = ProgressConfig(mode="polling", core_fraction_lost=0.0, target_delay_factor=4.0)
