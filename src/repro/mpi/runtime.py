"""SPMD execution runtime: MPI ranks as Python threads.

The simulated MPI runs each rank as an OS thread executing the same
callable, mirroring ``mpiexec -n N python script.py``.  All MPI state
transitions happen under one runtime-wide condition variable (a "giant
lock"), which makes every simulated MPI operation linearisable and lets a
watchdog detect global deadlock — the failure mode §V-E.1 of the paper is
designed to avoid (circular window-lock dependencies between two
processes' communication operations).

Design notes
------------
* Blocking MPI semantics are implemented with ``Runtime.wait_for(pred)``:
  the calling rank sleeps on the shared condition until the predicate
  holds.  Any state change calls ``notify_progress()``.
* The watchdog is not timer-based guesswork: a rank that times out while
  **all** live ranks are blocked and the global progress counter has not
  moved declares deadlock, raising :class:`ProgressDeadlockError`
  everywhere.  Tests use this to prove that a naive "lock both windows"
  implementation of ARMCI's global-buffer communication deadlocks, while
  the staged implementation does not.
* If one rank raises, the failure is propagated: all other ranks are
  woken and raise :class:`RankFailedError`, and ``Runtime.spmd`` re-raises
  the original exception.  This keeps test failures crisp instead of
  hanging the suite.
* Each rank owns a :class:`~repro.simtime.clock.SimClock`; communication
  layers charge modeled costs to it.  Wall-clock time of the Python
  simulation is never used as a performance result.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from ..simtime.clock import SimClock
from .errors import InternalError, ProgressDeadlockError

__all__ = [
    "Proc",
    "RankFailedError",
    "Runtime",
    "RUNTIME_CREATION_HOOKS",
    "current_proc",
    "spmd_run",
]

#: callables invoked with each freshly constructed :class:`Runtime`.
#: Used by the sanitizer/fuzzer layers to install themselves ambiently
#: (e.g. ``pytest --sanitize``) without the runtime importing them.
RUNTIME_CREATION_HOOKS: "list[Callable[[Runtime], None]]" = []


class RankFailedError(ProgressDeadlockError):
    """Raised in surviving ranks after another rank failed."""


class Proc:
    """Per-rank context: identity, simulated clock, and scheduler state."""

    __slots__ = ("rank", "runtime", "clock", "blocked", "finished", "exception")

    def __init__(self, rank: int, runtime: "Runtime"):
        self.rank = rank
        self.runtime = runtime
        self.clock = SimClock()
        self.blocked = False
        self.finished = False
        self.exception: BaseException | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Proc rank={self.rank}>"


_tls = threading.local()


def current_proc() -> Proc:
    """The :class:`Proc` of the calling thread (must be inside ``spmd``)."""
    proc = getattr(_tls, "proc", None)
    if proc is None:
        raise InternalError("not inside an SPMD region")
    return proc


class Runtime:
    """Owns the rank threads and all shared simulated-MPI state.

    Parameters
    ----------
    nproc:
        Number of ranks.
    watchdog_s:
        Seconds a blocked rank waits before checking the all-blocked
        deadlock condition.  Small values make deadlock tests fast; the
        check never fires spuriously because it also requires the global
        progress counter to be unchanged.
    """

    def __init__(self, nproc: int, watchdog_s: float = 2.0):
        if nproc < 1:
            raise InternalError(f"nproc must be >= 1, got {nproc}")
        self.nproc = nproc
        self.watchdog_s = watchdog_s
        self.cond = threading.Condition()
        self.procs = [Proc(r, self) for r in range(nproc)]
        self.progress_counter = 0
        #: optional simtime timing policy consulted by communication layers
        self.timing = None
        self.failed: BaseException | None = None
        self._deadlocked = False
        self._next_context_id = 0
        #: registry used by collective-matching and window creation;
        #: maps arbitrary keys to in-flight collective state.
        self.shared: dict[Any, Any] = {}
        #: optional RMA sanitizer (``repro.sanitizer``) consulted by windows
        self.sanitizer = None
        #: optional deterministic schedule (``repro.mpi.progress``)
        self.schedule = None
        for hook in RUNTIME_CREATION_HOOKS:
            hook(self)

    # -- scheduling -----------------------------------------------------------
    def notify_progress(self) -> None:
        """Record a state change and wake all sleeping ranks.

        Must be called with :attr:`cond` held.
        """
        self.progress_counter += 1
        self.cond.notify_all()

    def wait_for(self, pred: Callable[[], bool]) -> None:
        """Block the calling rank until ``pred()`` is true.

        Must be called with :attr:`cond` held.  Raises
        :class:`ProgressDeadlockError` if the runtime concludes that no
        rank can make progress, and :class:`RankFailedError` if another
        rank failed while we waited.
        """
        proc = current_proc()
        while True:
            if self.failed is not None:
                raise RankFailedError(f"rank failed elsewhere: {self.failed!r}")
            if self._deadlocked:
                raise ProgressDeadlockError("deadlock detected among all ranks")
            if pred():
                return
            if self.schedule is not None:
                # deterministic mode: hand the token back to the scheduler
                # instead of sleeping on the watchdog; re-check pred when
                # (deterministically) re-dispatched.
                self.schedule.block(proc.rank)
                continue
            proc.blocked = True
            seen = self.progress_counter
            try:
                timed_out = not self.cond.wait(timeout=self.watchdog_s)
            finally:
                proc.blocked = False
            if timed_out and self.progress_counter == seen and self._all_stuck():
                self._deadlocked = True
                self.cond.notify_all()
                raise ProgressDeadlockError(
                    "all ranks blocked with no progress "
                    f"for {self.watchdog_s}s (watchdog)"
                )

    def _all_stuck(self) -> bool:
        return all(p.blocked or p.finished for p in self.procs if p is not current_proc())

    def alloc_context_id(self) -> int:
        """Unique id for a new communicator (must hold :attr:`cond`)."""
        self._next_context_id += 1
        return self._next_context_id

    def fuzz_point(self, kind: str) -> None:
        """A legal preemption point for the deterministic schedule fuzzer.

        Communication layers call this at operation boundaries (never
        with :attr:`cond` held).  Without a schedule installed it is a
        cheap no-op; with one, the scheduler may hand the token to
        another rank here, exercising a legal reordering.
        """
        sched = self.schedule
        if sched is None:
            return
        proc = getattr(_tls, "proc", None)
        if proc is None:
            return  # helper threads are not scheduled ranks
        with self.cond:
            sched.yield_point(proc.rank, kind)

    # -- execution ------------------------------------------------------------
    def spmd(
        self,
        fn: Callable[..., Any],
        *args: Any,
        join_timeout: float = 120.0,
    ) -> list[Any]:
        """Run ``fn(comm, *args)`` on every rank; return per-rank results.

        ``fn`` receives the world communicator as its first argument.
        The first exception raised by any rank is re-raised here after
        all threads have been joined.
        """
        from .comm import Comm  # deferred: comm.py imports runtime

        world = Comm._world(self)
        results: list[Any] = [None] * self.nproc
        if self.schedule is not None:
            self.schedule.begin_run(self)

        def body(proc: Proc) -> None:
            _tls.proc = proc
            try:
                if self.schedule is not None:
                    with self.cond:
                        self.schedule.thread_started(proc.rank)
                results[proc.rank] = fn(world, *args)
            except BaseException as exc:  # noqa: BLE001 - propagated to caller
                with self.cond:
                    proc.exception = exc
                    if self.failed is None and not isinstance(exc, RankFailedError):
                        self.failed = exc
                    self.notify_progress()
            finally:
                with self.cond:
                    proc.finished = True
                    if self.schedule is not None:
                        self.schedule.thread_finished(proc.rank)
                    self.notify_progress()
                _tls.proc = None

        threads = [
            threading.Thread(target=body, args=(p,), name=f"rank-{p.rank}", daemon=True)
            for p in self.procs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=join_timeout)
        if any(t.is_alive() for t in threads):
            with self.cond:
                if self.failed is None:
                    self.failed = ProgressDeadlockError(
                        "rank threads did not finish within join_timeout"
                    )
                self._deadlocked = True
                self.notify_progress()
            for t in threads:
                t.join(timeout=5.0)
        if self.failed is not None:
            raise self.failed
        for p in self.procs:
            if p.exception is not None:
                raise p.exception
        return results

    # -- simulated time --------------------------------------------------------
    def clocks(self) -> Sequence[float]:
        """Current simulated time on every rank."""
        return [p.clock.now for p in self.procs]

    def max_clock(self) -> float:
        return max(p.clock.now for p in self.procs)


def spmd_run(nproc: int, fn: Callable[..., Any], *args: Any, **kw: Any) -> list[Any]:
    """One-shot convenience: build a :class:`Runtime` and run ``fn`` on it."""
    return Runtime(nproc, **kw).spmd(fn, *args)
