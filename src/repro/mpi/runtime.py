"""SPMD execution runtime: MPI ranks as Python threads.

The simulated MPI runs each rank as an OS thread executing the same
callable, mirroring ``mpiexec -n N python script.py``.  All MPI state
transitions happen under one runtime-wide condition variable (a "giant
lock"), which makes every simulated MPI operation linearisable and lets a
watchdog detect global deadlock — the failure mode §V-E.1 of the paper is
designed to avoid (circular window-lock dependencies between two
processes' communication operations).

Design notes
------------
* Blocking MPI semantics are implemented with ``Runtime.wait_for(pred)``:
  the calling rank sleeps on the shared condition until the predicate
  holds.  Any state change calls ``notify_progress()``.
* The watchdog is not timer-based guesswork: a rank that times out while
  **all** live ranks are blocked and the global progress counter has not
  moved declares deadlock, raising :class:`ProgressDeadlockError`
  everywhere.  Tests use this to prove that a naive "lock both windows"
  implementation of ARMCI's global-buffer communication deadlocks, while
  the staged implementation does not.
* If one rank raises, the failure is propagated: all other ranks are
  woken and raise :class:`RankFailedError`, and ``Runtime.spmd`` re-raises
  the original exception.  This keeps test failures crisp instead of
  hanging the suite.
* Each rank owns a :class:`~repro.simtime.clock.SimClock`; communication
  layers charge modeled costs to it.  Wall-clock time of the Python
  simulation is never used as a performance result.
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Any, Callable, Sequence

from ..backoff import LOCK_RETRY
from ..simtime.clock import SimClock
from .backend import RuntimeBackend, resolve_backend
from .errors import (
    InternalError,
    OpTimeoutError,
    ProgressDeadlockError,
    RankKilledError,
    TargetFailedError,
)

__all__ = [
    "Proc",
    "RankFailedError",
    "RankKilledError",
    "Runtime",
    "RUNTIME_CREATION_HOOKS",
    "current_proc",
    "spmd_run",
]

#: callables invoked with each freshly constructed :class:`Runtime`.
#: Used by the sanitizer/fuzzer layers to install themselves ambiently
#: (e.g. ``pytest --sanitize``) without the runtime importing them.
RUNTIME_CREATION_HOOKS: "list[Callable[[Runtime], None]]" = []


class RankFailedError(ProgressDeadlockError):
    """Raised in surviving ranks after another rank failed."""


class Proc:
    """Per-rank context: identity, simulated clock, and scheduler state."""

    __slots__ = (
        "rank", "runtime", "clock", "blocked", "finished", "dead",
        "exception", "acked_dead",
    )

    def __init__(self, rank: int, runtime: "Runtime"):
        self.rank = rank
        self.runtime = runtime
        self.clock = SimClock()
        self.blocked = False
        self.finished = False
        #: set by :meth:`Runtime.mark_dead`; a dead rank's MPI calls raise
        self.dead = False
        self.exception: BaseException | None = None
        #: failed world ranks this rank has acknowledged (ULFM
        #: ``MPIX_Comm_failure_ack`` analogue); a dead-stall verdict only
        #: poisons waits of ranks with *unacknowledged* failures, which is
        #: what lets survivors regroup (``Comm.shrink``) after a kill.
        self.acked_dead: set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Proc rank={self.rank}>"


_tls = threading.local()


def current_proc() -> Proc:
    """The :class:`Proc` of the calling thread (must be inside ``spmd``)."""
    proc = getattr(_tls, "proc", None)
    if proc is None:
        raise InternalError("not inside an SPMD region")
    return proc


class Runtime:
    """Owns the rank threads and all shared simulated-MPI state.

    Parameters
    ----------
    nproc:
        Number of ranks.
    watchdog_s:
        Seconds a blocked rank waits before checking the all-blocked
        deadlock condition.  Small values make deadlock tests fast; the
        check never fires spuriously because it also requires the global
        progress counter to be unchanged.  ``None`` reads the
        ``REPRO_WATCHDOG_S`` environment variable (default 2.0).
    op_timeout_s:
        Optional per-operation timeout, *independent* of the watchdog:
        blocking waits passed a timeout raise :class:`OpTimeoutError`
        after this many seconds even while other ranks keep making
        progress (the watchdog only fires on *global* no-progress).
        ``None`` reads ``REPRO_OP_TIMEOUT_S`` (default: disabled).
        Ignored under a deterministic schedule, which has no wall clock.
    op_retries:
        Bounded retry budget used by lock acquisition paths after an
        :class:`OpTimeoutError` (``REPRO_OP_RETRIES``, default 3).
    heartbeat_s:
        Cross-process liveness lease refresh interval, used by the proc
        backend's failure detector: each rank process re-stamps its
        shared-memory heartbeat slot at least this often.  ``None``
        reads ``REPRO_HEARTBEAT_S`` (default 0.05).  Ignored by the
        thread backend, whose failure knowledge is in-process.
    suspect_after:
        Seconds a rank's heartbeat lease may go stale before its peers
        *suspect* it and start probing the process directly
        (exponential-backoff re-probing; only a pid that is actually
        gone — or a zombie — is declared dead, so a SIGSTOPped rank is
        stalled, never falsely killed).  ``None`` reads
        ``REPRO_SUSPECT_AFTER`` (default 1.0).
    seed:
        Seed for the runtime's backoff RNG (exponential backoff between
        lock retries is seeded so retry timing is reproducible).
    backend:
        Rank-execution backend: ``"thread"`` (default — ranks as OS
        threads under the giant lock, the deterministic path),
        ``"proc"`` (one OS process per rank with shared-memory windows),
        or a :class:`~repro.mpi.backend.RuntimeBackend` instance.
    apply_hooks:
        Run :data:`RUNTIME_CREATION_HOOKS` on this runtime (default).
        The proc backend builds per-child runtime replicas with
        ``apply_hooks=False`` so ambiently installed layers (sanitizer,
        schedule fuzzer, fault injector) are never silently duplicated
        into rank processes they cannot observe.
    """

    def __init__(
        self,
        nproc: int,
        watchdog_s: "float | None" = None,
        op_timeout_s: "float | None" = None,
        op_retries: "int | None" = None,
        seed: int = 0,
        backend: "str | RuntimeBackend | None" = None,
        apply_hooks: bool = True,
        heartbeat_s: "float | None" = None,
        suspect_after: "float | None" = None,
    ):
        if nproc < 1:
            raise InternalError(f"nproc must be >= 1, got {nproc}")
        self.nproc = nproc
        if watchdog_s is None:
            watchdog_s = float(os.environ.get("REPRO_WATCHDOG_S", "2.0"))
        self.watchdog_s = watchdog_s
        if op_timeout_s is None:
            env = os.environ.get("REPRO_OP_TIMEOUT_S", "")
            op_timeout_s = float(env) if env else None
        self.op_timeout_s = op_timeout_s
        if op_retries is None:
            op_retries = int(os.environ.get("REPRO_OP_RETRIES", "3"))
        self.op_retries = op_retries
        if heartbeat_s is None:
            heartbeat_s = float(os.environ.get("REPRO_HEARTBEAT_S", "0.05"))
        self.heartbeat_s = heartbeat_s
        if suspect_after is None:
            suspect_after = float(os.environ.get("REPRO_SUSPECT_AFTER", "1.0"))
        self.suspect_after = suspect_after
        #: world ranks hosted by *this* OS process, or ``None`` when all
        #: ranks share the process (thread backend).  The proc backend's
        #: child runtimes set this to ``{rank}``: acknowledgement-based
        #: recovery (``failure_ack`` clearing a peer-death poisoning,
        #: dead-stall clearing) must then only wait on local ranks —
        #: remote replicas acknowledge in their own processes.
        self.local_ranks: "set[int] | None" = None
        self.seed = seed
        self.backend = resolve_backend(backend)
        self._backoff_rng = random.Random(0x5DEECE66D ^ (seed << 16))
        self.cond = threading.Condition()
        self.procs = [Proc(r, self) for r in range(nproc)]
        self.progress_counter = 0
        #: optional simtime timing policy consulted by communication layers
        self.timing = None
        self.failed: BaseException | None = None
        self._deadlocked = False
        self._next_context_id = 0
        #: registry used by collective-matching and window creation;
        #: maps arbitrary keys to in-flight collective state.
        self.shared: dict[Any, Any] = {}
        #: optional RMA sanitizer (``repro.sanitizer``) consulted by windows
        self.sanitizer = None
        #: optional deterministic schedule (``repro.mpi.progress``)
        self.schedule = None
        #: optional fault injector (``repro.faults``) consulted at fuzz points
        self.faults = None
        #: world ranks that have failed (fault injection / injected death)
        self.dead_ranks: set[int] = set()
        #: true once the runtime concluded no progress is possible *because*
        #: of dead ranks; blocked survivors then raise TargetFailedError
        self._dead_stall = False
        #: callbacks ``hook(world_rank)`` run under :attr:`cond` when a rank
        #: dies; communication layers register repair actions here (prune
        #: lock queues, fail matching receives, forward orphaned mutexes).
        self._death_hooks: list[Callable[[int], None]] = []
        #: exceptions raised by death hooks (recovery must not re-kill the
        #: runtime; tests assert this stays empty)
        self.death_hook_errors: list[BaseException] = []
        if apply_hooks:
            for hook in RUNTIME_CREATION_HOOKS:
                hook(self)

    # -- scheduling -----------------------------------------------------------
    def notify_progress(self) -> None:
        """Record a state change and wake all sleeping ranks.

        Must be called with :attr:`cond` held.
        """
        self.progress_counter += 1
        self.cond.notify_all()

    def wait_for(
        self,
        pred: Callable[[], bool],
        timeout_s: "float | None" = None,
        what: str = "operation",
    ) -> None:
        """Block the calling rank until ``pred()`` is true.

        Must be called with :attr:`cond` held.  Raises
        :class:`ProgressDeadlockError` if the runtime concludes that no
        rank can make progress, :class:`RankFailedError` if another
        rank failed while we waited, :class:`TargetFailedError` if dead
        ranks make progress impossible, and :class:`OpTimeoutError` if
        ``timeout_s`` elapses first (wall-clock mode only — a
        deterministic schedule has no wall clock, so per-op timeouts are
        disabled under it and the deterministic dead-stall detection
        takes over).
        """
        proc = current_proc()
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            if proc.dead:
                raise RankKilledError(f"rank {proc.rank} was killed by fault injection")
            if self.failed is not None:
                raise RankFailedError(f"rank failed elsewhere: {self.failed!r}")
            if self._dead_stall and (self.dead_ranks - proc.acked_dead):
                raise TargetFailedError(
                    f"no rank can make progress while rank(s) "
                    f"{sorted(self.dead_ranks - proc.acked_dead)} are failed"
                )
            if self._deadlocked:
                raise ProgressDeadlockError("deadlock detected among all ranks")
            if pred():
                return
            if (
                deadline is not None
                and self.schedule is None
                and time.monotonic() >= deadline
            ):
                raise OpTimeoutError(f"{what} timed out after {timeout_s}s")
            if self.schedule is not None:
                # deterministic mode: hand the token back to the scheduler
                # instead of sleeping on the watchdog; re-check pred when
                # (deterministically) re-dispatched.
                self.schedule.block(proc.rank)
                continue
            proc.blocked = True
            seen = self.progress_counter
            wait_s = self.watchdog_s
            if deadline is not None:
                wait_s = min(wait_s, max(deadline - time.monotonic(), 0.001))
            try:
                timed_out = not self.cond.wait(timeout=wait_s)
            finally:
                proc.blocked = False
            # The watchdog verdict is only valid after a *full* watchdog
            # interval: a wait shortened by a per-op deadline must not be
            # allowed to declare global deadlock early.
            full_wait = deadline is None or wait_s >= self.watchdog_s
            if timed_out and full_wait and self.progress_counter == seen and self._all_stuck():
                if self.dead_ranks:
                    self._dead_stall = True
                    self.cond.notify_all()
                    raise TargetFailedError(
                        f"no progress for {self.watchdog_s}s while rank(s) "
                        f"{sorted(self.dead_ranks)} are failed (watchdog)"
                    )
                self._deadlocked = True
                self.cond.notify_all()
                raise ProgressDeadlockError(
                    "all ranks blocked with no progress "
                    f"for {self.watchdog_s}s (watchdog)"
                )

    def _all_stuck(self) -> bool:
        return all(p.blocked or p.finished for p in self.procs if p is not current_proc())

    def alloc_context_id(self) -> int:
        """Unique id for a new communicator (must hold :attr:`cond`)."""
        self._next_context_id += 1
        return self._next_context_id

    # -- fault handling --------------------------------------------------------
    def mark_dead(self, world_rank: int) -> None:
        """Mark ``world_rank`` failed and run registered recovery hooks.

        Must be called with :attr:`cond` held.  Idempotent.  Hooks repair
        shared state orphaned by the death (window lock queues, pending
        receives, mutex byte vectors); a hook raising is a recovery bug,
        recorded in :attr:`death_hook_errors` rather than re-killing the
        runtime.
        """
        proc = self.procs[world_rank]
        if proc.dead:
            return
        proc.dead = True
        self.dead_ranks.add(world_rank)
        for hook in list(self._death_hooks):
            try:
                hook(world_rank)
            except BaseException as exc:  # noqa: BLE001 - recovery must not cascade
                self.death_hook_errors.append(exc)
        self._maybe_clear_dead_stall()
        self.notify_progress()

    def add_death_hook(self, hook: Callable[[int], None]) -> None:
        """Register ``hook(world_rank)`` to run (under :attr:`cond`) on death."""
        self._death_hooks.append(hook)

    def failure_ack(self) -> "frozenset[int]":
        """Acknowledge all currently-known failures for the calling rank.

        The ULFM ``MPIX_Comm_failure_ack`` analogue, lifted to the
        runtime (failure knowledge is global here, not per-communicator).
        Returns the full set of failed world ranks this rank has now
        acknowledged.  Once *every* live rank has acknowledged the
        current dead set, a standing dead-stall verdict is cleared so
        survivors can rendezvous (``Comm.agree`` / ``Comm.shrink``)
        instead of re-raising :class:`TargetFailedError` forever.  Under
        a deterministic schedule the call also re-enters the token
        regime, so recovery replays bit-identically from the seed.
        """
        proc = current_proc()
        with self.cond:
            proc.acked_dead |= self.dead_ranks
            acked = frozenset(proc.acked_dead)
            if self.schedule is not None:
                self.schedule.ack_point(proc.rank)
            self._maybe_clear_dead_stall()
            self._maybe_clear_peer_failure()
            if self.schedule is not None:
                self.schedule.ack_park(proc.rank)
        return acked

    def acked_failures(self) -> "frozenset[int]":
        """Failed world ranks the calling rank has acknowledged so far."""
        return frozenset(current_proc().acked_dead)

    def _maybe_clear_dead_stall(self) -> None:
        """Clear the dead-stall verdict once every live rank acknowledged.

        Must be called with :attr:`cond` held.  A dead-stall poisons the
        waits of ranks with unacknowledged failures; when the last live,
        unfinished rank acknowledges (or finishes, or dies), the verdict
        has served its purpose and blocking waits may resume — this is
        the hinge that turns "typed graceful degradation" (PR 3) into
        actual recovery.
        """
        if not self._dead_stall:
            return
        for p in self.procs:
            if p.dead or p.finished:
                continue
            if self.local_ranks is not None and p.rank not in self.local_ranks:
                continue  # remote replica acks in its own process
            if self.dead_ranks - p.acked_dead:
                return
        self._dead_stall = False
        if self.schedule is not None:
            self.schedule.stall_cleared()
        self.notify_progress()

    def _maybe_clear_peer_failure(self) -> None:
        """Clear a peer-death ``failed`` poisoning once locally acknowledged.

        Must be called with :attr:`cond` held.  On the proc backend a
        peer process dying sets :attr:`failed` to a
        :class:`RankFailedError` so every blocked wait in this process
        aborts promptly (mirroring the thread backend's propagate-and-
        join behaviour).  Unlike the thread backend, survivors here are
        expected to *recover in place* — once every local live rank has
        acknowledged the dead set, the poisoning has delivered its
        message and blocking may resume.  Only a ``RankFailedError``
        (peer death, not a local bug) is ever cleared, and only when
        :attr:`local_ranks` marks this runtime as a per-process replica.
        """
        if self.local_ranks is None or not isinstance(self.failed, RankFailedError):
            return
        for p in self.procs:
            if p.rank not in self.local_ranks or p.dead or p.finished:
                continue
            if self.dead_ranks - p.acked_dead:
                return
        self.failed = None
        self.notify_progress()

    def check_self_alive(self) -> None:
        """Raise :class:`RankKilledError` if the calling rank was killed.

        Called at MPI entry points so a killed rank unwinding through
        ``finally`` blocks cannot keep communicating (a crashed process
        releases no locks — recovery belongs to the runtime's death
        hooks, not the corpse).  No-op outside an SPMD region.
        """
        proc = getattr(_tls, "proc", None)
        if proc is not None and proc.dead:
            raise RankKilledError(f"rank {proc.rank} was killed by fault injection")

    def backoff(self, attempt: int) -> float:
        """Seeded exponential backoff before retry ``attempt`` (from 0).

        The curve is :data:`repro.backoff.LOCK_RETRY` jittered by the
        runtime's seeded RNG (one uniform draw per call, so replays of
        the same runtime seed consume the RNG identically).  Returns
        the chosen delay.  In wall-clock mode the calling rank sleeps
        on :attr:`cond` for that long (must hold :attr:`cond`); under a
        deterministic schedule no wall sleep happens — the delay is
        only reported so callers can charge it to simulated time.
        """
        delay = LOCK_RETRY.delay(attempt, self._backoff_rng)
        if self.schedule is None:
            self.cond.wait(timeout=delay)
        return delay

    def fuzz_point(self, kind: str) -> None:
        """A legal preemption point for the deterministic schedule fuzzer.

        Communication layers call this at operation boundaries (never
        with :attr:`cond` held).  Without a schedule installed it is a
        cheap no-op; with one, the scheduler may hand the token to
        another rank here, exercising a legal reordering.  An installed
        fault injector (``repro.faults``) is also consulted here — this
        is where a plan kills or stalls a rank.
        """
        sched = self.schedule
        faults = self.faults
        if sched is None and faults is None:
            return
        proc = getattr(_tls, "proc", None)
        if proc is None:
            return  # helper threads are not scheduled ranks
        if faults is not None:
            faults.at_point(self, proc, kind)  # may raise RankKilledError
        if sched is not None:
            with self.cond:
                sched.yield_point(proc.rank, kind)

    # -- execution ------------------------------------------------------------
    def spmd(
        self,
        fn: Callable[..., Any],
        *args: Any,
        join_timeout: float = 120.0,
    ) -> list[Any]:
        """Run ``fn(comm, *args)`` on every rank; return per-rank results.

        ``fn`` receives the world communicator as its first argument.
        The first exception raised by any rank is re-raised here after
        all ranks have been joined.  How the ranks execute — threads
        under the giant lock, or one OS process per rank — is the
        :attr:`backend`'s decision (see :mod:`repro.mpi.backend`).
        """
        return self.backend.spmd(self, fn, args, join_timeout)

    # -- simulated time --------------------------------------------------------
    def clocks(self) -> Sequence[float]:
        """Current simulated time on every rank."""
        return [p.clock.now for p in self.procs]

    def max_clock(self) -> float:
        return max(p.clock.now for p in self.procs)


def spmd_run(nproc: int, fn: Callable[..., Any], *args: Any, **kw: Any) -> list[Any]:
    """One-shot convenience: build a :class:`Runtime` and run ``fn`` on it."""
    return Runtime(nproc, **kw).spmd(fn, *args)
