"""MPI RMA windows with passive-target synchronization (MPI-2 + gated MPI-3).

This module is the substrate whose *semantics* shaped the whole ARMCI-MPI
design (§III, §V):

* **Passive target epochs.**  All one-sided ops must happen between
  ``lock(target)`` and ``unlock(target)``; ops outside an epoch raise
  :class:`RMASyncError`.
* **Shared vs exclusive locks** with FIFO-fair queuing; a process may
  hold at most **one** lock per window at a time (the MPI-2 restriction
  that forbids ARMCI-MPI from locking a local and a remote window region
  of the same window simultaneously and forces buffer staging, §V-E.1).
* **Conflicting accesses are erroneous.**  Overlapping put/get/acc within
  one epoch, or between concurrently open epochs of different origins
  (possible only under shared locks), raise :class:`RMAConflictError` —
  except accumulate-vs-accumulate with the same op, which MPI permits.
  Real MPI may silently corrupt data in these cases; we detect eagerly so
  tests can prove ARMCI-MPI never triggers them.
* **Get results are delivered at unlock.**  Within an epoch all ops are
  logically concurrent; a get's data lands in the user buffer only when
  the epoch closes, so code that peeks earlier observes stale bytes —
  deliberately, to flush out completion-semantics bugs.
* **Local load/store** of exposed memory requires an exclusive self-lock
  when strict checking is on (the public/private window-copy rule of
  §III that motivated the ARMCI DLA extension).

MPI-3 extensions (``flush``, ``lock_all`` epochless mode, request-based
``rput``/``rget``, ``fetch_and_op``, ``compare_and_swap``) are implemented
but **gated** behind ``mpi3=True``: §VIII-B of the paper motivates exactly
these features, and the ablation benchmark quantifies their benefit.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from . import datatypes as dt
from . import ops as mpi_ops
from .comm import Comm
from .errors import (
    ArgumentError,
    CommRevokedError,
    OpTimeoutError,
    RMAConflictError,
    RMARangeError,
    RMASyncError,
    TargetFailedError,
    WinError,
)
from .runtime import current_proc

__all__ = [
    "Win",
    "LOCK_SHARED",
    "LOCK_EXCLUSIVE",
    "INTERVAL_COMPACT_AT",
]

LOCK_SHARED = "shared"
LOCK_EXCLUSIVE = "exclusive"

#: pending additions an :class:`_IntervalSet` tolerates before folding them
#: into its compacted disjoint coverage (amortises the sort; see class doc)
INTERVAL_COMPACT_AT = 8


def _segments_overlap(
    a_off: np.ndarray, a_len: np.ndarray, b_off: np.ndarray, b_len: np.ndarray
) -> bool:
    """True if any interval of A intersects any interval of B.

    B must be sorted by offset (A need not be).  Intervals within B may
    themselves overlap, so a running-maximum of interval ends is used:
    interval ``a`` intersects some ``b`` iff among all b starting before
    ``a``'s end, the furthest-reaching end exceeds ``a``'s start.
    Vectorised searchsorted — no O(N·M) scan.
    """
    if len(a_off) == 0 or len(b_off) == 0:
        return False
    b_end_cummax = np.maximum.accumulate(b_off + b_len)
    a_end = a_off + a_len
    # number of b intervals starting strictly before each a's end
    idx = np.searchsorted(b_off, a_end, side="left")
    has_candidate = idx > 0
    reach = b_end_cummax[np.maximum(idx - 1, 0)]
    return bool(np.any(has_candidate & (reach > a_off)))


class _IntervalSet:
    """Byte-coverage set with amortised-cheap overlap queries.

    Stores the union of all added intervals as a compacted sorted
    disjoint array plus a small pending list; queries check both.  With
    compaction every :data:`INTERVAL_COMPACT_AT` additions, recording N
    operations in one epoch costs O(N log N) total instead of the O(N^2)
    a naive check-against-every-previous-op scan would (the regime the
    batched IOV method hits with thousands of segments per epoch).

    Single-interval additions and queries — the contiguous put/get/acc
    mix that dominates Fig. 3 and the CCSD workload — take scalar fast
    paths: a bounding-box reject plus unsorted vectorised compares, no
    argsort or concatenation.
    """

    __slots__ = ("_cov_off", "_cov_len", "_pending", "count", "_lo", "_hi")

    _COMPACT_AT = INTERVAL_COMPACT_AT

    def __init__(self) -> None:
        self._cov_off = np.empty(0, dtype=np.int64)
        self._cov_len = np.empty(0, dtype=np.int64)
        self._pending: list[tuple[np.ndarray, np.ndarray]] = []
        self.count = 0
        #: bounding box over everything ever added (cheap O(1) reject)
        self._lo = np.iinfo(np.int64).max
        self._hi = np.iinfo(np.int64).min

    def add(self, offsets: np.ndarray, lengths: np.ndarray) -> None:
        if len(offsets) == 0:
            return
        if len(offsets) == 1:
            off = int(offsets[0])
            end = off + int(lengths[0])
        else:
            off = int(offsets.min())
            end = int((offsets + lengths).max())
        self._lo = min(self._lo, off)
        self._hi = max(self._hi, end)
        self._pending.append((offsets, lengths))
        self.count += 1
        if len(self._pending) >= self._COMPACT_AT:
            self._compact()

    def _compact(self) -> None:
        offs = np.concatenate([self._cov_off] + [p[0] for p in self._pending])
        lens = np.concatenate([self._cov_len] + [p[1] for p in self._pending])
        order = np.argsort(offs, kind="stable")
        offs, lens = offs[order], lens[order]
        # merge into disjoint coverage
        merged = dt.SegmentMap(offs, lens).coalesced()
        # coalesced() only merges exactly-adjacent runs; also merge overlaps
        o, l = merged.offsets, merged.lengths
        if len(o) > 1:
            ends = np.maximum.accumulate(o + l)
            new_run = np.empty(len(o), dtype=bool)
            new_run[0] = True
            new_run[1:] = o[1:] > ends[:-1]
            starts = np.flatnonzero(new_run)
            run_ends = np.append(starts[1:], len(o))
            o2 = o[starts]
            l2 = np.array(
                [ends[e - 1] - o[s] for s, e in zip(starts, run_ends)],
                dtype=np.int64,
            )
            o, l = o2, l2
        self._cov_off, self._cov_len = o, l
        self._pending.clear()

    def overlaps(self, offsets: np.ndarray, lengths: np.ndarray) -> bool:
        if self.count == 0 or len(offsets) == 0:
            return False
        # bounding-box reject: O(1) for the single-interval query
        if len(offsets) == 1:
            q_lo = int(offsets[0])
            q_hi = q_lo + int(lengths[0])
        else:
            q_lo = int(offsets.min())
            q_hi = int((offsets + lengths).max())
        if q_lo >= self._hi or q_hi <= self._lo:
            return False
        if len(offsets) == 1:
            # scalar query: unsorted vectorised compare, no argsort needed
            if len(self._cov_off) and bool(
                np.any((self._cov_off < q_hi) & (self._cov_off + self._cov_len > q_lo))
            ):
                return True
            for p_off, p_len in self._pending:
                if bool(np.any((p_off < q_hi) & (p_off + p_len > q_lo))):
                    return True
            return False
        if _segments_overlap(offsets, lengths, self._cov_off, self._cov_len):
            return True
        for p_off, p_len in self._pending:
            if len(p_off) > 1:
                order = np.argsort(p_off, kind="stable")
                p_off, p_len = p_off[order], p_len[order]
            if _segments_overlap(offsets, lengths, p_off, p_len):
                return True
        return False


class _Epoch:
    """An open access epoch of one origin on one target."""

    __slots__ = (
        "origin",
        "target",
        "mode",
        "puts",
        "gets",
        "accs",
        "pending_gets",
        "pending_reqs",
        "op_count",
        "bytes_moved",
    )

    def __init__(self, origin: int, target: int, mode: str):
        self.origin = origin
        self.target = target
        self.mode = mode
        #: per-class byte coverage used for conflict detection
        self.puts = _IntervalSet()
        self.gets = _IntervalSet()
        self.accs: dict[str, _IntervalSet] = {}
        #: (staged_bytes, user_byte_view, origin_segmap)
        self.pending_gets: list[tuple[np.ndarray, np.ndarray, dt.SegmentMap]] = []
        #: request-based ops issued in this epoch (MPI-3 rput/rget);
        #: closing the epoch with any of them incomplete is erroneous
        self.pending_reqs: list["_DoneRequest"] = []
        self.op_count = 0
        self.bytes_moved = 0

    def clear_accesses(self) -> None:
        self.puts = _IntervalSet()
        self.gets = _IntervalSet()
        self.accs = {}

    def conflict_class(self, kind: str, opname: "str | None", offs, lens) -> "str | None":
        """Name of the first access class conflicting with the new op."""
        if kind != "get" and self.gets.overlaps(offs, lens):
            return "get"
        if self.puts.overlaps(offs, lens):
            return "put"
        for name, cover in self.accs.items():
            if kind == "acc" and name == opname:
                continue  # same-op accumulates may overlap (MPI-2 §11.7.1)
            if cover.overlaps(offs, lens):
                return f"acc({name})"
        return None

    def record(self, kind: str, opname: "str | None", offs, lens) -> None:
        if kind == "put":
            self.puts.add(offs, lens)
        elif kind == "get":
            self.gets.add(offs, lens)
        else:
            self.accs.setdefault(opname or "", _IntervalSet()).add(offs, lens)


class _LockState:
    """Lock state of one target rank of one window."""

    __slots__ = ("mode", "holders", "queue")

    def __init__(self):
        self.mode: str | None = None
        self.holders: set[int] = set()
        self.queue: list[tuple[int, str]] = []


class Win:
    """An RMA window: one memory region per rank of a communicator.

    When ``runtime.sanitizer`` is set (see :mod:`repro.sanitizer`), every
    synchronisation and data-movement entry point reports to it *before*
    performing the window's own checks, so the sanitizer can raise
    structured :class:`~repro.sanitizer.RmaViolationError` subclasses of
    the plain MPI errors this module would raise.
    """

    def __init__(
        self,
        comm: Comm,
        buffers: list[np.ndarray],
        disp_units: list[int],
        strict: bool = True,
        mpi3: bool = False,
    ):
        self.comm = comm
        self.runtime = comm.runtime
        #: per-window-rank byte views of the exposed memory
        self._buffers = buffers
        self._disp_units = disp_units
        self.strict = strict
        self.mpi3 = mpi3
        self._locks = [_LockState() for _ in range(comm.size)]
        #: (origin_world, target_rank) -> open epoch
        self._epochs: dict[tuple[int, int], _Epoch] = {}
        #: origin_world -> target currently locked (enforces one lock/window rule)
        self._held: dict[int, int] = {}
        #: origins in a lock_all epoch (MPI-3)
        self._lock_all: set[int] = set()
        #: active-target state: ranks currently inside a fence epoch
        self._fence_members: set[int] = set()
        self._freed = False
        # per-runtime ids (not process-global) so a replayed run labels
        # its windows identically — violation text feeds the fuzz digest
        rt = self.runtime
        with rt.cond:
            self.win_id = getattr(rt, "_next_win_id", 0)
            rt._next_win_id = self.win_id + 1
        rt.add_death_hook(self._on_rank_death)

    def _san(self):
        """The installed sanitizer, or None (hot-path one-liner)."""
        return self.runtime.sanitizer

    # -- fault handling --------------------------------------------------------
    def _on_rank_death(self, world_rank: int) -> None:
        """Repair lock/epoch state orphaned by a failed rank.

        Runs under the runtime lock via the death-hook registry.  A
        crashed origin releases nothing by itself; this models the
        target-side RMA agent (which survives the origin process)
        revoking the dead origin's epochs and queued lock requests so
        waiters can be granted instead of deadlocking.
        """
        for key in [k for k in self._epochs if k[0] == world_rank]:
            del self._epochs[key]
            ls = self._locks[key[1]]
            ls.holders.discard(world_rank)
            if not ls.holders:
                ls.mode = None
        self._held.pop(world_rank, None)
        self._lock_all.discard(world_rank)
        self._fence_members.discard(world_rank)
        for ls in self._locks:
            ls.queue[:] = [(o, m) for (o, m) in ls.queue if o != world_rank]

    def _target_world(self, target_rank: int) -> int:
        return self.comm.group.world_rank(target_rank)

    def _fault_filter(self, kind: str, data: np.ndarray) -> "np.ndarray | None":
        """Consult the fault injector about one RMA payload.

        Returns the (possibly corrupted) data to apply, or ``None`` if
        the plan drops this operation on the wire.
        """
        fi = self.runtime.faults
        if fi is None:
            return data
        return fi.filter_rma(self, current_proc().rank, kind, data)

    # -- construction ----------------------------------------------------------
    @classmethod
    def create(
        cls,
        comm: Comm,
        local: "np.ndarray | None",
        disp_unit: int = 1,
        strict: bool = True,
        mpi3: bool = False,
    ) -> "Win":
        """Collective window creation (MPI_Win_create).

        ``local`` is this rank's exposed array (any dtype; it is viewed as
        bytes) or ``None``/size-0 for no local exposure.  Where the
        window memory lives is the runtime backend's decision: the
        thread backend exposes ``local`` itself; the proc backend copies
        it into a ``multiprocessing.shared_memory`` segment (closer to
        ``MPI_Win_allocate``) — use :meth:`local_view` /
        :meth:`exposed_buffer` for access that works on both.
        """
        return comm.runtime.backend.win_create(comm, local, disp_unit, strict, mpi3)

    @classmethod
    def allocate(
        cls, comm: Comm, nbytes: int, strict: bool = True, mpi3: bool = False
    ) -> tuple["Win", np.ndarray]:
        """Collective allocate-and-create (MPI_Win_allocate)."""
        if nbytes < 0:
            raise ArgumentError(f"Win.allocate: negative size {nbytes}")
        local = np.zeros(nbytes, dtype=np.uint8)
        win = cls.create(comm, local, strict=strict, mpi3=mpi3)
        return win, local

    def free(self) -> None:
        """Collective window free; erroneous with epochs still open."""
        self.free_with(None)

    def free_with(self, on_free) -> Any:
        """Collective free fused with a commit callback (abort consistency).

        ``on_free()`` (no arguments) runs inside the same rendezvous
        compute step that marks the window freed, so a caller's registry
        updates and the free itself happen atomically with respect to
        rank failure: if any member dies before the rendezvous completes,
        the collective fails with a typed error and *neither* side effect
        happens on survivors.  The ARMCI layer uses this to keep its GMR
        translation table consistent through an aborted free.  Returns
        ``on_free``'s result (shared by every rank).
        """
        with self.runtime.cond:
            rank = self.comm.rank

            def finish(_c):
                if self._epochs or self._held or self._fence_members:
                    raise RMASyncError("Win.free with access epochs still open")
                result = on_free() if on_free is not None else None
                self._freed = True
                return result

            return self.comm._coll.run(rank, "win_free", None, finish)

    def invalidate(self) -> None:
        """Non-collective forced teardown (recovery path).

        Unlike :meth:`free`, which is a collective over *all* members and
        therefore poisoned once a member is dead, ``invalidate`` simply
        marks the window freed and drops its synchronisation state.  Any
        member may call it; it is idempotent.  Recovery code uses it to
        retire windows that can no longer complete a collective free
        after a rank failure — the survivors rebuild replacements on the
        shrunken communicator instead.  Must not be called with the
        giant lock held.
        """
        with self.runtime.cond:
            if self._freed:
                return
            self._freed = True
            self._epochs.clear()
            self._held.clear()
            self._lock_all.clear()
            self._fence_members.clear()
            for ls in self._locks:
                ls.mode = None
                ls.holders.clear()
                ls.queue.clear()
            self.runtime.notify_progress()

    # -- introspection -----------------------------------------------------------
    def size_of(self, target_rank: int) -> int:
        """Exposed bytes at ``target_rank``."""
        self._check_target(target_rank)
        return self._buffers[target_rank].nbytes

    @property
    def group(self):
        return self.comm.group

    # -- passive-target synchronisation ---------------------------------------------
    def lock(self, target_rank: int, mode: str = LOCK_EXCLUSIVE) -> None:
        """Begin a passive-target access epoch (MPI_Win_lock)."""
        if mode not in (LOCK_SHARED, LOCK_EXCLUSIVE):
            raise ArgumentError(f"unknown lock mode {mode!r}")
        self._check_target(target_rank)
        rt = self.runtime
        origin = current_proc().rank
        if self.comm.group.rank_of_world(origin) < 0:
            raise WinError(
                f"world rank {origin} is not in this window's group and "
                "cannot open an access epoch on it"
            )
        with rt.cond:
            self._check_alive()
            rt.check_self_alive()
            san = self._san()
            if san is not None:
                san.on_lock(self, origin, target_rank, mode)
            if origin in self._held:
                raise RMASyncError(
                    f"origin {origin} already holds a lock on target "
                    f"{self._held[origin]} of this window (MPI-2 allows one "
                    "lock per window per process)"
                )
            if origin in self._lock_all:
                raise RMASyncError("lock() inside a lock_all epoch")
            if origin in self._fence_members:
                raise RMASyncError(
                    "lock() inside an active-target fence epoch"
                )
            target_world = self._target_world(target_rank)
            if target_world in rt.dead_ranks:
                raise TargetFailedError(
                    f"lock: target rank {target_rank} of win {self.win_id} has failed"
                )
            ls = self._locks[target_rank]

            def grantable() -> bool:
                if not ls.queue or ls.queue[0][0] != origin:
                    return False
                if ls.mode is None:
                    return True
                return ls.mode == LOCK_SHARED and mode == LOCK_SHARED

            # bounded-retry acquisition: on a per-op timeout, withdraw the
            # queued request, back off (seeded), and re-enqueue — so a rank
            # starved by a stuck peer fails with a typed OpTimeoutError
            # after op_retries attempts instead of hanging forever.
            attempt = 0
            while True:
                ls.queue.append((origin, mode))
                try:
                    rt.wait_for(
                        grantable,
                        timeout_s=rt.op_timeout_s,
                        what=f"win {self.win_id} lock(target={target_rank})",
                    )
                except OpTimeoutError:
                    ls.queue.remove((origin, mode))
                    rt.notify_progress()
                    if attempt >= rt.op_retries:
                        raise
                    rt.backoff(attempt)
                    attempt += 1
                    continue
                break
            if target_world in rt.dead_ranks:
                # the target died while we were queued: typed failure, not
                # a grant on a corpse
                ls.queue.remove((origin, mode))
                rt.notify_progress()
                raise TargetFailedError(
                    f"lock: target rank {target_rank} of win {self.win_id} "
                    "failed while the request was queued"
                )
            ls.queue.pop(0)
            ls.mode = mode
            ls.holders.add(origin)
            self._held[origin] = target_rank
            self._epochs[(origin, target_rank)] = _Epoch(origin, target_rank, mode)
            rt.notify_progress()
        self._charge_sync("lock")

    def unlock(self, target_rank: int) -> None:
        """End the access epoch; completes all ops locally and remotely."""
        self._check_target(target_rank)
        rt = self.runtime
        origin = current_proc().rank
        with rt.cond:
            self._check_alive()
            rt.check_self_alive()
            san = self._san()
            if san is not None:
                san.on_unlock(self, origin, target_rank)
                san.on_epoch_close(self, origin, target_rank)
            epoch = self._epochs.pop((origin, target_rank), None)
            if epoch is None or self._held.get(origin) != target_rank:
                raise RMASyncError(
                    f"unlock({target_rank}) without a matching lock by origin {origin}"
                )
            self._deliver_gets(epoch)
            del self._held[origin]
            ls = self._locks[target_rank]
            ls.holders.discard(origin)
            if not ls.holders:
                ls.mode = None
            rt.notify_progress()
        self._charge_sync("unlock")

    # -- active-target synchronisation (MPI_Win_fence) --------------------------------
    def fence_sync(self, end: bool = False) -> None:
        """Active-target fence (MPI_Win_fence): collective epoch delimiter.

        Each fence completes all operations of the previous fence epoch
        (delivering gets) and — unless ``end=True``, the analogue of
        ``MPI_MODE_NOSUCCEED`` — opens the next one, during which every
        member may issue RMA operations without locks.  This is the
        synchronising mode §III describes and rejects for GA, because
        every data-transfer phase then requires participation of all
        processes.  Provided so the active-vs-passive trade-off can be
        exercised and measured; ARMCI-MPI itself never calls it.

        Named ``fence_sync`` to avoid colliding with ARMCI's (unrelated)
        completion fence.
        """
        rt = self.runtime
        origin = current_proc().rank
        with rt.cond:
            self._check_alive()
            if origin in self._held or origin in self._lock_all:
                raise RMASyncError(
                    "MPI_Win_fence while holding a passive-target lock: "
                    "active and passive epochs may not overlap"
                )

        def close(_contrib) -> None:
            # complete the previous fence epoch: deliver gets, drop accesses
            for (o, _t), epoch in list(self._epochs.items()):
                if epoch.mode == "fence":
                    self._deliver_gets(epoch)
                    del self._epochs[(o, _t)]
            self._fence_members.clear()
            if not end:
                self._fence_members.update(
                    self.comm.group.world_rank(r) for r in range(self.comm.size)
                )

        with rt.cond:
            self.comm._coll.run(self.comm.rank, "win_fence", None, close)
        self._charge_sync("fence")

    def _fence_epoch(self, origin: int, target_rank: int) -> "_Epoch | None":
        if origin not in self._fence_members:
            return None
        key = (origin, target_rank)
        epoch = self._epochs.get(key)
        if epoch is None:
            epoch = _Epoch(origin, target_rank, "fence")
            self._epochs[key] = epoch
        return epoch

    # -- MPI-3 extensions (gated) ---------------------------------------------------
    def _require_mpi3(self, what: str) -> None:
        if not self.mpi3:
            raise WinError(
                f"{what} requires MPI-3 RMA (create the window with mpi3=True); "
                "MPI-2 mode reproduces the constraints the paper works around"
            )

    def lock_all(self) -> None:
        """Open a shared epoch on every target at once (MPI-3)."""
        self._require_mpi3("lock_all")
        rt = self.runtime
        origin = current_proc().rank
        with rt.cond:
            san = self._san()
            if san is not None:
                san.on_lock_all(self, origin)
            if origin in self._held or origin in self._lock_all:
                raise RMASyncError("lock_all while already in an epoch")
            # acquire shared on all targets via the same FIFO discipline
            for t in range(self.comm.size):
                ls = self._locks[t]
                ls.queue.append((origin, LOCK_SHARED))

                def grantable(ls=ls) -> bool:
                    if not ls.queue or ls.queue[0][0] != origin:
                        return False
                    return ls.mode in (None, LOCK_SHARED)

                rt.wait_for(grantable)
                ls.queue.pop(0)
                ls.mode = LOCK_SHARED
                ls.holders.add(origin)
                self._epochs[(origin, t)] = _Epoch(origin, t, LOCK_SHARED)
            self._lock_all.add(origin)
            rt.notify_progress()
        self._charge_sync("lock_all")

    def unlock_all(self) -> None:
        self._require_mpi3("unlock_all")
        rt = self.runtime
        origin = current_proc().rank
        with rt.cond:
            san = self._san()
            if san is not None:
                san.on_unlock_all(self, origin)
                for t in range(self.comm.size):
                    san.on_epoch_close(self, origin, t)
            if origin not in self._lock_all:
                raise RMASyncError("unlock_all without lock_all")
            for t in range(self.comm.size):
                epoch = self._epochs.pop((origin, t))
                self._deliver_gets(epoch)
                ls = self._locks[t]
                ls.holders.discard(origin)
                if not ls.holders:
                    ls.mode = None
            self._lock_all.discard(origin)
            rt.notify_progress()
        self._charge_sync("unlock_all")

    def flush(self, target_rank: int) -> None:
        """Complete outstanding ops at the target without closing the epoch."""
        self._require_mpi3("flush")
        origin = current_proc().rank
        with self.runtime.cond:
            # death first: a killed caller's epochs were already revoked
            # by the death hook, and the completion call is where a dead
            # target's loss surfaces (mirrors _require_epoch)
            self.runtime.check_self_alive()
            if self._target_world(target_rank) in self.runtime.dead_ranks:
                raise TargetFailedError(
                    f"flush({target_rank}) on failed target of win "
                    f"{self.win_id}"
                )
            epoch = self._epochs.get((origin, target_rank))
            if epoch is None:
                san = self._san()
                if san is not None:
                    san.on_flush_no_epoch(self, origin, target_rank, "flush")
                raise RMASyncError(f"flush({target_rank}) outside an epoch")
            self._deliver_gets(epoch)
            # flushed ops no longer conflict with later ops of this epoch
            epoch.clear_accesses()
            san = self._san()
            if san is not None:
                san.on_flush(self, origin, target_rank)
            self.runtime.notify_progress()
        self._charge_sync("flush")

    def flush_all(self) -> None:
        self._require_mpi3("flush_all")
        origin = current_proc().rank
        with self.runtime.cond:
            self.runtime.check_self_alive()
            san = self._san()
            if san is not None and not any(o == origin for (o, _t) in self._epochs):
                san.on_flush_no_epoch(self, origin, -1, "flush_all")
            for (o, t), epoch in self._epochs.items():
                if o == origin:
                    self._deliver_gets(epoch)
                    epoch.clear_accesses()
                    if san is not None:
                        san.on_flush(self, origin, t)
            self.runtime.notify_progress()
        self._charge_sync("flush")

    def fetch_and_op(
        self,
        value: "int | float",
        target_rank: int,
        target_offset: int,
        datatype: dt.Datatype = dt.LONG,
        op="MPI_SUM",
    ) -> "int | float":
        """Atomic read-modify-write on one element (MPI-3 MPI_Fetch_and_op)."""
        self._require_mpi3("fetch_and_op")
        op = mpi_ops.lookup(op)
        origin = current_proc().rank
        with self.runtime.cond:
            san = self._san()
            if san is not None:
                san.on_rmw(self, origin, target_rank, target_offset, datatype)
            self._require_epoch(origin, target_rank)
            buf = self._typed_view(target_rank, target_offset, datatype, 1)
            old = buf[0].item()
            if op is not mpi_ops.NO_OP:
                src = np.array([value], dtype=datatype.base)
                op.apply(buf, src)
            self.runtime.notify_progress()
        self._charge_op("rmw", datatype.size, 1)
        return old

    def compare_and_swap(
        self,
        compare: "int | float",
        value: "int | float",
        target_rank: int,
        target_offset: int,
        datatype: dt.Datatype = dt.LONG,
    ) -> "int | float":
        """Atomic CAS on one element (MPI-3 MPI_Compare_and_swap)."""
        self._require_mpi3("compare_and_swap")
        origin = current_proc().rank
        with self.runtime.cond:
            san = self._san()
            if san is not None:
                san.on_rmw(self, origin, target_rank, target_offset, datatype)
            self._require_epoch(origin, target_rank)
            buf = self._typed_view(target_rank, target_offset, datatype, 1)
            old = buf[0].item()
            if old == compare:
                buf[0] = value
            self.runtime.notify_progress()
        self._charge_op("rmw", datatype.size, 1)
        return old

    # -- one-sided data movement ------------------------------------------------------
    def put(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_offset: int = 0,
        target_datatype: "dt.Datatype | None" = None,
        target_count: int = 1,
        origin_datatype: "dt.Datatype | None" = None,
        origin_count: int = 1,
    ) -> None:
        """One-sided put (MPI_Put); completes at unlock."""
        data = self._gather_origin(origin, origin_datatype, origin_count, target_rank)
        segmap = self._target_segmap(
            origin, target_rank, target_offset, target_datatype, target_count,
            len(data), kind="put",
        )
        with self.runtime.cond:
            o = current_proc().rank
            san = self._san()
            if san is not None:
                san.on_op(self, o, "put", None, segmap, origin, target_rank)
            epoch = self._require_epoch(o, target_rank)
            self._record_access(epoch, "put", None, segmap)
            payload = self._fault_filter("put", data)
            if payload is not None:
                self._scatter_target(target_rank, segmap, payload)
            op_index = epoch.op_count
            epoch.op_count += 1
            epoch.bytes_moved += len(data)
            self.runtime.notify_progress()
        self._charge_op("put", len(data), segmap.nsegments, op_index)

    def get(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_offset: int = 0,
        target_datatype: "dt.Datatype | None" = None,
        target_count: int = 1,
        origin_datatype: "dt.Datatype | None" = None,
        origin_count: int = 1,
    ) -> None:
        """One-sided get (MPI_Get); data lands in ``origin`` at unlock/flush."""
        origin_view = _byte_view(origin)
        if origin_datatype is None:
            origin_segmap = dt.SegmentMap(
                np.array([0], dtype=np.int64), np.array([origin_view.nbytes], dtype=np.int64)
            )
        else:
            origin_segmap = origin_datatype.segment_map(origin_count)
            if origin_segmap.nsegments:
                lo, hi = origin_segmap.bounds()
                if lo < 0 or hi > origin_view.nbytes:
                    raise ArgumentError(
                        f"get: origin datatype accesses [{lo},{hi}) outside "
                        f"the {origin_view.nbytes}-byte origin buffer"
                    )
        segmap = self._target_segmap(
            origin,
            target_rank,
            target_offset,
            target_datatype,
            target_count,
            origin_segmap.total_bytes,
            kind="get",
        )
        with self.runtime.cond:
            o = current_proc().rank
            san = self._san()
            if san is not None:
                san.on_op(self, o, "get", None, segmap, origin, target_rank)
            epoch = self._require_epoch(o, target_rank)
            self._record_access(epoch, "get", None, segmap)
            staged = self._gather_target(target_rank, segmap)
            nbytes = len(staged)
            staged = self._fault_filter("get", staged)
            if staged is not None:
                epoch.pending_gets.append((staged, origin_view, origin_segmap))
            op_index = epoch.op_count
            epoch.op_count += 1
            epoch.bytes_moved += nbytes
            self.runtime.notify_progress()
        self._charge_op("get", origin_segmap.total_bytes, segmap.nsegments, op_index)

    def accumulate(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_offset: int = 0,
        op="MPI_SUM",
        target_datatype: "dt.Datatype | None" = None,
        target_count: int = 1,
        origin_datatype: "dt.Datatype | None" = None,
        origin_count: int = 1,
    ) -> None:
        """One-sided accumulate (MPI_Accumulate) with a predefined op.

        Element type is taken from the datatype's predefined leaf type
        (or the origin array's dtype when no datatype is given).
        """
        op = mpi_ops.lookup(op)
        data = self._gather_origin(origin, origin_datatype, origin_count, target_rank)
        segmap = self._target_segmap(
            origin, target_rank, target_offset, target_datatype, target_count,
            len(data), kind="acc",
        )
        base = (
            target_datatype.base
            if target_datatype is not None
            else np.asarray(origin).dtype
        )
        if base == np.dtype("V") or base.itemsize == 0:
            raise ArgumentError("accumulate: cannot infer element type")
        with self.runtime.cond:
            o = current_proc().rank
            san = self._san()
            if san is not None:
                san.on_op(self, o, "acc", op.name, segmap, origin, target_rank)
            epoch = self._require_epoch(o, target_rank)
            self._record_access(epoch, "acc", op.name, segmap)
            payload = self._fault_filter("acc", data)
            if payload is not None:
                self._accumulate_target(target_rank, segmap, payload, base, op)
            op_index = epoch.op_count
            epoch.op_count += 1
            epoch.bytes_moved += len(data)
            self.runtime.notify_progress()
        self._charge_op("acc", len(data), segmap.nsegments, op_index)

    def rput(self, origin: np.ndarray, target_rank: int, *args: Any, **kw: Any):
        """Request-based put (MPI-3); completion of the request = local done."""
        self._require_mpi3("rput")
        self.put(origin, target_rank, *args, **kw)
        req = _DoneRequest()
        self._register_request(target_rank, req)
        return req

    def rget(self, origin: np.ndarray, target_rank: int, **kw: Any):
        """Request-based get (MPI-3): data is delivered at request wait."""
        self._require_mpi3("rget")
        self.get(origin, target_rank, **kw)
        o = current_proc().rank
        win = self

        class _GetRequest(_DoneRequest):
            __slots__ = ()

            def wait(self):
                with win.runtime.cond:
                    epoch = win._epochs.get((o, target_rank))
                    if epoch is not None:
                        win._deliver_gets(epoch)
                return super().wait()

            def test(self):
                self.wait()
                return True, None

        req = _GetRequest()
        self._register_request(target_rank, req)
        return req

    def _register_request(self, target_rank: int, req: _DoneRequest) -> None:
        """Attach a request to its epoch for completion auditing.

        Only done when a sanitizer is installed: the window itself never
        reads ``pending_reqs``, so plain runs keep zero bookkeeping.
        """
        if self._san() is None:
            return
        origin = current_proc().rank
        with self.runtime.cond:
            epoch = self._epochs.get((origin, target_rank))
            if epoch is not None:
                epoch.pending_reqs.append(req)

    # -- direct local access ------------------------------------------------------------
    def local_view(self, dtype: "np.dtype | str" = np.uint8) -> np.ndarray:
        """Direct load/store view of the calling rank's exposed memory.

        Under strict MPI-2 semantics this is only safe inside an
        *exclusive* self-lock epoch (§III, §V-E); violating that raises.
        ARMCI's ``access_begin``/``access_end`` extension (§V-E) wraps
        exactly this discipline.
        """
        me = self.comm.rank
        origin = current_proc().rank
        san = self._san()
        if self.strict or san is not None:
            with self.runtime.cond:
                epoch = self._epochs.get((origin, me))
                ok = epoch is not None and epoch.mode == LOCK_EXCLUSIVE
                if not ok and origin in self._lock_all:
                    ok = True  # MPI-3 unified-model relaxation
                if not ok:
                    if san is not None:
                        san.on_bare_local_access(self, origin)
                    if self.strict:
                        raise RMASyncError(
                            "direct local access requires an exclusive self-lock "
                            "(use ARMCI access_begin/access_end)"
                        )
        return self._buffers[me].view(np.dtype(dtype))

    def exposed_buffer(self, target_rank: int) -> np.ndarray:
        """The raw byte buffer exposed by ``target_rank`` (for GMR bookkeeping).

        This does *not* grant access rights; it exists so upper layers can
        compute address ranges (e.g. to detect that a user's local buffer
        lies inside a window, §V-E.1).
        """
        self._check_target(target_rank)
        return self._buffers[target_rank]

    # -- internals ----------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._freed:
            raise WinError("operation on a freed window")
        if self.comm.revoked:
            raise CommRevokedError(
                f"RMA operation on win {self.win_id}: its communicator "
                "was revoked"
            )

    def _check_target(self, target_rank: int) -> None:
        if not 0 <= target_rank < self.comm.size:
            raise RMARangeError(
                f"target rank {target_rank} not in [0, {self.comm.size})"
            )

    def _typed_view(
        self, target_rank: int, target_offset: int, datatype: dt.Datatype, count: int
    ) -> np.ndarray:
        """Typed element view into a target buffer (atomic-op helper)."""
        disp = target_offset * self._disp_units[target_rank]
        nbytes = datatype.size * count
        buf = self._buffers[target_rank]
        if disp < 0 or disp + nbytes > buf.nbytes:
            san = self._san()
            if san is not None:
                san.on_range(
                    self, current_proc().rank, "rmw",
                    disp, disp + nbytes, buf.nbytes, target_rank,
                )
            raise RMARangeError(
                f"atomic access [{disp},{disp + nbytes}) outside window of "
                f"{buf.nbytes}B at target {target_rank}"
            )
        return buf[disp : disp + nbytes].view(datatype.base)

    def _require_epoch(self, origin_world: int, target_rank: int) -> _Epoch:
        self.runtime.check_self_alive()
        if self._target_world(target_rank) in self.runtime.dead_ranks:
            raise TargetFailedError(
                f"RMA operation on failed target rank {target_rank} "
                f"of win {self.win_id}"
            )
        epoch = self._epochs.get((origin_world, target_rank))
        if epoch is None:
            epoch = self._fence_epoch(origin_world, target_rank)
        if epoch is None:
            raise RMASyncError(
                f"RMA operation on target {target_rank} outside an access epoch"
            )
        return epoch

    def _target_segmap(
        self,
        origin: np.ndarray,
        target_rank: int,
        target_offset: int,
        target_datatype: "dt.Datatype | None",
        target_count: int,
        origin_nbytes: int,
        kind: str = "op",
    ) -> dt.SegmentMap:
        self._check_target(target_rank)
        disp = target_offset * self._disp_units[target_rank]
        if target_datatype is None:
            segmap = dt.SegmentMap(
                np.array([disp], dtype=np.int64),
                np.array([origin_nbytes], dtype=np.int64),
            )
        else:
            segmap = target_datatype.segment_map(target_count).shifted(disp)
            if segmap.total_bytes != origin_nbytes:
                raise ArgumentError(
                    f"origin data {origin_nbytes}B != target datatype "
                    f"{segmap.total_bytes}B"
                )
        buf = self._buffers[target_rank]
        if segmap.nsegments:
            lo, hi = segmap.bounds()
            if lo < 0 or hi > buf.nbytes:
                san = self._san()
                if san is not None:
                    san.on_range(
                        self, current_proc().rank, kind,
                        int(lo), int(hi), buf.nbytes, target_rank,
                    )
                raise RMARangeError(
                    f"access [{lo},{hi}) outside window of {buf.nbytes}B "
                    f"at target {target_rank}"
                )
        return segmap

    def _gather_origin(
        self,
        origin: np.ndarray,
        origin_datatype: "dt.Datatype | None",
        count: int,
        target_rank: "int | None" = None,
    ) -> np.ndarray:
        """Serialise the origin contribution; zero-copy when possible.

        Contiguous origins (no datatype, or a single-segment one) are
        returned as views — the data is consumed before the call returns,
        so no copy is needed *unless* the origin aliases the target's
        exposed memory, where the scatter/accumulate loop could otherwise
        read bytes it already wrote.
        """
        view = _byte_view(origin)
        if origin_datatype is None:
            data = view
        else:
            data = origin_datatype.pack(view, count, copy=False)
        if target_rank is not None and data.base is not None:
            self._check_target(target_rank)
            if np.may_share_memory(data, self._buffers[target_rank]):
                data = data.copy()
        return data

    def _scatter_target(self, target_rank: int, segmap: dt.SegmentMap, data: np.ndarray) -> None:
        segmap.scatter(self._buffers[target_rank], data)

    def _gather_target(self, target_rank: int, segmap: dt.SegmentMap) -> np.ndarray:
        # staged until unlock, so the gather must copy (gather() copies
        # for every multi-segment map; copy=True forces it for one segment)
        return segmap.gather(self._buffers[target_rank], copy=True)

    def _accumulate_target(
        self,
        target_rank: int,
        segmap: dt.SegmentMap,
        data: np.ndarray,
        base: np.dtype,
        op: mpi_ops.Op,
    ) -> None:
        buf = self._buffers[target_rank]
        itemsize = base.itemsize
        if itemsize > 1 and (
            np.any(segmap.offsets % itemsize) or np.any(segmap.lengths % itemsize)
        ):
            pos = 0
            for off, ln in zip(segmap.offsets.tolist(), segmap.lengths.tolist()):
                if off % itemsize or ln % itemsize:
                    raise ArgumentError(
                        f"accumulate segment [{off},{off + ln}) not aligned to "
                        f"{base} elements"
                    )
                pos += ln
        if segmap.nsegments == 1:
            off = int(segmap.offsets[0])
            ln = int(segmap.lengths[0])
            op.apply(buf[off : off + ln].view(base), data.view(base))
            return
        if not segmap.overlaps_self():
            # gather-modify-scatter through the flat index: safe because
            # no target byte appears twice in the index
            idx = segmap.flat_index()
            tview = buf[idx]
            op.apply(tview.view(base), data.view(base))
            buf[idx] = tview
            return
        # overlapping same-op accumulates must apply in traversal order
        pos = 0
        for off, ln in zip(segmap.offsets.tolist(), segmap.lengths.tolist()):
            tview = buf[off : off + ln].view(base)
            sview = data[pos : pos + ln].view(base)
            op.apply(tview, sview)
            pos += ln

    def _record_access(
        self, epoch: _Epoch, kind: str, opname: "str | None", segmap: dt.SegmentMap
    ) -> None:
        if not self.strict:
            return
        if segmap.nsegments <= 1:
            # contiguous fast path: nothing to sort
            new_off, new_len = segmap.offsets, segmap.lengths
        else:
            order = np.argsort(segmap.offsets, kind="stable")
            new_off = segmap.offsets[order]
            new_len = segmap.lengths[order]
        if segmap.overlaps_self() and kind != "acc":
            raise RMAConflictError(
                f"{kind} with self-overlapping target segments within one operation"
            )
        # same-epoch conflicts
        hit = epoch.conflict_class(kind, opname, new_off, new_len)
        if hit is not None:
            raise RMAConflictError(
                f"{kind} conflicts with earlier {hit} in the same epoch "
                f"(origin {epoch.origin} -> target {epoch.target})"
            )
        # cross-origin conflicts: only possible when the target lock is shared
        for (o, t), other in self._epochs.items():
            if t != epoch.target or o == epoch.origin:
                continue
            hit = other.conflict_class(kind, opname, new_off, new_len)
            if hit is not None:
                raise RMAConflictError(
                    f"{kind} by origin {epoch.origin} conflicts with "
                    f"concurrent {hit} by origin {o} on target {t} "
                    "(both hold shared locks)"
                )
        epoch.record(kind, opname, new_off, new_len)

    def _deliver_gets(self, epoch: _Epoch) -> None:
        for staged, user_view, origin_segmap in epoch.pending_gets:
            origin_segmap.scatter(user_view, staged)
        epoch.pending_gets.clear()

    # -- modeled time --------------------------------------------------------------------
    def _charge_sync(self, kind: str) -> None:
        if self.runtime.timing is not None:
            cost = self.runtime.timing.rma_sync_cost(kind)
            current_proc().clock.advance(cost, kind=f"rma:{kind}")
        self.runtime.fuzz_point(f"rma:{kind}")

    def _charge_op(self, kind: str, nbytes: int, nsegments: int, op_index: int = 0) -> None:
        if self.runtime.timing is not None:
            cost = self.runtime.timing.rma_op_cost(kind, nbytes, nsegments, op_index)
            current_proc().clock.advance(cost, kind=f"rma:{kind}", nbytes=nbytes)
        self.runtime.fuzz_point(f"rma:{kind}")


class _DoneRequest:
    """Trivially complete request for eager request-based ops.

    ``completed`` records whether the user ever synchronised on the
    request; the sanitizer reads it to flag requests still pending when
    their epoch closes (§VIII-B completion discipline,
    ``ViolationKind.REQUEST``).
    """

    __slots__ = ("completed",)

    def __init__(self) -> None:
        self.completed = False

    def test(self) -> tuple[bool, None]:
        self.completed = True
        return True, None

    def wait(self) -> None:
        self.completed = True
        return None


def _byte_view(arr: np.ndarray) -> np.ndarray:
    """Flat uint8 view of an array (must be contiguous)."""
    arr = np.asarray(arr)
    if not arr.flags["C_CONTIGUOUS"]:
        raise ArgumentError(
            "RMA buffers must be C-contiguous; pass np.ascontiguousarray(...)"
        )
    return arr.reshape(-1).view(np.uint8)


def _local_exposure_view(local: "np.ndarray | None") -> np.ndarray:
    """Validate and flatten a rank's exposed array for ``Win.create``.

    Shared by the backends so both enforce the same argument contract.
    """
    if local is None:
        return np.empty(0, dtype=np.uint8)
    if not isinstance(local, np.ndarray):
        raise ArgumentError("Win.create: local buffer must be a numpy array")
    return local.reshape(-1).view(np.uint8)
