"""NWChem CCSD(T) proxy: the §VII application study, reproducible.

Two modes, per DESIGN.md:

* **functional** (``CcsdDriver``, ``triples_energy``): runs the real
  tiled-contraction workload over Global Arrays on a handful of
  simulated ranks, validated against the dense serial reference;
* **analytic** (``model``): composes platform path-model costs with the
  w5 workload's operation counts to regenerate the Fig. 6 scaling
  curves at real core counts.
"""

from .ccsd import CcsdDriver, CcsdProblem, tiled_matmul
from .model import (
    W5_NO,
    W5_NV,
    WorkloadModel,
    ccsd_time,
    fig6_series,
    stack_for,
    triples_time,
)
from .scf import ScfDriver, ScfProblem, core_hamiltonian, scf_dense
from .reference import (
    coupling_matrix,
    denominator_matrix,
    orbital_energies,
    ring_ccd_dense,
    triples_energy_dense,
)
from .tiles import Tile, TiledSpace
from .triples import triples_energy

__all__ = [
    "CcsdDriver",
    "CcsdProblem",
    "ScfDriver",
    "ScfProblem",
    "core_hamiltonian",
    "scf_dense",
    "Tile",
    "TiledSpace",
    "W5_NO",
    "W5_NV",
    "WorkloadModel",
    "ccsd_time",
    "coupling_matrix",
    "denominator_matrix",
    "fig6_series",
    "orbital_energies",
    "ring_ccd_dense",
    "stack_for",
    "tiled_matmul",
    "triples_energy",
    "triples_energy_dense",
    "triples_time",
]
