"""Distributed CCSD proxy: tiled contractions over Global Arrays.

This is the functional heart of the §VII application study: the same
op mix as NWChem's CCSD — NXTVAL-scheduled tile tasks, each performing
GA gets of two panels, a local DGEMM, and a GA accumulate — running
unchanged over ARMCI-MPI or native ARMCI.  Energies are validated to
machine precision against :mod:`repro.nwchem.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ga import GlobalArray, SharedCounter, TaskPool, fill, sum_all, zero
from ..mpi.errors import ArgumentError
from .reference import coupling_matrix, denominator_matrix
from .tiles import TiledSpace


@dataclass(frozen=True)
class CcsdProblem:
    """Proxy problem definition (w5 analogue: no=20, nv=435 at full scale)."""

    no: int
    nv: int
    tile: int
    iterations: int = 10
    strength: float = 0.05
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.no < 1 or self.nv < 1 or self.tile < 1:
            raise ArgumentError(f"bad CCSD problem {self}")

    @property
    def n(self) -> int:
        """Composite (occ x virt) dimension."""
        return self.no * self.nv

    @property
    def space(self) -> TiledSpace:
        return TiledSpace(self.n, self.tile)


def tiled_matmul(
    runtime,
    a: GlobalArray,
    b: GlobalArray,
    c: GlobalArray,
    space: TiledSpace,
    counter: "SharedCounter",
    alpha: float = 1.0,
) -> None:
    """``C += alpha * A @ B`` with NXTVAL-scheduled tile tasks.

    One task per C tile (I, J): fetch A's row panel and B's column panel
    tile-by-tile over K, DGEMM locally, accumulate the block — the TCE
    inner loop.  ``C`` must already hold its additive base (zero it or
    leave prior contents to be accumulated onto).
    """
    n = space.extent
    ntiles = space.ntiles
    pool = TaskPool(runtime, ntiles * ntiles, counter)
    for task in pool.tasks():
        ti = space[task // ntiles]
        tj = space[task % ntiles]
        block = np.zeros((ti.size, tj.size))
        for tk in space:
            pa = a.get((ti.lo, tk.lo), (ti.hi, tk.hi))
            pb = b.get((tk.lo, tj.lo), (tk.hi, tj.hi))
            block += pa @ pb
        c.acc((ti.lo, tj.lo), (ti.hi, tj.hi), block, alpha=alpha)
    c.sync()


class CcsdDriver:
    """Iterative distributed ring-CCD solver (the CCSD stand-in)."""

    def __init__(self, runtime, problem: CcsdProblem):
        self.runtime = runtime
        self.problem = problem
        n = problem.n
        self.v = GlobalArray.create(runtime, (n, n), "f8", name="V")
        self.t = GlobalArray.create(runtime, (n, n), "f8", name="T2")
        self.w = GlobalArray.create(runtime, (n, n), "f8", name="W")
        self.rhs = GlobalArray.create(runtime, (n, n), "f8", name="RHS")
        self.counter = SharedCounter(runtime)
        self._load_integrals()

    def _load_integrals(self) -> None:
        """Initialise V (replicated deterministic build, stored once)."""
        p = self.problem
        if self.runtime.my_id == 0:
            vmat = coupling_matrix(p.no, p.nv, p.strength, p.seed)
            self.v.put((0, 0), (p.n, p.n), vmat)
        zero(self.t)
        self.v.sync()

    def iterate(self) -> float:
        """One amplitude update; returns the correlation energy."""
        p = self.problem
        space = p.space
        # W = V @ T        (first contraction: NXTVAL + get/dgemm/acc)
        zero(self.w)
        self.counter.reset()
        tiled_matmul(self.runtime, self.v, self.t, self.w, space, self.counter)
        # RHS = V + W + W^T + W @ T
        self._assemble_rhs()
        self.counter.reset()
        tiled_matmul(self.runtime, self.w, self.t, self.rhs, space, self.counter)
        # T = RHS / D (owner-computes) and E = sum(V * T)
        return self._update_amplitudes()

    def _assemble_rhs(self) -> None:
        """RHS = V + W + W^T on owner blocks (gets for the transpose part)."""
        block = self.rhs.distribution()
        self.rhs.sync()
        if not block.empty:
            (ilo, jlo), (ihi, jhi) = block.lo, block.hi
            v_blk = self.v.get(block.lo, block.hi)
            w_blk = self.w.get(block.lo, block.hi)
            wt_blk = self.w.get((jlo, ilo), (jhi, ihi)).T
            view = self.rhs.access()
            view[...] = v_blk + w_blk + wt_blk
            self.rhs.release()
        self.rhs.sync()

    def _update_amplitudes(self) -> float:
        p = self.problem
        block = self.t.distribution()
        local_e = 0.0
        self.t.sync()
        if not block.empty:
            (ilo, jlo), (ihi, jhi) = block.lo, block.hi
            rhs_blk = self.rhs.get(block.lo, block.hi)
            d = denominator_matrix(p.no, p.nv)[ilo:ihi, jlo:jhi]
            v_blk = self.v.get(block.lo, block.hi)
            view = self.t.access()
            view[...] = rhs_blk / d
            local_e = float(np.sum(v_blk * view))
            self.t.release()
        total = self.runtime.world.allreduce(np.array([local_e]))
        self.t.sync()
        return float(total[0])

    def solve(self) -> tuple[float, list[float]]:
        """Run the configured number of iterations; return (E, trace)."""
        trace = [self.iterate() for _ in range(self.problem.iterations)]
        return trace[-1], trace

    def amplitudes(self) -> np.ndarray:
        """Gather the full T matrix (small problems / validation only)."""
        n = self.problem.n
        return self.t.get((0, 0), (n, n))

    def destroy(self) -> None:
        self.counter.destroy()
        for ga in (self.rhs, self.w, self.t, self.v):
            ga.destroy()
