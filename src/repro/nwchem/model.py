"""Analytic NWChem scaling model — regenerates the Figure 6 curves.

Thread-simulating thousands of ranks is infeasible, so the application
study at scale composes *model costs* (the same PathModel instances the
micro-benchmarks use) with the proxy workload's operation counts:

    T(p) =  flops / (p_eff * rate)                      # local DGEMM
          + (n_tasks / p) * t_task_comm * C(p)          # gets + accs
          + NXTVAL terms                                # shared counter
          + per-iteration synchronisation               # GA_Sync
          + straggler term                              # load imbalance

``t_task_comm`` is built from the platform's native or MPI path model
for the block transfers one TCE task performs, so Fig. 6 *inherits* the
calibration of Figs. 3/4 instead of being fit independently.  Two
contention mechanisms sit on top:

* ``mpi_epoch_contention`` — ARMCI-MPI issues every operation in its
  own **exclusive** epoch (§V-C), so concurrent accessors of a hot
  target serialise where native RDMA proceeds concurrently.  This is
  the dominant reason the application-level gap on InfiniBand (~2x,
  §VII-D) exceeds the bandwidth-level gap of Fig. 3.
* ``native_contention`` — per-core degradation of the *native* path;
  nonzero only for the XE6's development-release ARMCI, whose CCSD
  worsens and (T) flattens at ~6k cores (Fig. 6 bottom-right).

Workload: the paper's w5 CCSD(T) (§VII-C) — ``no=20`` correlated
occupied and ``nv=435`` virtual orbitals, tiled TCE-style with occupied
tiles ``t_o`` and virtual tiles ``t_v``; tasks are 4-index block
contractions drawing from the NXTVAL counter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..mpi.progress import MPI_ASYNC, NATIVE_CHT, ProgressConfig
from ..simtime.netmodel import PathModel
from ..simtime.platforms import Platform

#: the paper's w5 problem (§VII-C): 20 correlated occupied, 435 virtual
W5_NO = 20
W5_NV = 435


@dataclass(frozen=True)
class WorkloadModel:
    """Operation counts of the TCE-tiled CCSD(T) on a w5-like problem.

    ``flop_efficiency`` is the fraction of peak DGEMM rate the tiled
    kernels sustain (small blocks and assembly overheads keep NWChem
    well under vendor-DGEMM peak).
    """

    no: int = W5_NO
    nv: int = W5_NV
    t_o: int = 7
    t_v: int = 29
    ccsd_iterations: int = 14
    flop_efficiency: float = 0.40

    @property
    def o_tiles(self) -> int:
        return math.ceil(self.no / self.t_o)

    @property
    def v_tiles(self) -> int:
        return math.ceil(self.nv / self.t_v)

    # -- CCSD ------------------------------------------------------------------
    @property
    def ccsd_flops(self) -> float:
        """O(no^2 nv^4): the spin-free CCSD cost the paper quotes (§II-A)."""
        return self.ccsd_iterations * 1.3 * (self.no**2) * (self.nv**4)

    @property
    def ccsd_tasks(self) -> int:
        """4-index block contractions: T2 blocks x virtual tile pairs."""
        t2_blocks = self.o_tiles**2 * self.v_tiles**2
        return self.ccsd_iterations * t2_blocks * self.v_tiles**2

    def ccsd_task_transfers(self) -> list[tuple[str, int, int]]:
        """(kind, bytes, segments) per CCSD task.

        Each task fetches two 4-index operand blocks and accumulates one
        result block; a block is (t_o^2 x t_v^2) doubles fetched as a
        strided patch with t_o^2*t_v row segments.
        """
        block_bytes = (self.t_o**2) * (self.t_v**2) * 8
        segments = (self.t_o**2) * self.t_v
        return [
            ("get", block_bytes, segments),
            ("get", block_bytes, segments),
            ("acc", block_bytes, segments),
        ]

    # -- (T) -------------------------------------------------------------------
    @property
    def t_flops(self) -> float:
        """O(no^3 nv^4): the perturbative triples cost."""
        return 1.1 * (self.no**3) * (self.nv**4)

    @property
    def t_tasks(self) -> int:
        """(i,j,k | a) tile tuples with ~6-fold permutational reduction."""
        return max((self.o_tiles**3) * (self.v_tiles**4) // 6, 1)

    def t_task_transfers(self) -> list[tuple[str, int, int]]:
        """(T) tasks are get-only (no accumulate).

        Each task re-fetches T2 and integral blocks across half of one
        virtual-tile-pair loop (~v_tiles^2 / 2 block gets); (T) has no
        write-back phase, which is why it scales further than CCSD on
        the same stack (Fig. 6) and why its ARMCI-MPI cost is pure get
        traffic under exclusive epochs.
        """
        block_bytes = (self.t_o**2) * (self.t_v**2) * 8
        segments = (self.t_o**2) * self.t_v
        ngets = max(self.v_tiles**2 // 2, 1)
        return [("get", block_bytes, segments)] * ngets


@dataclass(frozen=True)
class StackModel:
    """One software stack (native ARMCI or ARMCI-MPI) on one platform."""

    path: PathModel
    progress: ProgressConfig
    contention_per_core: float
    epoch_contention: float
    uses_epochs: bool  # ARMCI-MPI pays lock/unlock per operation (§V-F)

    def op_time(self, kind: str, nbytes: int, nsegments: int) -> float:
        t = self.path.xfer_time(kind, nbytes, max(nsegments, 1))
        if self.uses_epochs:
            t += self.path.sync_time("lock") + self.path.sync_time("unlock")
        return t

    def task_comm_time(self, transfers: "list[tuple[str, int, int]]") -> float:
        return sum(self.op_time(k, b, s) for k, b, s in transfers)

    def rmw_time(self) -> float:
        """NXTVAL latency: the mutex-based RMW costs four epochs for
        ARMCI-MPI (§V-D: mutex lock + read + write + mutex unlock); one
        served round-trip natively."""
        base = self.path.xfer_time("rmw", 8)
        if self.uses_epochs:
            epoch = self.path.sync_time("lock") + self.path.sync_time("unlock")
            return 4 * (base + epoch)
        return base

    def comm_inflation(self, ncores: int) -> float:
        """Total contention multiplier at ``ncores``.

        The per-core term is quadratic in ``c * p``: pairwise interference
        between accessors grows faster than linearly once the runtime's
        flow control saturates — the behaviour that makes the XE6's
        development-release native ARMCI *worsen* (not just flatten)
        between 4,464 and 5,952 cores in Fig. 6.
        """
        cp = self.contention_per_core * ncores
        return self.epoch_contention * (1.0 + cp + cp * cp)


def stack_for(
    platform: Platform, flavor: str, progress: "ProgressConfig | None" = None
) -> StackModel:
    """Build the native or MPI stack model of a platform.

    ``progress`` overrides the default progress mechanism (native: CHT;
    MPI: interrupt-driven async).  Passing
    :data:`~repro.mpi.progress.MPI_POLLING` models an MPI library with
    asynchronous progress disabled — the runtime option §IV-A notes some
    implementers hide it behind: remote operations stall until the busy
    target re-enters the MPI library, inflating communication latency.
    """
    if flavor == "native":
        return StackModel(
            path=platform.native,
            progress=progress or NATIVE_CHT,
            contention_per_core=platform.native_contention,
            epoch_contention=1.0,
            uses_epochs=False,
        )
    if flavor == "mpi":
        return StackModel(
            path=platform.mpi,
            progress=progress or MPI_ASYNC,
            contention_per_core=platform.mpi_contention,
            epoch_contention=platform.mpi_epoch_contention,
            uses_epochs=True,
        )
    raise ValueError(f"unknown stack flavor {flavor!r}")


def ccsd_time(
    platform: Platform,
    flavor: str,
    ncores: int,
    workload: "WorkloadModel | None" = None,
    progress: "ProgressConfig | None" = None,
) -> float:
    """Modeled CCSD wall time (seconds) on ``ncores``."""
    w = workload or WorkloadModel()
    stack = stack_for(platform, flavor, progress)
    return _compose(
        platform, stack, ncores,
        flops=w.ccsd_flops,
        ntasks=w.ccsd_tasks,
        t_task_comm=stack.task_comm_time(w.ccsd_task_transfers()),
        nsyncs=6 * w.ccsd_iterations,
        efficiency=w.flop_efficiency,
    )


def triples_time(
    platform: Platform,
    flavor: str,
    ncores: int,
    workload: "WorkloadModel | None" = None,
    progress: "ProgressConfig | None" = None,
) -> float:
    """Modeled (T) wall time (seconds) on ``ncores``."""
    w = workload or WorkloadModel()
    stack = stack_for(platform, flavor, progress)
    return _compose(
        platform, stack, ncores,
        flops=w.t_flops,
        ntasks=w.t_tasks,
        t_task_comm=stack.task_comm_time(w.t_task_transfers()),
        nsyncs=4,
        efficiency=w.flop_efficiency,
    )


def _compose(
    platform: Platform,
    stack: StackModel,
    ncores: int,
    flops: float,
    ntasks: int,
    t_task_comm: float,
    nsyncs: int,
    efficiency: float,
) -> float:
    if ncores < 1:
        raise ValueError(f"ncores must be positive, got {ncores}")
    rate = platform.core_gflops * 1e9 * efficiency
    p_eff = ncores * (1.0 - stack.progress.core_fraction_lost)
    t_flop = flops / (p_eff * rate)
    # polling-only progress stalls remote ops on busy targets (§IV-A)
    delay = stack.progress.target_delay_factor
    t_comm = (ntasks / ncores) * t_task_comm * stack.comm_inflation(ncores) * delay
    t_nxtval = (ntasks / ncores) * stack.rmw_time() * delay
    # the counter host serialises all draws: a floor independent of p
    t_nxtval = max(t_nxtval, ntasks * stack.path.latency)
    t_sync = nsyncs * stack.path.collective_time("barrier", 8, ncores)
    # load imbalance: last-task straggle ~ one task's compute + comm
    t_straggle = flops / max(ntasks, 1) / rate + t_task_comm
    return t_flop + t_comm + t_nxtval + t_sync + t_straggle


def fig6_series(
    platform: Platform,
    core_counts: "list[int]",
    kind: str = "ccsd",
    workload: "WorkloadModel | None" = None,
) -> dict[str, list[float]]:
    """Native and MPI time series for one platform (minutes, as in Fig. 6)."""
    fn = ccsd_time if kind == "ccsd" else triples_time
    return {
        "cores": list(core_counts),
        "native_min": [fn(platform, "native", p, workload) / 60 for p in core_counts],
        "mpi_min": [fn(platform, "mpi", p, workload) / 60 for p in core_counts],
    }
