"""Serial dense reference for the CCSD(T) proxy — the correctness oracle.

The proxy's "chemistry" is a ring-CCD-like model chosen because (a) its
distributed implementation generates exactly the GA get / DGEMM /
accumulate / NXTVAL traffic of NWChem's CCSD, and (b) it has a compact
dense serial form that the distributed runs must reproduce to machine
precision.

Model
-----
Composite index ``p = (i, a)`` over occupied×virtual pairs (dimension
``no*nv``).  With a symmetric coupling matrix ``V`` and (negative)
denominators ``D[p,q] = e_i + e_j - e_a - e_b``:

* amplitude iteration:  ``T <- (V + V@T + T@V + T@V@T) / D``
* correlation energy:   ``E = sum(V * T)``

Starting from ``T = 0``; with the default weak coupling this converges
geometrically.  The (T)-like correction is a closed-form contraction
over tile triples of the converged ``T`` (see :func:`triples_energy_dense`).
"""

from __future__ import annotations

import numpy as np


def orbital_energies(no: int, nv: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic occupied/virtual orbital energies (HF-gap shaped)."""
    e_occ = -1.0 - 0.10 * np.arange(no)
    e_virt = 1.0 + 0.05 * np.arange(nv)
    return e_occ, e_virt


def denominator_matrix(no: int, nv: int) -> np.ndarray:
    """``D[(i,a),(j,b)] = e_i + e_j - e_a - e_b`` (all entries < 0)."""
    e_occ, e_virt = orbital_energies(no, nv)
    d_ia = e_occ[:, None] - e_virt[None, :]  # (no, nv), negative
    flat = d_ia.reshape(-1)
    return flat[:, None] + flat[None, :]


def coupling_matrix(no: int, nv: int, strength: float = 0.05, seed: int = 1234) -> np.ndarray:
    """Deterministic symmetric 'integral' matrix V with weak coupling."""
    n = no * nv
    rng = np.random.default_rng(seed)
    v = rng.standard_normal((n, n))
    v = strength * 0.5 * (v + v.T) / np.sqrt(n)
    return v


def ring_ccd_dense(
    no: int,
    nv: int,
    iterations: int = 10,
    strength: float = 0.05,
    seed: int = 1234,
) -> tuple[float, np.ndarray, list[float]]:
    """Serial reference: returns (energy, converged T, per-iteration energies)."""
    v = coupling_matrix(no, nv, strength, seed)
    d = denominator_matrix(no, nv)
    t = np.zeros_like(v)
    energies = []
    for _ in range(iterations):
        w = v @ t
        rhs = v + w + w.T + w @ t
        t = rhs / d
        energies.append(float(np.sum(v * t)))
    return energies[-1], t, energies


def triples_energy_dense(
    t: np.ndarray, v: np.ndarray, no: int, nv: int, tile: int
) -> float:
    """Dense form of the proxy (T) correction.

    Defined directly over the tile decomposition so the distributed
    task-pool version computes literally the same sum: for every ordered
    tile triple (A, B, C) of the composite index space,

        contribution = sum( (T[A,B] @ V[B,C]) * T[A,C] ) / (1 + |A||B||C|)

    The per-triple normaliser keeps the sum bounded; physics is not the
    point — the op mix (two gets + one local GEMM + scalar reduce per
    task, O(ntiles^3) tasks) is.
    """
    from .tiles import TiledSpace

    space = TiledSpace(no * nv, tile)
    total = 0.0
    for ta in space:
        for tb in space:
            for tc in space:
                tab = t[ta.lo : ta.hi, tb.lo : tb.hi]
                vbc = v[tb.lo : tb.hi, tc.lo : tc.hi]
                tac = t[ta.lo : ta.hi, tc.lo : tc.hi]
                contrib = float(np.sum((tab @ vbc) * tac))
                total += contrib / (1.0 + ta.size * tb.size * tc.size)
    return total
