"""SCF (Hartree-Fock-like) proxy: the stage NWChem runs before CCSD.

NWChem's SCF builds a Fock-like matrix from the density via distributed
two-electron contributions, diagonalises (replicated eigensolve — the
``ga_diag_seq`` pattern), reassembles the density from the occupied
eigenvectors, and iterates to self-consistency.  The op mix — GA dgemm,
accumulate-heavy matrix builds, replicated small linear algebra — is the
precursor workload to the paper's CCSD(T) study and broadens the proxy
application beyond a single kernel.

The model Hamiltonian is a deterministic symmetric "core" matrix plus a
density-dependent mean-field term ``G[D] = g * (tr(D) * I - 0.5 * D)``,
which keeps the fixed point well-defined and cheap to verify against a
dense serial reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ga import GlobalArray, dgemm, zero
from ..mpi.errors import ArgumentError


@dataclass(frozen=True)
class ScfProblem:
    """Closed-shell model SCF problem."""

    nbasis: int
    nocc: int
    g: float = 0.15  # mean-field coupling strength
    iterations: int = 20
    seed: int = 77

    def __post_init__(self) -> None:
        if not 0 < self.nocc <= self.nbasis:
            raise ArgumentError(
                f"need 0 < nocc <= nbasis, got {self.nocc}/{self.nbasis}"
            )


def core_hamiltonian(problem: ScfProblem) -> np.ndarray:
    """Deterministic symmetric core matrix with a clear spectral gap."""
    n = problem.nbasis
    rng = np.random.default_rng(problem.seed)
    h = 0.1 * rng.standard_normal((n, n))
    h = 0.5 * (h + h.T)
    h += np.diag(np.linspace(-2.0, 2.0, n))
    return h


def scf_dense(problem: ScfProblem) -> tuple[float, np.ndarray, list[float]]:
    """Serial reference SCF; returns (energy, density, per-iter energies)."""
    h = core_hamiltonian(problem)
    n, no, g = problem.nbasis, problem.nocc, problem.g
    d = np.zeros((n, n))
    energies = []
    for _ in range(problem.iterations):
        f = h + g * (np.trace(d) * np.eye(n) - 0.5 * d)
        w, c = np.linalg.eigh(f)
        occ = c[:, :no]
        d = 2.0 * occ @ occ.T
        energies.append(float(np.sum(d * (h + f)) / 2.0))
    return energies[-1], d, energies


class ScfDriver:
    """Distributed SCF over Global Arrays (runs on either ARMCI stack).

    The Fock build and density reassembly use GA operations (the
    communication-bearing steps); the small ``nbasis x nbasis``
    eigensolve is replicated on every process, exactly NWChem's
    ``ga_diag_seq`` strategy for modest basis sizes.
    """

    def __init__(self, runtime, problem: ScfProblem):
        self.runtime = runtime
        self.problem = problem
        n = problem.nbasis
        self.h = GlobalArray.create(runtime, (n, n), "f8", name="Hcore")
        self.d = GlobalArray.create(runtime, (n, n), "f8", name="D")
        self.f = GlobalArray.create(runtime, (n, n), "f8", name="F")
        self.c_occ = GlobalArray.create(runtime, (n, problem.nocc), "f8", name="Cocc")
        if runtime.my_id == 0:
            self.h.put((0, 0), (n, n), core_hamiltonian(problem))
        zero(self.d)
        self.h.sync()

    def _build_fock(self) -> float:
        """F = H + g*(tr(D) I - 0.5 D), owner-computes; returns tr(D)."""
        n = self.problem.nbasis
        block = self.f.distribution()
        # global trace: local diagonal part + allreduce
        local_tr = 0.0
        if not block.empty:
            view = self.d.access()
            (ilo, jlo), (ihi, jhi) = block.lo, block.hi
            for i in range(max(ilo, jlo), min(ihi, jhi)):
                local_tr += float(view[i - ilo, i - jlo])
            self.d.release()
        trace = float(self.runtime.world.allreduce(np.array([local_tr]))[0])
        self.f.sync()
        if not block.empty:
            (ilo, jlo), (ihi, jhi) = block.lo, block.hi
            hb = self.h.get(block.lo, block.hi)
            db = self.d.get(block.lo, block.hi)
            eye = np.zeros(block.shape)
            for i in range(ilo, ihi):
                j = i - jlo
                if 0 <= j < jhi - jlo:
                    eye[i - ilo, j] = 1.0
            view = self.f.access()
            view[...] = hb + self.problem.g * (trace * eye - 0.5 * db)
            self.f.release()
        self.f.sync()
        return trace

    def iterate(self) -> float:
        """One SCF cycle; returns the current energy."""
        n, no = self.problem.nbasis, self.problem.nocc
        self._build_fock()
        # replicated eigensolve of the (small) Fock matrix — ga_diag_seq
        f_full = self.f.get((0, 0), (n, n))
        _, c = np.linalg.eigh(f_full)
        if self.runtime.my_id == 0:
            self.c_occ.put((0, 0), (n, no), np.ascontiguousarray(c[:, :no]))
        self.c_occ.sync()
        # D = 2 C_occ C_occ^T via distributed dgemm (needs C^T as a GA)
        ct = GlobalArray.create(self.runtime, (no, n), "f8", name="CoccT")
        if self.runtime.my_id == 0:
            ct.put((0, 0), (no, n), np.ascontiguousarray(c[:, :no].T))
        ct.sync()
        dgemm(2.0, self.c_occ, ct, 0.0, self.d)
        ct.destroy()
        # E = 0.5 * sum(D * (H + F))
        block = self.d.distribution()
        local_e = 0.0
        if not block.empty:
            db = self.d.get(block.lo, block.hi)
            hb = self.h.get(block.lo, block.hi)
            fb = self.f.get(block.lo, block.hi)
            local_e = float(np.sum(db * (hb + fb)) / 2.0)
        total = self.runtime.world.allreduce(np.array([local_e]))
        self.d.sync()
        return float(total[0])

    def solve(self) -> tuple[float, list[float]]:
        trace = [self.iterate() for _ in range(self.problem.iterations)]
        return trace[-1], trace

    def density(self) -> np.ndarray:
        n = self.problem.nbasis
        return self.d.get((0, 0), (n, n))

    def destroy(self) -> None:
        for ga in (self.c_occ, self.f, self.d, self.h):
            ga.destroy()
