"""Tiled index spaces for the CCSD(T) proxy (the TCE tiling scheme).

NWChem's tensor contraction engine blocks the occupied (``no``) and
virtual (``nv``) orbital spaces into tiles; every contraction task
operates on a tuple of tiles, fetching the corresponding Global Array
patches, calling DGEMM locally, and accumulating the result.  Tiling is
what turns CCSD into the many-noncontiguous-transfer workload whose
performance §VII measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..mpi.errors import ArgumentError


@dataclass(frozen=True)
class Tile:
    """A contiguous index range ``[lo, hi)`` within one orbital space."""

    index: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo


class TiledSpace:
    """A 1-D index space split into tiles of (at most) ``tile_size``."""

    def __init__(self, extent: int, tile_size: int):
        if extent < 0 or tile_size < 1:
            raise ArgumentError(
                f"bad tiled space: extent={extent} tile_size={tile_size}"
            )
        self.extent = extent
        self.tile_size = tile_size
        self.tiles: list[Tile] = []
        lo = 0
        i = 0
        while lo < extent:
            hi = min(lo + tile_size, extent)
            self.tiles.append(Tile(i, lo, hi))
            lo = hi
            i += 1

    @property
    def ntiles(self) -> int:
        return len(self.tiles)

    def __iter__(self) -> Iterator[Tile]:
        return iter(self.tiles)

    def __getitem__(self, i: int) -> Tile:
        return self.tiles[i]

    def pairs(self) -> Iterator[tuple[Tile, Tile]]:
        """All ordered tile pairs (the 2-index task space)."""
        for a in self.tiles:
            for b in self.tiles:
                yield a, b

    def triples(self) -> Iterator[tuple[Tile, Tile, Tile]]:
        """All ordered tile triples (the (T) task space)."""
        for a in self.tiles:
            for b in self.tiles:
                for c in self.tiles:
                    yield a, b, c

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TiledSpace(extent={self.extent}, ntiles={self.ntiles})"
