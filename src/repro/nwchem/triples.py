"""The (T)-like perturbative correction: the proxy for NWChem's triples.

NWChem's (T) step is embarrassingly parallel over tile triples with an
O(n_o^3 n_v^4) flop count: each task fetches amplitude and integral
tiles (gets only — no accumulates), contracts locally, and adds a
scalar to the energy.  Its communication-to-compute ratio is lower than
CCSD's, which is why Fig. 6 shows the ARMCI-MPI (T) gap smaller and
scaling further — our proxy preserves exactly that structure.
"""

from __future__ import annotations

import numpy as np

from ..ga import GlobalArray, SharedCounter, TaskPool
from .ccsd import CcsdProblem
from .tiles import TiledSpace


def triples_energy(
    runtime,
    t_amp: GlobalArray,
    v_int: GlobalArray,
    problem: CcsdProblem,
    counter: "SharedCounter | None" = None,
) -> float:
    """Distributed proxy (T) correction over NXTVAL-scheduled tile triples.

    Computes exactly :func:`repro.nwchem.reference.triples_energy_dense`:
    for each ordered tile triple (A, B, C),
    ``sum((T[A,B] @ V[B,C]) * T[A,C]) / (1 + |A||B||C|)``.
    """
    space: TiledSpace = problem.space
    ntiles = space.ntiles
    pool = TaskPool(runtime, ntiles**3, counter)
    local = 0.0
    for task in pool.tasks():
        ia, rem = divmod(task, ntiles * ntiles)
        ib, ic = divmod(rem, ntiles)
        ta, tb, tc = space[ia], space[ib], space[ic]
        tab = t_amp.get((ta.lo, tb.lo), (ta.hi, tb.hi))
        vbc = v_int.get((tb.lo, tc.lo), (tb.hi, tc.hi))
        tac = t_amp.get((ta.lo, tc.lo), (ta.hi, tc.hi))
        contrib = float(np.sum((tab @ vbc) * tac))
        local += contrib / (1.0 + ta.size * tb.size * tc.size)
    if counter is None:
        pool.destroy()
    total = runtime.world.allreduce(np.array([local]))
    runtime.barrier()
    return float(total[0])
