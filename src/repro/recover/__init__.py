"""Survivor-restart recovery for the ARMCI/GA stack.

The MPI layer provides the ULFM-analogue primitives —
:meth:`~repro.mpi.comm.Comm.failure_ack`,
:meth:`~repro.mpi.comm.Comm.revoke`, :meth:`~repro.mpi.comm.Comm.agree`
and :meth:`~repro.mpi.comm.Comm.shrink` — and this package composes
them into the one protocol an application needs after a rank dies:
:func:`recover` turns a wounded :class:`~repro.armci.Armci` runtime
into a fresh one on the shrunken world, rebuilding every allocation
whose contents survived and retiring the rest, with every step driven
through :meth:`~repro.mpi.comm.Comm.agree` so all survivors take the
same branch.  Combined with :meth:`~repro.ga.GlobalArray.checkpoint`
/ :meth:`~repro.ga.GlobalArray.restore` this is enough to lose a rank
mid-computation and finish with correct results — see
``docs/faults.md`` for the protocol walk-through and its guarantees.
"""

from .protocol import GmrOutcome, RecoveryReport, recover

__all__ = ["GmrOutcome", "RecoveryReport", "recover"]
