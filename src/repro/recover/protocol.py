"""The ARMCI recovery protocol: ack -> shrink -> per-GMR agree -> rebuild.

Every survivor calls :func:`recover` after catching a failure error
(:class:`~repro.mpi.errors.TargetFailedError` or a subclass) from any
operation.  Survivors may arrive from *different* call sites — one from
a poisoned barrier, another from a put to the dead rank — and the
protocol re-synchronises them:

1. **Acknowledge** (:meth:`~repro.mpi.comm.Comm.failure_ack`): disarms
   the dead-rank quarantine for this rank and, under a deterministic
   schedule, re-serialises the survivors so the rest of the recovery
   replays bit-identically from the seed.
2. **Snapshot**: each survivor copies its local slab of every live GMR
   before anything is torn down.
3. **Shrink** (:meth:`~repro.mpi.comm.Comm.shrink`): a fresh,
   densely re-ranked communicator of the survivors, from which a fresh
   :class:`~repro.armci.Armci` runtime is built.
4. **Per-GMR consensus**: for each allocation, in ``gmr_id`` order,
   survivors vote through :meth:`~repro.mpi.comm.Comm.agree` whether it
   can be rebuilt.  The vote is computable identically everywhere — a
   GMR is rebuildable iff some survivor holds a non-NULL slice (the
   §V-B rule: only such a member can *name* the allocation) and no dead
   member held data.  Consensus, not local judgement, decides: a single
   dissent (``rebuild=False``, or a divergent view of the dead set)
   aborts the rebuild on **all** ranks, so no rank ever waits on a
   collective the others skipped.
5. **Rebuild or retire**: on a rebuild verdict the surviving members
   re-allocate the same per-rank sizes on the shrunken (sub)group and
   re-seed the new slabs from step 2's snapshots.  Either way the old
   GMR is retired: unregistered from the translation table (which also
   evicts its last-hit cache entries), its window and mutex window
   force-invalidated, and mutexes owned by dead ranks reclaimed.
   Because retirement recycles window state, the global strided/IOV
   datatype caches are cleared too — a datatype memoised against a
   retired window must never be replayed against its replacement.

The returned :class:`RecoveryReport` is per-rank deterministic (it
shows up unchanged in seeded replays) and records enough to audit the
decision for every allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..armci import iov, strided
from ..armci.api import Armci
from ..armci.gmr import Gmr
from ..mpi.errors import CommRevokedError

__all__ = ["GmrOutcome", "RecoveryReport", "recover"]


@dataclass(frozen=True)
class GmrOutcome:
    """What recovery decided for one allocation.

    ``action`` is ``"rebuilt"`` or ``"aborted"``; ``lost`` lists the old
    absolute ids of dead members whose slice was non-NULL (the reason an
    abort verdict was reached, empty on rebuild); ``new_ptrs`` holds the
    rebuilt allocation's base pointers (``None`` on abort, and on
    survivors outside the rebuilt subgroup); ``copied_bytes`` is the
    calling rank's re-seeded slab size.
    """

    gmr_id: int
    action: str
    lost: tuple = ()
    new_ptrs: "tuple | None" = None
    copied_bytes: int = 0


@dataclass(frozen=True)
class RecoveryReport:
    """Audit record of one :func:`recover` round (old absolute ids).

    ``rank_map`` maps each survivor's old absolute id to its new one on
    the shrunken world; ``reclaimed_mutexes`` lists
    ``(gmr_id, host, mutex, dead_holder)`` for every mutex ownership
    entry swept by :meth:`~repro.armci.mutexes.MutexSet.reclaim`.
    """

    failed: tuple
    survivors: tuple
    rank_map: tuple
    gmrs: tuple = field(default_factory=tuple)
    reclaimed_mutexes: tuple = ()

    def summary(self) -> str:
        rebuilt = sum(1 for g in self.gmrs if g.action == "rebuilt")
        return (
            f"recovered from failure of rank(s) {list(self.failed)}: "
            f"{len(self.survivors)} survivors, "
            f"{rebuilt}/{len(self.gmrs)} allocation(s) rebuilt, "
            f"{len(self.reclaimed_mutexes)} mutex(es) reclaimed"
        )


def _local_parties(comm) -> int:
    """How many of ``comm``'s ranks live in this OS process.

    ``comm.size`` on the thread backend; on the proc backend each child
    runtime hosts exactly the ranks in ``runtime.local_ranks``, and
    rendezvous bookkeeping in ``runtime.shared`` must only wait for
    those.
    """
    rt = comm.runtime
    if rt.local_ranks is None:
        return comm.size
    return sum(
        1 for r in range(comm.size)
        if comm.group.world_rank(r) in rt.local_ranks
    )


def recover(armci: Armci, *, rebuild: bool = True) -> "tuple[Armci, RecoveryReport]":
    """Collective (over the survivors): rebuild the ARMCI runtime.

    Returns ``(new_armci, report)``.  The old runtime is retired — its
    windows invalidated, its table emptied — and must not be used again;
    the caller continues on ``new_armci``, whose world is the shrunken,
    densely re-ranked communicator.  With ``rebuild=False`` every
    allocation is retired without reconstruction (data-free restart).
    """
    world = armci.world
    rt = world.runtime
    my_old = world.rank

    # 1. acknowledge the failures; under a deterministic schedule this is
    #    also where the survivors are re-serialised onto the seeded token
    world.failure_ack()

    # mpi3 datapath: queued nonblocking ops can never complete on the
    # wounded world (its windows are about to be invalidated), so every
    # survivor discards its own queues — outstanding NbHandles fail
    # consistently with a revoke error instead of hanging or half-issuing
    if armci._flush_mode:
        armci._nbq.discard(
            CommRevokedError(
                "nonblocking operation abandoned by recovery: its queue "
                "was discarded when the wounded world was retired"
            )
        )

    # 2. snapshot local slabs before any teardown can recycle them
    with rt.cond:
        dead_world = frozenset(rt.dead_ranks)
        old_gmrs = sorted(armci.table.gmrs, key=lambda g: g.gmr_id)
        snapshots: dict[int, np.ndarray] = {}
        for gmr in old_gmrs:
            snap = gmr.snapshot_local(my_old)
            if snap is not None:
                snapshots[gmr.gmr_id] = snap

    failed_old = tuple(
        r for r in range(world.size) if world.group.world_rank(r) in dead_world
    )
    survivors_old = tuple(r for r in range(world.size) if r not in failed_old)

    # 3. shrink and build the fresh runtime on the survivor communicator
    newcomm = world.shrink()
    rank_map = {
        old: newcomm.group.rank_of_world(world.group.world_rank(old))
        for old in survivors_old
    }
    with rt.cond:
        new_armci = newcomm._coll.run(
            newcomm.rank,
            "armci_recover_init",
            None,
            lambda _c: Armci(
                newcomm, armci.config, armci.strict, armci.mpi3,
                datapath=armci.datapath,
            ),
        )

    # cross-rank scratch: mutex reclamation happens once (first thread
    # in wins) but every rank's report must list the same sweep
    scratch_key = ("recover_scratch", newcomm.context_id)
    with rt.cond:
        state = rt.shared.setdefault(scratch_key, {"reclaimed": [], "departed": 0})

    # 4/5. per-GMR consensus and rebuild-or-retire, in gmr_id order
    outcomes = []
    for gmr in old_gmrs:
        outcomes.append(
            _process_gmr(
                armci, new_armci, gmr, snapshots.get(gmr.gmr_id),
                failed_old, rank_map, rebuild, state,
            )
        )

    # datatypes memoised against retired windows must not outlive them
    strided.strided_datatype_cache_clear()
    iov.iov_datatype_cache_clear()

    with rt.cond:
        armci._finalized = True

    new_armci.barrier()
    with rt.cond:
        reclaimed = tuple(sorted(state["reclaimed"]))
        state["departed"] += 1
        # on the proc backend the scratch dict is a per-process replica:
        # only the ranks hosted here will ever mark their departure
        if state["departed"] >= _local_parties(newcomm):
            rt.shared.pop(scratch_key, None)

    report = RecoveryReport(
        failed=failed_old,
        survivors=survivors_old,
        rank_map=tuple(sorted(rank_map.items())),
        gmrs=tuple(outcomes),
        reclaimed_mutexes=reclaimed,
    )
    return new_armci, report


def _process_gmr(
    armci: Armci,
    new_armci: Armci,
    gmr: Gmr,
    snapshot: "np.ndarray | None",
    failed_old: tuple,
    rank_map: dict,
    rebuild: bool,
    state: dict,
) -> GmrOutcome:
    """Consensus + rebuild/retire for one allocation (all survivors call)."""
    newcomm = new_armci.world
    my_old = armci.world.rank
    members_old = gmr.group.members_absolute()
    lost = tuple(
        a for gr, a in enumerate(members_old) if a in failed_old and gmr.sizes[gr]
    )
    surviving = [a for a in members_old if a not in failed_old]

    # Rebuildable iff a survivor holds a non-NULL slice (§V-B: only such
    # a member can name the allocation) and no data died with a member.
    # The inputs are globally visible, so every flag agrees — but the
    # *decision* still goes through consensus: one dissent aborts
    # everywhere, and no survivor can be left waiting on a rebuild
    # collective the others skipped.
    can_rebuild = bool(rebuild and surviving and not lost)
    verdict = newcomm.agree(1 if can_rebuild else 0)

    new_ptrs = None
    copied = 0
    if verdict:
        new_members = sorted(rank_map[a] for a in surviving)
        if new_members == list(range(new_armci.nproc)):
            sub = new_armci.world_group
        else:
            sub = new_armci.world_group.create_subgroup(new_members)
        if sub is not None:
            nbytes = gmr.sizes[members_old.index(my_old)]
            ptrs = new_armci.malloc(nbytes, group=sub)
            if nbytes:
                myptr = ptrs[sub.rank]
                buf = new_armci.access_begin(myptr, nbytes)
                buf[:] = snapshot
                new_armci.access_end(myptr)
                copied = nbytes
            new_ptrs = tuple(ptrs)

    _retire_gmr(armci, gmr, state)
    return GmrOutcome(
        gmr_id=gmr.gmr_id,
        action="rebuilt" if verdict else "aborted",
        lost=lost,
        new_ptrs=new_ptrs,
        copied_bytes=copied,
    )


def _retire_gmr(armci: Armci, gmr: Gmr, state: dict) -> None:
    """Idempotent teardown of a retired GMR (first rank thread in wins).

    Unregistering also evicts the translation table's last-hit cache
    entries for this GMR, so a recycled address range can never resolve
    through a stale hot pointer.
    """
    rt = armci.world.runtime
    mset = None
    with rt.cond:
        if not gmr.freed:
            armci.table.unregister(gmr)
            gmr.freed = True
            mset = armci._gmr_mutexes.pop(gmr.gmr_id, None)
    gmr.win.invalidate()
    if mset is not None:
        swept = mset.reclaim()
        with rt.cond:
            state["reclaimed"].extend(
                (gmr.gmr_id, host, mutex, holder) for host, mutex, holder in swept
            )
            mset._destroyed = True
        mset._win.invalidate()
