"""``python -m repro.sanitize <script.py> [--seed N --schedules K]``.

Thin entry point for :mod:`repro.sanitizer.cli` matching the spelling
used throughout the docs.
"""

from .sanitizer.cli import main

if __name__ == "__main__":
    import sys

    sys.exit(main())
