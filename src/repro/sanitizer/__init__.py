"""``repro.sanitizer``: dynamic RMA rule checking + schedule fuzzing.

The paper's core tension is that MPI-2 declares conflicting RMA accesses
*erroneous* without requiring detection — real MPI silently corrupts
memory, and ARMCI-MPI survives only through the §V disciplines (one
exclusive epoch per op, staged global buffers, queueing mutexes).  This
package turns the simulated substrate into a correctness oracle:

* :class:`RmaSanitizer` interposes on every window synchronisation and
  data-movement event and raises a structured
  :class:`~repro.sanitizer.violations.RmaViolationError` (also an
  instance of the plain MPI error class) describing rank, op, byte
  ranges, and the paper section the access violates;
* :func:`run_schedule` / :func:`fuzz_schedules` execute an SPMD body
  under seeded deterministic schedules (see
  :class:`~repro.mpi.progress.DeterministicSchedule`), replaying any
  failure bit-identically from its seed;
* :func:`install_ambient` hooks runtime creation so *every* runtime a
  test builds gets a sanitizer — this is what ``pytest --sanitize`` and
  the ``sanitize`` marker use.

CLI: ``python -m repro.sanitize examples/quickstart.py --seed 0
--schedules 8`` fuzzes an example script's ``main(comm)``.
"""

from __future__ import annotations

from ..mpi import runtime as _runtime
from .fuzz import ScheduleReport, format_reports, fuzz_schedules, run_schedule
from .sanitizer import RmaSanitizer
from .violations import (
    CATALOG,
    LINT_ONLY_KINDS,
    CatalogEntry,
    ConflictViolationError,
    ModeViolationError,
    RangeViolationError,
    RmaViolation,
    RmaViolationError,
    SyncViolationError,
    ViolationKind,
)

__all__ = [
    "CATALOG",
    "LINT_ONLY_KINDS",
    "CatalogEntry",
    "ConflictViolationError",
    "ModeViolationError",
    "RangeViolationError",
    "RmaSanitizer",
    "RmaViolation",
    "RmaViolationError",
    "ScheduleReport",
    "SyncViolationError",
    "ViolationKind",
    "format_reports",
    "fuzz_schedules",
    "install_ambient",
    "run_schedule",
    "uninstall_ambient",
]


def install_ambient(mode: str = "raise", check_nonstrict: bool = False):
    """Sanitize every :class:`~repro.mpi.runtime.Runtime` created from now on.

    Returns an opaque token for :func:`uninstall_ambient`.
    """

    def hook(rt) -> None:
        rt.sanitizer = RmaSanitizer(mode=mode, check_nonstrict=check_nonstrict)

    _runtime.RUNTIME_CREATION_HOOKS.append(hook)
    return hook


def uninstall_ambient(token) -> None:
    """Remove a hook installed by :func:`install_ambient`."""
    try:
        _runtime.RUNTIME_CREATION_HOOKS.remove(token)
    except ValueError:
        pass
