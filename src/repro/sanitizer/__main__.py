"""``python -m repro.sanitizer`` — same entry as ``python -m repro.sanitize``."""

import sys

from .cli import main

sys.exit(main())
