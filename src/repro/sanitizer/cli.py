"""CLI: fuzz an example script under sanitized deterministic schedules.

::

    python -m repro.sanitize examples/quickstart.py --schedules 8
    python -m repro.sanitize examples/dynamic_load_balance.py \\
        --nproc 6 --seed 41 --schedules 1        # replay one seed

The script must define ``main(comm)`` — the SPMD body convention every
``examples/*.py`` file follows.  Exit status is 0 iff every schedule
completed without an MPI error or recorded violation.
"""

from __future__ import annotations

import argparse
import inspect
import runpy
import sys

from .fuzz import format_reports, fuzz_schedules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Run a script's main(comm) under the RMA sanitizer and "
        "seeded deterministic schedules.",
    )
    parser.add_argument("script", help="path to a script defining main(comm)")
    parser.add_argument("--nproc", type=int, default=4,
                        help="number of simulated ranks (default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="first schedule seed (default 0)")
    parser.add_argument("--schedules", type=int, default=8, metavar="K",
                        help="number of consecutive seeds to run (default 8)")
    parser.add_argument("--switch-prob", type=float, default=0.25,
                        help="preemption probability at each fuzz point")
    parser.add_argument("--jitter", type=float, default=0.1,
                        help="max fractional delivery-delay jitter (default 0.1)")
    parser.add_argument("--no-sanitize", action="store_true",
                        help="fuzz schedules only, without the RMA sanitizer")
    parser.add_argument("--check-nonstrict", action="store_true",
                        help="apply conflict rules to strict=False windows too")
    return parser


def load_entry(script: str):
    """Load ``script`` and return its ``main(comm)`` SPMD body."""
    ns = runpy.run_path(script, run_name="repro.sanitize.target")
    fn = ns.get("main")
    if fn is None:
        raise SystemExit(f"{script}: defines no main() function")
    params = [
        p for p in inspect.signature(fn).parameters.values()
        if p.default is inspect.Parameter.empty
        and p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if len(params) != 1:
        raise SystemExit(
            f"{script}: main() must take exactly one required argument "
            "(the communicator) to run under the fuzzer"
        )
    return fn


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    fn = load_entry(args.script)
    reports = fuzz_schedules(
        fn,
        args.nproc,
        nschedules=args.schedules,
        base_seed=args.seed,
        switch_prob=args.switch_prob,
        jitter_frac=args.jitter,
        sanitize=not args.no_sanitize,
        check_nonstrict=args.check_nonstrict,
    )
    print(format_reports(reports))
    bad = [r for r in reports if not r.ok or r.violations]
    for r in bad:
        for v in r.violations:
            print(f"  seed {r.seed}: {v}")
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
