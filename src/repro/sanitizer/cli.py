"""CLI: fuzz an example script under sanitized deterministic schedules.

::

    python -m repro.sanitize examples/quickstart.py --schedules 8
    python -m repro.sanitize examples/dynamic_load_balance.py \\
        --nproc 6 --seed 41 --schedules 1        # replay one seed
    python -m repro.sanitize --sweep --schedules 16   # CI seed-sweep gate

The script must define ``main(comm)`` — the SPMD body convention every
``examples/*.py`` file follows; ``scenario:NAME`` names a canonical
:data:`repro.faults.SCENARIOS` body instead.  ``--sweep`` runs the
seed range over all three §V-D protocol scenarios (mutex handoff,
mutex-based RMW, GMR free with NULL slices) and then replays the
checked-in ``tests/corpus/failing_seeds.json`` regression corpus, each
entry twice with digest-identity checking.  Exit status is 0 iff every
schedule completed without an MPI error or recorded violation and every
corpus entry reproduced its recorded outcome.
"""

from __future__ import annotations

import argparse
import inspect
import runpy
import sys

from .fuzz import format_reports, fuzz_schedules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Run a script's main(comm) under the RMA sanitizer and "
        "seeded deterministic schedules.",
    )
    parser.add_argument("script", nargs="?", default=None,
                        help="path to a script defining main(comm), or "
                        "scenario:NAME for a canonical protocol scenario")
    parser.add_argument("--sweep", action="store_true",
                        help="seed-sweep the §V-D protocol scenarios and "
                        "replay the failing-seeds corpus (no script needed)")
    parser.add_argument("--corpus", nargs="?", const="", default=None,
                        metavar="JSON",
                        help="replay the (seed, plan) regression corpus "
                        "(default: the checked-in tests/corpus file)")
    parser.add_argument("--nproc", type=int, default=4,
                        help="number of simulated ranks (default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="first schedule seed (default 0)")
    parser.add_argument("--schedules", type=int, default=8, metavar="K",
                        help="number of consecutive seeds to run (default 8)")
    parser.add_argument("--switch-prob", type=float, default=0.25,
                        help="preemption probability at each fuzz point")
    parser.add_argument("--jitter", type=float, default=0.1,
                        help="max fractional delivery-delay jitter (default 0.1)")
    parser.add_argument("--no-sanitize", action="store_true",
                        help="fuzz schedules only, without the RMA sanitizer")
    parser.add_argument("--check-nonstrict", action="store_true",
                        help="apply conflict rules to strict=False windows too")
    return parser


def load_entry(script: str):
    """Load ``script`` and return its ``main(comm)`` SPMD body."""
    ns = runpy.run_path(script, run_name="repro.sanitize.target")
    fn = ns.get("main")
    if fn is None:
        raise SystemExit(f"{script}: defines no main() function")
    params = [
        p for p in inspect.signature(fn).parameters.values()
        if p.default is inspect.Parameter.empty
        and p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if len(params) != 1:
        raise SystemExit(
            f"{script}: main() must take exactly one required argument "
            "(the communicator) to run under the fuzzer"
        )
    return fn


def _resolve_body(script: str):
    """A script path, or ``scenario:NAME`` from the canonical set."""
    if script.startswith("scenario:"):
        from ..faults.scenarios import SCENARIOS

        name = script.split(":", 1)[1]
        if name not in SCENARIOS:
            raise SystemExit(
                f"unknown scenario {name!r}; have {sorted(SCENARIOS)}"
            )
        return SCENARIOS[name]
    return load_entry(script)


def _replay_corpus(path: str) -> int:
    """Replay the regression corpus; returns the number of failures."""
    from ..faults.corpus import load_corpus, replay_entry

    entries = load_corpus(path or None)
    failures = 0
    print(f"corpus: replaying {len(entries)} checked-in (seed, plan) entries")
    for entry in entries:
        passed, detail = replay_entry(entry)
        print(f"  {'PASS' if passed else 'FAIL'} {entry['name']}: {detail}")
        failures += 0 if passed else 1
    return failures


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    bad = 0
    targets: list = []
    if args.sweep:
        from ..faults.scenarios import SCENARIOS

        targets = [(f"scenario:{n}", fn) for n, fn in sorted(SCENARIOS.items())]
        if args.corpus is None:
            args.corpus = ""  # --sweep implies the default corpus replay
    elif args.script is not None:
        targets = [(args.script, _resolve_body(args.script))]
    elif args.corpus is None:
        raise SystemExit("nothing to do: give a script, --sweep, or --corpus")
    for label, fn in targets:
        reports = fuzz_schedules(
            fn,
            args.nproc,
            nschedules=args.schedules,
            base_seed=args.seed,
            switch_prob=args.switch_prob,
            jitter_frac=args.jitter,
            sanitize=not args.no_sanitize,
            check_nonstrict=args.check_nonstrict,
        )
        if len(targets) > 1:
            print(f"== {label} ==")
        print(format_reports(reports))
        failed = [r for r in reports if not r.ok or r.violations]
        for r in failed:
            for v in r.violations:
                print(f"  seed {r.seed}: {v}")
        bad += len(failed)
    if args.corpus is not None:
        bad += _replay_corpus(args.corpus)
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
