"""Deterministic schedule fuzzing: run an SPMD body under seeded schedules.

Each :func:`run_schedule` call builds a fresh :class:`~repro.mpi.runtime.
Runtime`, installs a :class:`~repro.mpi.progress.DeterministicSchedule`
seeded with ``seed`` (and, by default, an :class:`~repro.sanitizer.
RmaSanitizer`), runs the body, and condenses the outcome into a
:class:`ScheduleReport` whose ``digest`` hashes the full scheduling
trace, final simulated clocks, recorded violations, and the error (if
any).  Because the schedule serialises execution and draws every
decision from the seed, re-running the same seed reproduces the same
digest bit-for-bit — a failing seed IS the reproducer.

:func:`fuzz_schedules` sweeps ``nschedules`` consecutive seeds and
reports each; callers filter for failures and replay the seed.

Passing ``plan=`` (a :class:`~repro.faults.plan.FaultPlan`) installs a
:class:`~repro.faults.injector.FaultInjector` on the runtime: the fault
scenario composes with the schedule, and the plan's canonical key plus
the injector's executed-fault log are folded into the digest — a
failing ``(seed, plan)`` pair replays bit-identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..mpi.errors import MPIError
from ..mpi.progress import DeterministicSchedule
from ..mpi.runtime import Runtime
from .sanitizer import RmaSanitizer

__all__ = ["ScheduleReport", "run_schedule", "fuzz_schedules", "format_reports"]


@dataclass
class ScheduleReport:
    """Outcome of one seeded schedule."""

    seed: int
    ok: bool
    digest: str
    error: "str | None" = None  # repr of the raised MPIError, if any
    violations: list = field(default_factory=list)  # str(RmaViolation)
    events: int = 0  # schedule trace length
    yields: int = 0  # preemptions taken at fuzz points
    max_clock: float = 0.0
    results: "list | None" = None  # per-rank return values on success
    plan: "str | None" = None  # FaultPlan.key() when faults were injected
    fault_events: int = 0  # faults actually executed by the injector
    dead_ranks: list = field(default_factory=list)  # ranks killed by the plan

    def __str__(self) -> str:
        status = "ok" if self.ok else f"FAIL {self.error}"
        return (
            f"seed {self.seed:>4}  digest {self.digest[:12]}  "
            f"events {self.events:>5}  yields {self.yields:>4}  {status}"
        )


def run_schedule(
    fn: Callable[..., Any],
    nproc: int,
    seed: int,
    *,
    args: Sequence[Any] = (),
    switch_prob: float = 0.25,
    jitter_frac: float = 0.0,
    sanitize: bool = True,
    check_nonstrict: bool = False,
    timing=None,
    plan=None,
) -> ScheduleReport:
    """Run ``fn(comm, *args)`` on ``nproc`` ranks under one seeded schedule.

    ``plan`` (a :class:`~repro.faults.plan.FaultPlan`) additionally
    installs a fault injector; the plan becomes part of the digest.
    """
    rt = Runtime(nproc, seed=seed)
    if timing is not None:
        rt.timing = timing
    sched = DeterministicSchedule(seed, switch_prob=switch_prob,
                                  jitter_frac=jitter_frac)
    sched.begin_run(rt)
    injector = None
    if plan is not None:
        from ..faults.injector import FaultInjector  # deferred: faults ↔ armci

        injector = FaultInjector(plan)
        rt.faults = injector
    san = None
    if sanitize:
        san = rt.sanitizer = RmaSanitizer(check_nonstrict=check_nonstrict)
    error: "Exception | None" = None
    results = None
    try:
        results = rt.spmd(fn, *args)
    except Exception as exc:  # noqa: BLE001 - any failure is a fuzz finding
        error = exc
    violations = [str(v) for v in san.violations] if san is not None else []
    digest = _digest(sched, rt, violations, error, injector)
    return ScheduleReport(
        seed=seed,
        ok=error is None,
        digest=digest,
        error=repr(error) if error is not None else None,
        violations=violations,
        events=len(sched.trace),
        yields=sum(1 for ev in sched.trace if ev[0] == "yield"),
        max_clock=rt.max_clock(),
        results=results,
        plan=plan.key() if plan is not None else None,
        fault_events=len(injector.events) if injector is not None else 0,
        dead_ranks=sorted(rt.dead_ranks),
    )


def _digest(sched: DeterministicSchedule, rt: Runtime,
            violations: list, error, injector=None) -> str:
    payload = repr((
        sched.seed,
        None if injector is None else injector.plan.key(),
        None if injector is None else injector.events,
        sorted(rt.dead_ranks),
        sched.trace,
        [repr(c) for c in rt.clocks()],
        violations,
        repr(error) if error is not None else None,
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


def fuzz_schedules(
    fn: Callable[..., Any],
    nproc: int,
    *,
    nschedules: int = 16,
    base_seed: int = 0,
    **kw: Any,
) -> list[ScheduleReport]:
    """Run ``fn`` under ``nschedules`` consecutive seeds; report each."""
    return [
        run_schedule(fn, nproc, seed, **kw)
        for seed in range(base_seed, base_seed + nschedules)
    ]


def format_reports(reports: Sequence[ScheduleReport]) -> str:
    lines = [str(r) for r in reports]
    failed = [r for r in reports if not r.ok]
    lines.append(
        f"{len(reports)} schedule(s): {len(reports) - len(failed)} ok, "
        f"{len(failed)} failed"
    )
    for r in failed:
        hint = f"  replay with --seed {r.seed} --schedules 1"
        if r.plan:
            hint += " (and the identical --plan / fault flags)"
        lines.append(hint)
    return "\n".join(lines)
