"""The dynamic RMA rule checker (see :mod:`repro.sanitizer`).

:class:`RmaSanitizer` is installed on a runtime as
``runtime.sanitizer``; :class:`~repro.mpi.window.Win` and the ARMCI
layers report every synchronisation and data-movement event to it
*before* executing their own checks.  The sanitizer therefore sees the
same state the window does, plus shadow state of its own for the two
things the window never tracks:

* byte coverage of epochs on ``strict=False`` windows (checked only
  when ``check_nonstrict=True``, because relaxed windows are entitled
  to conflicting access — the coherent-shortcut model relies on it);
* the footprints of MPI-3 atomics (``fetch_and_op`` /
  ``compare_and_swap``), which the window treats as self-contained and
  never conflict-checks.  The sanitizer models them as one mutually
  atomic accumulate class (``rmw``), so mixed atomics on one counter
  are clean but an atomic racing a put/get in the same epoch is not.

In ``mode="raise"`` (default) a violation raises the structured
exception immediately — and because every structured exception is also
the plain MPI error the window would have raised, programs and tests
written against the plain classes behave identically.  In
``mode="record"`` violations accumulate in :attr:`violations` and the
underlying layer's own error (if any) still fires.
"""

from __future__ import annotations

import threading

import numpy as np

from ..mpi.window import LOCK_EXCLUSIVE, LOCK_SHARED, _Epoch
from .violations import (
    ConflictViolationError,
    ModeViolationError,
    RangeViolationError,
    RmaViolation,
    SyncViolationError,
    ViolationKind,
)

__all__ = ["RmaSanitizer"]


class RmaSanitizer:
    """Dynamic checker for the MPI-2 RMA rules of §III / §V.

    Parameters
    ----------
    mode:
        ``"raise"`` — raise the structured violation error at the point
        of detection; ``"record"`` — append to :attr:`violations` and
        let the underlying layer decide (its own plain error still
        applies where one exists).
    check_nonstrict:
        Also apply the conflict-class rules (conflicts, accumulate
        interleaving, buffer aliasing, bare local access) to
        ``strict=False`` windows.  Off by default: relaxed windows model
        cache-coherent shortcuts that deliberately permit these.
    """

    def __init__(self, mode: str = "raise", check_nonstrict: bool = False):
        if mode not in ("raise", "record"):
            raise ValueError(f"unknown sanitizer mode {mode!r}")
        self.mode = mode
        self.check_nonstrict = check_nonstrict
        self.violations: list[RmaViolation] = []
        self._mu = threading.Lock()
        #: (win_id, origin, target) -> (real epoch object, shadow _Epoch)
        self._extra: dict[tuple, tuple] = {}
        #: origin -> open DLA gmr ids / window ids
        self._dla_open: dict[int, set[int]] = {}
        self._dla_wins: dict[int, set[int]] = {}
        #: (win_id, origin, target) -> queued-but-unflushed nb op count
        #: (the flush-completion ledger of the MPI-3 datapath's nb queue)
        self._nb_pending: dict[tuple, int] = {}

    # -- reporting ------------------------------------------------------------
    def _report(self, exc_cls, kind, rank, op, target, win_id, detail, ranges=()):
        v = RmaViolation(kind, rank, op, target, win_id, detail, tuple(ranges))
        with self._mu:
            self.violations.append(v)
        if self.mode == "raise":
            raise exc_cls(v)

    def _checks_conflicts(self, win) -> bool:
        return win.strict or self.check_nonstrict

    # -- lock discipline (called with runtime.cond held) ------------------------
    def on_lock(self, win, origin: int, target: int, mode: str) -> None:
        if origin in win._held:
            if win.win_id in self._dla_wins.get(origin, ()):
                self._report(
                    SyncViolationError, ViolationKind.LOCK_WHILE_DLA,
                    origin, "lock", target, win.win_id,
                    "lock attempt while a direct-local-access epoch is "
                    "open on the same window (the §V-C double-lock hazard)",
                )
            else:
                self._report(
                    SyncViolationError, ViolationKind.LOCK_NESTING,
                    origin, "lock", target, win.win_id,
                    f"already holds a lock on target {win._held[origin]} "
                    "of this window (one lock per window per process)",
                )
        elif origin in win._lock_all:
            self._report(
                SyncViolationError, ViolationKind.LOCK_NESTING,
                origin, "lock", target, win.win_id,
                "lock() inside a lock_all epoch",
            )
        elif origin in win._fence_members:
            self._report(
                SyncViolationError, ViolationKind.LOCK_NESTING,
                origin, "lock", target, win.win_id,
                "lock() inside an active-target fence epoch",
            )

    def on_unlock(self, win, origin: int, target: int) -> None:
        if win._held.get(origin) != target or (origin, target) not in win._epochs:
            self._report(
                SyncViolationError, ViolationKind.LOCK_UNMATCHED,
                origin, "unlock", target, win.win_id,
                "unlock without a matching lock by this origin",
            )
        self._extra.pop((win.win_id, origin, target), None)

    # -- data movement (called with runtime.cond held) ---------------------------
    def on_op(self, win, origin, kind, opname, segmap, origin_arr, target) -> None:
        real = self._require_epoch(win, origin, kind, target)
        if real is None:
            return
        offs, lens = segmap.offsets, segmap.lengths
        if segmap.nsegments > 1:
            order = np.argsort(offs, kind="stable")
            offs, lens = offs[order], lens[order]
        if self._checks_conflicts(win):
            if segmap.nsegments > 1 and kind != "acc" and segmap.overlaps_self():
                self._report(
                    ConflictViolationError, ViolationKind.CONFLICT,
                    origin, kind, target, win.win_id,
                    f"{kind} with self-overlapping target segments within "
                    "one operation",
                )
            self._check_local_alias(win, origin, kind, origin_arr, real, target)
            self._check_conflicts(win, origin, kind, opname, offs, lens, target)
        if not win.strict and self.check_nonstrict:
            # the relaxed window will not record this op; shadow it
            self._shadow(win, origin, target, real).record(kind, opname, offs, lens)

    def on_rmw(self, win, origin, target, target_offset, datatype) -> None:
        real = self._require_epoch(win, origin, "rmw", target)
        if real is None:
            return
        disp = target_offset * win._disp_units[target]
        offs = np.array([disp], dtype=np.int64)
        lens = np.array([datatype.size], dtype=np.int64)
        if self._checks_conflicts(win):
            self._check_conflicts(win, origin, "acc", "rmw", offs, lens, target,
                                  opdesc="rmw")
        # the window never records atomics; always shadow them so a later
        # put/get overlapping the counter is caught even on strict windows
        self._shadow(win, origin, target, real).record("acc", "rmw", offs, lens)

    def on_range(self, win, origin, kind, lo, hi, win_nbytes, target) -> None:
        self._report(
            RangeViolationError, ViolationKind.RANGE,
            origin, kind, target, win.win_id,
            f"datatype footprint exceeds the {win_nbytes}-byte window "
            "region at the target",
            ranges=((lo, hi),),
        )

    def on_bare_local_access(self, win, origin) -> None:
        if not self._checks_conflicts(win):
            return
        self._report(
            SyncViolationError, ViolationKind.LOCAL_LOAD_STORE,
            origin, "local_view", win.comm.rank, win.win_id,
            "direct load/store of exposed memory without an exclusive "
            "self-lock",
        )

    def on_flush(self, win, origin, target) -> None:
        ent = self._extra.get((win.win_id, origin, target))
        if ent is not None:
            ent[1].clear_accesses()

    # -- MPI-3 surface (gated behind mpi3=True) ---------------------------------
    def on_lock_all(self, win, origin: int) -> None:
        if origin in win._lock_all:
            self._report(
                SyncViolationError, ViolationKind.LOCK_NESTING,
                origin, "lock_all", -1, win.win_id,
                "lock_all while already in a lock_all epoch",
            )
        elif origin in win._held:
            self._report(
                SyncViolationError, ViolationKind.LOCK_NESTING,
                origin, "lock_all", -1, win.win_id,
                f"lock_all while holding a lock on target "
                f"{win._held[origin]} of this window",
            )
        elif origin in win._fence_members:
            self._report(
                SyncViolationError, ViolationKind.LOCK_NESTING,
                origin, "lock_all", -1, win.win_id,
                "lock_all inside an active-target fence epoch",
            )

    def on_unlock_all(self, win, origin: int) -> None:
        if origin not in win._lock_all:
            self._report(
                SyncViolationError, ViolationKind.LOCK_UNMATCHED,
                origin, "unlock_all", -1, win.win_id,
                "unlock_all without a lock_all epoch open",
            )

    def on_epoch_close(self, win, origin: int, target: int) -> None:
        """Audit request completion as an epoch is about to close."""
        epoch = win._epochs.get((origin, target))
        if epoch is None:
            return
        pending = sum(1 for r in epoch.pending_reqs if not r.completed)
        if pending:
            self._report(
                SyncViolationError, ViolationKind.REQUEST,
                origin, "unlock", target, win.win_id,
                f"{pending} request-based op(s) (rput/rget) never completed "
                "with wait/test before the epoch closed",
            )

    def on_flush_no_epoch(self, win, origin: int, target: int, op: str) -> None:
        self._report(
            SyncViolationError, ViolationKind.FLUSH,
            origin, op, target, win.win_id,
            f"{op} outside any passive-target epoch: nothing to complete",
        )

    # -- ARMCI-level hooks ------------------------------------------------------
    def on_mode_violation(self, origin, kind, gmr) -> None:
        self._report(
            ModeViolationError, ViolationKind.ACCESS_MODE,
            origin, kind, -1, gmr.win.win_id,
            f"{kind} on GMR {gmr.gmr_id} violates declared access mode "
            f"{gmr.access_mode.value}",
        )

    def on_dla_begin_attempt(self, origin, gmr) -> None:
        if gmr.gmr_id in self._dla_open.get(origin, ()):
            self._report(
                SyncViolationError, ViolationKind.DLA,
                origin, "access_begin", -1, gmr.win.win_id,
                f"nested access_begin on GMR {gmr.gmr_id}: direct-access "
                "epochs do not nest",
            )

    def on_dla_begin(self, origin, gmr) -> None:
        self._dla_open.setdefault(origin, set()).add(gmr.gmr_id)
        self._dla_wins.setdefault(origin, set()).add(gmr.win.win_id)

    def on_dla_end_attempt(self, origin, gmr) -> None:
        if gmr.gmr_id not in self._dla_open.get(origin, ()):
            self._report(
                SyncViolationError, ViolationKind.DLA,
                origin, "access_end", -1, gmr.win.win_id,
                f"access_end on GMR {gmr.gmr_id} without access_begin",
            )

    def on_dla_end(self, origin, gmr) -> None:
        self._dla_open.get(origin, set()).discard(gmr.gmr_id)
        self._dla_wins.get(origin, set()).discard(gmr.win.win_id)

    # -- MPI-3 datapath nb queue (flush-completion tracking) ---------------------
    def on_nb_enqueue(self, win, origin: int, target: int, kind: str) -> None:
        key = (win.win_id, origin, target)
        self._nb_pending[key] = self._nb_pending.get(key, 0) + 1

    def on_nb_drain(self, win, origin: int, target: int) -> None:
        self._nb_pending.pop((win.win_id, origin, target), None)

    def on_nb_discard(self, win, origin: int, target: int) -> None:
        """Recovery discarded a queue: the ops are gone, not leaked."""
        self._nb_pending.pop((win.win_id, origin, target), None)

    def on_nb_pending(self, win, origin: int, target: int, count: int) -> None:
        """Drained-queue-at-finalize invariant: report what never flushed."""
        self._nb_pending.pop((win.win_id, origin, target), None)
        self._report(
            SyncViolationError, ViolationKind.NB_PENDING,
            origin, "finalize", target, win.win_id,
            f"{count} queued nonblocking op(s) never reached a completion "
            "point (wait/wait_all/fence/barrier) before finalize",
        )

    def nb_pending_count(self, win, origin: int, target: int) -> int:
        """Test hook: queued-op count the ledger currently attributes."""
        return self._nb_pending.get((win.win_id, origin, target), 0)

    # -- internals ---------------------------------------------------------------
    def _require_epoch(self, win, origin, op, target):
        """The real epoch for (origin, target), or report EPOCH and return None."""
        real = win._epochs.get((origin, target))
        if real is None:
            real = win._fence_epoch(origin, target)
        if real is None:
            self._report(
                SyncViolationError, ViolationKind.EPOCH,
                origin, op, target, win.win_id,
                "RMA operation outside any access epoch",
            )
        return real

    def _shadow(self, win, origin, target, real) -> _Epoch:
        """Shadow epoch tied to the identity of the window's real epoch."""
        key = (win.win_id, origin, target)
        ent = self._extra.get(key)
        if ent is not None and ent[0] is real:
            return ent[1]
        sh = _Epoch(origin, target, real.mode)
        self._extra[key] = (real, sh)
        return sh

    def _check_local_alias(self, win, origin, kind, origin_arr, real, target):
        if real.mode not in (LOCK_SHARED, LOCK_EXCLUSIVE):
            return  # fence / lock_all epochs cover the whole window
        if not isinstance(origin_arr, np.ndarray):
            return
        my_wr = win.comm.group.rank_of_world(origin)
        if my_wr < 0 or my_wr == target:
            return  # a self-targeting epoch covers the local slab
        slab = win._buffers[my_wr]
        if slab.nbytes and np.shares_memory(origin_arr, slab):
            self._report(
                ConflictViolationError, ViolationKind.LOCAL_ALIAS,
                origin, kind, target, win.win_id,
                "local buffer aliases this window's exposed memory on the "
                "origin; accessing it needs a second lock on the same "
                "window (stage through a private buffer instead)",
            )

    def _conflict_hit(self, win, origin, kind, opname, offs, lens, target):
        """First conflicting access class, searching real + shadow epochs."""
        real = win._epochs.get((origin, target))
        if real is not None:
            hit = real.conflict_class(kind, opname, offs, lens)
            if hit is not None:
                return hit, origin
        ent = self._extra.get((win.win_id, origin, target))
        if ent is not None and ent[0] is real and real is not None:
            hit = ent[1].conflict_class(kind, opname, offs, lens)
            if hit is not None:
                return hit, origin
        # cross-origin: possible only under shared locks / fence epochs
        for (o, t), other in win._epochs.items():
            if t != target or o == origin:
                continue
            hit = other.conflict_class(kind, opname, offs, lens)
            if hit is not None:
                return hit, o
            ent = self._extra.get((win.win_id, o, t))
            if ent is not None and ent[0] is other:
                hit = ent[1].conflict_class(kind, opname, offs, lens)
                if hit is not None:
                    return hit, o
        return None, origin

    def _check_conflicts(self, win, origin, kind, opname, offs, lens, target,
                         opdesc: "str | None" = None):
        hit, other_origin = self._conflict_hit(
            win, origin, kind, opname, offs, lens, target
        )
        if hit is None:
            return
        opdesc = opdesc or kind
        vkind = (
            ViolationKind.ACC_INTERLEAVE
            if kind == "acc" and hit.startswith("acc")
            else ViolationKind.CONFLICT
        )
        who = (
            "in the same epoch"
            if other_origin == origin
            else f"in a concurrent epoch of origin {other_origin}"
        )
        lo = int(offs[0]) if len(offs) else 0
        hi = int((offs + lens).max()) if len(offs) else 0
        self._report(
            ConflictViolationError, vkind,
            origin, opdesc, target, win.win_id,
            f"{opdesc} overlaps an earlier {hit} access {who}",
            ranges=((lo, hi),),
        )
