"""Structured RMA violation records and their exception hierarchy.

Every rule the sanitizer enforces is one :class:`ViolationKind`; each
kind maps (via :data:`CATALOG`) to the paper section that motivates it,
a one-line statement of the rule, and the fix pattern ARMCI-MPI uses.
``docs/sanitizer.md`` is the human-readable rendering of this table.

The exceptions use multiple inheritance so that code (and the existing
test-suite) written against the plain MPI error classes keeps working:
a :class:`ConflictViolationError` *is* an
:class:`~repro.mpi.errors.RMAConflictError`, it just additionally
carries a machine-readable :class:`RmaViolation`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..mpi.errors import (
    ArgumentError,
    MPIError,
    RMAConflictError,
    RMARangeError,
    RMASyncError,
)

__all__ = [
    "ViolationKind",
    "LINT_ONLY_KINDS",
    "CatalogEntry",
    "CATALOG",
    "RmaViolation",
    "RmaViolationError",
    "SyncViolationError",
    "ConflictViolationError",
    "RangeViolationError",
    "ModeViolationError",
]


class ViolationKind(enum.Enum):
    """The rule classes the sanitizer and linter check.

    One shared catalog backs both checkers (docs/sanitizer.md and
    docs/lint.md are its human renderings): most kinds are detected
    dynamically by :class:`~repro.sanitizer.RmaSanitizer` *and*
    statically by :mod:`repro.lint`, so the same misuse reads
    identically whether it was caught before or during a run.  The
    ``LINT_*`` members are static-only — whole-program properties (a
    leaked allocation, a double free) that only exist over paths, not
    at a single dynamic event.
    """

    EPOCH = "epoch"
    LOCK_NESTING = "lock-nesting"
    LOCK_UNMATCHED = "lock-unmatched"
    LOCK_WHILE_DLA = "lock-while-dla"
    CONFLICT = "conflict"
    ACC_INTERLEAVE = "acc-interleave"
    LOCAL_ALIAS = "local-alias"
    LOCAL_LOAD_STORE = "local-load-store"
    ACCESS_MODE = "access-mode"
    RANGE = "range"
    DLA = "dla"
    # MPI-3 surface (gated behind mpi3=True / datapath="mpi3")
    REQUEST = "request"
    FLUSH = "flush"
    NB_PENDING = "nb-pending"
    # static-only rules (emitted by repro.lint, never by the sanitizer)
    LINT_LEAK = "lint-leak"
    LINT_DOUBLE_RELEASE = "lint-double-release"
    LINT_INIT = "lint-init-finalize"


#: kinds only the static analyzer emits (path properties, not events)
LINT_ONLY_KINDS = frozenset(
    {ViolationKind.LINT_LEAK, ViolationKind.LINT_DOUBLE_RELEASE, ViolationKind.LINT_INIT}
)


@dataclass(frozen=True)
class CatalogEntry:
    """Catalog metadata for one violation kind."""

    section: str  # paper section the rule comes from
    rule: str  # one-line statement of the rule
    fix: str  # the fix pattern ARMCI-MPI applies


#: kind -> (paper section, rule, fix pattern); rendered in docs/sanitizer.md
CATALOG: dict[ViolationKind, CatalogEntry] = {
    ViolationKind.EPOCH: CatalogEntry(
        section="§III",
        rule="every RMA operation must execute inside an access epoch "
        "(lock/unlock, lock_all, or fence)",
        fix="wrap the operation in MPI_Win_lock/unlock — ARMCI-MPI gives "
        "every op its own exclusive epoch (§V-C)",
    ),
    ViolationKind.LOCK_NESTING: CatalogEntry(
        section="§III, §V-E.1",
        rule="a process may hold at most one lock per window at a time",
        fix="close the first epoch before opening the second, or stage "
        "through a private buffer so only one lock is needed",
    ),
    ViolationKind.LOCK_UNMATCHED: CatalogEntry(
        section="§III",
        rule="unlock must match a lock held by the caller on that target",
        fix="pair every MPI_Win_lock with exactly one MPI_Win_unlock on "
        "the same target rank",
    ),
    ViolationKind.LOCK_WHILE_DLA: CatalogEntry(
        section="§V-E",
        rule="communication through a window is erroneous while the caller "
        "has a direct-local-access epoch open on it",
        fix="call ARMCI_Access_end before communicating through the GMR",
    ),
    ViolationKind.CONFLICT: CatalogEntry(
        section="§III",
        rule="overlapping put/get accesses within an epoch, or between "
        "concurrent shared-lock epochs, are erroneous",
        fix="split the accesses into separate epochs (ARMCI-MPI's "
        "one-exclusive-epoch-per-op discipline, §V-C)",
    ),
    ViolationKind.ACC_INTERLEAVE: CatalogEntry(
        section="§III",
        rule="overlapping accumulates are permitted only with the same "
        "reduction op; interleaving different ops is erroneous",
        fix="use one op per epoch per region, or split epochs per op",
    ),
    ViolationKind.LOCAL_ALIAS: CatalogEntry(
        section="§V-E.1",
        rule="a local communication buffer that aliases the same window's "
        "exposed memory needs its own lock — a second lock the MPI-2 "
        "one-lock-per-window rule forbids",
        fix="stage the transfer through a private intermediate buffer "
        "(ARMCI-MPI's global-buffer staging protocol)",
    ),
    ViolationKind.LOCAL_LOAD_STORE: CatalogEntry(
        section="§III, §V-E",
        rule="direct load/store of window memory requires an exclusive "
        "self-lock (the public/private window-copy rule)",
        fix="wrap direct access in ARMCI_Access_begin/ARMCI_Access_end",
    ),
    ViolationKind.ACCESS_MODE: CatalogEntry(
        section="§VIII-A",
        rule="an operation class the GMR's declared access mode excludes "
        "was issued (e.g. put on a read-only allocation)",
        fix="declare the correct mode with ARMCI_Access_mode, or reset "
        "the allocation to the default mode before mutating it",
    ),
    ViolationKind.RANGE: CatalogEntry(
        section="§V-A",
        rule="the operation's datatype footprint must fall inside the "
        "target's exposed window region",
        fix="check the GMR translation (base + displacement + extent) "
        "against the allocation size",
    ),
    ViolationKind.DLA: CatalogEntry(
        section="§V-E",
        rule="direct-local-access epochs do not nest and must be closed "
        "by the process that opened them",
        fix="pair each ARMCI_Access_begin with exactly one "
        "ARMCI_Access_end on the same GMR",
    ),
    ViolationKind.REQUEST: CatalogEntry(
        section="§VIII-B",
        rule="a request-based operation (rput/rget) must be completed "
        "with wait/test before its access epoch closes",
        fix="call req.wait() (or poll req.test()) on every request "
        "before unlock/unlock_all",
    ),
    ViolationKind.FLUSH: CatalogEntry(
        section="§VIII-B",
        rule="flush/flush_all complete outstanding operations and are "
        "only meaningful inside a passive-target epoch",
        fix="open the epoch first (lock or lock_all); flush cycles "
        "completion *within* it without closing it",
    ),
    ViolationKind.NB_PENDING: CatalogEntry(
        section="§VIII-B",
        rule="a queued nonblocking operation (mpi3 datapath) must reach a "
        "completion point — wait/test, wait_all, fence, or barrier — "
        "before its runtime finalizes; a discarded handle can leave ops "
        "queued forever",
        fix="keep the NbHandle and wait it (or call fence/barrier, which "
        "drain every queue); recovery may instead discard queues, which "
        "fails the handles with the revoke error",
    ),
    ViolationKind.LINT_LEAK: CatalogEntry(
        section="§III, §V-B",
        rule="every acquired resource (lock epoch, lock_all, DLA epoch, "
        "mutex, ARMCI allocation, mutex set) must be released on every "
        "path out of the function that acquired it",
        fix="release before each return (or restructure with a single "
        "exit); ARMCI_Finalize releases remaining allocations",
    ),
    ViolationKind.LINT_DOUBLE_RELEASE: CatalogEntry(
        section="§V-B",
        rule="a resource may be released exactly once: freeing a freed "
        "allocation or destroying a destroyed mutex set is erroneous",
        fix="release on exactly one path; after ARMCI_Free the base "
        "pointer vector is dead",
    ),
    ViolationKind.LINT_INIT: CatalogEntry(
        section="§V",
        rule="the ARMCI runtime must not be used after finalize, and "
        "finalize must run at most once",
        fix="finalize exactly once, after the last ARMCI call on every "
        "rank (it is collective)",
    ),
}


@dataclass(frozen=True)
class RmaViolation:
    """One detected violation, with everything needed to diagnose it.

    ``ranges`` holds target-window byte intervals ``(lo, hi)`` when the
    rule is about byte overlap; it is empty for pure discipline rules.
    """

    kind: ViolationKind
    rank: int  # origin (world) rank that performed the erroneous action
    op: str  # operation name at the point of detection
    target: int  # target rank within the window, or -1 if n/a
    win_id: int  # Win.win_id, or -1 if n/a
    detail: str  # human-oriented specifics
    ranges: tuple = field(default_factory=tuple)

    @property
    def section(self) -> str:
        return CATALOG[self.kind].section

    def __str__(self) -> str:
        where = f" target {self.target}" if self.target >= 0 else ""
        win = f" win {self.win_id}" if self.win_id >= 0 else ""
        rng = ""
        if self.ranges:
            rng = " bytes " + ",".join(f"[{lo},{hi})" for lo, hi in self.ranges)
        return (
            f"RMA violation [{self.kind.value}] ({self.section}): rank "
            f"{self.rank} op {self.op}{where}{win}{rng}: {self.detail}"
        )


class RmaViolationError(MPIError):
    """Base of all sanitizer-raised errors; carries the violation record.

    Deliberately defines no ``error_class`` of its own: each concrete
    subclass also inherits a plain MPI error class (e.g.
    :class:`RMAConflictError`), whose ``error_class`` the MRO supplies —
    so handlers keyed on either the legacy class or its symbolic name
    observe no change.
    """

    def __init__(self, violation: RmaViolation):
        super().__init__(str(violation))
        self.violation = violation


class SyncViolationError(RmaViolationError, RMASyncError):
    """Structured synchronisation-discipline violation (is-a RMASyncError)."""


class ConflictViolationError(RmaViolationError, RMAConflictError):
    """Structured conflicting-access violation (is-a RMAConflictError)."""


class RangeViolationError(RmaViolationError, RMARangeError):
    """Structured out-of-bounds violation (is-a RMARangeError)."""


class ModeViolationError(RmaViolationError, ArgumentError):
    """Structured access-mode violation (is-a ArgumentError)."""
