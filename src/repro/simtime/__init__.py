"""Analytic performance modeling: clocks, LogGP cost models, platforms.

Functional correctness and performance are decoupled in this
reproduction: data always moves for real (NumPy copies inside the
simulated MPI), while time is charged through the models in this package.
See DESIGN.md ("Functional time vs modeled time").
"""

from .clock import SimClock, TimedEvent, elapsed_by_kind
from .netmodel import MPITimingPolicy, PathModel
from .platforms import (
    BLUEGENE_P,
    CRAY_XE6,
    CRAY_XT5,
    INFINIBAND,
    PLATFORMS,
    Platform,
    get_platform,
)
from .registration import PAGE_BYTES, RegistrationModel, RegistrationState

__all__ = [
    "BLUEGENE_P",
    "CRAY_XE6",
    "CRAY_XT5",
    "INFINIBAND",
    "MPITimingPolicy",
    "PAGE_BYTES",
    "PLATFORMS",
    "PathModel",
    "Platform",
    "RegistrationModel",
    "RegistrationState",
    "SimClock",
    "TimedEvent",
    "elapsed_by_kind",
    "get_platform",
]
