"""Simulated per-rank clocks and operation event logs.

Every rank of the simulated runtime owns a :class:`SimClock`.  Data
movement in the simulator is always *functionally* executed (NumPy
copies), while performance is *modeled*: each communication layer charges
an analytically computed cost to the initiating rank's clock.  Benchmarks
then report modeled seconds / bandwidth, never Python wall-clock.

The clock also keeps an optional bounded event log used by benchmark
harnesses to attribute time to operation classes (lock overhead vs. wire
transfer vs. packing), which is how the ablation benches break down where
epochs cost time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class TimedEvent:
    """One charged operation: ``at`` is the clock *after* the charge."""

    at: float
    kind: str
    seconds: float
    nbytes: int


class SimClock:
    """Monotone simulated clock, charged in seconds.

    ``jitter`` is an optional ``(kind, seconds) -> extra_seconds`` hook
    the schedule fuzzer installs to model variable delivery delay; the
    extra charge is clamped to be non-negative so the clock stays
    monotone.  Multiple sources (schedule fuzzer + fault injector) can
    coexist via :meth:`add_jitter`, which composes hooks additively.
    """

    __slots__ = ("now", "_log", "_log_limit", "jitter")

    def __init__(self, log_limit: int = 0):
        self.now = 0.0
        self._log: list[TimedEvent] = []
        self._log_limit = log_limit
        self.jitter = None

    def add_jitter(self, hook) -> None:
        """Install ``hook(kind, seconds) -> extra``, composing with any
        existing jitter source (extras add; each clamped by ``advance``)."""
        prev = self.jitter
        if prev is None:
            self.jitter = hook
        else:
            self.jitter = lambda kind, seconds: (
                prev(kind, seconds) + hook(kind, seconds)
            )

    def advance(self, seconds: float, kind: str = "op", nbytes: int = 0) -> float:
        """Charge ``seconds`` to this rank; returns the new time."""
        if seconds < 0:
            raise ValueError(f"negative time charge {seconds} for {kind}")
        if self.jitter is not None:
            seconds += max(0.0, self.jitter(kind, seconds))
        self.now += seconds
        if self._log_limit and len(self._log) < self._log_limit:
            self._log.append(TimedEvent(self.now, kind, seconds, nbytes))
        return self.now

    def sync_to(self, t: float) -> None:
        """Move forward to absolute time ``t`` (used by barrier-like ops)."""
        if t > self.now:
            self.now = t

    def reset(self) -> None:
        self.now = 0.0
        self._log.clear()

    def enable_log(self, limit: int = 100_000) -> None:
        self._log_limit = limit

    @property
    def events(self) -> list[TimedEvent]:
        return list(self._log)


def elapsed_by_kind(events: Iterable[TimedEvent]) -> dict[str, float]:
    """Aggregate charged seconds per event kind."""
    out: dict[str, float] = {}
    for ev in events:
        out[ev.kind] = out.get(ev.kind, 0.0) + ev.seconds
    return out
