"""LogGP-class analytic cost models for communication paths.

Performance in this reproduction is *modeled*, not measured: a
:class:`PathModel` describes one communication path (the vendor-native
ARMCI path or the MPI RMA path on a given platform) and computes the
time of each primitive.  The parameters map one-to-one onto the effects
the paper discusses in §VII:

``latency``
    per-message start-up cost (the `L + o` of LogGP);
``bw_small`` / ``bw_large`` / ``bw_threshold``
    piecewise asymptotic bandwidth — Cray XT's MPI path drops to half
    its small-message bandwidth above 32 KiB (Fig. 3), which a single
    bandwidth term cannot express;
``acc_rate``
    target-side compute throughput for accumulate; the InfiniBand MPI
    path's low value reproduces the >1.5 GB/s accumulate gap;
``seg_overhead`` and ``pack_rate``
    per-segment datatype-processing cost and memory copy rate — the
    terms that decide whether the *direct* (datatype) or *batched*
    strided method wins (Fig. 4: packing is cheap on Xeon, expensive on
    BG/P's 850 MHz cores);
``lock_cost`` / ``unlock_cost``
    passive-target epoch entry/exit — the per-operation tax ARMCI-MPI
    pays for issuing every op in its own exclusive epoch (§V-F);
``epoch_queue_penalty``
    extra cost per already-queued op in the same epoch; nonzero only on
    the InfiniBand MVAPICH2 path, reproducing the batched-method
    collapse at large segment counts the paper attributes to a (since
    fixed) MPICH-2 queue-management issue (§VII-A).

All times are seconds, all sizes bytes, all rates bytes/second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PathModel:
    """Cost model of one communication path on one platform."""

    name: str
    latency: float
    bw_small: float
    bw_large: float
    bw_threshold: int
    acc_rate: float
    seg_overhead: float
    pack_rate: float
    lock_cost: float = 0.0
    unlock_cost: float = 0.0
    epoch_queue_penalty: float = 0.0
    #: per-op issue cost for ops after the first in an epoch (pipelined
    #: RDMA issue); None = every op pays full latency.  This is what lets
    #: the batched method amortise latency (Fig. 4, InfiniBand 1 KiB).
    inflight_overhead: "float | None" = None

    def __post_init__(self) -> None:
        for field in ("latency", "bw_small", "bw_large", "acc_rate", "pack_rate"):
            if getattr(self, field) <= 0 and field != "latency":
                raise ValueError(f"{self.name}: {field} must be positive")
        if self.latency < 0 or self.seg_overhead < 0:
            raise ValueError(f"{self.name}: negative overhead")

    # -- primitives ---------------------------------------------------------------
    def wire_bw(self, nbytes: int) -> float:
        """Asymptotic bandwidth applicable to a message of ``nbytes``."""
        return self.bw_small if nbytes <= self.bw_threshold else self.bw_large

    def xfer_time(self, kind: str, nbytes: int, nsegments: int = 1, op_index: int = 0) -> float:
        """Time of one one-sided operation moving ``nbytes`` total.

        ``nsegments > 1`` means the operation carries a derived datatype
        describing that many noncontiguous pieces: per-segment datatype
        processing plus a pack (origin) or unpack (target) pass is added.
        ``op_index`` is the number of operations already issued in the
        same epoch (drives ``epoch_queue_penalty``).
        """
        if nbytes < 0 or nsegments < 1:
            raise ValueError(f"bad xfer args nbytes={nbytes} nsegments={nsegments}")
        startup = self.latency
        if op_index > 0 and self.inflight_overhead is not None:
            startup = self.inflight_overhead
        t = startup + nbytes / self.wire_bw(nbytes)
        if nsegments > 1:
            t += self.seg_overhead * nsegments + nbytes / self.pack_rate
        if kind == "acc":
            t += nbytes / self.acc_rate
        if kind == "rmw":
            # single-element atomic: latency-bound round trip
            t += self.latency
        t += self.epoch_queue_penalty * op_index
        return t

    def sync_time(self, kind: str) -> float:
        """Cost of an epoch-control operation."""
        if kind in ("lock", "lock_all"):
            return self.lock_cost
        if kind in ("unlock", "unlock_all"):
            return self.unlock_cost
        if kind == "flush":
            # a flush is a remote completion wait: about an unlock without
            # the lock-release message
            return 0.5 * self.unlock_cost
        if kind == "fence":
            # active-target fence: per-process share of the collective
            # (the log(p) barrier itself is charged by the collective layer)
            return self.lock_cost + self.unlock_cost
        return 0.0

    def p2p_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.wire_bw(nbytes)

    def collective_time(self, kind: str, nbytes: int, p: int) -> float:
        """Binomial-tree estimate: log2(p) rounds of p2p."""
        rounds = max(1, math.ceil(math.log2(max(p, 2))))
        if kind in ("alltoall",):
            rounds = max(rounds, p - 1)
        return rounds * self.p2p_time(nbytes)

    # -- derived quantities used by benches -------------------------------------------
    def bandwidth(self, kind: str, nbytes: int, nsegments: int = 1) -> float:
        """Modeled achieved bandwidth (B/s) of one epoch-free operation."""
        return nbytes / self.xfer_time(kind, nbytes, nsegments)

    def with_overrides(self, **kw) -> "PathModel":
        """A copy with some parameters replaced (used by ablations)."""
        return replace(self, **kw)

    def degraded(self, latency_factor: float = 1.0, bw_factor: float = 1.0) -> "PathModel":
        """A copy modeling a degraded path (fault-plan delay injection).

        ``latency_factor`` multiplies the per-message start-up cost;
        ``bw_factor`` in (0, 1] scales both bandwidth asymptotes down.
        Used by ``repro.faults`` to model congested or flaky links
        without touching the functional datapath.
        """
        if latency_factor < 1.0 or not 0.0 < bw_factor <= 1.0:
            raise ValueError(
                f"degraded({latency_factor=}, {bw_factor=}): latency_factor "
                "must be >= 1 and bw_factor in (0, 1]"
            )
        return replace(
            self,
            name=f"{self.name}-degraded",
            latency=self.latency * latency_factor,
            bw_small=self.bw_small * bw_factor,
            bw_large=self.bw_large * bw_factor,
        )


class MPITimingPolicy:
    """Adapter installing a :class:`PathModel` as the runtime timing policy.

    The simulated MPI layers call ``p2p_cost``/``collective_cost``/
    ``rma_op_cost``/``rma_sync_cost``; everything funnels into the path
    model above.
    """

    def __init__(self, path: PathModel):
        self.path = path

    def p2p_cost(self, nbytes: int) -> float:
        return self.path.p2p_time(nbytes)

    def collective_cost(self, kind: str, nbytes: int, p: int) -> float:
        return self.path.collective_time(kind, nbytes, p)

    def rma_op_cost(
        self, kind: str, nbytes: int, nsegments: int, op_index: int = 0
    ) -> float:
        return self.path.xfer_time(kind, nbytes, nsegments, op_index)

    def rma_sync_cost(self, kind: str) -> float:
        return self.path.sync_time(kind)
