"""The four experimental platforms of Table II, as calibrated cost models.

Each :class:`Platform` bundles the Table II system characteristics with
two :class:`~repro.simtime.netmodel.PathModel` instances — the
vendor-native ARMCI path and the MPI RMA path — a registration model
(Fig. 5 is only measured on the InfiniBand cluster, but every platform
gets parameters), and application-model coefficients for the NWChem
scaling curves (Fig. 6).

Calibration is to the paper's *qualitative* results (DESIGN.md lists the
shape targets); absolute numbers are in the right order of magnitude for
each interconnect generation but are not claimed to match the original
testbeds.  Tests in ``tests/test_platform_shapes.py`` pin the shape
relations so recalibration cannot silently break a figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from .netmodel import PathModel
from .registration import RegistrationModel

GB = 1e9


@dataclass(frozen=True)
class Platform:
    """One row of Table II plus everything the benches need to model it."""

    key: str
    name: str
    nodes: int
    sockets_per_node: int
    cores_per_socket: int
    mem_per_node_gb: int
    interconnect: str
    mpi_version: str
    native: PathModel
    mpi: PathModel
    registration: RegistrationModel
    #: sustained per-core DGEMM rate (GF/s) for the CCSD(T) proxy model
    core_gflops: float
    #: per-core fractional inflation of native-path communication at scale
    #: (comm time multiplied by ``1 + coeff * ncores``) — nonzero where the
    #: paper reports native scalability problems (Cray XE6, §VII-D)
    native_contention: float = 0.0
    #: same for the ARMCI-MPI path
    mpi_contention: float = 0.0
    #: multiplier on ARMCI-MPI communication reflecting exclusive-epoch
    #: serialisation on hot targets (§V-C: every op is an exclusive lock,
    #: so concurrent accessors of one target queue; native RDMA does not).
    #: Roughly the expected epoch queue depth at CCSD's access intensity.
    mpi_epoch_contention: float = 1.0

    @property
    def cores_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def table2_row(self) -> tuple[str, str, str, str, str, str]:
        """This platform formatted as its Table II row."""
        return (
            self.name,
            f"{self.nodes:,}",
            f"{self.sockets_per_node} x {self.cores_per_socket}",
            f"{self.mem_per_node_gb} GB",
            self.interconnect,
            self.mpi_version,
        )


BLUEGENE_P = Platform(
    key="bgp",
    name="IBM Blue Gene/P (Intrepid)",
    nodes=40_960,
    sockets_per_node=1,
    cores_per_socket=4,
    mem_per_node_gb=2,
    interconnect="3D Torus",
    mpi_version="IBM MPI",
    # 850 MHz PowerPC 450: low wire bandwidth, *slow packing* — the
    # reason the batched method overtakes direct for 1 KiB segments.
    native=PathModel(
        name="bgp-native",
        latency=3.0e-6,
        bw_small=0.38 * GB,
        bw_large=0.38 * GB,
        bw_threshold=1 << 20,
        acc_rate=1.2 * GB,
        seg_overhead=2.0e-7,
        pack_rate=0.40 * GB,
    ),
    mpi=PathModel(
        name="bgp-mpi",
        latency=2.5e-6,
        bw_small=0.36 * GB,
        bw_large=0.36 * GB,
        bw_threshold=1 << 20,
        acc_rate=0.8 * GB,
        seg_overhead=3.0e-7,
        pack_rate=0.25 * GB,
        lock_cost=2.0e-6,
        unlock_cost=2.0e-6,
        inflight_overhead=2.8e-6,
    ),
    registration=RegistrationModel(
        latency=3.0e-6, pinned_bw=0.38 * GB, copy_rate=1.2 * GB
    ),
    core_gflops=3.4,
    mpi_epoch_contention=1.15,
)

INFINIBAND = Platform(
    key="ib",
    name="Cluster (Fusion)",
    nodes=320,
    sockets_per_node=2,
    cores_per_socket=4,
    mem_per_node_gb=36,
    interconnect="InfiniBand QDR",
    mpi_version="MVAPICH2 1.6",
    # The most aggressively tuned native ARMCI (§VII-D): near-wire-speed
    # strided ops and pipelined accumulate.
    native=PathModel(
        name="ib-native",
        latency=1.8e-6,
        bw_small=3.1 * GB,
        bw_large=3.1 * GB,
        bw_threshold=1 << 22,
        acc_rate=6.0 * GB,
        seg_overhead=5.0e-8,
        pack_rate=50.0 * GB,
    ),
    # MVAPICH2 1.6: good wire bandwidth, weak accumulate (>1.5 GB/s gap,
    # Fig. 3) and the epoch queue-management defect that collapses the
    # batched method at large segment counts (Fig. 4, §VII-A).
    mpi=PathModel(
        name="ib-mpi",
        latency=2.2e-6,
        bw_small=2.9 * GB,
        bw_large=2.9 * GB,
        bw_threshold=1 << 22,
        acc_rate=0.45 * GB,
        seg_overhead=2.0e-7,
        pack_rate=1.2 * GB,
        lock_cost=1.3e-6,
        unlock_cost=1.3e-6,
        epoch_queue_penalty=2.0e-8,
        inflight_overhead=3.0e-7,
    ),
    registration=RegistrationModel(
        latency=2.2e-6, pinned_bw=3.2 * GB, copy_rate=4.5 * GB
    ),
    core_gflops=9.2,
    # MVAPICH2 exclusive epochs serialise badly on 8-core fat nodes: the
    # application-level 2x gap of Fig. 6 despite moderate microbenchmark
    # gaps (§VII-D "roughly 2x ... shrinks as processor count increases")
    mpi_epoch_contention=4.5,
)

CRAY_XT5 = Platform(
    key="xt5",
    name="Cray XT5 (Jaguar PF)",
    nodes=18_688,
    sockets_per_node=2,
    cores_per_socket=6,
    mem_per_node_gb=16,
    interconnect="Seastar 2+",
    mpi_version="Cray MPI",
    native=PathModel(
        name="xt5-native",
        latency=6.0e-6,
        bw_small=2.0 * GB,
        bw_large=2.0 * GB,
        bw_threshold=1 << 22,
        acc_rate=4.0 * GB,
        seg_overhead=1.0e-7,
        pack_rate=40.0 * GB,
    ),
    # Cray MPI on Seastar: comparable below 32 KiB, half the native
    # bandwidth above (Fig. 3); datatype methods beat batched (Fig. 4).
    mpi=PathModel(
        name="xt5-mpi",
        latency=7.0e-6,
        bw_small=1.9 * GB,
        bw_large=1.0 * GB,
        bw_threshold=32 * 1024,
        acc_rate=1.5 * GB,
        seg_overhead=1.2e-7,
        pack_rate=3.0 * GB,
        lock_cost=1.0e-6,
        unlock_cost=1.0e-6,
        inflight_overhead=1.0e-6,
    ),
    registration=RegistrationModel(
        latency=6.0e-6, pinned_bw=2.0 * GB, copy_rate=4.0 * GB
    ),
    core_gflops=10.4,
    # 15-20% application gap (§VII-D)
    mpi_epoch_contention=1.8,
)

CRAY_XE6 = Platform(
    key="xe6",
    name="Cray XE6 (Hopper II)",
    nodes=6_392,
    sockets_per_node=2,
    cores_per_socket=12,
    mem_per_node_gb=32,
    interconnect="Gemini",
    mpi_version="Cray MPI",
    # The ARMCI available for Gemini was a development release (§VII-A):
    # low large-message bandwidth and contention at scale, so ARMCI-MPI
    # wins — the paper's headline reversal.
    native=PathModel(
        name="xe6-native",
        latency=1.5e-6,
        bw_small=0.7 * GB,
        bw_large=0.7 * GB,
        bw_threshold=1 << 22,
        acc_rate=8.0 * GB,
        seg_overhead=2.0e-7,
        pack_rate=6.0 * GB,
    ),
    mpi=PathModel(
        name="xe6-mpi",
        latency=2.0e-6,
        bw_small=1.5 * GB,
        bw_large=1.5 * GB,
        bw_threshold=1 << 22,
        acc_rate=1.6 * GB,
        seg_overhead=1.5e-7,
        pack_rate=5.0 * GB,
        lock_cost=1.5e-6,
        unlock_cost=1.5e-6,
        inflight_overhead=5.0e-7,
    ),
    registration=RegistrationModel(
        latency=2.0e-6, pinned_bw=1.5 * GB, copy_rate=6.0 * GB
    ),
    core_gflops=8.4,
    # development-release native ARMCI degrades at scale: (T) flattens
    # and CCSD worsens past ~5k cores (Fig. 6, bottom right)
    native_contention=6.5e-4,
    mpi_contention=1.0e-5,
    mpi_epoch_contention=1.05,
)

#: all platforms keyed as in the benches: bgp / ib / xt5 / xe6
PLATFORMS: dict[str, Platform] = {
    p.key: p for p in (BLUEGENE_P, INFINIBAND, CRAY_XT5, CRAY_XE6)
}


def get_platform(key: str) -> Platform:
    """Look up a platform by key (``bgp``, ``ib``, ``xt5``, ``xe6``)."""
    try:
        return PLATFORMS[key]
    except KeyError:
        raise KeyError(
            f"unknown platform {key!r}; choose from {sorted(PLATFORMS)}"
        ) from None
