"""Memory-registration (pinning) interoperability model — Figure 5.

§VII-B of the paper shows what happens when two runtime systems each keep
their own buffer-registration machinery: a native-ARMCI get from an
ARMCI-allocated (prepinned) buffer is fastest, but the same get from an
MPI-allocated buffer falls off ARMCI's pinned fast path; conversely an
MPI get pays MVAPICH's on-demand registration cost the first time it
touches a buffer, with a visible penalty above the two-page (8 KiB)
eager-copy threshold.

:class:`RegistrationModel` captures those four paths with explicit
parameters; :class:`RegistrationState` adds the cache dynamics (a
registration cache with capacity-miss behaviour), so benches can show
both the steady-state curves of Fig. 5 and the cache-thrash regime.
"""

from __future__ import annotations

from dataclasses import dataclass

PAGE_BYTES = 4096


@dataclass(frozen=True)
class RegistrationModel:
    """Cost parameters of the pinning paths on one platform.

    Attributes
    ----------
    latency:
        per-transfer start-up of the interconnect path (seconds).
    pinned_bw:
        RDMA bandwidth from/to registered (pinned) memory (B/s).
    copy_rate:
        host memcpy rate used by bounce-buffer (nonpinned/eager) paths.
    eager_threshold:
        size up to which the MPI library copies through preregistered
        internal buffers instead of registering the user buffer
        (MVAPICH: 8 KiB ≈ two pages).
    reg_base / reg_per_page:
        one-time on-demand registration cost: syscall + per-page pinning.
    """

    latency: float = 2.5e-6
    pinned_bw: float = 3.2e9
    copy_rate: float = 4.5e9
    eager_threshold: int = 2 * PAGE_BYTES
    reg_base: float = 3.0e-5
    reg_per_page: float = 4.0e-7

    def registration_cost(self, nbytes: int) -> float:
        """One-time cost of pinning ``nbytes`` of new memory."""
        pages = max(1, -(-nbytes // PAGE_BYTES))
        return self.reg_base + self.reg_per_page * pages

    # -- the four Fig. 5 paths -------------------------------------------------
    def armci_get_armci_buffer(self, nbytes: int) -> float:
        """Native ARMCI get, local buffer from ARMCI_Malloc (prepinned)."""
        return self.latency + nbytes / self.pinned_bw

    def armci_get_mpi_buffer(self, nbytes: int) -> float:
        """Native ARMCI get, local buffer allocated by MPI.

        ARMCI does not recognise the buffer as pinned and takes its
        nonpinned path: the payload is staged through preregistered
        bounce buffers (an extra host copy on every transfer).
        """
        return self.latency + nbytes / self.pinned_bw + nbytes / self.copy_rate

    def mpi_get_touched(self, nbytes: int) -> float:
        """MPI get where MPI has already registered ("touched") the buffer."""
        return self.latency + nbytes / self.pinned_bw

    def mpi_get_untouched(self, nbytes: int) -> float:
        """MPI get from a buffer MPI has never seen (e.g. ARMCI-allocated).

        Below the eager threshold the payload is copied through internal
        prepinned buffers; above it the buffer is registered on demand,
        paying the pinning cost on the transfer that faults it in.
        """
        if nbytes <= self.eager_threshold:
            return self.latency + nbytes / self.pinned_bw + nbytes / self.copy_rate
        return self.latency + self.registration_cost(nbytes) + nbytes / self.pinned_bw


class RegistrationState:
    """Registration-cache dynamics for repeated-transfer experiments.

    Tracks which buffers (by id) are currently registered, with an LRU
    capacity limit in pages.  A transfer from an unregistered buffer pays
    :meth:`RegistrationModel.registration_cost` once; cache eviction
    makes the cost recur — the fragmentation/resource-consumption effect
    §VII-B mentions for on-demand registration.
    """

    def __init__(self, model: RegistrationModel, capacity_pages: int = 1 << 20):
        if capacity_pages < 1:
            raise ValueError("capacity_pages must be positive")
        self.model = model
        self.capacity_pages = capacity_pages
        self._cache: dict[int, int] = {}  # buffer id -> pages (insertion = LRU order)
        self._used_pages = 0

    def transfer_cost(self, buffer_id: int, nbytes: int) -> float:
        """Modeled cost of a get from ``buffer_id``, updating the cache."""
        pages = max(1, -(-nbytes // PAGE_BYTES))
        cost = self.model.latency + nbytes / self.model.pinned_bw
        if buffer_id in self._cache:
            self._cache[buffer_id] = self._cache.pop(buffer_id)  # refresh LRU
            return cost
        if nbytes <= self.model.eager_threshold:
            return cost + nbytes / self.model.copy_rate
        while self._used_pages + pages > self.capacity_pages and self._cache:
            oldest = next(iter(self._cache))
            self._used_pages -= self._cache.pop(oldest)
        self._cache[buffer_id] = pages
        self._used_pages += pages
        return cost + self.model.registration_cost(nbytes)

    @property
    def registered_buffers(self) -> int:
        return len(self._cache)
