"""``repro.traffic``: a service-style load harness over the GA layer.

Everything before this package drives the runtime from a handful of
SPMD ranks in lockstep; the regime "Quo Vadis MPI RMA?" calls realistic
— many concurrent small one-sided operations behind a service
front-end — was never exercised, and never *while faults land*.  This
package closes that gap: many client sessions per rank submit GA
operations through an admission front-end with production robustness
semantics (bounded queue with typed :class:`~repro.traffic.frontend.
Overloaded` shedding, per-request deadlines, retry with seeded
exponential backoff and jitter, a circuit breaker that trips on rank
failures and routes traffic around ULFM recovery), over three value-
checked workloads: a ghost-cell stencil, NXTVAL work stealing, and an
irregular-distribution BFS (:mod:`repro.traffic.workloads`).

Composability is the point: on the thread backend the harness runs
under the deterministic scheduler with seeded
:class:`~repro.faults.plan.FaultPlan` kills, so a failing traffic seed
replays bit-identically (same shed/retry/violation trace); on the proc
backend :class:`~repro.faults.proc.ProcFaultPlan` delivers real
``SIGKILL``/``SIGSTOP`` mid-traffic and the harness must shed, retry,
recover, and drain instead of failing the run.  See ``docs/traffic.md``
and the ``BENCH_traffic.json`` gate (``python -m repro.bench
--traffic-smoke``).

CLI: ``python -m repro.traffic --scenario stencil --nproc 4 --seed 7``
(see :mod:`repro.traffic.cli`).
"""

from __future__ import annotations

from .frontend import (
    AdmissionQueue,
    CircuitBreaker,
    DeadlineExceeded,
    Overloaded,
    Request,
)
from .harness import (
    TrafficConfig,
    TrafficResult,
    run_traffic,
    run_traffic_proc,
    trace_digest,
    traffic_body,
)
from .workloads import WORKLOADS, make_workload

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "DeadlineExceeded",
    "Overloaded",
    "Request",
    "TrafficConfig",
    "TrafficResult",
    "WORKLOADS",
    "make_workload",
    "run_traffic",
    "run_traffic_proc",
    "trace_digest",
    "traffic_body",
]
