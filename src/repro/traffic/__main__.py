"""``python -m repro.traffic`` entry point."""

import sys

from .cli import main

sys.exit(main())
