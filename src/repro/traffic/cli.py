"""CLI: run one traffic scenario and print its service report.

::

    python -m repro.traffic --scenario stencil --nproc 4 --seed 7
    python -m repro.traffic --scenario worksteal --kill 1@40
    python -m repro.traffic --scenario bfs --backend proc --proc-kill 2@0.4
    python -m repro.traffic --scenario stencil --seed 7 --replay

``--kill RANK@POINT`` injects a thread-backend
:class:`~repro.faults.plan.FaultPlan` kill at a fuzz point;
``--proc-kill RANK@AFTER_S`` / ``--proc-stall RANK@AFTER_S`` deliver a
real ``SIGKILL``/``SIGSTOP`` on the proc backend.  ``--replay`` runs
the thread-backend scenario twice and fails unless both the scheduler
digest and the traffic trace digest are identical — the seed-replay
contract.  Exit status is 0 iff the run completed, the workload's
serial-numpy oracle verified, and (with ``--replay``) the digests
matched.
"""

from __future__ import annotations

import argparse
import sys

from .harness import TrafficConfig, run_traffic, run_traffic_proc


def _rank_at(spec: str, what: str) -> "tuple[int, float]":
    try:
        rank, at = spec.split("@", 1)
        return int(rank), float(at)
    except ValueError:
        raise SystemExit(f"bad {what} spec {spec!r}: expected RANK@{what.upper()}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traffic",
        description="Service-style GA traffic: admission control, deadlines, "
        "retry/backoff, circuit breaker, and recovery under live faults.",
    )
    parser.add_argument("--scenario", default="stencil",
                        choices=("stencil", "worksteal", "bfs"),
                        help="traffic workload (default stencil)")
    parser.add_argument("--nproc", type=int, default=4,
                        help="number of ranks (default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="traffic + schedule seed (default 0)")
    parser.add_argument("--offered", type=int, default=3,
                        help="client arrivals per rank per tick (default 3)")
    parser.add_argument("--service-rate", type=int, default=2,
                        help="requests served per rank per tick (default 2)")
    parser.add_argument("--queue", type=int, default=6,
                        help="admission queue capacity (default 6)")
    parser.add_argument("--deadline", type=int, default=8,
                        help="per-request deadline in ticks (default 8)")
    parser.add_argument("--size", type=int, default=0,
                        help="workload scale (0 = workload default)")
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "proc"),
                        help="thread = deterministic scheduler; proc = real "
                        "processes with wall-clock faults")
    parser.add_argument("--kill", metavar="RANK@POINT", default=None,
                        help="thread backend: kill RANK at fuzz point POINT")
    parser.add_argument("--proc-kill", metavar="RANK@AFTER_S", default=None,
                        help="proc backend: SIGKILL RANK AFTER_S seconds in")
    parser.add_argument("--proc-stall", metavar="RANK@AFTER_S", default=None,
                        help="proc backend: SIGSTOP RANK AFTER_S seconds in "
                        "(resumed 0.5s later)")
    parser.add_argument("--tick-sleep", type=float, default=0.0,
                        help="proc backend: wall seconds to pace each tick")
    parser.add_argument("--replay", action="store_true",
                        help="thread backend: run twice, fail on any digest "
                        "mismatch (seed-replay contract)")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    cfg = TrafficConfig(
        scenario=args.scenario, seed=args.seed, size=args.size,
        offered=args.offered, service_rate=args.service_rate,
        queue_capacity=args.queue, deadline_ticks=args.deadline,
        tick_sleep_s=args.tick_sleep if args.backend == "proc" else 0.0,
    )
    if args.backend == "proc":
        plan = None
        if args.proc_kill or args.proc_stall:
            from ..faults.proc import ProcFaultPlan

            plan = ProcFaultPlan(seed=args.seed)
            if args.proc_kill:
                rank, after = _rank_at(args.proc_kill, "after_s")
                plan = plan.kill(rank, after)
            if args.proc_stall:
                rank, after = _rank_at(args.proc_stall, "after_s")
                plan = plan.stall(rank, after)
        result = run_traffic_proc(cfg, args.nproc, plan=plan)
        print(result.summary())
        return 0 if (result.ok and result.verified) else 1
    plan = None
    if args.kill:
        from ..faults.plan import FaultPlan

        rank, point = _rank_at(args.kill, "point")
        plan = FaultPlan(seed=args.seed).kill(rank, int(point))
    result = run_traffic(cfg, args.nproc, args.seed, plan=plan)
    print(result.summary())
    bad = not (result.ok and result.verified) or result.violations
    if args.replay:
        again = run_traffic(cfg, args.nproc, args.seed, plan=plan)
        same = (
            again.digest == result.digest
            and again.schedule_digest == result.schedule_digest
        )
        print(f"replay: {'identical' if same else 'DIVERGED'} "
              f"(trace {again.digest[:16]}…)")
        bad = bad or not same
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
