"""Admission front-end: bounded queue, deadlines, retries, breaker.

This module is deliberately free of MPI: it is the pure control-plane
state machine of one rank's service front-end, driven by the harness
(:mod:`repro.traffic.harness`) in virtual *ticks*.  Everything is
deterministic given the caller's seeded RNG, so the same traffic seed
produces the same shed/retry/breaker trace on the thread backend's
deterministic scheduler.

Vocabulary (the production semantics the ISSUE names):

* **Admission queue** — :class:`AdmissionQueue`, a bounded FIFO.  An
  arrival that finds it full is *shed* with a typed
  :class:`Overloaded`; nothing ever blocks.
* **Deadline** — every :class:`Request` carries an absolute tick by
  which it must complete; the queue expires overdue requests with
  :class:`DeadlineExceeded` semantics instead of serving stale work.
* **Retry with backoff + jitter** — a transiently failed request is
  re-queued with a ``not_before`` tick computed from
  :data:`repro.backoff.BackoffPolicy` (satellite: the same policy type
  the runtime's lock retry and the proc backend's pid probing use).
* **Circuit breaker** — :class:`CircuitBreaker`, the classic
  closed → open → half-open machine.  Fatal rank failures trip it
  instantly; repeated transient exhaustion trips it at ``threshold``.
  While open, arrivals are shed (``breaker_open``) so recovery and
  backlog drain are not competing with fresh load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backoff import BackoffPolicy
from ..mpi.errors import MPIError

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "DeadlineExceeded",
    "Overloaded",
    "Request",
    "RETRY_TICKS",
]


class Overloaded(MPIError):
    """Request shed by admission control (queue full or breaker open)."""

    error_class = "REPRO_TRAFFIC_OVERLOADED"


class DeadlineExceeded(MPIError):
    """Request missed its completion deadline while queued or retrying."""

    error_class = "REPRO_TRAFFIC_DEADLINE"


#: retry release-tick curve: 1 tick base, doubled, jittered into
#: ``[0.5, 1.0]`` of the raw delay by the rank's seeded traffic RNG
RETRY_TICKS = BackoffPolicy(base=1.0, factor=2.0, cap=8.0, jitter=0.5)


@dataclass
class Request:
    """One admitted client request, tracked through retries."""

    rid: int
    payload: tuple
    arrival: int
    deadline: int
    attempts: int = 0
    not_before: int = 0


class AdmissionQueue:
    """Bounded FIFO with deadline expiry and backoff-aware dispatch."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._q: list[Request] = []

    def __len__(self) -> int:
        return len(self._q)

    @property
    def free(self) -> int:
        return self.capacity - len(self._q)

    def offer(self, req: Request) -> None:
        """Admit ``req`` or shed it with :class:`Overloaded` (never blocks)."""
        if len(self._q) >= self.capacity:
            raise Overloaded(
                f"admission queue full ({self.capacity}): shedding rid {req.rid}"
            )
        self._q.append(req)

    def requeue(self, req: Request) -> None:
        """Re-admit a retrying request; retries bypass the capacity check
        (they already hold a slot's worth of admission budget)."""
        self._q.append(req)

    def expire(self, tick: int) -> "list[Request]":
        """Remove and return every queued request past its deadline."""
        dead = [r for r in self._q if tick > r.deadline]
        if dead:
            self._q = [r for r in self._q if tick <= r.deadline]
        return dead

    def pop_ready(self, tick: int) -> "Request | None":
        """Oldest queued request whose backoff has elapsed, or ``None``."""
        for i, r in enumerate(self._q):
            if r.not_before <= tick:
                return self._q.pop(i)
        return None

    def drain(self) -> "list[Request]":
        """Empty the queue (recovery / shutdown), returning what was left."""
        left, self._q = self._q, []
        return left


@dataclass
class CircuitBreaker:
    """Closed → open → half-open breaker over consecutive failures.

    ``record_failure`` counts consecutive failures; at ``threshold``
    the breaker opens for ``cooldown`` ticks (:meth:`trip` opens it
    immediately — the harness calls that on fatal rank failures).  An
    open breaker rejects all admission; after the cooldown it goes
    half-open and admits one probe per tick, closing again on the first
    success.  ``transitions`` is the audit trail folded into the
    traffic trace digest.
    """

    threshold: int = 3
    cooldown: int = 3
    state: str = "closed"
    failures: int = 0
    opened_at: int = -1
    _probe_tick: int = -1
    transitions: "list[tuple]" = field(default_factory=list)

    def allow(self, tick: int) -> bool:
        """May an arrival be admitted at ``tick``?  (Advances open→half-open.)"""
        if self.state == "open":
            if tick >= self.opened_at + self.cooldown:
                self.state = "half_open"
                self.transitions.append(("half_open", tick))
            else:
                return False
        if self.state == "half_open":
            # one probe per tick: allow() is asked once per arrival, so
            # permit only the first ask of this tick
            if self._probe_tick == tick:
                return False
            self._probe_tick = tick
            return True
        return True

    def record_success(self, tick: int) -> None:
        self.failures = 0
        if self.state == "half_open":
            self.state = "closed"
            self.transitions.append(("closed", tick))

    def record_failure(self, tick: int) -> None:
        self.failures += 1
        if self.state == "half_open" or (
            self.state == "closed" and self.failures >= self.threshold
        ):
            self._open(tick)

    def trip(self, tick: int) -> None:
        """Open immediately (fatal failure — recovery is about to run)."""
        if self.state != "open":
            self._open(tick)
        else:
            self.opened_at = tick

    def _open(self, tick: int) -> None:
        self.state = "open"
        self.opened_at = tick
        self.failures = 0
        self.transitions.append(("open", tick))
