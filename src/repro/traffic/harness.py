"""The traffic harness: service loop, recovery routing, and drivers.

:func:`traffic_body` is an SPMD body (``fn(comm, cfg)``) that runs one
rank of the service: each virtual *tick* it admits client arrivals
through the front-end (:mod:`repro.traffic.frontend`), expires overdue
requests, serves up to ``service_rate`` requests against the GA
workload, then exchanges a status tuple with every rank (one
``allgather`` per tick — the control-plane heartbeat that keeps ticks
in lockstep, gossips completions/effects, and promptly propagates a
poisoned world to every survivor).

Fault routing is the ULFM loop at tick granularity: a fatal error
(:class:`~repro.mpi.errors.TargetFailedError`,
:class:`~repro.mpi.errors.CommRevokedError`,
:class:`~repro.mpi.runtime.RankFailedError`) trips the circuit
breaker, revokes the world so no survivor stays blocked in the tick
collective, rendezvouses through ``agree``, runs
:func:`repro.recover.recover`, and rebuilds the workload from the last
replicated checkpoint; queued requests are shed, the breaker's cooldown
sheds fresh arrivals while the backlog drains, and idempotent payloads
make the at-least-once replay of the post-checkpoint window value-safe.
Transient errors (:class:`~repro.mpi.errors.OpTimeoutError`, including
the injector's :class:`~repro.mpi.errors.RetriesExhausted`) never
trigger recovery — the request retries with seeded
backoff-plus-jitter until its deadline or attempt budget runs out.

Drivers: :func:`run_traffic` runs the body under the deterministic
scheduler (thread backend) so a traffic seed — including its
shed/retry/violation trace — replays bit-identically;
:func:`run_traffic_proc` runs it wall-clock on the proc backend where
:class:`~repro.faults.proc.ProcFaultPlan` delivers real ``SIGKILL`` /
``SIGSTOP`` mid-traffic.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field

from ..mpi.errors import (
    CommRevokedError,
    MPIError,
    OpTimeoutError,
    RankKilledError,
    TargetFailedError,
)
from ..mpi.runtime import RankFailedError, Runtime
from .frontend import RETRY_TICKS, AdmissionQueue, CircuitBreaker, Overloaded, Request
from .workloads import make_workload

__all__ = [
    "TrafficConfig",
    "TrafficResult",
    "run_traffic",
    "run_traffic_proc",
    "trace_digest",
    "traffic_body",
]

#: a survivor treats these as "a peer failed — run collective recovery";
#: RankKilledError (the victim's own death notice) must propagate
_FATAL = (TargetFailedError, CommRevokedError, RankFailedError)

#: request-level transient failures: retry with backoff, never recover
_TRANSIENT = (OpTimeoutError,)


@dataclass(frozen=True)
class TrafficConfig:
    """One service-traffic scenario (picklable — shipped to proc ranks)."""

    scenario: str = "stencil"
    seed: int = 0
    size: int = 0            # workload scale knob (0 = workload default)
    offered: int = 3         # client arrivals per rank per tick
    service_rate: int = 2    # executions per rank per tick
    queue_capacity: int = 6
    deadline_ticks: int = 8
    max_attempts: int = 3
    breaker_threshold: int = 3
    breaker_cooldown: int = 3
    checkpoint_every: int = 4
    max_ticks: int = 150
    tick_sleep_s: float = 0.0  # wall pacing (proc backend only)
    datapath: str = "mpi2"


def traffic_body(comm, cfg: TrafficConfig) -> dict:
    """One rank of the traffic service; returns its per-rank record."""
    from ..armci import Armci
    from ..recover import recover

    workload = make_workload(cfg.scenario, cfg.seed, cfg.size)
    armci = Armci.init(comm, datapath=cfg.datapath)
    setup_retries = 0
    while True:
        # a wall-clock kill may land during the collective setup itself;
        # rebuild the world and start over (same ULFM loop as below)
        try:
            state = workload.setup(armci)
            break
        except RankKilledError:
            raise
        except _FATAL:
            try:
                armci.world.revoke()
            except MPIError:  # pragma: no cover - already revoked
                pass
            armci.world.agree(0)
            armci, _ = recover(armci)
            setup_retries += 1
            if setup_retries > comm.size:
                raise
    queue = AdmissionQueue(cfg.queue_capacity)
    breaker = CircuitBreaker(cfg.breaker_threshold, cfg.breaker_cooldown)
    rng = random.Random(((cfg.seed + 1) * 0x9E3779B1) ^ (comm.rank << 16))

    events: list = []
    latencies: list = []
    sheds = dict.fromkeys(
        ("queue_full", "breaker_open", "deadline", "gave_up", "recovery", "drain"), 0
    )
    offered_n = admitted_n = retries_n = completed_local = 0
    completed: set = set()
    per_tick: list = []
    recovery_ticks: list = []
    hwm = 0
    rid = comm.rank << 20
    ckpt = workload.checkpoint(state, completed, hwm)
    tick = 0
    awaiting_drain = False
    done = False

    def reject(reason: str, tick_: int, payload) -> None:
        nonlocal sheds
        sheds[reason] += 1
        events.append(("shed", tick_, reason, payload))
        workload.on_rejected(state, payload)

    while not done:
        if cfg.tick_sleep_s > 0.0:
            time.sleep(cfg.tick_sleep_s)
        try:
            rank, nproc = armci.my_id, armci.nproc
            # 1. arrivals through admission control
            if workload.pull_based:
                # backpressure form: only draw work the queue can hold
                budget = sum(
                    1
                    for _ in range(min(cfg.offered, queue.free))
                    if breaker.allow(tick)
                )
                for p in workload.generate(
                    state, rank, nproc, tick, rng, budget, completed
                ):
                    offered_n += 1
                    admitted_n += 1
                    rid += 1
                    queue.offer(Request(rid, p, tick, tick + cfg.deadline_ticks))
            else:
                for p in workload.generate(
                    state, rank, nproc, tick, rng, cfg.offered, completed
                ):
                    offered_n += 1
                    rid += 1
                    if not breaker.allow(tick):
                        reject("breaker_open", tick, p)
                        continue
                    try:
                        queue.offer(Request(rid, p, tick, tick + cfg.deadline_ticks))
                    except Overloaded:
                        reject("queue_full", tick, p)
                        continue
                    admitted_n += 1
            # 2. deadline expiry of queued work
            for req in queue.expire(tick):
                reject("deadline", tick, req.payload)
            # 3. serve up to service_rate requests
            effects_out: list = []
            newly: list = []
            for _ in range(cfg.service_rate):
                req = queue.pop_ready(tick)
                if req is None:
                    break
                try:
                    eff = workload.execute(state, req.payload)
                except RankKilledError:
                    raise
                except _TRANSIENT:
                    req.attempts += 1
                    breaker.record_failure(tick)
                    if req.attempts > cfg.max_attempts:
                        reject("gave_up", tick, req.payload)
                        continue
                    wait = RETRY_TICKS.steps(req.attempts - 1, rng)
                    if tick + wait > req.deadline:
                        reject("deadline", tick, req.payload)
                        continue
                    req.not_before = tick + wait
                    retries_n += 1
                    events.append(("retry", tick, req.payload, req.attempts, wait))
                    queue.requeue(req)
                else:
                    effects_out.extend(eff)
                    newly.append(req.payload)
                    latencies.append(tick - req.arrival + 1)
                    completed_local += 1
                    breaker.record_success(tick)
            # recovery backlog is drained once the queue is empty AND the
            # breaker has closed again (half-open probe succeeded)
            if awaiting_drain and not len(queue) and breaker.state == "closed":
                events.append(("drained", tick))
                awaiting_drain = False
            # 4. hard stop: drain whatever is left as shed load
            out_of_time = tick + 1 >= cfg.max_ticks
            if out_of_time:
                for req in queue.drain():
                    reject("drain", tick, req.payload)
            # 5. per-tick status exchange (the control-plane heartbeat)
            done_local = (
                workload.exhausted(state, rank, nproc, completed) and not len(queue)
            )
            stats = armci.world.allgather(
                (done_local, newly, effects_out, workload.watermark(state))
            )
            all_newly = [k for st in stats for k in st[1]]
            completed.update(all_newly)
            all_effects = [e for st in stats for e in st[2]]
            workload.apply_effects(state, rank, nproc, all_effects)
            hwm = max(hwm, max(st[3] for st in stats))
            per_tick.append(len(all_newly))
            done = (all(st[0] for st in stats) and not all_effects) or out_of_time
            # 6. replicated checkpoint at tick boundaries
            if not done and (tick + 1) % cfg.checkpoint_every == 0:
                ckpt = workload.checkpoint(state, completed, hwm)
        except RankKilledError:
            raise
        except _FATAL as exc:
            events.append(("fault", tick, type(exc).__name__))
            # poison the tick everywhere, rendezvous, then rebuild
            try:
                armci.world.revoke()
            except MPIError:  # pragma: no cover - already revoked
                pass
            armci.world.agree(0)
            armci, report = recover(armci)
            state = workload.restore(armci, ckpt)
            completed = set(ckpt["completed"])
            hwm = ckpt["watermark"]
            for req in queue.drain():
                reject("recovery", tick, req.payload)
            breaker.trip(tick)
            recovery_ticks.append(tick)
            awaiting_drain = True
            events.append(("recovered", tick, len(report.failed), armci.nproc))
            tick = max(armci.world.allgather(tick))
        tick += 1

    while True:
        # a late kill can land in the verification collective itself;
        # roll back to the checkpoint and verify that state instead
        try:
            ok_local = bool(workload.verify(state, completed))
            verified = all(armci.world.allgather(ok_local))
            break
        except RankKilledError:
            raise
        except _FATAL:
            try:
                armci.world.revoke()
            except MPIError:  # pragma: no cover - already revoked
                pass
            armci.world.agree(0)
            armci, report = recover(armci)
            state = workload.restore(armci, ckpt)
            completed = set(ckpt["completed"])
            recovery_ticks.append(tick)
            events.append(("recovered", tick, len(report.failed), armci.nproc))
    out = {
        "rank": comm.rank,
        "final_rank": armci.my_id,
        "nproc_final": armci.nproc,
        "ticks": tick,
        "offered": offered_n,
        "admitted": admitted_n,
        "retries": retries_n,
        "completed_local": completed_local,
        "completed": sorted(completed),
        "sheds": sheds,
        "latencies": latencies,
        "events": events,
        "breaker": list(breaker.transitions),
        "per_tick": per_tick,
        "recoveries": len(recovery_ticks),
        "recovery_ticks": recovery_ticks,
        "verified": verified,
    }
    armci.finalize()
    return out


def trace_digest(results) -> str:
    """sha256 over the canonical per-rank traffic trace.

    Covers every shed/retry/breaker/fault/recovery event, the latency
    series, and the completed set — the "same shed/retry/violation
    trace from the same seed" replay contract.  Dead ranks hash as a
    fixed marker.
    """
    h = hashlib.sha256()
    for r in results or []:
        if r is None:
            h.update(b"DEAD;")
            continue
        h.update(
            repr((
                r["events"],
                r["breaker"],
                sorted(r["sheds"].items()),
                r["retries"],
                r["latencies"],
                r["completed"],
            )).encode()
        )
        h.update(b";")
    return h.hexdigest()


@dataclass
class TrafficResult:
    """Aggregated run record: metrics over the per-rank results."""

    cfg: TrafficConfig
    nproc: int
    ok: bool
    verified: bool
    results: list
    digest: str
    schedule_digest: "str | None" = None
    error: "str | None" = None
    violations: list = field(default_factory=list)
    ticks: int = 0
    offered: int = 0
    admitted: int = 0
    completed: int = 0
    retries: int = 0
    goodput: float = 0.0
    shed: dict = field(default_factory=dict)
    shed_rate: float = 0.0
    p50_ticks: float = 0.0
    p99_ticks: float = 0.0
    recoveries: int = 0
    recovery_dip: float = 0.0
    drain_ticks: int = 0

    @classmethod
    def from_results(cls, cfg, nproc, results, *, ok=True,
                     schedule_digest=None, error=None, violations=()):
        live = [r for r in (results or []) if r is not None]
        res = cls(
            cfg=cfg, nproc=nproc, ok=bool(ok and live),
            verified=bool(live) and all(r["verified"] for r in live),
            results=list(results or []), digest=trace_digest(results),
            schedule_digest=schedule_digest, error=error,
            violations=list(violations),
        )
        if not live:
            return res
        res.ticks = max(r["ticks"] for r in live)
        res.offered = sum(r["offered"] for r in live)
        res.admitted = sum(r["admitted"] for r in live)
        res.retries = sum(r["retries"] for r in live)
        res.completed = len(live[0]["completed"])
        res.goodput = res.completed / res.ticks if res.ticks else 0.0
        res.shed = {
            k: sum(r["sheds"][k] for r in live) for k in live[0]["sheds"]
        }
        total_shed = sum(res.shed.values())
        res.shed_rate = total_shed / res.offered if res.offered else 0.0
        lats = sorted(x for r in live for x in r["latencies"])
        if lats:
            res.p50_ticks = float(lats[len(lats) // 2])
            res.p99_ticks = float(lats[min(len(lats) - 1, (99 * len(lats)) // 100)])
        res.recoveries = max(r["recoveries"] for r in live)
        res._dip_and_drain(live)
        return res

    def _dip_and_drain(self, live) -> None:
        """Recovery-dip depth and backlog drain time from the timeline."""
        recs = sorted({t for r in live for t in r["recovery_ticks"]})
        if not recs:
            return
        t0 = recs[0]
        timeline = max((r["per_tick"] for r in live), key=len)
        pre = timeline[max(0, t0 - 3):t0] or [0]
        window = timeline[t0:t0 + self.cfg.breaker_cooldown + 1] or [0]
        self.recovery_dip = max(0.0, sum(pre) / len(pre) - min(window))
        drained = [
            ev[1]
            for r in live
            for ev in r["events"]
            if ev[0] == "drained" and ev[1] >= recs[-1]
        ]
        if drained:
            self.drain_ticks = max(drained) - recs[-1]

    def summary(self) -> str:
        shed = ", ".join(f"{k}={v}" for k, v in sorted(self.shed.items()) if v)
        lines = [
            f"traffic[{self.cfg.scenario}] nproc={self.nproc} "
            f"seed={self.cfg.seed} offered/tick/rank={self.cfg.offered}",
            f"  ok={self.ok} verified={self.verified} ticks={self.ticks} "
            f"completed={self.completed} goodput={self.goodput:.3f}/tick",
            f"  latency p50={self.p50_ticks:.0f} p99={self.p99_ticks:.0f} ticks; "
            f"retries={self.retries} shed_rate={self.shed_rate:.3f} "
            f"[{shed or 'none'}]",
            f"  recoveries={self.recoveries} dip={self.recovery_dip:.2f} "
            f"drain={self.drain_ticks} ticks",
            f"  digest {self.digest[:16]}…"
            + (f" schedule {self.schedule_digest[:16]}…"
               if self.schedule_digest else ""),
        ]
        if self.error:
            lines.append(f"  error: {self.error}")
        for v in self.violations:
            lines.append(f"  violation: {v}")
        return "\n".join(lines)


def run_traffic(
    cfg: TrafficConfig,
    nproc: int,
    schedule_seed: int = 0,
    *,
    plan=None,
    switch_prob: float = 0.25,
    sanitize: bool = True,
) -> TrafficResult:
    """Deterministic thread-backend run (optionally under a FaultPlan).

    The same ``(cfg, nproc, schedule_seed, plan)`` replays bit-
    identically: both the scheduler digest and the traffic trace digest
    are pure functions of those inputs.
    """
    if cfg.tick_sleep_s:
        raise ValueError("tick_sleep_s is wall pacing — proc backend only")
    from ..sanitizer.fuzz import run_schedule

    report = run_schedule(
        traffic_body, nproc, schedule_seed,
        args=(cfg,), plan=plan, switch_prob=switch_prob, sanitize=sanitize,
    )
    return TrafficResult.from_results(
        cfg, nproc, report.results, ok=report.ok,
        schedule_digest=report.digest, error=report.error,
        violations=report.violations,
    )


def run_traffic_proc(
    cfg: TrafficConfig,
    nproc: int,
    *,
    plan=None,
    heartbeat_s: float = 0.05,
    suspect_after: float = 0.25,
    join_timeout: float = 90.0,
) -> TrafficResult:
    """Wall-clock proc-backend run (optionally under a ProcFaultPlan)."""
    rt = Runtime(
        nproc, backend="proc",
        heartbeat_s=heartbeat_s, suspect_after=suspect_after,
    )
    if plan is not None:
        from ..faults.proc import ProcFaultInjector

        rt.faults = ProcFaultInjector(plan)
    error = None
    results = None
    try:
        results = rt.spmd(traffic_body, cfg, join_timeout=join_timeout)
    except Exception as exc:  # noqa: BLE001 - gate reports, caller decides
        error = repr(exc)
    return TrafficResult.from_results(
        cfg, nproc, results, ok=error is None, error=error,
    )
